#!/usr/bin/env bash
# Regenerate the PR benchmarks.
#
# PR 2: exploration workloads on the bare vs the optimizing endpoint,
# the per-pass ablation, and the plan-cache front-half microbenchmark
# -> benchmarks/results/BENCH_PR2.json.  Exits non-zero if any
# optimized workload returns a different row count than the bare engine.
#
# PR 3: p95 first-page latency under 8 concurrent heavy expansions,
# round-robin time-sliced executor vs FIFO run-to-completion
# -> benchmarks/results/BENCH_PR3.json.  Exits non-zero if the row
# multisets differ between disciplines or time-slicing does not improve
# the p95.
#
# PR 4: billed per-session latency of the serving frontend at 1/8/32
# concurrent sessions with fault rate 0 and 0.1
# -> benchmarks/results/BENCH_PR4.json.  Exits non-zero if any session
# fails or p95 at 32 sessions exceeds 3x the solo p95.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

python benchmarks/bench_pr2.py "$@"
echo
python benchmarks/bench_pr3.py "$@"
echo
python benchmarks/bench_pr4.py "$@"
