#!/usr/bin/env bash
# Regenerate the PR 2 optimizer/plan-cache benchmark.
#
# Runs the exploration workloads on the bare and the optimizing endpoint,
# the per-pass ablation, and the plan-cache front-half microbenchmark,
# then writes benchmarks/results/BENCH_PR2.json (machine-readable) and
# prints the summary table.  Exits non-zero if any optimized workload
# returns a different row count than the bare engine.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

exec python benchmarks/bench_pr2.py "$@"
