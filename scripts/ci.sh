#!/usr/bin/env bash
# The checks a pull request must pass, runnable without any install step:
#   1. the observability + optimizer smoke test (EXPLAIN ANALYZE row
#      accounting, TopK fusion, plan-cache hit/invalidation, and the
#      HVS/decomposer counters moving when toggled);
#   2. the time-sliced executor smoke test (paging ≡ one-shot, token
#      hygiene — a suspended query resumed across a graph mutation is
#      invalidated, never silently wrong — round-robin fairness, and
#      the encoded-store smoke: load → query → page → decode, with the
#      dictionary round-trip and byte-identical paged SPARQL-JSON),
#      plus the property-path paging smoke (a subClassOf* closure must
#      suspend mid-traversal, resume from its token, and report its
#      BFS frontier counters in EXPLAIN ANALYZE);
#   3. a plan-cache + dictionary metrics smoke over
#      `repro metrics --exercise`, then the materialized-views smoke
#      (every chart shape served from the views route row-identically
#      to the backend, and delta maintenance across
#      add/remove/bulk_load equal to a from-scratch rebuild);
#   4. the serving-layer smoke test (concurrency soak under injected
#      faults, retry accounting, and the breaker's fallback ladder),
#      then the worker-pool smoke test (2 forked workers over a shared
#      mmap snapshot: byte-identical pages, crash/respawn recovery,
#      open-loop arrivals, stale-snapshot detection, metrics merge);
#   5. the snapshot-store smoke test (deterministic builds, reopen
#      parity, byte-identical paged SPARQL-JSON over the mmap store,
#      corruption → typed errors, read-only enforcement), plus a
#      build → zero-copy reopen round-trip through the CLI boot path;
#   6. the full tier-1 test suite.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== repro explain --self-test =="
python -m repro explain --self-test

echo
echo "== repro query --self-test =="
python -m repro query --self-test

echo
echo "== property-path paging smoke =="
# A closure query must page (tokens minted mid-traversal), finish, and
# render its frontier counters in EXPLAIN ANALYZE.
path_query='SELECT ?c ?d WHERE { ?c rdfs:subClassOf* ?d }'
# String matches, not `echo | grep -q`: under pipefail, grep -q exiting
# at the first match SIGPIPEs the echo of this multi-page output and
# fails the pipeline spuriously.
path_pages="$(python -m repro query "$path_query" --page-size 25)"
[[ "$path_pages" == *'complete=False'* ]] \
  || { echo "FAIL: path query never suspended (ran in one page)"; exit 1; }
[[ "$path_pages" == *'complete=True'* ]] \
  || { echo "FAIL: path query never completed"; exit 1; }
path_explained="$(python -m repro query "$path_query" --page-size 25 --explain --analyze)"
grep -q 'PathScan.*hops=' <<< "$path_explained" \
  || { echo "FAIL: no PathScan frontier detail in EXPLAIN ANALYZE"; exit 1; }
echo "ok: path query paged through continuation tokens with frontier detail"

echo
echo "== plan-cache metrics smoke =="
metrics="$(python -m repro metrics --exercise)"
echo "$metrics" | grep -q 'repro_plancache_requests_total{outcome="hit"} [1-9]' \
  || { echo "FAIL: no plan-cache hits in the exercised workload"; exit 1; }
echo "$metrics" | grep -q 'repro_optimizer_runs_total [1-9]' \
  || { echo "FAIL: optimizer never ran in the exercised workload"; exit 1; }
echo "$metrics" | grep -q 'repro_dict_terms{kind="uri"} [1-9]' \
  || { echo "FAIL: no terms interned in the dictionary"; exit 1; }
echo "$metrics" | grep -q 'repro_dict_encode_total{outcome="miss"} [1-9]' \
  || { echo "FAIL: dictionary never interned during the workload"; exit 1; }
echo "ok: plan cache hits, optimizer runs, and dictionary interning recorded"

echo
echo "== repro views --self-test =="
python -m repro views --self-test

echo
echo "== repro serve --self-test =="
python -m repro serve --self-test

echo
echo "== repro serve --workers 2 --self-test (pool smoke) =="
# The pool workload includes a subClassOf* closure, so this also
# migrates property-path continuation tokens across worker processes
# (and across the injected crash/respawn) byte-identically.
python -m repro serve --workers 2 --self-test

echo
echo "== repro snapshot --self-test =="
python -m repro snapshot --self-test

echo
echo "== snapshot build → reopen smoke =="
snapdir="$(mktemp -d)"
trap 'rm -rf "$snapdir"' EXIT
python -m repro snapshot build "$snapdir/ci.snap"
python -m repro snapshot info "$snapdir/ci.snap" > /dev/null
python -m repro --snapshot "$snapdir/ci.snap" stats > "$snapdir/from-snap.txt"
python -m repro stats > "$snapdir/from-mem.txt"
diff "$snapdir/from-mem.txt" "$snapdir/from-snap.txt" \
  || { echo "FAIL: stats differ between snapshot and in-memory boot"; exit 1; }
echo "ok: snapshot boot serves the same opening statistics as a text boot"

echo
echo "== tier-1 test suite =="
python -m pytest -x -q
