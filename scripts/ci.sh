#!/usr/bin/env bash
# The checks a pull request must pass, runnable without any install step:
#   1. the observability smoke test (EXPLAIN ANALYZE row accounting and
#      the HVS/decomposer counters moving when toggled);
#   2. the full tier-1 test suite.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== repro explain --self-test =="
python -m repro explain --self-test

echo
echo "== tier-1 test suite =="
python -m pytest -x -q
