"""The Section 4 performance story (Fig. 4), interactively.

Runs the level-zero property expansions — the heaviest queries eLinda
issues — against three store configurations and prints the simulated
latencies next to the paper's, then demonstrates incremental evaluation
in remote compatibility mode.

Run:  python examples/performance_modes.py
"""

from repro.core import Direction, MemberPattern, property_chart_query
from repro.datasets import DBpediaConfig, generate_dbpedia, recommended_scale
from repro.datasets.dbpedia import OWL_THING
from repro.endpoint import (
    REMOTE_VIRTUOSO_PROFILE,
    RemoteEndpoint,
    SimClock,
    SimulatedVirtuosoServer,
)
from repro.perf import (
    Decomposer,
    ElindaEndpoint,
    HeavyQueryStore,
    IncrementalConfig,
    IncrementalEvaluator,
    SpecializedIndexes,
)

PAPER = {
    ("virtuoso", "outgoing"): 454_000,
    ("virtuoso", "incoming"): 124_000,
    ("decomposer", "outgoing"): 1_500,
    ("decomposer", "incoming"): 1_200,
    ("hvs", "outgoing"): 80,
    ("hvs", "incoming"): 80,
}


def fmt(ms: float) -> str:
    return f"{ms / 1000:8.2f} s" if ms >= 1000 else f"{ms:7.1f} ms"


def main() -> None:
    config = DBpediaConfig()
    dataset = generate_dbpedia(config)
    graph = dataset.graph
    clock = SimClock()

    profile = REMOTE_VIRTUOSO_PROFILE.scaled(recommended_scale(config))
    server = SimulatedVirtuosoServer(graph, clock=clock, cost_model=profile)
    remote = RemoteEndpoint(server)
    decomposer = Decomposer(SpecializedIndexes(graph), clock=clock)
    hvs = HeavyQueryStore(clock=clock)

    queries = {
        "outgoing": property_chart_query(MemberPattern.of_type(OWL_THING)),
        "incoming": property_chart_query(
            MemberPattern.of_type(OWL_THING), Direction.INCOMING
        ),
    }

    print("Fig. 4 — level-zero property expansions (simulated time)")
    print(f"{'configuration':<14} {'direction':<10} {'paper':>10} {'measured':>12}")
    for direction, query in queries.items():
        response = remote.query(query)
        hvs.record(query, response.result, response.elapsed_ms, 0)
        cells = {
            "virtuoso": response.elapsed_ms,
            "decomposer": decomposer.try_answer(query).elapsed_ms,
            "hvs": hvs.lookup(query, 0).elapsed_ms,
        }
        for configuration, measured in cells.items():
            paper = PAPER[(configuration, direction)]
            print(
                f"{configuration:<14} {direction:<10} "
                f"{fmt(paper):>10} {fmt(measured):>12}"
            )

    # --- the routed eLinda endpoint does all of this transparently ----
    print("\nRouting the outgoing query through the eLinda endpoint twice:")
    stack = ElindaEndpoint(remote, hvs=HeavyQueryStore(clock=clock), decomposer=decomposer)
    for attempt in (1, 2):
        response = stack.query(queries["outgoing"])
        print(
            f"  attempt {attempt}: answered by {response.source:<10} "
            f"in {fmt(response.elapsed_ms)}"
        )

    # --- incremental evaluation (remote compatibility mode) -----------
    print(
        "\nIncremental evaluation of the outgoing chart "
        "(N = 2000 triples per window):"
    )
    evaluator = IncrementalEvaluator(
        graph, IncrementalConfig(window_size=2000), clock=SimClock()
    )
    for partial in evaluator.run(queries["outgoing"]):
        print(
            f"  window {partial.step:>2}: {len(partial.result.rows):>5} chart rows"
            f"  (+{partial.elapsed_ms:7.2f} ms, total {partial.cumulative_ms:8.2f} ms)"
        )
        if partial.step >= 8 and not partial.complete:
            print("  ... (continues until the full chart is computed)")
            break


if __name__ == "__main__":
    main()
