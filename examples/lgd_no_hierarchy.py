"""Exploring a dataset with no root class and no hierarchy.

LinkedGeoData declares flat classes with no owl:Thing and no
rdfs:subClassOf; the paper notes such datasets "may be browsed with
eLinda however in a limited fashion" (Section 3.1).  This example shows
what still works (per-class panes via search, property charts, data
tables) and what degrades (the initial subclass chart is empty), in
remote compatibility mode — the other architecture path of Section 4.

Run:  python examples/lgd_no_hierarchy.py
"""

from repro.core import Direction
from repro.datasets import generate_lgd
from repro.datasets.lgd import LGDO
from repro.endpoint import SimulatedVirtuosoServer
from repro.explorer import ExplorerSession, SettingsForm, Tab, connect, render_chart
from repro.rdf import OWL


def main() -> None:
    dataset = generate_lgd()
    settings = SettingsForm(
        endpoint_url="http://linkedgeodata.example.org/sparql",
        mode="remote",              # no preprocessing possible remotely
        use_hvs=False,
        use_decomposer=False,
        root_class=OWL.term("Thing"),
    )
    server = SimulatedVirtuosoServer(dataset.graph, url=settings.endpoint_url)
    endpoint = connect(settings, {settings.endpoint_url: server})
    session = ExplorerSession(endpoint, settings=settings)

    stats = session.dataset_statistics
    print(f"dataset: {stats.total_triples:,} triples, {stats.class_count} classes")

    # Limited fashion: no root class, so the initial pane is empty.
    initial = session.current_pane
    print(
        f"initial pane on owl:Thing: |S| = {initial.instance_count}, "
        f"{len(initial.subclass_chart())} subclass bars "
        "(no hierarchy to expand)\n"
    )

    # The autocomplete still works: classes are declared as owl:Class.
    print("autocomplete 'a':")
    for entry in session.autocomplete("a", limit=5):
        print("  ", entry)
    print()

    # Jump straight to the largest class and explore its properties.
    amenity = session.open_search_pane(LGDO.term("Amenity"))
    amenity.switch_tab(Tab.PROPERTY_DATA)
    chart = amenity.property_chart(Direction.OUTGOING)
    print(
        render_chart(
            chart, title=f"Amenity properties (|S| = {amenity.instance_count})", top=8
        )
    )

    # Data still browsable in tabular form.
    table = amenity.select_property_column(LGDO.term("operator"))
    print("\nData table sample:")
    print(table.render(max_rows=5))


if __name__ == "__main__":
    main()
