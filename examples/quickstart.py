"""Quickstart: open an eLinda session and take the first few steps.

Builds the synthetic DBpedia mirror, wires up the full eLinda endpoint
stack (local mirror + heavy-query store + decomposer), opens the initial
pane, and drills Thing -> Agent -> Person, printing what the UI shows.

Run:  python examples/quickstart.py
"""

from repro import quick_session
from repro.explorer import Tab, render_chart
from repro.rdf import DBO


def main() -> None:
    session = quick_session()

    stats = session.dataset_statistics
    print("Connected to", session.settings.endpoint_url)
    print(f"dataset: {stats.total_triples:,} triples, {stats.class_count} classes\n")

    # The initial pane: subclass distribution of owl:Thing (Fig. 1).
    pane = session.current_pane
    print(render_chart(pane.subclass_chart(), title="Initial chart (owl:Thing)", top=10))
    print()
    print("Hovering the Agent bar:")
    print(pane.hover(DBO.term("Agent")))
    print()

    # Click down the class hierarchy.
    agent_pane = session.open_subclass_pane(pane, DBO.term("Agent"))
    person_pane = session.open_subclass_pane(agent_pane, DBO.term("Person"))
    print(render_chart(person_pane.subclass_chart(), title="Person subclasses", top=8))
    print()

    # Switch to the Property Data tab: significant properties only.
    person_pane.switch_tab(Tab.PROPERTY_DATA)
    significant = person_pane.significant_properties()
    print(
        render_chart(
            significant,
            title=f"Person properties with >= {person_pane.threshold_widget.threshold:.0%} coverage",
            top=10,
        )
    )
    print()

    # Every bar comes with its SPARQL.
    print("SPARQL behind the birthPlace bar:")
    print(person_pane.sparql_for(DBO.term("birthPlace"), Tab.PROPERTY_DATA))

    print("\nBreadcrumbs:", person_pane.trail.render())


if __name__ == "__main__":
    main()
