"""Saving, monitoring, and replaying an exploration session.

Performs a multi-pane exploration, prints the query-log monitor's
dashboard, saves the session to JSON, and replays it on a fresh endpoint
to show that the reconstruction is exact — handy for sharing demo
walkthroughs or reproducing a reported issue.

Run:  python examples/session_replay.py
"""

from repro.core import equals_filter
from repro.datasets import DBpediaConfig, generate_dbpedia
from repro.endpoint import LocalEndpoint, SimClock
from repro.explorer import (
    ExplorerSession,
    QueryMonitor,
    replay_session,
    save_session,
)
from repro.rdf import DBO, DBR


def main() -> None:
    dataset = generate_dbpedia(DBpediaConfig())
    session = ExplorerSession(LocalEndpoint(dataset.graph, clock=SimClock()))
    monitor = QueryMonitor(session.endpoint, heavy_threshold_ms=5.0)

    # --- explore ------------------------------------------------------
    pane = session.panes[0]
    for cls in ("Agent", "Person", "Philosopher"):
        pane = session.open_subclass_pane(pane, DBO.term(cls))
    table = pane.select_property_column(DBO.term("birthPlace"))
    table.set_filter(DBO.term("birthPlace"), equals_filter(DBR.term("Vienna")))
    session.open_filtered_pane(pane)
    session.open_connections_pane(
        pane, DBO.term("influencedBy"), DBO.term("Scientist")
    )
    print(f"built {len(session.panes)} panes:")
    for p in session.panes:
        print(f"  {p.trail.render()}  (|S| = {p.instance_count})")
    print()

    # --- monitor ------------------------------------------------------
    print(monitor.render())
    print()

    # --- save ---------------------------------------------------------
    saved = save_session(session)
    print(f"saved session: {len(saved)} bytes of JSON, "
          f"{len(session.action_log)} actions")
    print()

    # --- replay on a fresh endpoint ------------------------------------
    fresh = LocalEndpoint(dataset.graph, clock=SimClock())
    replayed = replay_session(fresh, saved)
    print("replayed panes:")
    matches = True
    for original, copy in zip(session.panes, replayed.panes):
        ok = (
            original.pane_type == copy.pane_type
            and original.instance_count == copy.instance_count
        )
        matches = matches and ok
        print(
            f"  {copy.trail.render()}  (|S| = {copy.instance_count})"
            f"  {'==' if ok else '!='} original"
        )
    print(f"\nreconstruction exact: {matches}")


if __name__ == "__main__":
    main()
