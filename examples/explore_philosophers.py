"""The Fig. 2 scenario end-to-end: exploring philosophers.

Walks the class hierarchy Thing -> Agent -> Person -> Philosopher,
inspects outgoing and ingoing property charts against the 20% coverage
threshold, builds a data table with birthPlace / influencedBy columns,
filters to philosophers born in Vienna (the Section 3.3 demo), and
follows the influencedBy connections to "the types of people that
influenced philosophers".

Run:  python examples/explore_philosophers.py
"""

from repro import quick_session
from repro.core import Direction, equals_filter
from repro.explorer import Tab, render_chart
from repro.rdf import DBO, DBR


def main() -> None:
    session = quick_session()

    # --- navigate the class hierarchy (Fig. 2, left to right) --------
    pane = session.current_pane
    for cls in ("Agent", "Person", "Philosopher"):
        pane = session.open_subclass_pane(pane, DBO.term(cls))
    print("breadcrumbs:", pane.trail.render())
    print(f"|S| = {pane.instance_count} philosophers\n")

    # --- Property Data tab: outgoing, then ingoing --------------------
    pane.switch_tab(Tab.PROPERTY_DATA)
    outgoing = pane.significant_properties(Direction.OUTGOING)
    print(render_chart(outgoing, title="Outgoing properties (>= 20% coverage)", top=12))
    print()
    ingoing = pane.significant_properties(Direction.INCOMING)
    print(
        render_chart(
            ingoing,
            title=f"Ingoing properties (>= 20% coverage): {len(ingoing)} shown",
            top=12,
        )
    )
    print()

    # --- data table: birthPlace and influencedBy columns --------------
    table = pane.select_property_column(DBO.term("birthPlace"))
    pane.select_property_column(DBO.term("influencedBy"))
    print("Data table (first rows):")
    print(table.render(max_rows=6))
    print()
    print("The SPARQL the table was generated from:")
    print(table.to_sparql(limit=10))
    print()

    # --- data filter: philosophers born in Vienna ---------------------
    table.set_filter(DBO.term("birthPlace"), equals_filter(DBR.term("Vienna")))
    vienna_born = table.filtered_members()
    print(f"Philosophers born in Vienna: {len(vienna_born)}")
    vienna_pane = session.open_filtered_pane(pane)
    print(
        "Filter expansion opened a pane on S_f with "
        f"|S_f| = {vienna_pane.instance_count} (original pane unchanged: "
        f"{pane.instance_count})\n"
    )

    # --- Connections tab: who influenced philosophers? ----------------
    pane.switch_tab(Tab.CONNECTIONS)
    connections = pane.connections_chart(DBO.term("influencedBy"))
    print(
        render_chart(
            connections, title="Types of people influencing philosophers", top=8
        )
    )
    scientists = session.open_connections_pane(
        pane, DBO.term("influencedBy"), DBO.term("Scientist")
    )
    print(
        f"\nOpened the Scientist bar: {scientists.instance_count} scientists "
        "who influenced philosophers (a narrowed set, not all scientists)."
    )
    print("their trail:", scientists.trail.render())


if __name__ == "__main__":
    main()
