"""The Section 5 error-detection scenario: "people who are indicated to
be born in resources of type food".

Plants bad birthPlace triples in the synthetic dataset, then finds them
the way a demo participant would — through the Connections tab of the
Person pane, where a Food bar sticks out among the birth-place types.

Run:  python examples/error_detection.py
"""

from repro.datasets import DBpediaConfig, generate_dbpedia, inject_birthplace_errors
from repro.endpoint import LocalEndpoint, SimClock
from repro.explorer import ExplorerSession, Tab, render_chart
from repro.rdf import DBO


def main() -> None:
    dataset = generate_dbpedia(DBpediaConfig())
    planted = inject_birthplace_errors(dataset, count=6)
    print(f"(planted {len(planted)} erroneous birthPlace triples)\n")

    session = ExplorerSession(LocalEndpoint(dataset.graph, clock=SimClock()))
    pane = session.panes[0]
    pane = session.open_subclass_pane(pane, DBO.term("Agent"))
    pane = session.open_subclass_pane(pane, DBO.term("Person"))
    pane.switch_tab(Tab.CONNECTIONS)

    chart = pane.connections_chart(DBO.term("birthPlace"))
    print(render_chart(chart, title="Types of birthPlace objects for Person", top=10))

    food_bar = chart.get(DBO.term("Food"))
    if food_bar is None or food_bar.size == 0:
        print("\nNo Food bar — the dataset looks clean.")
        return

    print(f"\nSuspicious: a Food bar with {food_bar.size} resources!")
    suspicious_foods = session.engine.materialise(food_bar)
    print("Foods used as birth places:")
    for food in sorted(suspicious_foods.uris, key=lambda uri: uri.value):
        people = sorted(
            dataset.graph.subjects(DBO.term("birthPlace"), food),
            key=lambda uri: uri.value,
        )
        names = ", ".join(person.local_name for person in people)
        print(f"  {food.local_name:<12} <- born here: {names}")

    print("\nSPARQL to extract the suspicious resources:")
    print(session.engine.sparql_for(food_bar))


if __name__ == "__main__":
    main()
