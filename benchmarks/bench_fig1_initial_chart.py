"""E1 / Fig. 1 — the initial chart over (synthetic) DBpedia.

Regenerates the initial exploration pane: the subclass distribution of
owl:Thing, sorted by support, with the corner statistics and the Agent
hover box that Fig. 1 displays.
"""

from repro.explorer import render_chart
from repro.rdf import DBO


def test_fig1_initial_chart(benchmark, engine, statistics, report):
    chart = benchmark(engine.initial_chart)

    # --- regenerate the figure -------------------------------------
    rows = [("class", "instances")]
    rows += [(bar.label.local_name, bar.size) for bar in chart.top(15)]
    agent = statistics.class_statistics(DBO.term("Agent"))
    rows.append(("hover(Agent)", agent.summary()))
    report("fig1_initial_chart", "Fig. 1 - initial chart over DBpedia", rows)
    print(render_chart(chart, title="owl:Thing subclass distribution", top=10))

    # --- shape assertions (paper claims) ----------------------------
    assert len(chart) == 49
    sizes = [bar.size for bar in chart]
    assert sizes == sorted(sizes, reverse=True)
    assert chart.sorted_bars()[1].label == DBO.term("Agent")
    assert agent.direct_subclasses == 5
    assert agent.total_subclasses == 277


def test_fig1_pane_statistics(benchmark, engine, statistics):
    """The corner statistics of the initial pane (|S| + subclass counts)."""

    def corner():
        root = engine.root_bar()
        return (
            root.size,
            len(statistics.direct_subclasses(root.label)),
            len(statistics.all_subclasses(root.label)),
        )

    count, direct, total = benchmark(corner)
    assert direct == 49
    assert total >= 330
    assert count > 0
