"""E2 / Fig. 2 — the three-pane exploration path over DBpedia:
the Person class, the Philosopher class, and persons influencing
philosophers (via the influencedBy connections chart), with the
breadcrumb trails."""

from repro.core import Direction
from repro.endpoint import LocalEndpoint, SimClock
from repro.explorer import ExplorerSession
from repro.rdf import DBO


def _run_path(graph):
    session = ExplorerSession(LocalEndpoint(graph, clock=SimClock()))
    p0 = session.panes[0]
    agent = session.open_subclass_pane(p0, DBO.term("Agent"))
    person = session.open_subclass_pane(agent, DBO.term("Person"))
    philosopher = session.open_subclass_pane(person, DBO.term("Philosopher"))
    connections = philosopher.connections_chart(DBO.term("influencedBy"))
    return session, person, philosopher, connections


def test_fig2_exploration_path(benchmark, dbpedia_graph, report):
    session, person, philosopher, connections = benchmark(
        _run_path, dbpedia_graph
    )

    # --- regenerate the figure -------------------------------------
    rows = [("pane", "breadcrumb trail", "|S|")]
    for pane in session.panes:
        rows.append(
            (pane.pane_type.local_name, pane.trail.render(), pane.instance_count)
        )
    rows.append(("", "", ""))
    rows.append(("influencedBy object type", "count", ""))
    for bar in connections.top(8):
        rows.append((bar.label.local_name, bar.size, ""))
    report("fig2_exploration_path", "Fig. 2 - exploration path", rows)

    # --- shape assertions --------------------------------------------
    assert philosopher.trail.render() == "Thing -> Agent -> Person -> Philosopher"
    assert philosopher.instance_count < person.instance_count
    types = {bar.label.local_name for bar in connections if bar.size > 0}
    assert {"Philosopher", "Scientist"} <= types


def test_fig2_connections_pane_narrowing(benchmark, dbpedia_graph):
    """Opening a pane from a Connections bar uses the narrowed O_sp set,
    not all instances of the clicked type (Section 3.4)."""

    def open_scientist_pane():
        session, _person, philosopher, connections = _run_path(dbpedia_graph)
        return session.open_connections_pane(
            philosopher, DBO.term("influencedBy"), DBO.term("Scientist")
        )

    pane = benchmark(open_scientist_pane)
    from repro.core import StatisticsService

    total = StatisticsService(pane.engine.endpoint).instance_count(
        DBO.term("Scientist")
    )
    assert 0 < pane.instance_count < total
