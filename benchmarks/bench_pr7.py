"""PR 7 benchmark: multi-process parallel serving over one shared snapshot.

PR 7 added ``repro.serve.pool.PoolFrontend`` — N forked workers, each
memory-mapping the *same* PR 6 snapshot (CRC verified once in the
parent, ``verify=False`` in the children, so the kernel shares one set
of physical pages) — plus ``repro.serve.loadgen``, an open-loop Poisson
arrival process with a Zipf-weighted mix of the four E9 demonstration
scenarios.

This benchmark measures exactly the claims the pool makes:

* **throughput scaling** — the same open-loop workload (seeded, so the
  arrival schedule is identical across cells) runs at every point of
  ``workers x sessions``; each cell reports completed-session billed
  and wall latency percentiles (p50/p95/p99) and aggregate throughput
  in quanta per simulated second (total pages served divided by the
  simulated makespan — the parent clock advances each scheduler round
  by the busiest worker's service time, so adding workers shortens the
  makespan).  The acceptance bar is >= 2.5x aggregate quanta/sec at 4
  workers vs 1 worker at 500 sessions.
* **byte-identical results** — a verification phase runs fixed
  sessions through a 2-worker pool with a worker crashed mid-fleet
  (forcing respawn, in-flight requeue, and cross-worker continuation
  token transfer) and compares every rendered row *in order* against
  single-process one-shot evaluation over the same snapshot.
* **token regime** — the max continuation-token size for the paged
  chart query, to contrast with the pre-streaming-aggregation regime
  PR 6 recorded (6,586,536 bytes at its largest size; suspended sorts
  now serialise only the un-emitted suffix of O(groups) accumulators).

Wall-clock here is *simulated* (``SimClock``): on a single-core
machine the workers time-slice one CPU, but the clock bills each
worker's quanta concurrently — the same accounting a real multi-core
deployment sees, and deterministic across runs.

Writes ``benchmarks/results/BENCH_PR7.json``.  Run via::

    PYTHONPATH=src python benchmarks/bench_pr7.py [--quick]

``--quick`` shrinks the grid to a smoke-sized run (50 sessions); the
default runs the full grid and takes tens of minutes of real time.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent / ".." / "src"))

from repro.datasets.dbpedia import (  # noqa: E402
    DBpediaConfig,
    OWL_THING,
    generate_dbpedia,
)
from repro.endpoint import LocalEndpoint, SimClock  # noqa: E402
from repro.rdf.snapshot import open_snapshot, write_snapshot  # noqa: E402
from repro.serve import (  # noqa: E402
    BackoffPolicy,
    LoadGenerator,
    PoolFrontend,
    ServeConfig,
    demo_scenarios,
)
from repro.core import Direction, MemberPattern  # noqa: E402
from repro.core.queries import property_chart_query  # noqa: E402

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_PR7.json"

#: Keeps the synthetic graph near its structural floor (~10k triples)
#: so the full 4,800-session grid finishes in tens of minutes while
#: every session still pages through real multi-quantum plans.
DATASET_SCALE = 0.00002
ARRIVAL_RATE_PER_S = 200.0
WORKER_GRID = [1, 2, 4]
SESSION_GRID = [100, 500, 1000]
SPEEDUP_SESSIONS = 500
SPEEDUP_WORKERS = 4
SPEEDUP_BAR = 2.5


def percentile(values, q):
    ordered = sorted(values)
    if not ordered:
        return None
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return round(ordered[index], 3)


def serve_config(sessions: int) -> ServeConfig:
    return ServeConfig(
        max_active=32,
        queue_capacity=sessions,
        page_size=50,
        backoff=BackoffPolicy(max_retries=5),
        seed=7,
    )


def run_cell(snapshot_path: str, workers: int, sessions: int) -> dict:
    """One grid point: identical seeded arrivals, ``workers`` processes."""
    started = time.perf_counter()
    clock = SimClock()
    frontend = PoolFrontend(
        snapshot_path,
        workers=workers,
        clock=clock,
        config=serve_config(sessions),
        verify=False,
    )
    try:
        generator = LoadGenerator(
            demo_scenarios(OWL_THING),
            rate_per_s=ARRIVAL_RATE_PER_S,
            seed=17,
        )
        generator.schedule(frontend, sessions)
        reports = frontend.run()
    finally:
        frontend.close()
    completed = [r for r in reports.values() if r.outcome == "completed"]
    quanta = sum(r.pages for r in reports.values())
    makespan_s = clock.now_ms / 1000.0
    billed = [r.billed_ms for r in completed]
    wall = [r.wall_ms for r in completed]
    return {
        "workers": workers,
        "sessions": sessions,
        "completed": len(completed),
        "failed": sum(1 for r in reports.values() if r.outcome == "failed"),
        "rejected": sum(
            1 for r in reports.values() if r.outcome == "rejected"
        ),
        "quanta": quanta,
        "simulated_makespan_s": round(makespan_s, 3),
        "quanta_per_sec": round(quanta / makespan_s, 2),
        "billed_ms": {
            "p50": percentile(billed, 0.50),
            "p95": percentile(billed, 0.95),
            "p99": percentile(billed, 0.99),
        },
        "wall_ms": {
            "p50": percentile(wall, 0.50),
            "p95": percentile(wall, 0.95),
            "p99": percentile(wall, 0.99),
        },
        "real_seconds": round(time.perf_counter() - started, 1),
    }


def rendered(rows):
    return [
        tuple(sorted((name, term.n3()) for name, term in row.items()))
        for row in rows
    ]


def verify_byte_identical(snapshot_path: str) -> dict:
    """Pool rows (with a crash mid-fleet) == single-process one-shot."""
    scenarios = demo_scenarios(OWL_THING)
    frontend = PoolFrontend(
        snapshot_path,
        workers=2,
        clock=SimClock(),
        config=serve_config(16),
        verify=False,
    )
    try:
        keys = []
        for index, scenario in enumerate(scenarios * 3):
            key = f"verify-{index}-{scenario.name}"
            frontend.submit(key, scenario.queries)
            keys.append((key, scenario.queries))
        # Kill worker 0 before any quantum runs: its sessions respawn,
        # requeue, and resume on the peer — the rows must not change.
        frontend.crash_worker(0)
        reports = frontend.run()
        restarts = frontend._workers[0].epoch
    finally:
        frontend.close()

    graph = open_snapshot(snapshot_path, verify=False)
    try:
        reference = LocalEndpoint(graph)
        checked = 0
        for key, queries in keys:
            report = reports[key]
            assert report.outcome == "completed", (key, report.error)
            for query, rows in zip(queries, report.rows):
                expected = reference.query(query).result.rows
                assert rendered(rows) == rendered(expected), (
                    f"row mismatch for {key}"
                )
                checked += 1
    finally:
        graph.close()
    return {
        "sessions": len(keys),
        "queries_checked": checked,
        "worker_restarts": restarts,
        "byte_identical": True,
    }


def chart_token_regime(snapshot_path: str) -> dict:
    """Max continuation-token bytes while paging the chart query."""
    pattern = MemberPattern.of_type(OWL_THING)
    query = property_chart_query(pattern, Direction.OUTGOING)
    graph = open_snapshot(snapshot_path, verify=False)
    try:
        response = LocalEndpoint(graph).query(query, page_size=50)
        max_bytes, pages = 0, 1
        while not response.complete:
            max_bytes = max(max_bytes, len(response.continuation))
            response = LocalEndpoint(graph).query(
                continuation=response.continuation, page_size=50
            )
            pages += 1
    finally:
        graph.close()
    return {
        "query": "property_chart_outgoing",
        "pages": pages,
        "max_token_bytes": max_bytes,
        "pr6_max_token_bytes": 6586536,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smoke-sized grid"
    )
    args = parser.parse_args()

    session_grid = [50] if args.quick else SESSION_GRID
    cores = os.cpu_count() or 1
    worker_grid = sorted(set(WORKER_GRID) | {cores})

    dataset = generate_dbpedia(DBpediaConfig(scale=DATASET_SCALE))
    with tempfile.TemporaryDirectory() as tmp:
        snapshot_path = str(pathlib.Path(tmp) / "bench.snap")
        write_snapshot(dataset.graph, snapshot_path)
        # CRC once here; every frontend below opens with verify=False,
        # exactly as the pool parent does for its children.
        open_snapshot(snapshot_path, verify=True).close()
        print(
            f"dataset: {len(dataset.graph):,} triples at scale "
            f"{DATASET_SCALE}, snapshot {os.path.getsize(snapshot_path):,}"
            f" bytes, {cores} core(s)",
            flush=True,
        )

        cells = []
        for sessions in session_grid:
            for workers in worker_grid:
                cell = run_cell(snapshot_path, workers, sessions)
                cells.append(cell)
                print(
                    f"workers={workers} sessions={sessions}: "
                    f"{cell['quanta_per_sec']:.1f} quanta/s over "
                    f"{cell['simulated_makespan_s']}s simulated "
                    f"({cell['completed']} completed, "
                    f"{cell['real_seconds']}s real)",
                    flush=True,
                )

        verification = verify_byte_identical(snapshot_path)
        print(
            f"verification: {verification['queries_checked']} query "
            f"results byte-identical across crash/respawn",
            flush=True,
        )
        token = chart_token_regime(snapshot_path)
        print(
            f"chart token: {token['max_token_bytes']:,} bytes max over "
            f"{token['pages']} pages (PR 6 recorded "
            f"{token['pr6_max_token_bytes']:,})",
            flush=True,
        )

    def cell_for(workers, sessions):
        for cell in cells:
            if cell["workers"] == workers and cell["sessions"] == sessions:
                return cell
        return None

    bar_sessions = session_grid[-1] if args.quick else SPEEDUP_SESSIONS
    base = cell_for(1, bar_sessions)
    peak = cell_for(SPEEDUP_WORKERS, bar_sessions)
    speedup = round(peak["quanta_per_sec"] / base["quanta_per_sec"], 2)

    payload = {
        "benchmark": "bench_pr7",
        "description": (
            "Multi-process pool serving over one shared mmap snapshot: "
            "open-loop Zipf/Poisson load, workers x sessions grid, "
            "simulated-clock latency and aggregate throughput."
        ),
        "machine_cores": cores,
        "dataset": {
            "scale": DATASET_SCALE,
            "triples": len(dataset.graph),
        },
        "arrival_rate_per_s": ARRIVAL_RATE_PER_S,
        "headline": {
            "speedup_4w_vs_1w_at_%d_sessions" % bar_sessions: speedup,
            "quanta_per_sec_1w": base["quanta_per_sec"],
            "quanta_per_sec_4w": peak["quanta_per_sec"],
            "meets_2_5x_bar": speedup >= SPEEDUP_BAR,
            "byte_identical_under_crash": verification["byte_identical"],
            "chart_max_token_bytes": token["max_token_bytes"],
        },
        "cells": cells,
        "verification": verification,
        "token_regime": token,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {RESULTS_PATH}")
    print(json.dumps(payload["headline"], indent=1))
    return 0 if speedup >= SPEEDUP_BAR else 1


if __name__ == "__main__":
    raise SystemExit(main())
