"""PR 2 benchmark: the algebra optimizer + plan cache, measured.

Runs the exploration workloads (the fig. 4 property charts, the
subclass chart, the e7-style data table, and a filter-heavy join) twice
— once on a bare endpoint (``optimize=False, plan_cache=False``) and
once on the default optimizing, plan-caching endpoint — and records
wall time, simulated latency, and intermediate-binding counts, plus a
per-pass ablation of the optimizer pipeline.

Writes ``benchmarks/results/BENCH_PR2.json`` (machine-readable) and
prints a summary table.  Run via ``scripts/bench.sh`` or::

    PYTHONPATH=src python benchmarks/bench_pr2.py
"""

from __future__ import annotations

import json
import pathlib
import statistics as pystats
import time

from repro.core import Direction, MemberPattern
from repro.core.queries import (
    property_chart_query,
    property_values_query,
    subclass_chart_query,
)
from repro.datasets import DBpediaConfig, generate_dbpedia
from repro.datasets.dbpedia import OWL_THING
from repro.endpoint import LocalEndpoint, SimClock
from repro.rdf import DBO, RDFS
from repro.sparql.algebra import translate_query
from repro.sparql.evaluator import Evaluator
from repro.sparql.optimizer import PASS_NAMES, optimize
from repro.sparql.parser import parse_query

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_PR2.json"

#: Repetitions per (workload, endpoint) cell; the plan cache pays off on
#: every run after the first, which is exactly the exploration pattern.
ROUNDS = 7

AGENT = DBO.term("Agent")
LABEL = RDFS.term("label")


def workloads() -> dict:
    thing = MemberPattern.of_type(OWL_THING)
    agent = MemberPattern.of_type(AGENT)
    return {
        "fig4_outgoing_property_chart": property_chart_query(thing),
        "fig4_incoming_property_chart": property_chart_query(
            thing, Direction.INCOMING
        ),
        "e5_subclass_chart": subclass_chart_query(thing, OWL_THING),
        "e7_data_table_topk": property_values_query(
            agent, [LABEL, DBO.term("birthDate")], limit=20
        ),
        "filter_pushdown_join": _filter_workload(),
    }


def _filter_workload() -> str:
    rdf_type = "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"
    return (
        "SELECT ?s ?label WHERE {\n"
        f"  ?s {rdf_type} {AGENT.n3()} .\n"
        f"  ?s {LABEL.n3()} ?label .\n"
        f"  FILTER(?label != \"\" && 1 = 1)\n"
        "}"
    )


def _measure(endpoint: LocalEndpoint, query: str, rounds: int = ROUNDS) -> dict:
    wall_ms = []
    simulated_ms = []
    bindings = []
    rows = 0
    for _ in range(rounds):
        start = time.perf_counter()
        response = endpoint.query(query)
        wall_ms.append((time.perf_counter() - start) * 1000.0)
        simulated_ms.append(response.elapsed_ms)
        bindings.append(response.stats.intermediate_bindings)
        rows = len(response.result.rows)
    warm = wall_ms[1:] if rounds > 1 else wall_ms
    return {
        "rounds": rounds,
        "rows": rows,
        "wall_ms_first": round(wall_ms[0], 3),
        "wall_ms_warm_median": round(pystats.median(warm), 3),
        "wall_ms_warm_mean": round(pystats.mean(warm), 3),
        "simulated_ms": round(simulated_ms[0], 3),
        "intermediate_bindings": bindings[0],
    }


def run_comparison(graph) -> dict:
    queries = workloads()
    results = {}
    for name, query in queries.items():
        baseline = LocalEndpoint(
            graph, clock=SimClock(), optimize=False, plan_cache=False
        )
        optimized = LocalEndpoint(graph, clock=SimClock())
        # One unmeasured round each so first-run costs (statistics
        # build, interpreter warmup) don't land on whichever endpoint
        # happens to run first.
        baseline.query(query)
        optimized.query(query)
        before = _measure(baseline, query)
        after = _measure(optimized, query)
        speedup_wall = (
            before["wall_ms_warm_median"] / after["wall_ms_warm_median"]
            if after["wall_ms_warm_median"]
            else float("inf")
        )
        results[name] = {
            "baseline": before,
            "optimized": after,
            "rows_match": before["rows"] == after["rows"],
            "warm_wall_speedup": round(speedup_wall, 2),
            "bindings_ratio": round(
                after["intermediate_bindings"]
                / max(before["intermediate_bindings"], 1),
                3,
            ),
        }
    return results


def run_plancache_microbench(graph, rounds: int = 200) -> dict:
    """Front-half cost per request: re-planning vs a warm plan cache."""
    from repro.perf.plancache import PlanCache, build_plan

    query = workloads()["fig4_outgoing_property_chart"]
    cache = PlanCache()
    cache.get(query, graph=graph)  # warm
    start = time.perf_counter()
    for _ in range(rounds):
        build_plan(query, graph=graph)
    uncached_us = (time.perf_counter() - start) * 1e6 / rounds
    start = time.perf_counter()
    for _ in range(rounds):
        cache.get(query, graph=graph)
    cached_us = (time.perf_counter() - start) * 1e6 / rounds
    return {
        "rounds": rounds,
        "replan_us_per_request": round(uncached_us, 2),
        "cached_us_per_request": round(cached_us, 2),
        "speedup": round(uncached_us / cached_us, 1) if cached_us else None,
    }


def run_ablation(graph) -> dict:
    """Intermediate bindings per optimizer pass subset, per workload."""
    queries = {
        "filter_pushdown_join": _filter_workload(),
        "e7_data_table_topk": property_values_query(
            MemberPattern.of_type(AGENT), [LABEL], limit=20
        ),
    }
    ablation = {}
    for name, text in queries.items():
        query = parse_query(text)
        raw = translate_query(query)
        cells = {}
        subsets = [("none", [])] + [
            (pass_name, [pass_name]) for pass_name in PASS_NAMES
        ] + [("all", list(PASS_NAMES))]
        for label, passes in subsets:
            plan = raw if not passes else optimize(raw, graph=graph, passes=passes)[0]
            evaluator = Evaluator(graph)
            result = evaluator.run_translated(query, plan)
            cells[label] = {
                "intermediate_bindings": evaluator.stats.intermediate_bindings,
                "pattern_scans": evaluator.stats.pattern_scans,
                "rows": len(result.rows),
            }
        ablation[name] = cells
    return ablation


def main() -> None:
    config = DBpediaConfig()
    graph = generate_dbpedia(config).graph
    print(f"graph: {len(graph)} triples")
    comparison = run_comparison(graph)
    ablation = run_ablation(graph)
    plancache = run_plancache_microbench(graph)
    payload = {
        "benchmark": "BENCH_PR2",
        "description": (
            "Algebra optimizer + plan cache vs the bare engine on "
            "exploration workloads (synthetic DBpedia)"
        ),
        "graph_triples": len(graph),
        "rounds_per_cell": ROUNDS,
        "workloads": comparison,
        "pass_ablation": ablation,
        "plan_cache": plancache,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    print()
    header = (
        f"{'workload':<30} {'base wall':>10} {'opt wall':>10} "
        f"{'speedup':>8} {'bindings':>9} {'match':>6}"
    )
    print(header)
    print("-" * len(header))
    for name, cell in comparison.items():
        print(
            f"{name:<30} "
            f"{cell['baseline']['wall_ms_warm_median']:>9.2f}m "
            f"{cell['optimized']['wall_ms_warm_median']:>9.2f}m "
            f"{cell['warm_wall_speedup']:>7.2f}x "
            f"{cell['bindings_ratio']:>8.3f} "
            f"{'ok' if cell['rows_match'] else 'DIFF':>6}"
        )
    print()
    print(
        "plan cache front half: "
        f"{plancache['replan_us_per_request']:.0f}us replan vs "
        f"{plancache['cached_us_per_request']:.0f}us cached "
        f"({plancache['speedup']}x)"
    )
    mismatches = [n for n, c in comparison.items() if not c["rows_match"]]
    if mismatches:
        raise SystemExit(f"row-count mismatch in: {', '.join(mismatches)}")


if __name__ == "__main__":
    main()
