"""PR 9 benchmark: materialized chart views vs the HVS/decomposer
ladder on the fig4 workloads under a mixed read/write trace.

The fig4 property-chart queries (level-zero property expansion on
``owl:Thing``, outgoing and incoming) are issued repeatedly against a
graph that is **edited between rounds** — each round bulk-loads a new
typed probe entity with one outgoing edge and removes the previous
round's edge, so every round invalidates the HVS (dataset version
moves) and staleness-gates any build-once index.

Three router configurations run the identical trace on identical graph
copies:

* ``ladder_stale`` — the pre-PR 9 ladder (HVS → decomposer over a
  build-once ``SpecializedIndexes``).  After the first mutation the
  indexes are permanently stale and the HVS never hits, so every chart
  query falls through to the simulated Virtuoso backend at full fig4
  cost.
* ``ladder_rebuild`` — the same ladder, but the specialized indexes
  are rebuilt from scratch at the start of every round (rebuild wall
  time billed to the round).  The decomposer then answers at its fig4
  cost (~1.5 s simulated).
* ``views`` — the PR 9 ladder: one delta-maintained
  ``MaterializedViews`` instance answers from its count tables in
  O(bars); mutations cost a per-triple delta instead of a rebuild.

Rows are asserted canonically identical across all three
configurations every round, so the speedup is purely the maintenance
strategy.  Writes ``benchmarks/results/BENCH_PR9.json``.  Run via::

    PYTHONPATH=src python benchmarks/bench_pr9.py
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.core import Direction, MemberPattern, property_chart_query
from repro.datasets import DBpediaConfig, generate_dbpedia
from repro.datasets.dbpedia import OWL_THING, recommended_scale
from repro.endpoint import (
    REMOTE_VIRTUOSO_PROFILE,
    RemoteEndpoint,
    SimClock,
    SimulatedVirtuosoServer,
)
from repro.perf import (
    Decomposer,
    ElindaEndpoint,
    HeavyQueryStore,
    MaterializedViews,
    SpecializedIndexes,
)
from repro.rdf import Graph, RDF, URI

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_PR9.json"

#: Mutate-then-query rounds (round 0 queries the unedited graph).
ROUNDS = 5

QUERIES = {
    "outgoing": property_chart_query(MemberPattern.of_type(OWL_THING)),
    "incoming": property_chart_query(
        MemberPattern.of_type(OWL_THING), Direction.INCOMING
    ),
}

_RDF_TYPE = RDF.term("type")
_PROBE_PROP = URI("http://example.org/bench/touches")


def _probe(round_index: int) -> URI:
    return URI(f"http://example.org/bench/probe{round_index}")


def _mutate(graph: Graph, round_index: int) -> int:
    """One round of the shared write trace; returns triples changed."""
    probe = _probe(round_index)
    changed = graph.bulk_load(
        [
            (probe, _RDF_TYPE, OWL_THING),
            (probe, _PROBE_PROP, _probe(round_index - 1)),
        ]
    )
    if round_index > 1:
        changed += int(
            graph.remove(
                _probe(round_index - 1), _PROBE_PROP, _probe(round_index - 2)
            )
        )
    return changed


class _VersionedRemote(RemoteEndpoint):
    """Remote client co-located with an editable store.

    Stock ``RemoteEndpoint`` pins ``dataset_version`` to 0 (a public
    endpoint exposes no version, and eLinda assumes it static) — under
    this trace that would let the HVS serve answers from before a
    mutation.  The write workload here is local editing, so the client
    reads the true graph version and the HVS invalidates each round,
    as it would over a ``LocalEndpoint``.
    """

    def __init__(self, server):
        super().__init__(server)
        self._graph = server.graph

    @property
    def dataset_version(self) -> int:
        return self._graph.version


def canon(result):
    return sorted(
        tuple(sorted((name, term.n3()) for name, term in row.items()))
        for row in result.rows
    )


class _Config:
    """One router configuration over its own graph copy and clock."""

    def __init__(self, name, base_graph, profile, with_views, rebuild):
        self.name = name
        self.rebuild = rebuild
        self.graph = Graph(list(base_graph.triples()))
        self.clock = SimClock()
        server = SimulatedVirtuosoServer(
            self.graph, clock=self.clock, cost_model=profile
        )
        backend = _VersionedRemote(server)
        self.views = (
            MaterializedViews(self.graph, clock=self.clock) if with_views else None
        )
        indexes = (
            self.views
            if self.views is not None
            else SpecializedIndexes(self.graph)
        )
        self.endpoint = ElindaEndpoint(
            backend,
            hvs=HeavyQueryStore(clock=self.clock),
            views=self.views,
            decomposer=Decomposer(indexes, clock=self.clock),
            use_views=with_views,
        )
        self.rounds = []

    def run_round(self, round_index):
        maintain_wall = 0.0
        if round_index > 0:
            started = time.perf_counter()
            _mutate(self.graph, round_index)
            if self.rebuild:
                self.endpoint.decomposer.indexes = SpecializedIndexes(self.graph)
            maintain_wall = (time.perf_counter() - started) * 1000.0
        record = {"round": round_index, "maintain_wall_ms": round(maintain_wall, 3)}
        answers = {}
        for direction, query in QUERIES.items():
            sim_before = self.clock.now_ms
            started = time.perf_counter()
            response = self.endpoint.query(query)
            record[direction] = {
                "source": response.source,
                "simulated_ms": round(self.clock.now_ms - sim_before, 3),
                "wall_ms": round((time.perf_counter() - started) * 1000.0, 3),
                "rows": len(response.result.rows),
            }
            answers[direction] = canon(response.result)
        self.rounds.append(record)
        return answers


def _mean_sim(config, directions=("outgoing", "incoming"), skip_first=True):
    cells = [
        record[direction]["simulated_ms"]
        for record in config.rounds
        for direction in directions
        if not (skip_first and record["round"] == 0)
    ]
    return sum(cells) / len(cells)


def main():
    config = DBpediaConfig()
    dataset = generate_dbpedia(config)
    profile = REMOTE_VIRTUOSO_PROFILE.scaled(recommended_scale(config))
    print(f"dataset: {len(dataset.graph)} triples; trace: {ROUNDS} rounds")

    configs = [
        _Config("ladder_stale", dataset.graph, profile, False, False),
        _Config("ladder_rebuild", dataset.graph, profile, False, True),
        _Config("views", dataset.graph, profile, True, False),
    ]

    for round_index in range(ROUNDS):
        per_config = [cfg.run_round(round_index) for cfg in configs]
        reference = per_config[0]
        for cfg, answers in zip(configs[1:], per_config[1:]):
            for direction in QUERIES:
                if answers[direction] != reference[direction]:
                    raise SystemExit(
                        f"round {round_index}: {cfg.name} {direction} chart "
                        "differs from the backend reference"
                    )

    views_cfg = next(cfg for cfg in configs if cfg.name == "views")
    # Sources after the first mutation: the claim each config's mean cost
    # rests on must actually hold round by round.
    for cfg, expected in (
        (configs[0], "virtuoso"),
        (configs[1], "decomposer"),
        (views_cfg, "views"),
    ):
        for record in cfg.rounds[1:]:
            for direction in QUERIES:
                source = record[direction]["source"]
                if source != expected:
                    raise SystemExit(
                        f"{cfg.name} round {record['round']} {direction}: "
                        f"served from {source!r}, expected {expected!r}"
                    )

    summary = {}
    for cfg in configs:
        summary[cfg.name] = {
            "mean_simulated_ms_per_query": round(_mean_sim(cfg), 3),
            "mean_maintain_wall_ms_per_round": round(
                sum(r["maintain_wall_ms"] for r in cfg.rounds[1:])
                / max(len(cfg.rounds) - 1, 1),
                3,
            ),
            "rounds": cfg.rounds,
        }
    stale_speedup = _mean_sim(configs[0]) / _mean_sim(views_cfg)
    rebuild_speedup = _mean_sim(configs[1]) / _mean_sim(views_cfg)
    payload = {
        "dataset_triples": len(dataset.graph),
        "rounds": ROUNDS,
        "workload": "fig4 property expansions on owl:Thing, mutate-then-query",
        "configs": summary,
        "views_vs_stale_ladder_speedup": round(stale_speedup, 2),
        "views_vs_rebuild_ladder_speedup": round(rebuild_speedup, 2),
        "rows_match": True,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    print()
    header = (
        f"{'config':<16} {'sim ms/query':>13} {'maintain ms/round':>18}"
    )
    print(header)
    print("-" * len(header))
    for cfg in configs:
        print(
            f"{cfg.name:<16} {summary[cfg.name]['mean_simulated_ms_per_query']:>13.1f}"
            f" {summary[cfg.name]['mean_maintain_wall_ms_per_round']:>18.2f}"
        )
    print()
    print(
        f"views speedup: {stale_speedup:.1f}x vs stale ladder, "
        f"{rebuild_speedup:.1f}x vs rebuild ladder"
    )
    if stale_speedup < 10.0 or rebuild_speedup < 2.0:
        raise SystemExit(
            "materialized views must beat the stale ladder at least 10x "
            "and the rebuild ladder at least 2x in simulated time"
        )


if __name__ == "__main__":
    main()
