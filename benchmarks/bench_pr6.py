"""PR 6 benchmark: mmap snapshot boot and serving vs the in-memory store.

PR 6 added a persistent snapshot format (``repro.rdf.snapshot``,
spec in ``docs/SNAPSHOT_FORMAT.md``): the dictionary heap and the three
triple orderings are written once as packed little-endian ``u64``
arrays, and a ``SnapshotGraph`` answers ``triples_ids`` by binary
search over the memory-mapped file — no parse, no index build, no
per-triple allocation at boot.

This benchmark measures exactly the two claims the snapshot store
makes:

* **boot** — wall-clock to a query-ready graph.  Three paths are
  timed from the same dataset: re-parsing the N-Triples text
  (``load_ntriples``, the only boot path before PR 6), building the
  snapshot (``write_snapshot``, paid once), and opening it
  (``open_snapshot``, paid every boot).  The headline number is
  ``text_reload / snapshot_open`` at the largest size; the acceptance
  bar is >= 10x.
* **serving** — the engine's paged configuration (``run_quantum``
  pages with a continuation-token round-trip per boundary) runs the
  same compiled plans against the in-memory store and the snapshot.
  Rows must match *in order* — both stores iterate canonical sorted-ID
  order, so continuation tokens transfer — and the snapshot's paged
  latency must stay within 1.2x of in-memory.

Memory is reported as the in-memory store's deep ``sys.getsizeof``
walk vs the snapshot's file size plus the process-RSS delta around
open and first full use (the mapped pages actually faulted in).

Writes ``benchmarks/results/BENCH_PR6.json``.  Run via::

    PYTHONPATH=src python benchmarks/bench_pr6.py [--quick] [--full]

``--quick`` stops at 100k triples; ``--full`` adds a 10M-triple run.
"""

from __future__ import annotations

import gc
import json
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from bench_pr5 import (  # noqa: E402
    build_triples,
    paged_workloads,
    store_bytes,
    time_paged,
    workloads,
)

from repro.rdf import (  # noqa: E402
    Graph,
    dump_ntriples,
    load_ntriples,
    open_snapshot,
    write_snapshot,
)
from repro.rdf.snapshot import _process_rss_bytes  # noqa: E402
from repro.sparql.algebra import translate_query  # noqa: E402
from repro.sparql.optimizer import optimize  # noqa: E402
from repro.sparql.parser import parse_query  # noqa: E402
from repro.sparql.planner import PhysicalPlanFactory  # noqa: E402

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_PR6.json"

#: Graph sizes (approximate triple counts before deduplication).
SIZES = (100_000, 1_000_000)
FULL_SIZES = SIZES + (10_000_000,)
#: Timed repetitions per (size, store, query); the minimum is reported.
#: Paged runs are *interleaved* (mem, snap, mem, snap, ...) and the
#: ratio is the median of per-pair ratios: machine speed on a shared
#: box drifts on a scale of minutes, so only adjacent runs compare
#: fairly — a ratio of bests taken minutes apart measures the machine,
#: not the stores.
PAGED_REPEATS = {100_000: 3, 1_000_000: 3, 10_000_000: 1}
BOOT_REPEATS = {100_000: 2, 1_000_000: 1, 10_000_000: 1}


def _time(fn, repeats: int):
    """Best-of-``repeats`` wall-clock seconds plus the last result."""
    best, result = float("inf"), None
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def _median(values) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _rows_equal(a, b) -> bool:
    """Exact row-and-order equality (the token-transfer guarantee)."""
    if len(a) != len(b):
        return False
    for left, right in zip(a, b):
        if left != right:
            return False
    return True


def bench_size(size: int, workdir: pathlib.Path) -> dict:
    triples = build_triples(size)
    graph = Graph()
    graph.bulk_load(triples)
    del triples
    gc.collect()

    nt_path = workdir / f"bench_pr6_{size}.nt"
    snap_path = workdir / f"bench_pr6_{size}.snap"
    dump_ntriples(graph, str(nt_path))
    boot_repeats = BOOT_REPEATS[size]

    # --- boot paths -------------------------------------------------
    text_reload_s, reloaded = _time(
        lambda: load_ntriples(str(nt_path)), boot_repeats
    )
    assert len(reloaded) == len(graph)
    del reloaded
    gc.collect()

    build_s, file_bytes = _time(
        lambda: write_snapshot(graph, str(snap_path)), boot_repeats
    )

    rss_before_open = _process_rss_bytes()
    open_s, snapshot = _time(lambda: open_snapshot(str(snap_path)), 1)
    rss_after_open = _process_rss_bytes()
    if boot_repeats > 1:
        snapshot.close()
        open_s, snapshot = _time(lambda: open_snapshot(str(snap_path)), 1)
    open_noverify_s, _snap2 = _time(
        lambda: open_snapshot(str(snap_path), verify=False), 1
    )
    _snap2.close()
    boot_speedup = text_reload_s / open_s if open_s else float("inf")

    # Sanity: the snapshot answers the same store-level questions.
    assert len(snapshot) == len(graph)
    assert snapshot.count_ids() == graph.count_ids()

    print(
        f"size {size:>10,}: {len(graph):,} distinct triples, "
        f"snapshot {file_bytes / 1e6:.1f} MB\n"
        f"  boot     text reload {text_reload_s * 1e3:>9.1f} ms   "
        f"snapshot build {build_s * 1e3:>9.1f} ms\n"
        f"  boot     snapshot open {open_s * 1e3:>7.1f} ms "
        f"(verify) / {open_noverify_s * 1e3:.1f} ms (no verify)  "
        f"-> {boot_speedup:.0f}x faster than text reload"
    )

    # --- paged serving parity --------------------------------------
    queries = workloads()
    factories = {}
    for name, text in queries.items():
        query = parse_query(text)
        algebra, _ = optimize(translate_query(query), graph=graph)
        factories[name] = PhysicalPlanFactory(query, algebra)

    # The serving claim is steady-state latency, so each store gets one
    # untimed warm-up pass per workload first.  For the snapshot that
    # pass is also where the dictionary lazily materialises the terms
    # the workload touches (in-memory stores hold them from load time);
    # it is timed separately and reported as ``snapshot_cold_ms``.
    repeats = PAGED_REPEATS[size]
    paged = {}
    worst_ratio = 0.0
    for name, page_size in paged_workloads(size).items():
        factory, text = factories[name], queries[name]
        _warm_ms, _, _, _ = time_paged(factory, graph, text, page_size, 1)
        cold_ms, _, _, _ = time_paged(factory, snapshot, text, page_size, 1)
        mem_ms = snap_ms = float("inf")
        mem_rows = snap_rows = None
        pair_ratios = []
        for _ in range(repeats):
            ms, mem_rows, pages, mem_token = time_paged(
                factory, graph, text, page_size, 1
            )
            mem_ms = min(mem_ms, ms)
            snap_run_ms, snap_rows, snap_pages, snap_token = time_paged(
                factory, snapshot, text, page_size, 1
            )
            snap_ms = min(snap_ms, snap_run_ms)
            pair_ratios.append(snap_run_ms / ms if ms else 1.0)
        assert _rows_equal(mem_rows, snap_rows), (
            f"paged row/order mismatch in {name} at size {size}"
        )
        assert snap_pages == pages
        ratio = _median(pair_ratios)
        worst_ratio = max(worst_ratio, ratio)
        paged[name] = {
            "rows": len(mem_rows),
            "pages": pages,
            "page_size": page_size,
            "memory_ms": round(mem_ms, 2),
            "snapshot_ms": round(snap_ms, 2),
            "snapshot_cold_ms": round(cold_ms, 2),
            "snapshot_over_memory": round(ratio, 3),
            "pair_ratios": [round(r, 3) for r in pair_ratios],
            "max_token_bytes": {"memory": mem_token, "snapshot": snap_token},
        }
        print(
            f"  paged    {name:<24} {mem_ms:>9.1f} ms in-memory -> "
            f"{snap_ms:>9.1f} ms snapshot  (median pair ratio "
            f"{ratio:.2f}x, cold {cold_ms:.1f} ms, {pages} pages, "
            f"rows identical in order)"
        )

    # --- memory -----------------------------------------------------
    rss_after_serving = _process_rss_bytes()
    mem_store_bytes = store_bytes(graph)
    resident = snapshot.resident_bytes()
    print(
        f"  memory   in-memory store {mem_store_bytes / 1e6:>8.1f} MB   "
        f"snapshot file {file_bytes / 1e6:.1f} MB, "
        f"RSS delta at open {max(0, rss_after_open - rss_before_open) / 1e6:.1f} MB"
    )

    entry = {
        "target_triples": size,
        "distinct_triples": len(graph),
        "boot": {
            "text_reload_s": round(text_reload_s, 4),
            "snapshot_build_s": round(build_s, 4),
            "snapshot_open_s": round(open_s, 4),
            "snapshot_open_noverify_s": round(open_noverify_s, 4),
            "open_speedup_vs_text_reload": round(boot_speedup, 1),
        },
        "bytes": {
            "in_memory_store": mem_store_bytes,
            "snapshot_file": file_bytes,
            "ntriples_text": nt_path.stat().st_size,
            "rss_delta_at_open": max(0, rss_after_open - rss_before_open),
            "rss_delta_after_serving": max(
                0, rss_after_serving - rss_before_open
            ),
            "process_rss": resident,
        },
        "paged": paged,
        "worst_paged_ratio": round(worst_ratio, 3),
    }
    snapshot.close()
    nt_path.unlink()
    snap_path.unlink()
    del graph
    gc.collect()
    return entry


def main() -> None:
    argv = sys.argv[1:]
    if "--quick" in argv:
        sizes = SIZES[:1]
    elif "--full" in argv:
        sizes = FULL_SIZES
    else:
        sizes = SIZES
    by_size = []
    with tempfile.TemporaryDirectory(prefix="bench_pr6_") as tmp:
        for size in sizes:
            by_size.append(bench_size(size, pathlib.Path(tmp)))

    largest = by_size[-1]
    headline_speedup = largest["boot"]["open_speedup_vs_text_reload"]
    worst_ratio = max(entry["worst_paged_ratio"] for entry in by_size)
    payload = {
        "benchmark": "BENCH_PR6",
        "description": (
            "mmap snapshot store (repro.rdf.snapshot) vs the in-memory "
            "dictionary-encoded store: boot paths (N-Triples text reload "
            "vs snapshot build vs zero-copy snapshot open) and the "
            "engine's paged serving configuration (run_quantum pages "
            "with a continuation-token round-trip per boundary) over "
            "the same compiled plans.  Paged rows are asserted "
            "identical in order, so tokens transfer between stores."
        ),
        "headline": {
            "largest_size": largest["target_triples"],
            "snapshot_open_speedup_vs_text_reload": headline_speedup,
            "worst_paged_snapshot_over_memory": worst_ratio,
            "meets_10x_boot_bar": headline_speedup >= 10.0,
            "meets_1_2x_serving_bar": worst_ratio <= 1.2,
        },
        "sizes": by_size,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print(
        f"\nheadline: snapshot open {headline_speedup:.0f}x faster than "
        f"text reload at {largest['target_triples']:,} triples; worst "
        f"paged snapshot/memory ratio {worst_ratio:.2f}x"
    )
    print(f"wrote {RESULTS_PATH}")


if __name__ == "__main__":
    main()
