"""Ablation — graph hash indexes (SPO/POS/OSP) vs a linear scan.

DESIGN.md Section 5: every bound-position pattern should be answered
without a full scan; this bench quantifies what the indexes buy and what
the decomposer's precomputation buys over running the join each time.
"""

import pytest

from repro.core import Direction, MemberPattern, property_chart_query
from repro.datasets.dbpedia import OWL_THING
from repro.endpoint import LocalEndpoint, SimClock
from repro.perf import Decomposer, SpecializedIndexes
from repro.rdf import RDF, TriplePattern
from repro.rdf.graph import Graph


def _linear_scan(graph, subject=None, predicate=None, object=None):
    pattern = TriplePattern(subject, predicate, object)
    return [triple for triple in graph.triples() if pattern.matches(triple)]


@pytest.fixture(scope="module")
def type_pattern(dbpedia):
    return (None, RDF.term("type"), dbpedia.facts["philosopher"])


def test_indexed_pattern_lookup(benchmark, dbpedia_graph, type_pattern):
    result = benchmark(lambda: list(dbpedia_graph.triples(*type_pattern)))
    assert len(result) == 40


def test_linear_scan_baseline(benchmark, dbpedia_graph, type_pattern):
    result = benchmark.pedantic(
        _linear_scan,
        args=(dbpedia_graph,),
        kwargs=dict(
            predicate=type_pattern[1], object=type_pattern[2]
        ),
        rounds=5,
        iterations=1,
    )
    assert len(result) == 40


def test_indexed_count_constant_time(benchmark, dbpedia_graph, type_pattern):
    count = benchmark(
        lambda: dbpedia_graph.count(None, type_pattern[1], type_pattern[2])
    )
    assert count == 40


def test_decomposer_vs_join_execution(benchmark, dbpedia_graph, report):
    """Index lookup vs executing the nested aggregation, wall-clock."""
    import time

    query = property_chart_query(MemberPattern.of_type(OWL_THING))
    endpoint = LocalEndpoint(dbpedia_graph, clock=SimClock())
    decomposer = Decomposer(SpecializedIndexes(dbpedia_graph), clock=SimClock())

    start = time.perf_counter()
    endpoint.select(query)
    join_seconds = time.perf_counter() - start

    answer = benchmark(decomposer.try_answer, query)
    assert answer is not None

    start = time.perf_counter()
    decomposer.try_answer(query)
    index_seconds = time.perf_counter() - start
    report(
        "ablation_indexes",
        "Ablation - decomposer index vs join execution (wall-clock)",
        [
            ("join execution (s)", f"{join_seconds:.4f}"),
            ("index lookup (s)", f"{index_seconds:.4f}"),
            ("speedup", f"{join_seconds / max(index_seconds, 1e-9):.1f}x"),
        ],
    )
    assert index_seconds < join_seconds


def test_index_build_cost(benchmark, dbpedia_graph):
    """The offline price paid for the decomposer's speed."""
    indexes = benchmark.pedantic(
        SpecializedIndexes, args=(dbpedia_graph,), rounds=3, iterations=1
    )
    assert indexes.instance_count(OWL_THING) > 0
