"""Ablation — subclass closure: one ``rdfs:subClassOf+`` path query vs
iterative direct-subclass drill-down.

The hover box's "277 subclasses in total" figure can be computed either
way; the path query saves round trips at the price of an in-engine BFS.
"""

from repro.core import StatisticsService
from repro.endpoint import LocalEndpoint, SimClock
from repro.rdf import DBO


def test_closure_via_path_query(benchmark, dbpedia_graph):
    service = StatisticsService(LocalEndpoint(dbpedia_graph, clock=SimClock()))
    closure = benchmark(service.all_subclasses, DBO.term("Agent"))
    assert len(closure) == 277


def test_closure_via_iterative_queries(benchmark, dbpedia_graph):
    def iterate():
        # Fresh service per round: the subclass cache would otherwise
        # absorb all the repeated round trips we want to measure.
        service = StatisticsService(
            LocalEndpoint(dbpedia_graph, clock=SimClock())
        )
        return service.all_subclasses_iterative(DBO.term("Agent"))

    closure = benchmark(iterate)
    assert len(closure) == 277


def test_round_trip_counts(benchmark, dbpedia_graph, report):
    def count_round_trips():
        path_endpoint = LocalEndpoint(dbpedia_graph, clock=SimClock())
        StatisticsService(path_endpoint).all_subclasses(DBO.term("Agent"))
        iterative_endpoint = LocalEndpoint(dbpedia_graph, clock=SimClock())
        StatisticsService(iterative_endpoint).all_subclasses_iterative(
            DBO.term("Agent")
        )
        return (
            len(path_endpoint.query_log),
            len(iterative_endpoint.query_log),
            path_endpoint.clock.now_ms,
            iterative_endpoint.clock.now_ms,
        )

    path_queries, iter_queries, path_ms, iter_ms = benchmark.pedantic(
        count_round_trips, rounds=1, iterations=1
    )
    report(
        "ablation_paths",
        "Ablation - subclass closure strategies (Agent, 277 classes)",
        [
            ("strategy", "endpoint queries", "simulated ms"),
            ("rdfs:subClassOf+ path", path_queries, f"{path_ms:.2f}"),
            ("iterative drill-down", iter_queries, f"{iter_ms:.2f}"),
        ],
    )
    assert path_queries == 1
    assert iter_queries > 200  # one query per discovered class
