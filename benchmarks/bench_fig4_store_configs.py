"""E4 / Fig. 4 — running times of level-zero property expansions over
different store configurations.

Paper numbers (simulated-time targets):

    Virtuoso endpoint : 454 s outgoing / 124 s incoming
    eLinda decomposer : 1.5 s / 1.2 s
    eLinda HVS        : ~80 ms

The wall-clock numbers from pytest-benchmark measure our substrate; the
*simulated* milliseconds reproduce the figure, and the assertions pin
the shape (ordering, rough factors, crossover)."""

import pytest

from repro.core import Direction, MemberPattern, property_chart_query
from repro.datasets.dbpedia import OWL_THING, recommended_scale
from repro.endpoint import (
    REMOTE_VIRTUOSO_PROFILE,
    RemoteEndpoint,
    SimClock,
    SimulatedVirtuosoServer,
)
from repro.perf import Decomposer, HeavyQueryStore, SpecializedIndexes

Q = {
    "outgoing": property_chart_query(MemberPattern.of_type(OWL_THING)),
    "incoming": property_chart_query(
        MemberPattern.of_type(OWL_THING), Direction.INCOMING
    ),
}

PAPER_MS = {
    ("virtuoso", "outgoing"): 454_000,
    ("virtuoso", "incoming"): 124_000,
    ("decomposer", "outgoing"): 1_500,
    ("decomposer", "incoming"): 1_200,
    ("hvs", "outgoing"): 80,
    ("hvs", "incoming"): 80,
}


def _compute_cells(dbpedia_graph, dbpedia_config):
    """Simulated latencies for all six (config, direction) cells."""
    clock = SimClock()
    profile = REMOTE_VIRTUOSO_PROFILE.scaled(recommended_scale(dbpedia_config))
    server = SimulatedVirtuosoServer(
        dbpedia_graph, clock=clock, cost_model=profile
    )
    remote = RemoteEndpoint(server)
    decomposer = Decomposer(SpecializedIndexes(dbpedia_graph), clock=clock)
    hvs = HeavyQueryStore(clock=clock)
    cells = {}
    for direction, query in Q.items():
        response = remote.query(query)
        cells[("virtuoso", direction)] = response.elapsed_ms
        cells[("decomposer", direction)] = decomposer.try_answer(query).elapsed_ms
        hvs.record(query, response.result, response.elapsed_ms, 0)
        cells[("hvs", direction)] = hvs.lookup(query, 0).elapsed_ms
    return cells


def test_fig4_regenerate(benchmark, dbpedia_graph, dbpedia_config, report):
    simulated = benchmark.pedantic(
        _compute_cells, args=(dbpedia_graph, dbpedia_config), rounds=1, iterations=1
    )
    rows = [("store configuration", "direction", "paper", "measured (simulated)")]
    for (config, direction), paper_ms in PAPER_MS.items():
        measured = simulated[(config, direction)]
        rows.append(
            (
                config,
                direction,
                f"{paper_ms / 1000:.3g} s",
                f"{measured / 1000:.3g} s",
            )
        )
    report("fig4_store_configs", "Fig. 4 - level-zero property expansions", rows)

    # Shape: who wins, by roughly what factor.
    for direction in ("outgoing", "incoming"):
        virtuoso = simulated[("virtuoso", direction)]
        decomposer = simulated[("decomposer", direction)]
        hvs = simulated[("hvs", direction)]
        assert virtuoso > 20 * decomposer
        assert decomposer > 5 * hvs
        # Within 3x of the paper's absolute simulated targets.
        assert PAPER_MS[("virtuoso", direction)] / 3 < virtuoso
        assert virtuoso < PAPER_MS[("virtuoso", direction)] * 3
    # Outgoing heavier than incoming on the endpoint (paper: 3.66x).
    ratio = simulated[("virtuoso", "outgoing")] / simulated[("virtuoso", "incoming")]
    assert 2.0 < ratio < 8.0


@pytest.mark.parametrize("direction", ["outgoing", "incoming"])
def test_fig4_wall_clock_virtuoso(benchmark, dbpedia_graph, direction):
    """Wall-clock cost of actually executing the heavy join."""
    server = SimulatedVirtuosoServer(dbpedia_graph, clock=SimClock())
    remote = RemoteEndpoint(server)
    result = benchmark.pedantic(
        lambda: remote.query(Q[direction]).result, rounds=3, iterations=1
    )
    assert result.rows


@pytest.mark.parametrize("direction", ["outgoing", "incoming"])
def test_fig4_wall_clock_decomposer(benchmark, dbpedia_graph, direction):
    """Wall-clock cost of the index path (excludes the offline build)."""
    decomposer = Decomposer(SpecializedIndexes(dbpedia_graph), clock=SimClock())
    result = benchmark(lambda: decomposer.try_answer(Q[direction]).result)
    assert result.rows


@pytest.mark.parametrize("direction", ["outgoing", "incoming"])
def test_fig4_wall_clock_hvs(benchmark, dbpedia_graph, direction):
    """Wall-clock cost of a cache hit."""
    server = SimulatedVirtuosoServer(dbpedia_graph, clock=SimClock())
    response = RemoteEndpoint(server).query(Q[direction])
    hvs = HeavyQueryStore(clock=SimClock(), threshold_ms=0.001)
    hvs.record(Q[direction], response.result, response.elapsed_ms, 0)
    result = benchmark(lambda: hvs.lookup(Q[direction], 0).result)
    assert result.rows
