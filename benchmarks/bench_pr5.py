"""PR 5 benchmark: dictionary-encoded store vs seed term-object store.

The paper's heavy query is the property expansion — a nested aggregation
that joins every member of a class with every one of its triples
(Section 4).  PR 5 moved the whole execution stack onto dictionary
encoding: the store's SPO/POS/OSP indexes hold dense integer IDs, the
physical operators hash and compare raw ints, and terms are materialised
back into objects only at the plan root.

This benchmark isolates exactly that representation change.  The *same*
compiled physical plan runs against two stores:

* ``LegacyGraph`` — a faithful replica of the seed's store: hash indexes
  keyed by ``Term`` objects with set leaves, ``Triple`` objects built
  per match, joined/grouped by hashing terms (an identity codec stands
  in for the dictionary, so every operator runs unchanged in term
  space).
* ``repro.rdf.Graph`` — the PR 5 encoded store with its real
  ``TermDictionary`` and late materialisation.

Two execution modes are measured:

* **one-shot** — ``run_to_completion``; per-binding operator overhead
  (dict copies, generator dispatch) is identical for both stores, so
  this isolates the pure hash/compare/allocate difference.
* **paged** — the engine's serving configuration (what
  ``LocalEndpoint`` does for every heavy query since the suspendable
  executor landed): ``run_quantum`` pages with a continuation-token
  round-trip at every boundary.  Suspended operator state — group
  members, DISTINCT seen-sets, join hash tables — serialises as raw
  ints instead of per-term JSON objects, which is where ID space pays
  structurally.  The headline number is the paged property expansion
  on the largest graph.

Row multisets are asserted identical per query and mode, so every
speedup is purely the ID-space effect.  Memory is a deep
``sys.getsizeof`` walk over each store's index structures (terms
themselves counted once on both sides).

Writes ``benchmarks/results/BENCH_PR5.json``.  Run via::

    PYTHONPATH=src python benchmarks/bench_pr5.py [--quick]
"""

from __future__ import annotations

import gc
import json
import pathlib
import random
import sys
import time

from repro.core import Direction, MemberPattern
from repro.core.queries import property_chart_query
from repro.rdf import Graph, Literal, Triple, URI
from repro.rdf.vocab import RDF
from repro.sparql.algebra import translate_query
from repro.sparql.executor import (
    decode_continuation,
    encode_continuation,
    restore_plan,
    run_quantum,
    run_to_completion,
)
from repro.sparql.optimizer import optimize
from repro.sparql.parser import parse_query
from repro.sparql.planner import PhysicalPlanFactory

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_PR5.json"

EX = "http://ex.org/"
_RDF_TYPE = RDF.term("type")
PERSON = URI(EX + "Person")
PLACE = URI(EX + "Place")
WORK = URI(EX + "Work")
KNOWS = URI(EX + "knows")
BIRTH_PLACE = URI(EX + "birthPlace")

#: Graph sizes (approximate triple counts before deduplication).
SIZES = (10_000, 100_000, 1_000_000)
#: Timed repetitions per (size, store, query); the minimum is reported.
ONESHOT_REPEATS = {10_000: 5, 100_000: 3, 1_000_000: 1}
PAGED_REPEATS = {10_000: 3, 100_000: 2, 1_000_000: 1}


# ----------------------------------------------------------------------
# The seed store, replicated
# ----------------------------------------------------------------------


class _IdentityDictionary:
    """Identity codec: lets the physical operators run in term space."""

    @staticmethod
    def encode(term):
        return term

    @staticmethod
    def decode(term):
        return term

    @staticmethod
    def lookup(term):
        return term


class LegacyGraph:
    """The pre-PR 5 store: term-keyed hash indexes with set leaves.

    Exposes just enough surface (``triples_ids``, ``dictionary``,
    ``version``) for the compiled plan to execute against it — the
    operators then carry ``Term`` objects through every join, DISTINCT
    set, group key, and continuation token, exactly as the seed did.
    """

    __slots__ = ("_spo", "_pos", "_osp", "_size", "version", "dictionary")

    def __init__(self):
        self._spo = {}  # subject -> predicate -> set of objects
        self._pos = {}  # predicate -> object -> set of subjects
        self._osp = {}  # object -> subject -> set of predicates
        self._size = 0
        self.version = 0
        self.dictionary = _IdentityDictionary()

    @staticmethod
    def _index_add(index, key1, key2, key3):
        second = index.get(key1)
        if second is None:
            second = {}
            index[key1] = second
        third = second.get(key2)
        if third is None:
            third = set()
            second[key2] = third
        if key3 in third:
            return False
        third.add(key3)
        return True

    def add(self, subject, predicate, object):
        if not self._index_add(self._spo, subject, predicate, object):
            return False
        self._index_add(self._pos, predicate, object, subject)
        self._index_add(self._osp, object, subject, predicate)
        self._size += 1
        self.version += 1
        return True

    def __len__(self):
        return self._size

    def triples_ids(self, s=None, p=None, o=None):
        """The seed's ``triples()``: most-selective index, one
        ``Triple`` object allocated per match."""
        if s is not None:
            by_predicate = self._spo.get(s)
            if by_predicate is None:
                return
            if p is not None:
                objects = by_predicate.get(p)
                if objects is None:
                    return
                if o is not None:
                    if o in objects:
                        yield Triple(s, p, o)
                    return
                for obj in objects:
                    yield Triple(s, p, obj)
                return
            if o is not None:
                predicates = self._osp.get(o, {}).get(s)
                if predicates is None:
                    return
                for pred in predicates:
                    yield Triple(s, pred, o)
                return
            for pred, objects in by_predicate.items():
                for obj in objects:
                    yield Triple(s, pred, obj)
            return
        if p is not None:
            by_object = self._pos.get(p)
            if by_object is None:
                return
            if o is not None:
                subjects = by_object.get(o)
                if subjects is None:
                    return
                for subj in subjects:
                    yield Triple(subj, p, o)
                return
            for obj, subjects in by_object.items():
                for subj in subjects:
                    yield Triple(subj, p, obj)
            return
        if o is not None:
            by_subject = self._osp.get(o)
            if by_subject is None:
                return
            for subj, predicates in by_subject.items():
                for pred in predicates:
                    yield Triple(subj, pred, o)
            return
        for subj, by_predicate in self._spo.items():
            for pred, objects in by_predicate.items():
                for obj in objects:
                    yield Triple(subj, pred, obj)


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------


def build_triples(target: int) -> list:
    """A deterministic entity graph of roughly ``target`` triples.

    Entities carry one ``rdf:type`` plus nine property triples; objects
    mix entity links (``knows``, ``birthPlace`` — the join fan-out) with
    literals, over a small predicate vocabulary so the property
    expansion produces a realistic handful of heavy bars.
    """
    rng = random.Random(42)
    entities = max(10, target // 10)
    persons = [URI(f"{EX}person/{i}") for i in range(int(entities * 0.6))]
    places = [URI(f"{EX}place/{i}") for i in range(int(entities * 0.25))]
    works = [URI(f"{EX}work/{i}") for i in range(
        entities - len(persons) - len(places)
    )]
    name = URI(EX + "name")
    located = URI(EX + "located")
    creator = URI(EX + "creator")
    subject_of = URI(EX + "subjectOf")
    triples = []
    for person in persons:
        triples.append((person, _RDF_TYPE, PERSON))
        triples.append((person, name, Literal(f"name {rng.randrange(1 << 20)}")))
        triples.append((person, BIRTH_PLACE, rng.choice(places)))
        for _ in range(7):
            prop = rng.choice((KNOWS, KNOWS, KNOWS, subject_of))
            if prop is KNOWS:
                triples.append((person, prop, rng.choice(persons)))
            else:
                triples.append((person, prop, rng.choice(works)))
    for place in places:
        triples.append((place, _RDF_TYPE, PLACE))
        triples.append((place, name, Literal(f"place {rng.randrange(1 << 20)}")))
        for _ in range(8):
            triples.append((place, located, rng.choice(places)))
    for work in works:
        triples.append((work, _RDF_TYPE, WORK))
        triples.append((work, name, Literal(f"work {rng.randrange(1 << 20)}")))
        for _ in range(8):
            triples.append((work, creator, rng.choice(persons)))
    return triples


def workloads() -> dict:
    person = MemberPattern.of_type(PERSON)
    return {
        "property_expansion_out": property_chart_query(person),
        "property_expansion_in": property_chart_query(
            person, Direction.INCOMING
        ),
        "join_distinct": (
            "SELECT DISTINCT ?a ?c WHERE { "
            f"?a {_RDF_TYPE.n3()} {PERSON.n3()} . "
            f"?a {KNOWS.n3()} ?b . ?b {BIRTH_PLACE.n3()} ?c }}"
        ),
    }


def paged_workloads(size: int) -> dict:
    """(query name -> page size) for the serving-path measurement.

    The property expansion emits a handful of bars, so it pages with a
    chart-sized page; the streaming DISTINCT join pages so that a run
    crosses a handful of continuation boundaries at every graph size.
    """
    return {
        "property_expansion_out": 2,
        "join_distinct": max(2_000, size // 20),
    }


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------


def deep_size(root) -> int:
    """Recursive ``sys.getsizeof`` with identity dedup (terms and
    interned ints are counted once no matter how many index slots
    reference them)."""
    seen = set()
    stack = [root]
    total = 0
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        total += sys.getsizeof(obj)
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        elif not isinstance(obj, (int, str, bytes, float, type(None))):
            for cls in type(obj).__mro__:
                for slot in getattr(cls, "__slots__", ()):
                    try:
                        stack.append(getattr(obj, slot))
                    except AttributeError:
                        pass
    return total


def store_bytes(graph) -> int:
    parts = [graph._spo, graph._pos, graph._osp]
    dictionary = graph.dictionary
    if not isinstance(dictionary, _IdentityDictionary):
        parts.append(dictionary._ids)
        parts.append(dictionary._terms)
    return deep_size(parts)


def _multiset(rows):
    return sorted(
        tuple(sorted((k, v.n3()) for k, v in row.items())) for row in rows
    )


def time_oneshot(factory, graph, repeats: int):
    """Best-of-``repeats`` wall-clock (warmed up when repeated)."""
    rows = None
    if repeats > 1:
        rows = run_to_completion(factory.instantiate(graph)).rows
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        result = run_to_completion(factory.instantiate(graph))
        best = min(best, time.perf_counter() - start)
        rows = result.rows
    return best * 1000.0, rows


def time_paged(factory, graph, text: str, page_size: int, repeats: int):
    """The serving path: pages with a token round-trip per boundary."""

    def run():
        plan = factory.instantiate(graph)
        rows, pages, token_bytes = [], 0, 0
        while True:
            page = run_quantum(plan, page_size=page_size)
            rows.extend(page.rows)
            pages += 1
            if page.complete:
                return rows, pages, token_bytes
            token = encode_continuation(plan, graph, text)
            token_bytes = max(token_bytes, len(token))
            plan = restore_plan(factory, graph, decode_continuation(token))

    best = float("inf")
    rows = pages = token_bytes = None
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        rows, pages, token_bytes = run()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0, rows, pages, token_bytes


def main() -> None:
    quick = "--quick" in sys.argv[1:]
    sizes = SIZES[:2] if quick else SIZES
    queries = workloads()
    by_size = []
    for size in sizes:
        triples = build_triples(size)
        encoded = Graph()
        encoded.bulk_load(triples)
        legacy = LegacyGraph()
        for s, p, o in triples:
            legacy.add(s, p, o)
        assert len(legacy) == len(encoded)
        mem_encoded = store_bytes(encoded)
        mem_legacy = store_bytes(legacy)
        print(
            f"size {size:>9,}: {len(encoded):,} distinct triples; "
            f"store {mem_legacy / 1e6:.1f} MB term-keyed -> "
            f"{mem_encoded / 1e6:.1f} MB encoded"
        )
        entry = {
            "target_triples": size,
            "distinct_triples": len(encoded),
            "store_bytes": {
                "seed_term_keyed": mem_legacy,
                "encoded": mem_encoded,
                "reduction_factor": round(mem_legacy / mem_encoded, 2),
            },
            "one_shot": {},
            "paged": {},
        }
        factories = {}
        for name, text in queries.items():
            query = parse_query(text)
            algebra, _ = optimize(translate_query(query), graph=encoded)
            factories[name] = PhysicalPlanFactory(query, algebra)

        repeats = ONESHOT_REPEATS[size]
        for name, factory in factories.items():
            legacy_ms, legacy_rows = time_oneshot(factory, legacy, repeats)
            encoded_ms, encoded_rows = time_oneshot(factory, encoded, repeats)
            assert _multiset(encoded_rows) == _multiset(legacy_rows), (
                f"one-shot row mismatch in {name} at size {size}"
            )
            speedup = legacy_ms / encoded_ms if encoded_ms else float("inf")
            entry["one_shot"][name] = {
                "rows": len(encoded_rows),
                "seed_ms": round(legacy_ms, 2),
                "encoded_ms": round(encoded_ms, 2),
                "speedup": round(speedup, 2),
            }
            print(
                f"  one-shot {name:<24} {legacy_ms:>10.1f} ms -> "
                f"{encoded_ms:>9.1f} ms  ({speedup:.2f}x, "
                f"{len(encoded_rows)} rows)"
            )

        repeats = PAGED_REPEATS[size]
        for name, page_size in paged_workloads(size).items():
            factory = factories[name]
            text = queries[name]
            legacy_ms, legacy_rows, pages, legacy_token = time_paged(
                factory, legacy, text, page_size, repeats
            )
            encoded_ms, encoded_rows, _pages, encoded_token = time_paged(
                factory, encoded, text, page_size, repeats
            )
            assert _multiset(encoded_rows) == _multiset(legacy_rows), (
                f"paged row mismatch in {name} at size {size}"
            )
            speedup = legacy_ms / encoded_ms if encoded_ms else float("inf")
            entry["paged"][name] = {
                "rows": len(encoded_rows),
                "pages": pages,
                "page_size": page_size,
                "seed_ms": round(legacy_ms, 2),
                "encoded_ms": round(encoded_ms, 2),
                "speedup": round(speedup, 2),
                "max_token_bytes": {
                    "seed": legacy_token,
                    "encoded": encoded_token,
                },
            }
            print(
                f"  paged    {name:<24} {legacy_ms:>10.1f} ms -> "
                f"{encoded_ms:>9.1f} ms  ({speedup:.2f}x, {pages} pages, "
                f"token {legacy_token / 1e6:.2f} -> "
                f"{encoded_token / 1e6:.2f} MB)"
            )
        by_size.append(entry)
        del legacy, encoded, triples, factories
        gc.collect()

    largest = by_size[-1]
    headline = largest["paged"]["property_expansion_out"]["speedup"]
    payload = {
        "benchmark": "BENCH_PR5",
        "description": (
            "dictionary-encoded store + ID-space execution vs the seed "
            "term-object store, same compiled physical plans "
            "(join-heavy property expansions, synthetic entity graph). "
            "'paged' is the engine's serving configuration: run_quantum "
            "pages with a continuation-token round-trip per boundary, "
            "as LocalEndpoint executes every heavy query."
        ),
        "sizes": by_size,
        "headline": {
            "mode": "paged",
            "query": "property_expansion_out",
            "triples": largest["distinct_triples"],
            "speedup": headline,
            "memory_reduction_factor": largest["store_bytes"][
                "reduction_factor"
            ],
        },
        "rows_match": True,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {RESULTS_PATH}")
    print(
        f"headline: paged property expansion at "
        f"{largest['distinct_triples']:,} triples: {headline:.2f}x, "
        f"store {largest['store_bytes']['reduction_factor']:.2f}x smaller"
    )
    if headline < 2.0:
        raise SystemExit(
            "encoded execution did not reach 2x on the largest graph"
        )


if __name__ == "__main__":
    main()
