"""PR 8 benchmark: preemptable ID-space path operators vs the legacy
term-space path scan.

Eight concurrent sessions each ask for the full class-hierarchy
closure — ``SELECT ?c ?super WHERE { ?c rdfs:subClassOf* ?super }`` —
the hover-box "subclasses in total" walk, with *both* endpoints
unbound.  All sessions share one single-threaded engine under the
round-robin scheduler (2 ms quantum), exactly the serving discipline
of `bench_pr3`; the headline number is the **p95 first-page latency**
across sessions, pooled over repeats.

Two path kernels are compared on identical plans:

* ``legacy_term_space`` — a faithful reconstruction of the pre-PR 8
  operator (kept self-contained below, since the engine no longer
  ships it): property paths evaluate through a *term-space* generator
  whose closure walk materialises every graph node up front for the
  unbound-endpoint case and computes each BFS hop as a full set in
  term space.  The first candidate pull therefore does unbounded work
  inside one ``next()`` call — the quantum is a polite fiction, and
  every concurrent session stalls behind it.
* ``id_space_preemptable`` — the PR 8 operator
  (`repro.sparql.physical.ppath.PathScanOp`): paths lower to
  dictionary-ID hop primitives, closures run as explicit BFS over int
  frontiers where one call expands at most one node or emits one
  pair, and the all-nodes case walks the dictionary ID range a probe
  batch at a time.  Bounded work per call means the scheduler's
  quantum actually holds.

Row multisets are asserted identical between the two kernels, so the
speedup is purely the operator refactor.  Writes
``benchmarks/results/BENCH_PR8.json``.  Run via::

    PYTHONPATH=src python benchmarks/bench_pr8.py
"""

from __future__ import annotations

import json
import pathlib
import time
from collections import deque

import repro.sparql.planner as planner_module
from repro.datasets import DBpediaConfig, generate_dbpedia
from repro.rdf.terms import URI
from repro.sparql.ast import (
    AlternativePath,
    InversePath,
    PathExpr,
    RepeatPath,
    SequencePath,
    Var,
)
from repro.sparql.executor import RoundRobinScheduler
from repro.sparql.physical.base import (
    SCAN_BATCH,
    _EXHAUSTED,
    PhysicalOperator,
    _check_ids,
)
from repro.sparql.planner import build_physical_plan

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_PR8.json"

#: First-page size: one chart/table screenful.
PAGE_ROWS = 25
#: Scheduler time slice (real milliseconds).
QUANTUM_MS = 2.0
#: Full benchmark repetitions (latencies are pooled across repeats).
REPEATS = 5
#: Concurrent hierarchy-walk sessions.
SESSIONS = 8

CLOSURE_QUERY = (
    "SELECT ?c ?super WHERE { ?c "
    "<http://www.w3.org/2000/01/rdf-schema#subClassOf>* ?super }"
)


# ---------------------------------------------------------------------------
# The pre-PR 8 kernel, reconstructed: term-space path generators plus the
# old PatternScanOp path branch (offset-skip suspension).  This is the
# code PR 8 deleted, kept here verbatim-in-spirit as the baseline.
# ---------------------------------------------------------------------------


def _legacy_eval_path(graph, subject, path, object):
    seen = set()
    for pair in _legacy_eval(graph, subject, path, object):
        if pair not in seen:
            seen.add(pair)
            yield pair


def _legacy_eval(graph, subject, path, object):
    if isinstance(path, URI):
        source = subject if subject is not None else None
        for triple in graph.triples(source, path, object):
            yield (triple.subject, triple.object)
        return
    if isinstance(path, InversePath):
        for (a, b) in _legacy_eval(graph, object, path.inner, subject):
            yield (b, a)
        return
    if isinstance(path, SequencePath):
        yield from _legacy_eval_sequence(graph, subject, path.steps, object)
        return
    if isinstance(path, AlternativePath):
        for choice in path.choices:
            yield from _legacy_eval(graph, subject, choice, object)
        return
    if isinstance(path, RepeatPath):
        yield from _legacy_eval_repeat(graph, subject, path, object)
        return
    raise ValueError(f"unsupported path expression: {path!r}")


def _legacy_eval_sequence(graph, subject, steps, object):
    if len(steps) == 1:
        yield from _legacy_eval(graph, subject, steps[0], object)
        return
    head, tail = steps[0], steps[1:]
    if subject is None and object is not None:
        for (mid, end) in _legacy_eval_sequence(graph, None, tail, object):
            for (start, _mid) in _legacy_eval(graph, None, head, mid):
                yield (start, end)
        return
    for (start, mid) in _legacy_eval(graph, subject, head, None):
        for (_mid, end) in _legacy_eval_sequence(graph, mid, tail, object):
            yield (start, end)


def _legacy_path_hop(graph, node, path):
    return {t for (_s, t) in _legacy_eval_path(graph, node, path, None)}


def _legacy_all_graph_nodes(graph):
    nodes = set()
    for triple in graph.triples():
        nodes.add(triple.subject)
        nodes.add(triple.object)
    return nodes


def _legacy_closure_from(graph, start, path, include_zero, max_one):
    if include_zero:
        yield start
    if max_one:
        for target in _legacy_path_hop(graph, start, path):
            if target != start or not include_zero:
                yield target
        return
    visited = {start} if include_zero else set()
    frontier = deque([start])
    while frontier:
        current = frontier.popleft()
        for target in _legacy_path_hop(graph, current, path):
            if target in visited:
                continue
            visited.add(target)
            frontier.append(target)
            yield target


def _legacy_eval_repeat(graph, subject, path, object):
    include_zero = path.min_hops == 0
    if subject is not None:
        emitted_self = False
        for target in _legacy_closure_from(
            graph, subject, path.inner, include_zero, path.max_one
        ):
            if target == subject:
                if emitted_self:
                    continue
                emitted_self = True
            if object is None or object == target:
                yield (subject, target)
        return
    if object is not None:
        inverse = InversePath(path.inner)
        emitted_self = False
        for source in _legacy_closure_from(
            graph, object, inverse, include_zero, path.max_one
        ):
            if source == object:
                if emitted_self:
                    continue
                emitted_self = True
            yield (source, object)
        return
    # Both endpoints unbound: the zero-length path relates every graph
    # node to itself; this sorted() + full-node sweep happens inside ONE
    # candidate pull — the non-preemptable heart of the old kernel.
    for node in sorted(
        _legacy_all_graph_nodes(graph), key=lambda term: term.sort_key()
    ):
        for target in _legacy_closure_from(
            graph, node, path.inner, include_zero, path.max_one
        ):
            yield (node, target)


class LegacyPathScanOp(PhysicalOperator):
    """The pre-PR 8 join stage for path patterns: term-space generator,
    offset-skip suspension.  Same constructor contract as PathScanOp so
    the planner can mount it unchanged."""

    label = "PathScan"

    def __init__(self, runtime, child, pattern, pre_filters=(), post_filters=()):
        super().__init__(runtime)
        self.child = child
        self.pattern = pattern
        self.pre_filters = tuple(pre_filters)
        self.post_filters = tuple(post_filters)
        self._current = None
        self._matches = None
        self._offset = 0

    def children(self):
        return [self.child]

    def detail(self):
        return f"{self.pattern} [legacy term-space]"

    def _start_scan(self, binding):
        graph = self.runtime.graph
        self._current = binding
        self._offset = 0
        self.runtime.stats.pattern_scans += 1
        decode = self.runtime.dictionary.decode

        def term_of(term):
            if isinstance(term, Var):
                value = binding.get(term.name)
                return None if value is None else decode(value)
            return term

        self._matches = _legacy_eval_path(
            graph,
            term_of(self.pattern.subject),
            self.pattern.predicate,
            term_of(self.pattern.object),
        )

    def _extend(self, candidate):
        binding = dict(self._current)
        encode = self.runtime.dictionary.encode
        start, end = candidate
        for term, value in (
            (self.pattern.subject, encode(start)),
            (self.pattern.object, encode(end)),
        ):
            if isinstance(term, Var):
                existing = binding.get(term.name)
                if existing is None:
                    binding[term.name] = value
                elif existing != value:
                    return None
        return binding

    def _next(self):
        for _ in range(SCAN_BATCH):
            if self._matches is not None:
                candidate = next(self._matches, _EXHAUSTED)
                if candidate is _EXHAUSTED:
                    self._matches = None
                    self._current = None
                    continue
                self._offset += 1
                row = self._extend(candidate)
                if row is None:
                    continue
                self.runtime.stats.intermediate_bindings += 1
                if _check_ids(self.post_filters, row, self.runtime):
                    return row
                continue
            if self.child.done:
                self.done = True
                return None
            outer = self.child.next()
            if outer is None:
                return None
            if self.pre_filters and not _check_ids(
                self.pre_filters, outer, self.runtime
            ):
                continue
            self._start_scan(outer)
        return None


class _patched_kernel:
    """Mount LegacyPathScanOp in the planner for the duration."""

    def __enter__(self):
        self._saved = planner_module.PathScanOp
        planner_module.PathScanOp = LegacyPathScanOp

    def __exit__(self, *exc):
        planner_module.PathScanOp = self._saved


# ---------------------------------------------------------------------------
# Harness (bench_pr3 discipline: round-robin quanta, first-page clock).
# ---------------------------------------------------------------------------


def _multiset(rows):
    return sorted(
        tuple(sorted((k, str(v)) for k, v in row.items())) for row in rows
    )


def run_sessions(graph) -> dict:
    """SESSIONS concurrent closure expansions under round-robin quanta;
    a session's first page ships at PAGE_ROWS rows (or completion)."""
    scheduler = RoundRobinScheduler(quantum_ms=QUANTUM_MS)
    names = [f"walk_{index}" for index in range(SESSIONS)]
    for name in names:
        scheduler.submit(name, build_physical_plan(graph, CLOSURE_QUERY))
    first_page_ms = {}
    rows_by = {name: [] for name in names}
    start = time.perf_counter()
    while len(scheduler):
        for name, page in scheduler.run_round():
            rows_by[name].extend(page.rows)
            if name not in first_page_ms and (
                len(rows_by[name]) >= PAGE_ROWS or page.complete
            ):
                first_page_ms[name] = (time.perf_counter() - start) * 1000.0
    makespan = (time.perf_counter() - start) * 1000.0
    return {"first_page_ms": first_page_ms, "rows": rows_by, "makespan_ms": makespan}


def percentile(values, fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def summarise(samples) -> dict:
    return {
        "sessions": len(samples),
        "p50_ms": round(percentile(samples, 0.50), 3),
        "p95_ms": round(percentile(samples, 0.95), 3),
        "max_ms": round(max(samples), 3),
        "mean_ms": round(sum(samples) / len(samples), 3),
    }


def main() -> None:
    graph = generate_dbpedia(DBpediaConfig()).graph
    print(
        f"graph: {len(graph)} triples; {SESSIONS} concurrent "
        f"subClassOf* expansions, quantum {QUANTUM_MS} ms"
    )

    legacy_samples, new_samples = [], []
    legacy_makespans, new_makespans = [], []
    # Warm-up round each (statistics build, interpreter warm-up).
    with _patched_kernel():
        run_sessions(graph)
    run_sessions(graph)
    reference = None
    for _ in range(REPEATS):
        with _patched_kernel():
            legacy = run_sessions(graph)
        current = run_sessions(graph)
        legacy_samples.extend(legacy["first_page_ms"].values())
        new_samples.extend(current["first_page_ms"].values())
        legacy_makespans.append(legacy["makespan_ms"])
        new_makespans.append(current["makespan_ms"])
        if reference is None:
            reference = {
                name: _multiset(rows) for name, rows in legacy["rows"].items()
            }
            for name, rows in current["rows"].items():
                assert _multiset(rows) == reference[name], (
                    f"row multiset mismatch in {name}"
                )

    legacy_stats = summarise(legacy_samples)
    new_stats = summarise(new_samples)
    speedup = (
        legacy_stats["p95_ms"] / new_stats["p95_ms"]
        if new_stats["p95_ms"]
        else float("inf")
    )
    payload = {
        "benchmark": "BENCH_PR8",
        "description": (
            "p95 first-page latency of a rdfs:subClassOf* expansion under "
            f"{SESSIONS} concurrent sessions on the round-robin scheduler: "
            "pre-PR8 term-space path generators vs preemptable ID-space "
            "path operators (synthetic DBpedia, single-threaded engine)"
        ),
        "graph_triples": len(graph),
        "query": CLOSURE_QUERY,
        "page_rows": PAGE_ROWS,
        "quantum_ms": QUANTUM_MS,
        "repeats": REPEATS,
        "sessions": SESSIONS,
        "legacy_term_space": {
            **legacy_stats,
            "makespan_ms_mean": round(
                sum(legacy_makespans) / len(legacy_makespans), 3
            ),
        },
        "id_space_preemptable": {
            **new_stats,
            "makespan_ms_mean": round(sum(new_makespans) / len(new_makespans), 3),
        },
        "first_page_p95_speedup": round(speedup, 2),
        "rows_match": True,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    print()
    header = f"{'kernel':<22} {'p50':>9} {'p95':>9} {'max':>9} {'makespan':>10}"
    print(header)
    print("-" * len(header))
    for label, stats, makespans in (
        ("legacy_term_space", legacy_stats, legacy_makespans),
        ("id_space_preemptable", new_stats, new_makespans),
    ):
        print(
            f"{label:<22} {stats['p50_ms']:>8.1f}m {stats['p95_ms']:>8.1f}m "
            f"{stats['max_ms']:>8.1f}m "
            f"{sum(makespans) / len(makespans):>9.1f}m"
        )
    print()
    print(f"first-page p95 speedup: {speedup:.2f}x")
    if speedup < 5.0:
        raise SystemExit(
            "preemptable path operators must improve p95 first-page "
            "latency at least 5x over the term-space kernel"
        )


if __name__ == "__main__":
    main()
