"""E6 — Fig. 1's hover box for Agent: "the second largest DBpedia class,
with more than 2 million instances, 5 direct subclasses, and 277
subclasses in total"."""

from repro.rdf import DBO


def test_e6_agent_hover_statistics(benchmark, engine, statistics, dbpedia_config, report):
    stats = benchmark(statistics.class_statistics, DBO.term("Agent"))
    chart = engine.initial_chart()
    rank = [bar.label for bar in chart.sorted_bars()].index(DBO.term("Agent")) + 1

    scale = dbpedia_config.scale
    rows = [("metric", "paper", "measured")]
    rows.append(("rank among top-level classes", 2, rank))
    rows.append(
        (
            "instances",
            f">2,000,000 (x{scale} = >{int(2_000_000 * scale)})",
            stats.instance_count,
        )
    )
    rows.append(("direct subclasses", 5, stats.direct_subclasses))
    rows.append(("subclasses in total", 277, stats.total_subclasses))
    report("e6_agent_stats", "E6 - Agent hover-box statistics", rows)

    assert rank == 2
    assert stats.instance_count >= 2_000_000 * scale
    assert stats.direct_subclasses == 5
    assert stats.total_subclasses == 277


def test_e6_subclass_traversal_cost(benchmark, statistics):
    """Computing the 277-subclass closure (the 'subclasses in total'
    figure) via repeated subclass queries."""
    total = benchmark(statistics.all_subclasses, DBO.term("Agent"))
    assert len(total) == 277
