"""E9 — the Section 5 demonstration scenarios, scripted end-to-end:

1. understanding a large unfamiliar dataset;
2. a sophisticated exploration path (people influencing philosophers);
3. performance with the solutions turned on and off;
4. erroneous-data detection (people born in resources of type food).
"""

from repro.core import Direction, MemberPattern, property_chart_query
from repro.datasets import generate_dbpedia, inject_birthplace_errors
from repro.datasets.dbpedia import OWL_THING
from repro.endpoint import LocalEndpoint, SimClock
from repro.explorer import ExplorerSession, Tab
from repro.perf import Decomposer, ElindaEndpoint, HeavyQueryStore, SpecializedIndexes
from repro.rdf import DBO


def test_e9_scenario1_overview(benchmark, dbpedia_graph, report):
    """'Examine the bar chart showing the first-level classes' and
    'analyze the twenty most significant properties of the largest
    class'."""

    def run():
        session = ExplorerSession(LocalEndpoint(dbpedia_graph, clock=SimClock()))
        first_level = session.current_pane.subclass_chart()
        largest = first_level.sorted_bars()[0]
        pane = session.open_subclass_pane(session.current_pane, largest.label)
        pane.switch_tab(Tab.PROPERTY_DATA)
        top20 = pane.property_chart(Direction.OUTGOING).top(20)
        return first_level, largest, top20

    first_level, largest, top20 = benchmark(run)
    rows = [("largest class", largest.label.local_name, largest.size)]
    rows += [
        (f"property #{i+1}", bar.label.local_name, f"{bar.coverage:.0%}")
        for i, bar in enumerate(top20[:5])
    ]
    report("e9_scenario1", "E9.1 - overview of an unfamiliar dataset", rows)
    assert len(first_level) == 49
    assert len(top20) == 20


def test_e9_scenario2_influence_path(benchmark, dbpedia_graph):
    """'The types of people that influenced philosophers.'"""

    def run():
        session = ExplorerSession(LocalEndpoint(dbpedia_graph, clock=SimClock()))
        pane = session.panes[0]
        for cls in ("Agent", "Person", "Philosopher"):
            pane = session.open_subclass_pane(pane, DBO.term(cls))
        pane.switch_tab(Tab.CONNECTIONS)
        return pane.connections_chart(DBO.term("influencedBy"))

    chart = benchmark(run)
    types = {bar.label.local_name for bar in chart if bar.size > 0}
    assert {"Philosopher", "Scientist"} <= types


def test_e9_scenario3_solutions_on_off(benchmark, dbpedia_graph, dbpedia_config, report):
    """'Explorations that entail heavy queries ... with the discussed
    solutions turned on and off.'

    The mirror holds (an emulation of) the full knowledge base, so its
    cost model is scaled to the emulated dataset size — that is what
    makes the query heavy when both solutions are off."""
    from repro.datasets.dbpedia import recommended_scale
    from repro.endpoint import LOCAL_PROFILE

    heavy = property_chart_query(MemberPattern.of_type(OWL_THING))
    scaled = LOCAL_PROFILE.scaled(recommended_scale(dbpedia_config))

    def run():
        clock = SimClock()
        stack = ElindaEndpoint(
            LocalEndpoint(dbpedia_graph, clock=clock, cost_model=scaled),
            hvs=HeavyQueryStore(clock=clock, threshold_ms=0.01),
            decomposer=Decomposer(SpecializedIndexes(dbpedia_graph), clock=clock),
            use_hvs=False,
            use_decomposer=False,
        )
        off = stack.query(heavy).elapsed_ms
        stack.use_decomposer = True
        decomposer_on = stack.query(heavy).elapsed_ms
        stack.use_hvs = True
        stack.query(heavy)  # decomposer again (HVS still empty)
        stack.use_decomposer = False
        stack.query(heavy)  # backend -> cached
        hvs_on = stack.query(heavy).elapsed_ms
        return off, decomposer_on, hvs_on

    off, decomposer_on, hvs_on = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e9_scenario3",
        "E9.3 - heavy query with solutions on/off (simulated ms)",
        [
            ("all solutions off", f"{off:.1f}"),
            ("decomposer on", f"{decomposer_on:.1f}"),
            ("hvs hit", f"{hvs_on:.1f}"),
        ],
    )
    assert off > decomposer_on > hvs_on


def test_e9_scenario4_error_detection(benchmark, dbpedia_config, report):
    """'People who are indicated to be born in resources of type food.'"""

    def run():
        dataset = generate_dbpedia(dbpedia_config)
        planted = inject_birthplace_errors(dataset, count=5)
        session = ExplorerSession(LocalEndpoint(dataset.graph, clock=SimClock()))
        pane = session.panes[0]
        pane = session.open_subclass_pane(pane, DBO.term("Agent"))
        pane = session.open_subclass_pane(pane, DBO.term("Person"))
        pane.switch_tab(Tab.CONNECTIONS)
        chart = pane.connections_chart(DBO.term("birthPlace"))
        food_bar = chart.get(DBO.term("Food"))
        suspicious = session.engine.materialise(food_bar)
        return planted, suspicious

    planted, suspicious = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e9_scenario4",
        "E9.4 - erroneous birthPlace detection",
        [("planted errors", len(planted)), ("foods surfaced", len(suspicious.uris))],
    )
    assert suspicious.uris == frozenset(food for _p, food in planted)
