"""E3 / Fig. 3 — the basic system architecture.

Fig. 3 is a wiring diagram (browser <-> eLinda endpoint <-> Virtuoso,
with HVS and decomposer inside the eLinda endpoint); we regenerate it as
a routing trace and measure the router's overhead on top of a direct
backend call."""

from repro.core import MemberPattern, property_chart_query
from repro.datasets.dbpedia import OWL_THING
from repro.endpoint import LocalEndpoint, SimClock
from repro.perf import (
    Decomposer,
    ElindaEndpoint,
    HeavyQueryStore,
    SpecializedIndexes,
)

HEAVY = property_chart_query(MemberPattern.of_type(OWL_THING))
LIGHT = "SELECT ?s WHERE { ?s ?p ?o } LIMIT 1"


def _stack(graph):
    clock = SimClock()
    return ElindaEndpoint(
        LocalEndpoint(graph, clock=clock),
        hvs=HeavyQueryStore(clock=clock, threshold_ms=0.01),
        decomposer=Decomposer(SpecializedIndexes(graph), clock=clock),
    )


def test_fig3_routing_trace(benchmark, dbpedia_graph, report):
    def run_trace():
        stack = _stack(dbpedia_graph)
        stack.query(HEAVY)          # decomposer
        stack.use_decomposer = False
        stack.query(HEAVY)          # backend, then cached (low threshold)
        stack.query(HEAVY)          # hvs
        stack.use_decomposer = True
        stack.query(LIGHT)          # backend (not decomposable)
        return stack

    stack = benchmark(run_trace)
    rows = [("step", "routed to", "simulated ms")]
    for index, entry in enumerate(stack.query_log, start=1):
        rows.append((index, entry.source, f"{entry.elapsed_ms:.2f}"))
    report("fig3_architecture", "Fig. 3 - eLinda endpoint routing", rows)

    sources = [entry.source for entry in stack.query_log]
    assert sources == ["decomposer", "local", "hvs", "local"]


def test_fig3_router_overhead_on_light_queries(benchmark, dbpedia_graph):
    """Routing a light query through the full stack adds only the cache
    probe + detector parse on top of the direct call."""
    stack = _stack(dbpedia_graph)
    direct = LocalEndpoint(dbpedia_graph, clock=SimClock())

    def routed_light():
        return stack.query(LIGHT).result

    result = benchmark(routed_light)
    assert result.rows
    # Same answer directly.
    assert len(direct.query(LIGHT).result.rows) == len(result.rows)
