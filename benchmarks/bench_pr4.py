"""PR 4 benchmark: multi-session serving latency under injected faults.

The serving frontend (:mod:`repro.serve`) multiplexes N concurrent
exploration sessions over the time-sliced executor, with retry/backoff
on injected transient wire faults and a circuit breaker on the backend.
This bench measures the **billed session latency** — the simulated
milliseconds of a session's own pages plus its own backoff waits, the
latency a per-session accountant would bill — at 1, 8, and 32
concurrent sessions, with fault rate 0 and 0.1.

Billed latency is the right scaling metric for a time-sliced engine on
one simulated clock: *wall* latency under round-robin necessarily grows
~N× with co-tenants (every session's quanta interleave on the shared
clock, reported here as makespan for context), while billed latency
should stay flat in N and grow only with the retry amplification the
fault rate causes.  The acceptance gate is p95(32 sessions) ≤ 3× of
p95(1 session) at each fault rate.

Writes ``benchmarks/results/BENCH_PR4.json``.  Run via::

    PYTHONPATH=src python benchmarks/bench_pr4.py
"""

from __future__ import annotations

import json
import pathlib

from repro.core import Direction, MemberPattern, property_chart_query
from repro.datasets import DBpediaConfig, generate_dbpedia
from repro.datasets.dbpedia import OWL_THING
from repro.endpoint import (
    FaultInjector,
    RemoteEndpoint,
    SimClock,
    SimulatedVirtuosoServer,
)
from repro.perf import (
    Decomposer,
    ElindaEndpoint,
    HeavyQueryStore,
    SpecializedIndexes,
)
from repro.serve import (
    BackoffPolicy,
    CircuitBreaker,
    ServeConfig,
    ServeFrontend,
)

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_PR4.json"

SESSION_COUNTS = (1, 8, 32)
FAULT_RATES = (0.0, 0.1)
#: The acceptance gate: p95 at 32 sessions vs p95 alone.
MAX_P95_RATIO = 3.0

#: One exploration click-path: a property chart, a paged table fetch,
#: and a small detail query.
CLICK_PATH = [
    property_chart_query(MemberPattern.of_type(OWL_THING), Direction.OUTGOING),
    "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 150",
    "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 10",
]


def build_frontend(graph, sessions: int, fault_rate: float, seed: int):
    """The same stack ``repro serve`` wires up, sized for the cell."""
    clock = SimClock()
    faults = FaultInjector(transient_rate=fault_rate, seed=seed)
    server = SimulatedVirtuosoServer(graph, clock=clock, faults=faults)
    elinda = ElindaEndpoint(
        RemoteEndpoint(server),
        hvs=HeavyQueryStore(clock=clock),
        decomposer=Decomposer(SpecializedIndexes(graph), clock=clock),
        breaker=CircuitBreaker(clock=clock, failure_threshold=5, recovery_ms=500.0),
    )
    config = ServeConfig(
        max_active=8,
        queue_capacity=max(sessions, 8),
        page_size=50,
        backoff=BackoffPolicy(max_retries=25),
        seed=seed,
    )
    return ServeFrontend(elinda, clock=clock, config=config), server, clock


def percentile(values, fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_cell(graph, sessions: int, fault_rate: float) -> dict:
    frontend, server, clock = build_frontend(
        graph, sessions, fault_rate, seed=sessions * 1000 + int(fault_rate * 10)
    )
    for i in range(sessions):
        assert frontend.submit(f"s{i:02d}", CLICK_PATH)
    reports = frontend.run()
    outcomes = [r.outcome for r in reports.values()]
    assert all(outcome == "completed" for outcome in outcomes), outcomes
    billed = [r.billed_ms for r in reports.values()]
    return {
        "sessions": sessions,
        "fault_rate": fault_rate,
        "completed": len(reports),
        "billed_p50_ms": round(percentile(billed, 0.50), 3),
        "billed_p95_ms": round(percentile(billed, 0.95), 3),
        "billed_max_ms": round(max(billed), 3),
        "wall_makespan_ms": round(clock.now_ms, 3),
        "retries_total": sum(r.retries for r in reports.values()),
        "faults_injected": server.faults.injected_transient,
    }


def main() -> None:
    graph = generate_dbpedia(DBpediaConfig()).graph
    print(f"graph: {len(graph)} triples; click path of {len(CLICK_PATH)} queries")

    cells = [
        run_cell(graph, sessions, fault_rate)
        for fault_rate in FAULT_RATES
        for sessions in SESSION_COUNTS
    ]

    ratios = {}
    for fault_rate in FAULT_RATES:
        by_sessions = {
            c["sessions"]: c for c in cells if c["fault_rate"] == fault_rate
        }
        ratios[str(fault_rate)] = round(
            by_sessions[32]["billed_p95_ms"] / by_sessions[1]["billed_p95_ms"], 3
        )

    payload = {
        "benchmark": "BENCH_PR4",
        "description": (
            "billed per-session latency (own pages + own backoff waits, "
            "simulated ms) of the serving frontend at 1/8/32 concurrent "
            "sessions, fault rate 0 and 0.1; gate: p95(32) <= 3x p95(1)"
        ),
        "graph_triples": len(graph),
        "click_path": CLICK_PATH,
        "max_p95_ratio_allowed": MAX_P95_RATIO,
        "cells": cells,
        "p95_ratio_32_vs_1": ratios,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    print()
    header = (
        f"{'fault':>5} {'sessions':>8} {'p50':>10} {'p95':>10} "
        f"{'makespan':>11} {'retries':>7} {'faults':>6}"
    )
    print(header)
    print("-" * len(header))
    for cell in cells:
        print(
            f"{cell['fault_rate']:>5} {cell['sessions']:>8} "
            f"{cell['billed_p50_ms']:>9.1f}m {cell['billed_p95_ms']:>9.1f}m "
            f"{cell['wall_makespan_ms']:>10.1f}m "
            f"{cell['retries_total']:>7} {cell['faults_injected']:>6}"
        )
    print()
    for fault_rate, ratio in ratios.items():
        print(f"fault rate {fault_rate}: p95(32)/p95(1) = {ratio}")
        if ratio > MAX_P95_RATIO:
            raise SystemExit(
                f"p95 at 32 sessions is {ratio}x the solo p95 "
                f"(limit {MAX_P95_RATIO}x) at fault rate {fault_rate}"
            )


if __name__ == "__main__":
    main()
