"""E5 — Section 1's class-support claim: "in DBpedia the ontology
reports on 49 top-level classes, yet almost half of the classes (22) do
not have instances at all"; eLinda therefore sorts ontology elements by
decreasing support."""

from repro.datasets.dbpedia import OWL_THING


def test_e5_toplevel_class_support(benchmark, engine, report):
    chart = benchmark(engine.initial_chart)
    populated = [bar for bar in chart if bar.size > 0]
    empty = [bar for bar in chart if bar.size == 0]

    rows = [("metric", "paper", "measured")]
    rows.append(("top-level classes", 49, len(chart)))
    rows.append(("classes without instances", 22, len(empty)))
    rows.append(
        ("sorted by support", "yes", "yes" if [b.size for b in chart] == sorted([b.size for b in chart], reverse=True) else "NO")
    )
    report("e5_toplevel_classes", "E5 - top-level class support", rows)

    assert len(chart) == 49
    assert len(empty) == 22
    assert len(populated) == 27
    # Empty classes sort last — the significance ordering in action.
    assert all(bar.size == 0 for bar in chart.sorted_bars()[27:])


def test_e5_support_ordering_helps_autocomplete(benchmark, local_endpoint):
    """The same significance ordering ranks the search box results."""
    from repro.core import ClassSearchIndex

    index = benchmark.pedantic(
        ClassSearchIndex.build, args=(local_endpoint,), rounds=1, iterations=1
    )
    top = index.complete("", limit=5)
    counts = [entry.instance_count for entry in top]
    assert counts == sorted(counts, reverse=True)
    assert counts[0] > 0
