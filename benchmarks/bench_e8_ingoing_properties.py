"""E8 — Section 3.3's ingoing-property claim: "For type Philosopher, 9
ingoing properties that cross the 20% coverage threshold are shown, such
as author that connects between different works to philosophers who
authored them"."""

import pytest

from repro.core import Bar, BarType, Direction, MemberPattern
from repro.explorer import DEFAULT_COVERAGE_THRESHOLD
from repro.rdf import DBO


@pytest.fixture()
def philosopher_bar(statistics):
    cls = DBO.term("Philosopher")
    return Bar(
        label=cls,
        type=BarType.CLASS,
        count=statistics.instance_count(cls),
        pattern=MemberPattern.of_type(cls),
    )


def test_e8_ingoing_property_chart(benchmark, engine, philosopher_bar, report):
    chart = benchmark(
        engine.property_chart, philosopher_bar, Direction.INCOMING
    )
    significant = chart.above_coverage(DEFAULT_COVERAGE_THRESHOLD)

    rows = [("metric", "paper", "measured")]
    rows.append(("ingoing properties >= 20%", 9, len(significant)))
    rows.append(("author among them", "yes", "yes" if DBO.term("author") in significant else "NO"))
    rows.append(("", "", ""))
    rows.append(("ingoing property", "coverage", ""))
    for bar in significant:
        rows.append((bar.label.local_name, f"{bar.coverage:.0%}", ""))
    report("e8_ingoing_properties", "E8 - Philosopher ingoing properties", rows)

    assert len(significant) == 9
    assert DBO.term("author") in significant
    assert len(chart) > 9  # a rare tail exists below the threshold


def test_e8_author_connects_works(benchmark, engine, philosopher_bar):
    """Following `author` ingoing lands on Work-typed subjects."""
    chart = engine.property_chart(philosopher_bar, Direction.INCOMING)
    author_bar = chart[DBO.term("author")]

    connections = benchmark(
        engine.object_chart, author_bar, Direction.INCOMING
    )
    labels = {bar.label.local_name for bar in connections if bar.size > 0}
    assert "Work" in labels
