"""Shared fixtures and reporting helpers for the benchmark harness.

Every ``bench_*`` file regenerates one figure or in-text claim of the
paper (see DESIGN.md's experiment index).  Regenerated rows are printed
and also written to ``benchmarks/results/<experiment>.txt`` so the
paper-vs-measured record survives the pytest-benchmark table.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Sequence

import pytest

from repro.core import ChartEngine, StatisticsService
from repro.datasets import DBpediaConfig, generate_dbpedia
from repro.datasets.dbpedia import OWL_THING
from repro.endpoint import LocalEndpoint, SimClock

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def dbpedia_config() -> DBpediaConfig:
    return DBpediaConfig()


@pytest.fixture(scope="session")
def dbpedia(dbpedia_config):
    return generate_dbpedia(dbpedia_config)


@pytest.fixture(scope="session")
def dbpedia_graph(dbpedia):
    return dbpedia.graph


@pytest.fixture()
def local_endpoint(dbpedia_graph):
    return LocalEndpoint(dbpedia_graph, clock=SimClock())


@pytest.fixture()
def engine(local_endpoint):
    return ChartEngine(local_endpoint, OWL_THING)


@pytest.fixture()
def statistics(local_endpoint):
    return StatisticsService(local_endpoint)


@pytest.fixture(scope="session")
def report():
    """Write (and echo) the regenerated rows of one experiment."""

    def _report(experiment: str, title: str, rows: Iterable[Sequence]) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        lines = [title, "=" * len(title)]
        for row in rows:
            lines.append("  ".join(str(cell) for cell in row))
        text = "\n".join(lines) + "\n"
        (RESULTS_DIR / f"{experiment}.txt").write_text(text)
        print(f"\n{text}")

    return _report
