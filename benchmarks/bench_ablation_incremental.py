"""Ablation — incremental evaluation: time-to-first-chart vs window
size N and step cap k (the administrator's parameters, Section 4)."""

import pytest

from repro.core import MemberPattern, property_chart_query
from repro.datasets.dbpedia import OWL_THING
from repro.endpoint import SimClock
from repro.perf import IncrementalConfig, IncrementalEvaluator

QUERY = property_chart_query(MemberPattern.of_type(OWL_THING))


@pytest.mark.parametrize("window", [500, 2000, 8000])
def test_time_to_first_partial(benchmark, dbpedia_graph, window):
    """Smaller windows -> faster first chart (wall-clock measurement)."""

    def first_partial():
        evaluator = IncrementalEvaluator(
            dbpedia_graph, IncrementalConfig(window_size=window)
        )
        return next(evaluator.run(QUERY))

    partial = benchmark(first_partial)
    assert partial.step == 1
    # A tiny first window may legitimately contain no chart rows yet
    # (e.g. only schema triples); the variables are in place regardless.
    assert partial.result.vars == ["p", "count", "triples"]


def test_window_size_sweep(benchmark, dbpedia_graph, report):
    """Simulated first-chart latency and total latency across N."""

    def sweep():
        rows = []
        for window in (250, 500, 1000, 2000, 4000, 8000, 10**9):
            evaluator = IncrementalEvaluator(
                dbpedia_graph,
                IncrementalConfig(window_size=window),
                clock=SimClock(),
            )
            partials = list(evaluator.run(QUERY))
            rows.append(
                (
                    window,
                    len(partials),
                    partials[0].elapsed_ms,
                    partials[-1].cumulative_ms,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "ablation_incremental",
        "Ablation - incremental window size (simulated ms)",
        [("N", "windows", "first chart", "total")]
        + [
            (window, count, f"{first:.2f}", f"{total:.2f}")
            for window, count, first, total in rows
        ],
    )
    first_latencies = [first for _w, _c, first, _t in rows]
    # First-chart latency grows with window size; the one-shot (last row)
    # pays the most before anything renders.
    assert first_latencies[0] < first_latencies[-1]
    # Full-graph window is a single step.
    assert rows[-1][1] == 1


def test_step_cap_bounds_work(benchmark, dbpedia_graph):
    """k caps the number of windows evaluated (partial chart on screen)."""

    def capped():
        evaluator = IncrementalEvaluator(
            dbpedia_graph,
            IncrementalConfig(window_size=500, max_steps=3),
            clock=SimClock(),
        )
        return evaluator.run_to_completion(QUERY)

    final = benchmark(capped)
    assert final.step == 3
    assert not final.complete


def test_remote_paged_time_to_first_chart(benchmark, dbpedia_graph, report):
    """Incremental evaluation in *remote compatibility mode*: the pages
    arrive over the HTTP/JSON wire, and the first chart lands long
    before the one-shot heavy query would have."""
    from repro.endpoint import RemoteEndpoint, SimulatedVirtuosoServer
    from repro.perf import RemoteIncrementalConfig, RemoteIncrementalEvaluator

    def first_page():
        server = SimulatedVirtuosoServer(dbpedia_graph, clock=SimClock())
        remote = RemoteEndpoint(server)
        evaluator = RemoteIncrementalEvaluator(
            remote, RemoteIncrementalConfig(window_size=2000)
        )
        return next(evaluator.run(MemberPattern.of_type(OWL_THING)))

    first = benchmark(first_page)

    # One-shot for comparison (simulated time).
    from repro.endpoint import RemoteEndpoint as RE

    server = SimulatedVirtuosoServer(dbpedia_graph, clock=SimClock())
    one_shot = RE(server).query(QUERY)
    report(
        "ablation_remote_incremental",
        "Ablation - remote-mode incremental evaluation (simulated ms)",
        [
            ("first page (N=2000)", f"{first.elapsed_ms:.1f}"),
            ("one-shot heavy query", f"{one_shot.elapsed_ms:.1f}"),
            (
                "speedup to first chart",
                f"{one_shot.elapsed_ms / first.elapsed_ms:.1f}x",
            ),
        ],
    )
    assert first.elapsed_ms < one_shot.elapsed_ms
