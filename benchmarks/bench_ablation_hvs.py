"""Ablation — the HVS heaviness threshold.

The paper fixes the threshold at one second.  This sweep shows the
trade-off the threshold controls: how many distinct chart queries of a
realistic exploration session get cached (storage) versus how much
simulated latency a repeat visit saves.
"""

import pytest

from repro.core import Direction, MemberPattern, property_chart_query, subclass_chart_query
from repro.datasets.dbpedia import OWL_THING, recommended_scale
from repro.endpoint import (
    REMOTE_VIRTUOSO_PROFILE,
    RemoteEndpoint,
    SimClock,
    SimulatedVirtuosoServer,
)
from repro.perf import ElindaEndpoint, HeavyQueryStore
from repro.rdf import DBO


def _session_queries():
    """The chart queries of one exploration session (mixed weights)."""
    queries = []
    pattern = MemberPattern.of_type(OWL_THING)
    queries.append(subclass_chart_query(pattern, OWL_THING))
    queries.append(property_chart_query(pattern))
    queries.append(property_chart_query(pattern, Direction.INCOMING))
    for cls in ("Agent", "Person", "Philosopher"):
        narrowed = MemberPattern.of_type(DBO.term(cls))
        queries.append(subclass_chart_query(narrowed, DBO.term(cls)))
        queries.append(property_chart_query(narrowed))
    return queries


def _run_session(graph, config, threshold_ms):
    clock = SimClock()
    profile = REMOTE_VIRTUOSO_PROFILE.scaled(recommended_scale(config))
    server = SimulatedVirtuosoServer(graph, clock=clock, cost_model=profile)
    stack = ElindaEndpoint(
        RemoteEndpoint(server),
        hvs=HeavyQueryStore(threshold_ms=threshold_ms, clock=clock),
    )
    queries = _session_queries()
    first_visit = sum(stack.query(q).elapsed_ms for q in queries)
    second_visit = sum(stack.query(q).elapsed_ms for q in queries)
    return len(stack.hvs), first_visit, second_visit


def test_hvs_threshold_sweep(benchmark, dbpedia_graph, dbpedia_config, report):
    def sweep():
        rows = []
        for threshold in (100.0, 1000.0, 10_000.0, 100_000.0):
            cached, first, second = _run_session(
                dbpedia_graph, dbpedia_config, threshold
            )
            rows.append((threshold, cached, first, second))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "ablation_hvs",
        "Ablation - HVS threshold (simulated ms per session)",
        [("threshold ms", "entries cached", "1st visit", "repeat visit")]
        + [
            (t, c, f"{first:.0f}", f"{second:.0f}")
            for t, c, first, second in rows
        ],
    )
    cached_counts = [c for _t, c, _f, _s in rows]
    repeat_costs = [second for _t, _c, _f, second in rows]
    # Lower thresholds cache more and make repeat visits cheaper.
    assert cached_counts == sorted(cached_counts, reverse=True)
    assert repeat_costs == sorted(repeat_costs)
    # At the paper's 1 s threshold, repeats are dramatically cheaper.
    paper_row = rows[1]
    assert paper_row[3] < paper_row[2] / 10


@pytest.mark.parametrize("threshold", [1000.0])
def test_hvs_lookup_cost(benchmark, dbpedia_graph, dbpedia_config, threshold):
    """Wall-clock cost of the cache probe itself."""
    clock = SimClock()
    hvs = HeavyQueryStore(threshold_ms=threshold, clock=clock)
    from repro.sparql.results import AskResult

    query = property_chart_query(MemberPattern.of_type(OWL_THING))
    hvs.record(query, AskResult(True), 5000, 0)
    response = benchmark(hvs.lookup, query, 0)
    assert response is not None
