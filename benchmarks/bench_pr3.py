"""PR 3 benchmark: time-sliced execution vs run-to-completion.

Eight heavy expansion queries (member and member-subgraph fetches over
the largest classes of the synthetic DBpedia — streaming queries, so a
first screenful exists long before the full answer) arrive concurrently
at a single-threaded engine — the situation the paper's incremental
evaluation targets: the UI needs *a first screenful per pane* quickly,
not any one query finished fast.

Two server disciplines are compared:

* ``run_to_completion`` — FIFO, each query runs start-to-finish before
  the next begins; a response (and hence its first page) is only
  available when its query completes.
* ``time_sliced`` — the suspendable executor's
  :class:`repro.sparql.executor.RoundRobinScheduler` gives every live
  plan one bounded quantum per round; a session's first page ships as
  soon as its first ``PAGE_ROWS`` rows exist.

The headline number is the **p95 first-page latency** across the 8
concurrent sessions.  Row multisets are asserted identical between the
two disciplines, so the speedup is purely a scheduling effect.

Writes ``benchmarks/results/BENCH_PR3.json``.  Run via
``scripts/bench.sh`` or::

    PYTHONPATH=src python benchmarks/bench_pr3.py
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.core import MemberPattern
from repro.core.queries import members_query
from repro.datasets import DBpediaConfig, generate_dbpedia
from repro.datasets.dbpedia import OWL_THING
from repro.rdf import DBO
from repro.sparql.executor import RoundRobinScheduler, run_to_completion
from repro.sparql.planner import build_physical_plan

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_PR3.json"

#: First-page size: one chart/table screenful.
PAGE_ROWS = 25
#: Scheduler time slice (real milliseconds).
QUANTUM_MS = 2.0
#: Full benchmark repetitions (latencies are pooled across repeats).
REPEATS = 5


def workloads() -> dict:
    """Eight concurrent heavy expansions, as (name -> query text).

    All are *streaming* shapes (no sort/aggregation breaker at the
    root), the case where response paging matters: the member list and
    the members-with-their-triples subgraph fetch behind "looking into
    detailed RDF data"."""
    rdf_type = "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"
    classes = ["Agent", "Person", "Politician", "Philosopher",
               "Place", "Organisation", "Athlete"]
    queries = {"thing_members": members_query(MemberPattern.of_type(OWL_THING))}
    for name in classes:
        cls = DBO.term(name)
        queries[f"{name.lower()}_subgraph"] = (
            f"SELECT ?s ?p ?o WHERE {{ ?s {rdf_type} {cls.n3()} . ?s ?p ?o }}"
        )
    return queries


def _multiset(rows):
    return sorted(
        tuple(sorted((k, v.n3() if hasattr(v, "n3") else str(v)) for k, v in row.items()))
        for row in rows
    )


def run_fifo(graph, queries) -> dict:
    """Run-to-completion FIFO: first page ships at query completion."""
    first_page_ms = {}
    rows_by = {}
    start = time.perf_counter()
    for name, text in queries.items():
        plan = build_physical_plan(graph, text)
        result = run_to_completion(plan)
        first_page_ms[name] = (time.perf_counter() - start) * 1000.0
        rows_by[name] = result.rows
    makespan = (time.perf_counter() - start) * 1000.0
    return {"first_page_ms": first_page_ms, "rows": rows_by, "makespan_ms": makespan}


def run_time_sliced(graph, queries) -> dict:
    """Round-robin quanta: first page ships at PAGE_ROWS rows."""
    scheduler = RoundRobinScheduler(quantum_ms=QUANTUM_MS)
    for name, text in queries.items():
        scheduler.submit(name, build_physical_plan(graph, text))
    first_page_ms = {}
    rows_by = {name: [] for name in queries}
    start = time.perf_counter()
    while len(scheduler):
        for name, page in scheduler.run_round():
            rows_by[name].extend(page.rows)
            if name not in first_page_ms and (
                len(rows_by[name]) >= PAGE_ROWS or page.complete
            ):
                first_page_ms[name] = (time.perf_counter() - start) * 1000.0
    makespan = (time.perf_counter() - start) * 1000.0
    return {"first_page_ms": first_page_ms, "rows": rows_by, "makespan_ms": makespan}


def percentile(values, fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def summarise(samples) -> dict:
    return {
        "sessions": len(samples),
        "p50_ms": round(percentile(samples, 0.50), 3),
        "p95_ms": round(percentile(samples, 0.95), 3),
        "max_ms": round(max(samples), 3),
        "mean_ms": round(sum(samples) / len(samples), 3),
    }


def main() -> None:
    graph = generate_dbpedia(DBpediaConfig()).graph
    queries = workloads()
    print(f"graph: {len(graph)} triples; {len(queries)} concurrent expansions")

    fifo_samples, sliced_samples = [], []
    fifo_makespans, sliced_makespans = [], []
    # Warm-up round (statistics build, interpreter warm-up) left out of
    # the pooled samples.
    run_fifo(graph, queries)
    run_time_sliced(graph, queries)
    reference = None
    for _ in range(REPEATS):
        fifo = run_fifo(graph, queries)
        sliced = run_time_sliced(graph, queries)
        fifo_samples.extend(fifo["first_page_ms"].values())
        sliced_samples.extend(sliced["first_page_ms"].values())
        fifo_makespans.append(fifo["makespan_ms"])
        sliced_makespans.append(sliced["makespan_ms"])
        if reference is None:
            reference = fifo["rows"]
            for name in queries:
                assert _multiset(sliced["rows"][name]) == _multiset(
                    reference[name]
                ), f"row multiset mismatch in {name}"

    fifo_stats = summarise(fifo_samples)
    sliced_stats = summarise(sliced_samples)
    speedup = (
        fifo_stats["p95_ms"] / sliced_stats["p95_ms"]
        if sliced_stats["p95_ms"]
        else float("inf")
    )
    payload = {
        "benchmark": "BENCH_PR3",
        "description": (
            "p95 first-page latency under 8 concurrent heavy expansions: "
            "round-robin time-sliced executor vs FIFO run-to-completion "
            "(synthetic DBpedia, single-threaded engine)"
        ),
        "graph_triples": len(graph),
        "page_rows": PAGE_ROWS,
        "quantum_ms": QUANTUM_MS,
        "repeats": REPEATS,
        "workloads": sorted(queries),
        "run_to_completion": {
            **fifo_stats,
            "makespan_ms_mean": round(
                sum(fifo_makespans) / len(fifo_makespans), 3
            ),
        },
        "time_sliced": {
            **sliced_stats,
            "makespan_ms_mean": round(
                sum(sliced_makespans) / len(sliced_makespans), 3
            ),
        },
        "first_page_p95_speedup": round(speedup, 2),
        "rows_match": True,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    print()
    header = f"{'discipline':<20} {'p50':>9} {'p95':>9} {'max':>9} {'makespan':>10}"
    print(header)
    print("-" * len(header))
    for label, stats, makespans in (
        ("run_to_completion", fifo_stats, fifo_makespans),
        ("time_sliced", sliced_stats, sliced_makespans),
    ):
        print(
            f"{label:<20} {stats['p50_ms']:>8.1f}m {stats['p95_ms']:>8.1f}m "
            f"{stats['max_ms']:>8.1f}m "
            f"{sum(makespans) / len(makespans):>9.1f}m"
        )
    print()
    print(f"first-page p95 speedup: {speedup:.2f}x")
    if speedup <= 1.0:
        raise SystemExit(
            "time-sliced execution did not improve p95 first-page latency"
        )


if __name__ == "__main__":
    main()
