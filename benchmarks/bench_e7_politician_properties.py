"""E7 — Section 3.3's Politician property-coverage claim: "in DBpedia
there are nearly 40,000 instances of type Politician, that feature 1,482
different properties altogether ... only 38 properties that cross the
default coverage threshold of 20% are shown"."""

import pytest

from repro.core import Bar, BarType, Direction, MemberPattern
from repro.explorer import CoverageThresholdWidget, DEFAULT_COVERAGE_THRESHOLD
from repro.rdf import DBO


@pytest.fixture()
def politician_bar(statistics):
    cls = DBO.term("Politician")
    return Bar(
        label=cls,
        type=BarType.CLASS,
        count=statistics.instance_count(cls),
        pattern=MemberPattern.of_type(cls),
    )


def test_e7_politician_property_chart(benchmark, engine, politician_bar, dbpedia_config, report):
    chart = benchmark(engine.property_chart, politician_bar)
    widget = CoverageThresholdWidget()
    significant = widget.apply(chart)

    scale = dbpedia_config.scale
    rows = [("metric", "paper", "measured")]
    rows.append(
        (
            "Politician instances",
            f"~40,000 (x{scale} = ~{int(40_000 * scale)})",
            politician_bar.size,
        )
    )
    rows.append(("distinct properties", 1482, len(chart)))
    rows.append(("properties >= 20% coverage", 38, len(significant)))
    rows.append(("", "", ""))
    rows.append(("top properties", "coverage", ""))
    for bar in significant.top(10):
        rows.append((bar.label.local_name, f"{bar.coverage:.0%}", ""))
    report("e7_politician_properties", "E7 - Politician property coverage", rows)

    assert len(chart) == 1482
    assert len(significant) == 38
    assert politician_bar.size >= 40_000 * scale


def test_e7_threshold_adjustment(benchmark, engine, politician_bar):
    """'The user may adjust the threshold and reveal more properties.'"""
    chart = engine.property_chart(politician_bar)

    def reveal():
        widget = CoverageThresholdWidget()
        counts = [len(widget.apply(chart))]
        while widget.threshold > 0:
            widget.reveal_more()
            counts.append(len(widget.apply(chart)))
        return counts

    counts = benchmark(reveal)
    assert counts[0] == 38
    assert counts == sorted(counts)      # lowering reveals monotonically
    assert counts[-1] == len(chart) == 1482


def test_e7_significance_filter_cost(benchmark, engine, politician_bar):
    chart = engine.property_chart(politician_bar)
    significant = benchmark(chart.above_coverage, DEFAULT_COVERAGE_THRESHOLD)
    assert len(significant) == 38
