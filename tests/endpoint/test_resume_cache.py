"""The endpoint's live-plan resume cache: a pure fast path.

Resuming a token the endpoint itself minted continues the live operator
tree; decoding the same token elsewhere must produce the same pages,
and a graph mutation must expire the token on both paths.
"""

import pytest

from repro.endpoint import LocalEndpoint
from repro.rdf import Graph, Literal, URI
from repro.sparql.executor import ExpiredTokenError, MalformedTokenError

EX = "http://ex.org/"
SCAN = "SELECT ?s ?p ?o WHERE { ?s ?p ?o }"
OTHER = "SELECT ?s WHERE { ?s ?p ?o }"


def build_graph() -> Graph:
    graph = Graph(name="resume")
    for i in range(20):
        graph.add(URI(EX + f"s{i}"), URI(EX + "p"), Literal(f"v{i}"))
    return graph


def rendered(rows):
    return [
        tuple(sorted((name, term.n3()) for name, term in row.items()))
        for row in rows
    ]


class TestResumeCache:
    def test_fast_path_and_decode_path_agree(self):
        graph = build_graph()
        minting = LocalEndpoint(graph)
        first = minting.query(SCAN, page_size=6)
        token = first.continuation
        assert token is not None
        # Fast path: same endpoint resumes its own live plan.
        live = minting.query(continuation=token, page_size=6)
        # Decode path: a fresh endpoint has no live plan for this token.
        other = LocalEndpoint(graph).query(continuation=token, page_size=6)
        assert rendered(live.result.rows) == rendered(other.result.rows)
        assert live.complete == other.complete
        assert live.continuation == other.continuation

    def test_cache_entry_is_consumed_on_resume(self):
        graph = build_graph()
        endpoint = LocalEndpoint(graph)
        token = endpoint.query(SCAN, page_size=6).continuation
        assert (token, graph.version) in endpoint._resume_cache
        endpoint.query(continuation=token, page_size=6)
        assert (token, graph.version) not in endpoint._resume_cache

    def test_mutation_expires_a_cached_token(self):
        graph = build_graph()
        endpoint = LocalEndpoint(graph)
        token = endpoint.query(SCAN, page_size=6).continuation
        graph.add(URI(EX + "new"), URI(EX + "p"), Literal("late"))
        with pytest.raises(ExpiredTokenError):
            endpoint.query(continuation=token, page_size=6)

    def test_cached_token_with_wrong_query_is_malformed(self):
        graph = build_graph()
        endpoint = LocalEndpoint(graph)
        token = endpoint.query(SCAN, page_size=6).continuation
        with pytest.raises(MalformedTokenError):
            endpoint.query(OTHER, continuation=token, page_size=6)

    def test_cache_is_bounded_and_eviction_is_safe(self):
        graph = build_graph()
        endpoint = LocalEndpoint(graph)
        queries = [
            f"SELECT ?s ?p ?o WHERE {{ ?s ?p ?o }} LIMIT {12 + i}"
            for i in range(12)
        ]
        tokens = [
            endpoint.query(query, page_size=6).continuation
            for query in queries
        ]
        assert len(endpoint._resume_cache) <= endpoint._resume_cache_size
        # The oldest token was evicted; it still resumes via decode.
        evicted = tokens[0]
        assert (evicted, graph.version) not in endpoint._resume_cache
        response = endpoint.query(continuation=evicted, page_size=6)
        reference = LocalEndpoint(graph).query(
            continuation=evicted, page_size=6
        )
        assert rendered(response.result.rows) == rendered(
            reference.result.rows
        )
