"""Unit tests for the simulated clock and cost model."""

import pytest

from repro.endpoint import (
    CostModel,
    DECOMPOSER_PROFILE,
    HVS_PROFILE,
    LOCAL_PROFILE,
    REMOTE_VIRTUOSO_PROFILE,
    SimClock,
)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ms == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(10.5)
        clock.advance(4.5)
        assert clock.now_ms == 15.0

    def test_cannot_go_backwards(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_cannot_start_negative(self):
        with pytest.raises(ValueError):
            SimClock(-5)

    def test_measure_span(self):
        clock = SimClock()
        with clock.measure() as span:
            clock.advance(7)
            clock.advance(3)
        assert span.elapsed_ms == 10.0

    def test_wait_until_jumps_forward(self):
        clock = SimClock()
        clock.wait_until(100.0)
        assert clock.now_ms == 100.0

    def test_wait_until_the_past_is_a_noop(self):
        clock = SimClock()
        clock.advance(50)
        clock.wait_until(20.0)
        assert clock.now_ms == 50.0

    def test_concurrent_advances_never_lose_time(self):
        """Regression: ``advance`` was an unguarded read-modify-write,
        so concurrent sessions could lose clock ticks."""
        import threading

        clock = SimClock()
        threads = [
            threading.Thread(
                target=lambda: [clock.advance(1) for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert clock.now_ms == 8000.0


class TestCostModel:
    def test_simulate_is_linear(self):
        model = CostModel(
            name="t",
            network_latency_ms=1.0,
            parse_overhead_ms=2.0,
            per_scan_ms=0.5,
            per_binding_ms=0.1,
            per_result_ms=0.2,
        )
        assert model.simulate_ms(10, pattern_scans=4, result_rows=5) == (
            1.0 + 2.0 + 2.0 + 1.0 + 1.0
        )

    def test_scale_multiplies_binding_term_only(self):
        model = CostModel(name="t", per_binding_ms=1.0, per_result_ms=1.0)
        base = model.simulate_ms(10, result_rows=10)
        scaled = model.scaled(10).simulate_ms(10, result_rows=10)
        assert base == 20.0
        assert scaled == 110.0

    def test_scaled_preserves_other_fields(self):
        scaled = REMOTE_VIRTUOSO_PROFILE.scaled(100)
        assert scaled.network_latency_ms == REMOTE_VIRTUOSO_PROFILE.network_latency_ms
        assert scaled.name == REMOTE_VIRTUOSO_PROFILE.name
        assert scaled.scale == 100

    def test_profiles_have_expected_ordering_per_binding_work(self):
        """The architectural asymmetry: only join-executing profiles pay
        per-binding; index/cache profiles pay per result or probe."""
        assert LOCAL_PROFILE.per_binding_ms > 0
        assert REMOTE_VIRTUOSO_PROFILE.per_binding_ms > 0
        assert DECOMPOSER_PROFILE.per_binding_ms == 0
        assert HVS_PROFILE.per_binding_ms == 0

    def test_remote_has_network_latency(self):
        assert REMOTE_VIRTUOSO_PROFILE.network_latency_ms > LOCAL_PROFILE.network_latency_ms

    def test_hvs_is_constant_dominated(self):
        small = HVS_PROFILE.simulate_ms(0, result_rows=1)
        large = HVS_PROFILE.simulate_ms(0, result_rows=2000)
        assert large < small * 1.1  # nearly flat in result size
