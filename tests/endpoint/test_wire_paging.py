"""Paged query execution across the endpoint layers: the local
endpoint's token loop, the HTTP/JSON wire with partial bodies, the
remote error path, and the chart engine's incremental fetching."""

import json

import pytest

from repro.core import ChartEngine
from repro.endpoint import (
    LocalEndpoint,
    RemoteEndpoint,
    SimulatedVirtuosoServer,
    decode_page,
    encode_request,
)
from repro.explorer.settings import SettingsError, SettingsForm
from repro.rdf import OWL
from repro.sparql import SparqlError

THING = OWL.term("Thing")
P = "PREFIX dbo: <http://dbpedia.org/ontology/>\n"
ALL_TRIPLES = "SELECT ?s ?p ?o WHERE { ?s ?p ?o }"


def _multiset(rows):
    return sorted(
        tuple(sorted((k, v.n3()) for k, v in row.items())) for row in rows
    )


class TestLocalEndpointPaging:
    def test_paged_equals_one_shot(self, philosophy_endpoint):
        expected = philosophy_endpoint.select(ALL_TRIPLES)
        rows = []
        response = philosophy_endpoint.query(ALL_TRIPLES, page_size=10)
        rows.extend(response.rows)
        pages = 1
        while not response.complete:
            assert response.continuation  # every partial page mints a token
            assert len(response.rows) <= 10
            response = philosophy_endpoint.query(
                ALL_TRIPLES,
                page_size=10,
                continuation=response.continuation,
            )
            rows.extend(response.rows)
            pages += 1
        assert response.continuation is None
        assert pages > 1
        assert rows == expected.rows  # values AND order

    def test_query_all_pages(self, philosophy_endpoint):
        expected = philosophy_endpoint.select(ALL_TRIPLES)
        responses = list(
            philosophy_endpoint.query_all_pages(ALL_TRIPLES, page_size=7)
        )
        assert len(responses) > 1
        assert all(not r.complete for r in responses[:-1])
        assert responses[-1].complete
        rows = [row for r in responses for row in r.rows]
        assert rows == expected.rows

    def test_each_page_charged_for_its_own_work(self, philosophy_endpoint):
        one_shot = philosophy_endpoint.query(ALL_TRIPLES)
        page = philosophy_endpoint.query(ALL_TRIPLES, page_size=5)
        assert page.elapsed_ms < one_shot.elapsed_ms

    def test_ask_never_pages(self, philosophy_endpoint):
        response = philosophy_endpoint.query(
            P + "ASK { ?s a dbo:Philosopher }", page_size=1
        )
        assert response.complete
        assert response.continuation is None
        assert response.result.value is True

    def test_continuation_for_different_query_rejected(
        self, philosophy_endpoint
    ):
        from repro.sparql import MalformedTokenError

        first = philosophy_endpoint.query(ALL_TRIPLES, page_size=3)
        with pytest.raises(MalformedTokenError):
            philosophy_endpoint.query(
                "SELECT ?s WHERE { ?s ?p ?o }",
                page_size=3,
                continuation=first.continuation,
            )

    def test_expired_after_local_mutation(self, philosophy_graph):
        from repro.rdf import URI
        from repro.sparql import ExpiredTokenError

        endpoint = LocalEndpoint(philosophy_graph.copy())
        first = endpoint.query(ALL_TRIPLES, page_size=3)
        endpoint.graph.add(URI("http://x"), URI("http://y"), URI("http://z"))
        with pytest.raises(ExpiredTokenError):
            endpoint.query(
                ALL_TRIPLES, page_size=3, continuation=first.continuation
            )


class TestWirePaging:
    def test_partial_body_carries_continuation_keys(self, philosophy_graph):
        server = SimulatedVirtuosoServer(philosophy_graph)
        request = encode_request(server.url, ALL_TRIPLES, page_size=6)
        response = server.handle(request)
        assert response.status == 200
        blob = json.loads(response.body)
        assert blob["complete"] is False
        assert isinstance(blob["continuation"], str)
        assert len(blob["results"]["bindings"]) == 6
        result, token, complete = decode_page(response)
        assert token == blob["continuation"]
        assert complete is False
        assert len(result.rows) == 6

    def test_remote_paged_equals_one_shot(self, philosophy_graph):
        server = SimulatedVirtuosoServer(philosophy_graph)
        remote = RemoteEndpoint(server)
        expected = remote.select(ALL_TRIPLES)
        rows = []
        response = remote.query(ALL_TRIPLES, page_size=9)
        rows.extend(response.rows)
        while not response.complete:
            response = remote.query(
                ALL_TRIPLES,
                page_size=9,
                continuation=response.continuation,
            )
            rows.extend(response.rows)
        # The wire round-trips through JSON, which preserves order too.
        assert _multiset(rows) == _multiset(expected.rows)
        assert [r.n3() for row in rows for r in row.values()] == [
            r.n3() for row in expected.rows for r in row.values()
        ]

    def test_remote_ask_falls_back_to_one_shot(self, philosophy_graph):
        server = SimulatedVirtuosoServer(philosophy_graph)
        remote = RemoteEndpoint(server)
        response = remote.query(P + "ASK { ?s a dbo:Place }", page_size=2)
        assert response.complete
        assert response.continuation is None

    def test_malformed_token_is_clean_400(self, philosophy_graph):
        server = SimulatedVirtuosoServer(philosophy_graph)
        request = encode_request(
            server.url, ALL_TRIPLES, page_size=5, continuation="garbage"
        )
        response = server.handle(request)
        assert response.status == 400
        assert "MalformedTokenError" in response.body
        remote = RemoteEndpoint(server)
        # The 400 body names the error class, and the client re-raises
        # it as the same typed error the local executor throws.
        from repro.sparql import MalformedTokenError

        with pytest.raises(MalformedTokenError):
            remote.query(ALL_TRIPLES, page_size=5, continuation="garbage")

    def test_expired_token_is_clean_400(self, philosophy_graph):
        from repro.rdf import URI

        server = SimulatedVirtuosoServer(philosophy_graph.copy())
        remote = RemoteEndpoint(server)
        first = remote.query(ALL_TRIPLES, page_size=4)
        assert not first.complete
        server.graph.add(URI("http://x"), URI("http://y"), URI("http://z"))
        from repro.sparql import ExpiredTokenError

        with pytest.raises(ExpiredTokenError):
            remote.query(
                ALL_TRIPLES, page_size=4, continuation=first.continuation
            )


class _LegacyEndpoint:
    """An endpoint whose query() predates the paging keywords."""

    def __init__(self, inner):
        self._inner = inner

    def query(self, query_text):
        return self._inner.query(query_text)

    def select(self, query_text):
        return self._inner.select(query_text)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestChartEnginePaging:
    def _charts(self, engine):
        initial = engine.initial_chart()
        bar = next(b for b in initial if b.label.local_name == "Agent")
        return {
            "initial": {b.label: b.size for b in initial},
            "properties": {
                b.label: b.size for b in engine.property_chart(bar)
            },
        }

    def test_paged_engine_matches_unpaged(self, philosophy_endpoint):
        plain = ChartEngine(philosophy_endpoint, THING)
        paged = ChartEngine(philosophy_endpoint, THING, page_size=2)
        assert self._charts(paged) == self._charts(plain)
        assert paged.pages_fetched > plain.pages_fetched == 0

    def test_quantum_only_config_also_pages(self, philosophy_endpoint):
        paged = ChartEngine(philosophy_endpoint, THING, quantum_ms=1000.0)
        paged.initial_chart()
        assert paged.pages_fetched >= 1

    def test_falls_back_when_endpoint_lacks_paging(self, philosophy_endpoint):
        legacy = _LegacyEndpoint(philosophy_endpoint)
        engine = ChartEngine(legacy, THING, page_size=2)
        plain = ChartEngine(philosophy_endpoint, THING)
        assert self._charts(engine) == self._charts(plain)
        assert engine.pages_fetched == 0


class TestSettings:
    def test_paging_settings_flow_to_engine(self, philosophy_endpoint):
        from repro.explorer import ExplorerSession

        form = SettingsForm(chart_page_size=4, chart_quantum_ms=250.0)
        form.validate()
        session = ExplorerSession(philosophy_endpoint, settings=form)
        assert session.engine.page_size == 4
        assert session.engine.quantum_ms == 250.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chart_page_size": 0},
            {"chart_page_size": -5},
            {"chart_quantum_ms": 0.0},
            {"chart_quantum_ms": -1.0},
        ],
    )
    def test_invalid_paging_settings_rejected(self, kwargs):
        with pytest.raises(SettingsError):
            SettingsForm(**kwargs).validate()
