"""Unit tests for the local endpoint, the simulated Virtuoso server, and
the HTTP/JSON wire."""

import pytest

from repro.endpoint import (
    LocalEndpoint,
    RemoteEndpoint,
    SimClock,
    SimulatedVirtuosoServer,
    decode_response,
    encode_request,
)
from repro.rdf import URI
from repro.sparql import SparqlError
from repro.sparql.results import SelectResult

P = "PREFIX dbo: <http://dbpedia.org/ontology/>\n"
COUNT_ALL = "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }"


class TestLocalEndpoint:
    def test_select(self, philosophy_endpoint, philosophy_graph):
        result = philosophy_endpoint.select(COUNT_ALL)
        assert int(result.scalar().lexical) == len(philosophy_graph)

    def test_ask(self, philosophy_endpoint):
        assert philosophy_endpoint.ask(P + "ASK { ?s a dbo:Philosopher }")
        assert not philosophy_endpoint.ask(P + "ASK { ?s a dbo:Event }")

    def test_select_on_ask_raises(self, philosophy_endpoint):
        with pytest.raises(TypeError):
            philosophy_endpoint.select(P + "ASK { ?s ?p ?o }")

    def test_ask_on_select_raises(self, philosophy_endpoint):
        with pytest.raises(TypeError):
            philosophy_endpoint.ask(COUNT_ALL)

    def test_advances_clock(self, philosophy_graph):
        clock = SimClock()
        endpoint = LocalEndpoint(philosophy_graph, clock=clock)
        endpoint.select(COUNT_ALL)
        assert clock.now_ms > 0

    def test_response_carries_stats_and_source(self, philosophy_endpoint):
        response = philosophy_endpoint.query(COUNT_ALL)
        assert response.source == "local"
        assert response.stats is not None
        assert response.stats.intermediate_bindings > 0
        assert response.elapsed_ms > 0

    def test_query_log(self, philosophy_endpoint):
        philosophy_endpoint.select(COUNT_ALL)
        philosophy_endpoint.select(COUNT_ALL)
        assert len(philosophy_endpoint.query_log) == 2
        assert philosophy_endpoint.query_log[0].result_rows == 1

    def test_dataset_version_tracks_graph(self, philosophy_graph):
        endpoint = LocalEndpoint(philosophy_graph.copy())
        before = endpoint.dataset_version
        endpoint.graph.add(
            URI("http://x"), URI("http://y"), URI("http://z")
        )
        assert endpoint.dataset_version > before


class TestWire:
    def test_request_fields(self):
        request = encode_request("http://srv/sparql", "ASK { ?s ?p ?o }")
        assert request.endpoint_url == "http://srv/sparql"
        assert "sparql-results+json" in request.accept

    def test_decode_rejects_error_status(self):
        from repro.endpoint.wire import SparqlHttpResponse

        response = SparqlHttpResponse(status=500, body="boom", content_type="text/plain")
        with pytest.raises(SparqlError):
            decode_response(response)

    def test_decode_rejects_wrong_content_type(self):
        from repro.endpoint.wire import SparqlHttpResponse

        response = SparqlHttpResponse(status=200, body="{}", content_type="text/html")
        with pytest.raises(SparqlError):
            decode_response(response)


class TestSimulatedVirtuoso:
    def test_end_to_end_query(self, virtuoso_server, dbpedia_graph):
        remote = RemoteEndpoint(virtuoso_server)
        result = remote.select(COUNT_ALL)
        assert int(result.scalar().lexical) == len(dbpedia_graph)

    def test_results_pass_through_json(self, virtuoso_server):
        remote = RemoteEndpoint(virtuoso_server)
        result = remote.select(
            P + "SELECT ?s WHERE { ?s a dbo:Philosopher } LIMIT 3"
        )
        assert isinstance(result, SelectResult)
        # Terms were rebuilt from JSON, still usable URIs.
        assert all(term.value.startswith("http") for term in result.column("s"))

    def test_wrong_url_is_404(self, virtuoso_server):
        request = encode_request("http://other/sparql", COUNT_ALL)
        response = virtuoso_server.handle(request)
        assert response.status == 404

    def test_syntax_error_is_http_error(self, virtuoso_server):
        request = encode_request(virtuoso_server.url, "SELEKT broken")
        response = virtuoso_server.handle(request)
        assert response.status == 400
        remote = RemoteEndpoint(virtuoso_server)
        with pytest.raises(SparqlError):
            remote.query("SELEKT broken")

    def test_server_counts_requests(self, virtuoso_server):
        remote = RemoteEndpoint(virtuoso_server)
        remote.query(COUNT_ALL)
        remote.query(COUNT_ALL)
        assert virtuoso_server.requests_served == 2

    def test_remote_is_slower_than_local(self, dbpedia_graph):
        query = (
            P + "PREFIX owl: <http://www.w3.org/2002/07/owl#>\n"
            "SELECT ?s WHERE { ?s a owl:Thing } LIMIT 10"
        )
        local = LocalEndpoint(dbpedia_graph, clock=SimClock())
        server = SimulatedVirtuosoServer(dbpedia_graph, clock=SimClock())
        remote = RemoteEndpoint(server)
        assert remote.query(query).elapsed_ms > local.query(query).elapsed_ms

    def test_remote_exposes_no_stats(self, virtuoso_server):
        remote = RemoteEndpoint(virtuoso_server)
        response = remote.query(COUNT_ALL)
        assert response.stats is None
        assert response.source == "virtuoso"
