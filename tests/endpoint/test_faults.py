"""Fault injection on the simulated wire and its client-side surface:
seeded determinism, 503s for transient faults, latency penalties for
slow ones, and the re-raising of typed errors across the HTTP boundary."""

import pytest

from repro.endpoint import (
    FaultInjector,
    RemoteEndpoint,
    SimClock,
    SimulatedVirtuosoServer,
    TransientWireError,
    decode_response,
)
from repro.endpoint.faults import SLOW, TRANSIENT
from repro.endpoint.wire import SparqlHttpResponse
from repro.sparql import SparqlError
from repro.sparql.executor import MalformedTokenError

ALL_TRIPLES = "SELECT ?s ?p ?o WHERE { ?s ?p ?o }"


class TestFaultInjector:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultInjector(transient_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(slow_rate=-0.1)
        with pytest.raises(ValueError):
            FaultInjector(slow_penalty_ms=-1)

    def test_zero_rates_never_fault(self):
        injector = FaultInjector()
        assert all(injector.roll() is None for _ in range(100))

    def test_certain_transient(self):
        injector = FaultInjector(transient_rate=1.0, slow_rate=1.0)
        assert all(injector.roll() == TRANSIENT for _ in range(20))
        assert injector.injected_transient == 20
        assert injector.injected_slow == 0

    def test_certain_slow(self):
        injector = FaultInjector(slow_rate=1.0)
        assert all(injector.roll() == SLOW for _ in range(20))
        assert injector.injected_slow == 20

    def test_same_seed_same_rolls(self):
        a = FaultInjector(transient_rate=0.3, slow_rate=0.3, seed=7)
        b = FaultInjector(transient_rate=0.3, slow_rate=0.3, seed=7)
        assert [a.roll() for _ in range(200)] == [b.roll() for _ in range(200)]

    def test_intermediate_rate_mixes(self):
        injector = FaultInjector(transient_rate=0.5, seed=1)
        rolls = [injector.roll() for _ in range(200)]
        assert 0 < rolls.count(TRANSIENT) < 200


class TestServerFaults:
    def test_transient_fault_returns_503(self, dbpedia_graph):
        clock = SimClock()
        server = SimulatedVirtuosoServer(
            dbpedia_graph,
            clock=clock,
            faults=FaultInjector(transient_rate=1.0),
        )
        client = RemoteEndpoint(server)
        with pytest.raises(TransientWireError) as excinfo:
            client.query(ALL_TRIPLES)
        assert excinfo.value.status == 503
        # The dropped request still pays a network round-trip.
        assert clock.now_ms > 0
        # And never touched the engine.
        assert server.requests_served == 0

    def test_slow_fault_charges_penalty_but_answers_correctly(
        self, dbpedia_graph
    ):
        reference_server = SimulatedVirtuosoServer(
            dbpedia_graph, clock=SimClock()
        )
        reference = RemoteEndpoint(reference_server).query(ALL_TRIPLES)
        slow_server = SimulatedVirtuosoServer(
            dbpedia_graph,
            clock=SimClock(),
            faults=FaultInjector(slow_rate=1.0, slow_penalty_ms=500.0),
        )
        slowed = RemoteEndpoint(slow_server).query(ALL_TRIPLES)
        assert slowed.result.rows == reference.result.rows
        assert slowed.elapsed_ms == pytest.approx(
            reference.elapsed_ms + 500.0
        )

    def test_fault_free_server_unchanged(self, virtuoso_server):
        client = RemoteEndpoint(virtuoso_server)
        response = client.query(ALL_TRIPLES)
        assert response.complete
        assert virtuoso_server.requests_served == 1


class TestClientErrorSurface:
    def test_decode_response_raises_transient_on_503(self):
        response = SparqlHttpResponse(
            status=503, body="try again", content_type="text/plain"
        )
        with pytest.raises(TransientWireError):
            decode_response(response)

    def test_transient_is_a_sparql_error(self):
        # The serving layer catches SparqlError as its outermost net;
        # transient faults must stay inside that taxonomy.
        assert issubclass(TransientWireError, SparqlError)

    def test_token_errors_reraised_client_side(self, virtuoso_server):
        """A continuation failure crosses the wire as a 400 and comes
        back out as the same typed error the local executor raises."""
        client = RemoteEndpoint(virtuoso_server)
        with pytest.raises(MalformedTokenError):
            client.query(
                ALL_TRIPLES, page_size=5, continuation="not-a-token"
            )

    def test_plain_engine_error_stays_generic(self, virtuoso_server):
        client = RemoteEndpoint(virtuoso_server)
        with pytest.raises(SparqlError):
            client.query("SELECT ?s WHERE { broken")
