"""Integration tests asserting the paper's quantitative claims (the
table-equivalents E5-E9 of DESIGN.md) hold on the synthetic dataset,
measured through the production (endpoint-backed) path."""

import pytest

from repro.core import ChartEngine, Direction, StatisticsService
from repro.datasets.dbpedia import OWL_THING
from repro.explorer import DEFAULT_COVERAGE_THRESHOLD
from repro.rdf import DBO


@pytest.fixture(scope="module")
def engine(dbpedia_graph):
    from repro.endpoint import LocalEndpoint

    return ChartEngine(LocalEndpoint(dbpedia_graph), OWL_THING)


@pytest.fixture(scope="module")
def stats(engine):
    return StatisticsService(engine.endpoint)


class TestE5TopLevelClasses:
    """Section 1: 49 top-level classes; 22 with no instances at all."""

    def test_49_top_level_classes(self, engine):
        assert len(engine.initial_chart()) == 49

    def test_22_empty(self, engine):
        chart = engine.initial_chart()
        assert sum(1 for bar in chart if bar.size == 0) == 22

    def test_sorted_by_support(self, engine):
        sizes = [bar.size for bar in engine.initial_chart()]
        assert sizes == sorted(sizes, reverse=True)


class TestE6AgentStatistics:
    """Section 3.2 / Fig. 1: Agent is the second-largest class with 5
    direct subclasses and 277 subclasses in total."""

    def test_agent_is_second_largest(self, engine):
        bars = engine.initial_chart().sorted_bars()
        assert bars[1].label == DBO.term("Agent")

    def test_hover_statistics(self, stats):
        agent = stats.class_statistics(DBO.term("Agent"))
        assert agent.direct_subclasses == 5
        assert agent.total_subclasses == 277

    def test_agent_count_is_scaled_2m(self, engine, dbpedia_config):
        agent = engine.initial_chart()[DBO.term("Agent")]
        # >2M at paper scale; the synthetic count is within the same
        # order after scaling (mins inflate small classes, not Agent).
        assert agent.size >= 2_000_000 * dbpedia_config.scale


class TestE7PoliticianProperties:
    """Section 3.3: Politician features 1,482 distinct properties, of
    which exactly 38 cross the default 20% coverage threshold."""

    @pytest.fixture(scope="class")
    def politician_chart(self, engine):
        chart0 = engine.initial_chart()
        agent = engine.subclass_chart(chart0[DBO.term("Agent")])
        person = engine.subclass_chart(agent[DBO.term("Person")])
        return engine.property_chart(person[DBO.term("Politician")])

    def test_1482_distinct_properties(self, politician_chart):
        assert len(politician_chart) == 1482

    def test_38_above_default_threshold(self, politician_chart):
        significant = politician_chart.above_coverage(DEFAULT_COVERAGE_THRESHOLD)
        assert len(significant) == 38

    def test_lower_threshold_reveals_more(self, politician_chart):
        assert len(politician_chart.above_coverage(0.01)) > 38


class TestE8PhilosopherIngoing:
    """Section 3.3: 9 ingoing Philosopher properties cross the 20%
    threshold, among them `author`."""

    @pytest.fixture(scope="class")
    def ingoing_chart(self, engine):
        chart0 = engine.initial_chart()
        agent = engine.subclass_chart(chart0[DBO.term("Agent")])
        person = engine.subclass_chart(agent[DBO.term("Person")])
        philosopher = person[DBO.term("Philosopher")]
        return engine.property_chart(philosopher, Direction.INCOMING)

    def test_9_significant_ingoing(self, ingoing_chart):
        significant = ingoing_chart.above_coverage(DEFAULT_COVERAGE_THRESHOLD)
        assert len(significant) == 9

    def test_author_among_them(self, ingoing_chart):
        significant = ingoing_chart.above_coverage(DEFAULT_COVERAGE_THRESHOLD)
        assert DBO.term("author") in significant

    def test_rare_ingoing_exist_below_threshold(self, ingoing_chart):
        assert len(ingoing_chart) > 9


class TestE9InfluencedByConnections:
    """Section 3.4 / Fig. 2: objects of Philosopher's influencedBy,
    distributed by type, include a Scientist bar."""

    def test_scientist_bar_present(self, engine):
        chart0 = engine.initial_chart()
        agent = engine.subclass_chart(chart0[DBO.term("Agent")])
        person = engine.subclass_chart(agent[DBO.term("Person")])
        philosopher = person[DBO.term("Philosopher")]
        influenced = engine.property_chart(philosopher)[DBO.term("influencedBy")]
        connections = engine.object_chart(influenced)
        labels = {bar.label.local_name for bar in connections if bar.size > 0}
        assert "Scientist" in labels
        assert "Philosopher" in labels
        # Narrowing: the Scientist bar holds fewer scientists than exist.
        scientist_bar = connections[DBO.term("Scientist")]
        from repro.core import StatisticsService

        total_scientists = StatisticsService(engine.endpoint).instance_count(
            DBO.term("Scientist")
        )
        assert 0 < scientist_bar.size < total_scientists


class TestDatasetOpeningStatistics:
    """Section 3.1: the very first queries fetch total triples and the
    number of classes."""

    def test_statistics(self, stats, dbpedia_graph, dbpedia):
        ds = stats.dataset_statistics()
        assert ds.total_triples == len(dbpedia_graph)
        declared = 1 + len(dbpedia.parents)  # root + every child class
        assert ds.class_count == declared


class TestScaleInvariance:
    """The counted structural claims hold at other scales/seeds too —
    they are properties of the generator's construction, not accidents
    of one configuration."""

    @pytest.fixture(scope="class")
    def bigger(self):
        from repro.datasets import DBpediaConfig, generate_dbpedia

        return generate_dbpedia(DBpediaConfig(scale=0.0005, seed=7))

    def test_top_level_counts(self, bigger):
        thing = bigger.facts["thing"]
        top = bigger.children[thing]
        assert len(top) == 49
        assert sum(1 for cls in top if bigger.instance_count(cls) == 0) == 22

    def test_agent_subtree(self, bigger):
        agent = bigger.facts["agent"]
        assert len(bigger.children[agent]) == 5
        assert len(bigger.subclasses_of(agent)) == 277

    def test_politician_properties(self, bigger):
        graph = bigger.graph
        politicians = bigger.instances_of[bigger.facts["politician"]]
        properties = {}
        for member in politicians:
            for prop in graph.predicates(subject=member):
                properties.setdefault(prop, set()).add(member)
        assert len(properties) == 1482
        total = len(politicians)
        significant = sum(
            1
            for featuring in properties.values()
            if len(featuring) / total >= 0.2
        )
        assert significant == 38

    def test_philosopher_ingoing(self, bigger):
        graph = bigger.graph
        philosophers = bigger.instances_of[bigger.facts["philosopher"]]
        ingoing = {}
        for member in philosophers:
            for triple in graph.triples(None, None, member):
                ingoing.setdefault(triple.predicate, set()).add(member)
        total = len(philosophers)
        significant = sum(
            1
            for covered in ingoing.values()
            if len(covered) / total >= 0.2
        )
        assert significant == 9

    def test_instance_counts_scale_linearly(self, bigger, dbpedia):
        # Politician: paper 40k; x0.0005 = 20... below the floor of 25;
        # Athlete scales cleanly (300k -> 150 vs 75).
        from repro.rdf import DBO

        athlete = DBO.term("Athlete")
        assert bigger.instance_count(athlete) == 2 * dbpedia.instance_count(
            athlete
        )
