"""Integration: the demonstration scenarios of Section 5, driven through
the explorer session exactly as a demo participant would."""

import pytest

from repro.core import Direction, equals_filter
from repro.datasets import generate_dbpedia, inject_birthplace_errors
from repro.endpoint import LocalEndpoint, SimulatedVirtuosoServer
from repro.explorer import ExplorerSession, SettingsForm, Tab, connect
from repro.rdf import DBO, OWL


@pytest.fixture(scope="module")
def session(dbpedia_graph):
    return ExplorerSession(LocalEndpoint(dbpedia_graph))


class TestScenario1UnderstandingAnUnfamiliarDataset:
    """'Examine the bar chart showing the first-level classes' and
    'analyze the twenty most significant properties of the largest
    class in the dataset.'"""

    def test_first_level_classes(self, session):
        chart = session.current_pane.subclass_chart()
        assert len(chart) == 49
        assert chart.sorted_bars()[0].label == DBO.term("Place")

    def test_twenty_most_significant_properties_of_largest_class(self, session):
        largest = session.current_pane.subclass_chart().sorted_bars()[0]
        pane = session.open_subclass_pane(session.current_pane, largest.label)
        pane.switch_tab(Tab.PROPERTY_DATA)
        top20 = pane.property_chart(Direction.OUTGOING).top(20)
        assert len(top20) <= 20
        coverages = [bar.coverage for bar in top20]
        assert coverages == sorted(coverages, reverse=True)
        # type and label are universal -> 100% coverage leaders.
        assert top20[0].coverage == pytest.approx(1.0)


class TestScenario2SophisticatedPath:
    """'The types of people that influenced philosophers.'"""

    def test_influence_path(self, session):
        p0 = session.panes[0]
        agent = session.open_subclass_pane(p0, DBO.term("Agent"))
        person = session.open_subclass_pane(agent, DBO.term("Person"))
        philosopher = session.open_subclass_pane(person, DBO.term("Philosopher"))
        philosopher.switch_tab(Tab.CONNECTIONS)
        chart = philosopher.connections_chart(DBO.term("influencedBy"))
        types = {bar.label.local_name for bar in chart if bar.size > 0}
        assert {"Philosopher", "Scientist", "Person"} <= types

    def test_autocomplete_shortcut(self, session):
        """Locating Philosopher under Agent -> Person may be hard; the
        search box jumps straight there (Section 3.2)."""
        matches = session.autocomplete("Philos")
        assert matches and matches[0].cls == DBO.term("Philosopher")
        pane = session.open_search_pane(matches[0].cls)
        assert pane.pane_type == DBO.term("Philosopher")
        assert pane.instance_count == 40


class TestScenario3ErrorDetection:
    """'People who are indicated to be born in resources of type food.'"""

    def test_food_bar_reveals_errors(self, dbpedia_config):
        dataset = generate_dbpedia(dbpedia_config)
        planted = inject_birthplace_errors(dataset, count=5)
        session = ExplorerSession(LocalEndpoint(dataset.graph))
        p0 = session.panes[0]
        agent = session.open_subclass_pane(p0, DBO.term("Agent"))
        person = session.open_subclass_pane(agent, DBO.term("Person"))
        person.switch_tab(Tab.CONNECTIONS)
        chart = person.connections_chart(DBO.term("birthPlace"))
        food_bar = chart.get(DBO.term("Food"))
        assert food_bar is not None and food_bar.size > 0
        # Drill into the suspicious bar: the members are the foods used
        # as birth places.
        engine = session.engine
        materialised = engine.materialise(food_bar)
        assert materialised.uris == frozenset(food for _p, food in planted)

    def test_clean_dataset_has_no_food_bar(self, session):
        p0 = session.panes[0]
        agent = session.open_subclass_pane(p0, DBO.term("Agent"))
        person = session.open_subclass_pane(agent, DBO.term("Person"))
        chart = person.connections_chart(DBO.term("birthPlace"))
        food_bar = chart.get(DBO.term("Food"))
        assert food_bar is None or food_bar.size == 0


class TestViennaDataFilter:
    """Section 3.3: 'the user may view only those philosophers who were
    born in Vienna', then open a pane on S_f."""

    def test_filter_and_expand(self, dbpedia, dbpedia_graph):
        session = ExplorerSession(LocalEndpoint(dbpedia_graph))
        p0 = session.panes[0]
        agent = session.open_subclass_pane(p0, DBO.term("Agent"))
        person = session.open_subclass_pane(agent, DBO.term("Person"))
        philosopher = session.open_subclass_pane(person, DBO.term("Philosopher"))
        table = philosopher.select_property_column(DBO.term("birthPlace"))
        table.set_filter(
            DBO.term("birthPlace"), equals_filter(dbpedia.facts["vienna"])
        )
        vienna_pane = session.open_filtered_pane(philosopher)
        assert vienna_pane.instance_count == len(dbpedia.facts["vienna_born"])
        # The narrowed set supports further expansions.
        chart = vienna_pane.property_chart(Direction.OUTGOING)
        assert DBO.term("birthPlace") in chart


class TestFullStackThroughSettingsForm:
    """End-to-end through the settings form, as the demo starts."""

    def test_connect_and_explore(self, dbpedia_graph):
        settings = SettingsForm()
        server = SimulatedVirtuosoServer(dbpedia_graph, url=settings.endpoint_url)
        endpoint = connect(settings, {settings.endpoint_url: server})
        session = ExplorerSession(endpoint, settings=settings)
        assert session.dataset_statistics.total_triples == len(dbpedia_graph)
        chart = session.current_pane.subclass_chart()
        assert DBO.term("Agent") in chart

    def test_remote_compatibility_mode(self, dbpedia_graph):
        settings = SettingsForm(mode="remote", use_hvs=False, use_decomposer=False)
        server = SimulatedVirtuosoServer(dbpedia_graph, url=settings.endpoint_url)
        endpoint = connect(settings, {settings.endpoint_url: server})
        session = ExplorerSession(endpoint, settings=settings)
        assert len(session.current_pane.subclass_chart()) == 49
