"""Guard tests: the shipped examples run cleanly and the top-level
convenience API works."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

ALL_EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


class TestQuickSession:
    def test_quick_session_api(self):
        from repro import quick_session
        from repro.rdf import DBO

        session = quick_session()
        assert session.dataset_statistics.total_triples > 10_000
        chart = session.current_pane.subclass_chart()
        assert len(chart) == 49
        assert DBO.term("Agent") in chart

    def test_quick_session_render(self):
        from repro import quick_session

        text = quick_session().render(top=3)
        assert "eLinda @" in text
        assert "pane 1" in text

    def test_package_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestExamplesRun:
    def test_all_examples_present(self):
        assert set(ALL_EXAMPLES) >= {
            "quickstart.py",
            "explore_philosophers.py",
            "performance_modes.py",
            "error_detection.py",
            "lgd_no_hierarchy.py",
            "session_replay.py",
        }

    @pytest.mark.parametrize("example", ALL_EXAMPLES)
    def test_example_runs_cleanly(self, example):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / example)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert completed.stdout.strip(), "example produced no output"

    def test_quickstart_shows_initial_chart(self):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert "Initial chart" in completed.stdout
        assert "dbo:Agent" in completed.stdout

    def test_performance_modes_reports_fig4(self):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "performance_modes.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert "Fig. 4" in completed.stdout
        assert "decomposer" in completed.stdout
        assert "hvs" in completed.stdout
