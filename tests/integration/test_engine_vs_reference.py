"""Integration: the endpoint-backed engine agrees with the reference
in-memory expansions across the synthetic DBpedia dataset, and all three
store configurations return identical charts."""

import pytest

from repro.core import (
    ChartEngine,
    Direction,
    object_expansion,
    property_expansion,
    root_bar,
    subclass_expansion,
)
from repro.datasets.dbpedia import OWL_THING
from repro.endpoint import LocalEndpoint
from repro.perf import Decomposer, ElindaEndpoint, HeavyQueryStore, SpecializedIndexes
from repro.rdf import DBO


def heights(chart):
    return {bar.label: bar.size for bar in chart}


@pytest.fixture(scope="module")
def engine(dbpedia_graph):
    return ChartEngine(LocalEndpoint(dbpedia_graph), OWL_THING)


class TestEngineMatchesReference:
    def test_initial_chart(self, engine, dbpedia_graph):
        from repro.core import initial_chart

        assert heights(engine.initial_chart()) == heights(
            initial_chart(dbpedia_graph, OWL_THING)
        )

    @pytest.mark.parametrize(
        "class_name", ["Agent", "Person", "Philosopher", "Politician"]
    )
    def test_property_charts(self, engine, dbpedia_graph, class_name):
        cls = DBO.term(class_name)
        reference_bar = root_bar(dbpedia_graph, cls)
        for direction in (Direction.OUTGOING, Direction.INCOMING):
            reference = property_expansion(
                dbpedia_graph, reference_bar, direction
            )
            from repro.core import Bar, BarType, MemberPattern

            engine_bar = Bar(
                label=cls,
                type=BarType.CLASS,
                count=reference_bar.size,
                pattern=MemberPattern.of_type(cls),
            )
            via_engine = engine.property_chart(engine_bar, direction)
            assert heights(via_engine) == heights(reference)

    def test_subclass_chain_counts(self, engine, dbpedia_graph):
        path = [DBO.term("Agent"), DBO.term("Person"), DBO.term("Philosopher")]
        engine_chart = engine.initial_chart()
        reference_chart = subclass_expansion(
            dbpedia_graph, root_bar(dbpedia_graph, OWL_THING)
        )
        for cls in path:
            assert heights(engine_chart) == heights(reference_chart)
            engine_bar = engine_chart[cls]
            reference_bar = reference_chart[cls]
            engine_chart = engine.subclass_chart(engine_bar)
            reference_chart = subclass_expansion(dbpedia_graph, reference_bar)

    def test_object_chart(self, engine, dbpedia_graph):
        philosopher = root_bar(dbpedia_graph, DBO.term("Philosopher"))
        reference_prop = property_expansion(dbpedia_graph, philosopher)[
            DBO.term("influencedBy")
        ]
        reference = object_expansion(dbpedia_graph, reference_prop)
        from repro.core import Bar, BarType, MemberPattern

        engine_phil = Bar(
            label=DBO.term("Philosopher"),
            type=BarType.CLASS,
            count=philosopher.size,
            pattern=MemberPattern.of_type(DBO.term("Philosopher")),
        )
        engine_prop = engine.property_chart(engine_phil)[DBO.term("influencedBy")]
        assert heights(engine.object_chart(engine_prop)) == heights(reference)


class TestStoreConfigurationsAgree:
    """Fig. 4's three configurations must differ only in latency."""

    def test_identical_charts_across_configs(self, dbpedia_graph):
        backend = LocalEndpoint(dbpedia_graph)
        plain = ChartEngine(backend, OWL_THING)
        routed = ElindaEndpoint(
            LocalEndpoint(dbpedia_graph),
            hvs=HeavyQueryStore(threshold_ms=0.001),
            decomposer=Decomposer(SpecializedIndexes(dbpedia_graph)),
        )
        accelerated = ChartEngine(routed, OWL_THING)

        bar_plain = plain.root_bar()
        bar_fast = accelerated.root_bar()
        for direction in (Direction.OUTGOING, Direction.INCOMING):
            from_backend = plain.property_chart(bar_plain, direction)
            from_decomposer = accelerated.property_chart(bar_fast, direction)
            assert heights(from_backend) == heights(from_decomposer)
            # Route once through the backend with the decomposer off so
            # the (near-zero) threshold caches it, then read via HVS.
            routed.use_decomposer = False
            from_backend_routed = accelerated.property_chart(bar_fast, direction)
            from_hvs = accelerated.property_chart(bar_fast, direction)
            routed.use_decomposer = True
            assert heights(from_backend_routed) == heights(from_hvs)
            assert heights(from_decomposer) == heights(from_hvs)
            assert routed.query_log[-1].source == "hvs"
