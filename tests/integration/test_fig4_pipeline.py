"""Integration: the Fig. 4 performance story on simulated time.

Absolute numbers are calibration-dependent; what must hold is the
*shape*: Virtuoso endpoint >> decomposer >> HVS, outgoing slower than
incoming on the endpoint, and near-parity of the two directions on
decomposer and HVS.
"""

import pytest

from repro.core import Direction, MemberPattern, property_chart_query
from repro.datasets.dbpedia import OWL_THING, recommended_scale
from repro.endpoint import (
    REMOTE_VIRTUOSO_PROFILE,
    RemoteEndpoint,
    SimClock,
    SimulatedVirtuosoServer,
)
from repro.perf import Decomposer, HeavyQueryStore, SpecializedIndexes

Q_OUT = property_chart_query(MemberPattern.of_type(OWL_THING))
Q_IN = property_chart_query(MemberPattern.of_type(OWL_THING), Direction.INCOMING)


@pytest.fixture(scope="module")
def measurements(dbpedia_graph, dbpedia_config):
    clock = SimClock()
    profile = REMOTE_VIRTUOSO_PROFILE.scaled(recommended_scale(dbpedia_config))
    server = SimulatedVirtuosoServer(dbpedia_graph, clock=clock, cost_model=profile)
    remote = RemoteEndpoint(server)
    virtuoso_out = remote.query(Q_OUT)
    virtuoso_in = remote.query(Q_IN)
    decomposer = Decomposer(SpecializedIndexes(dbpedia_graph), clock=clock)
    decomposer_out = decomposer.try_answer(Q_OUT)
    decomposer_in = decomposer.try_answer(Q_IN)
    hvs = HeavyQueryStore(clock=clock)
    hvs.record(Q_OUT, virtuoso_out.result, virtuoso_out.elapsed_ms, 0)
    hvs.record(Q_IN, virtuoso_in.result, virtuoso_in.elapsed_ms, 0)
    return {
        ("virtuoso", "out"): virtuoso_out.elapsed_ms,
        ("virtuoso", "in"): virtuoso_in.elapsed_ms,
        ("decomposer", "out"): decomposer_out.elapsed_ms,
        ("decomposer", "in"): decomposer_in.elapsed_ms,
        ("hvs", "out"): hvs.lookup(Q_OUT, 0).elapsed_ms,
        ("hvs", "in"): hvs.lookup(Q_IN, 0).elapsed_ms,
    }


class TestFig4Shape:
    def test_virtuoso_is_minutes(self, measurements):
        # Paper: 454 s outgoing, 124 s incoming.
        assert measurements[("virtuoso", "out")] > 60_000
        assert measurements[("virtuoso", "in")] > 20_000

    def test_decomposer_is_seconds(self, measurements):
        # Paper: 1.5 s / 1.2 s.
        for direction in ("out", "in"):
            assert 500 < measurements[("decomposer", direction)] < 5_000

    def test_hvs_is_tens_of_milliseconds(self, measurements):
        # Paper: "around 80 milliseconds".
        for direction in ("out", "in"):
            assert 40 < measurements[("hvs", direction)] < 160

    def test_strict_ordering_per_direction(self, measurements):
        for direction in ("out", "in"):
            assert (
                measurements[("virtuoso", direction)]
                > 20 * measurements[("decomposer", direction)]
                > 20 * 5 * measurements[("hvs", direction)] / 5
            )
            assert (
                measurements[("decomposer", direction)]
                > 5 * measurements[("hvs", direction)]
            )

    def test_outgoing_heavier_than_incoming_on_endpoint(self, measurements):
        # Paper factor: 454/124 = 3.66; accept the same ballpark.
        ratio = measurements[("virtuoso", "out")] / measurements[("virtuoso", "in")]
        assert 2.0 < ratio < 8.0

    def test_decomposer_directions_near_parity(self, measurements):
        # Paper: 1.5 s vs 1.2 s (factor 1.25).
        ratio = (
            measurements[("decomposer", "out")]
            / measurements[("decomposer", "in")]
        )
        assert 1.0 <= ratio < 2.0

    def test_magnitudes_against_paper(self, measurements, dbpedia_config):
        """Within ~3x of the paper's absolute (simulated) numbers at the
        calibrated default scale."""
        if dbpedia_config.scale != 0.00025:
            pytest.skip("calibration applies to the default scale only")
        paper = {
            ("virtuoso", "out"): 454_000,
            ("virtuoso", "in"): 124_000,
            ("decomposer", "out"): 1_500,
            ("decomposer", "in"): 1_200,
            ("hvs", "out"): 80,
            ("hvs", "in"): 80,
        }
        for key, expected in paper.items():
            assert expected / 3 < measurements[key] < expected * 3
