"""Worker-pool tests: forked workers over one shared mmap snapshot
serve byte-identical pages, survive crashes mid-fleet, transfer
continuation tokens across process boundaries, and fold their metrics
back into the parent registry.

Everything here is *functional* — fork, routing, recovery — and runs on
any core count; only real-speedup assertions (none in this file) carry
the ``multicore`` marker.
"""

import os
from types import SimpleNamespace

import pytest

from repro.endpoint import LocalEndpoint
from repro.obs.metrics import REGISTRY
from repro.rdf.snapshot import open_snapshot, write_snapshot
from repro.serve import BackoffPolicy, PoolFrontend, ServeConfig
from repro.serve.pool import _HashRing
from repro.sparql.results import term_from_json

# Multi-page at page_size 10 over the ~35-triple philosophy graph.
SCAN = "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 150"
# A blocking (aggregation + sort) plan: exercises the streaming
# accumulator save/load when its token crosses a process boundary.
AGG = (
    "SELECT ?p (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } "
    "GROUP BY ?p ORDER BY ?p"
)
# A closure traversal: exercises the PathScan BFS frontier/visited-set
# state when its token crosses a process boundary (PR 8).
PATH = (
    "SELECT ?s ?c WHERE { ?s "
    "<http://www.w3.org/2000/01/rdf-schema#subClassOf>* ?c }"
)
WORKLOAD = [SCAN, AGG, PATH]


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory, philosophy_graph):
    path = str(tmp_path_factory.mktemp("pool") / "pool.snapshot")
    write_snapshot(philosophy_graph, path)
    return path


def make_pool(snapshot_path, workers=2, **kwargs):
    config = ServeConfig(
        max_active=8,
        queue_capacity=64,
        page_size=10,
        backoff=BackoffPolicy(max_retries=5),
        seed=3,
    )
    return PoolFrontend(
        snapshot_path, workers=workers, config=config, **kwargs
    )


def rendered(rows):
    # Ordered, not a multiset: the invariant is byte-identical pages,
    # including row order.
    return [
        tuple(sorted((name, term.n3()) for name, term in row.items()))
        for row in rows
    ]


def reference_rows(graph, query):
    """One-shot single-process evaluation (paging ≡ one-shot holds)."""
    return LocalEndpoint(graph).query(query).result.rows


def counter(name, **labels):
    metric = REGISTRY.get(name)
    return metric.labels(**labels).value if labels else metric.value


class TestPoolServing:
    def test_pages_byte_identical_to_single_process(
        self, snapshot_path, philosophy_graph
    ):
        expected = [
            rendered(reference_rows(philosophy_graph, query))
            for query in WORKLOAD
        ]
        with make_pool(snapshot_path) as frontend:
            for i in range(4):
                frontend.submit(f"session-{i}", WORKLOAD)
            reports = frontend.run()
        assert len(reports) == 4
        for report in reports.values():
            assert report.outcome == "completed"
            for index, want in enumerate(expected):
                assert rendered(report.rows[index]) == want

    def test_sessions_survive_a_worker_crash(
        self, snapshot_path, philosophy_graph
    ):
        expected = [
            rendered(reference_rows(philosophy_graph, query))
            for query in WORKLOAD
        ]
        restarts_before = counter("repro_pool_worker_restarts_total")
        with make_pool(snapshot_path) as frontend:
            for i in range(6):
                frontend.submit(f"crash-{i}", WORKLOAD)
            frontend.crash_worker(0)
            reports = frontend.run()
            assert frontend.alive_count() == frontend.worker_count
        assert all(r.outcome == "completed" for r in reports.values())
        for report in reports.values():
            for index, want in enumerate(expected):
                assert rendered(report.rows[index]) == want
        assert counter("repro_pool_worker_restarts_total") > restarts_before

    def test_inflight_requeue_after_epoch_move(self, snapshot_path):
        """_collect detects that the slot's process changed under an
        outstanding request (epoch moved on) and re-issues the quantum
        from its last token on the fresh process."""
        with make_pool(snapshot_path) as frontend:
            worker = frontend._workers[0]
            old_epoch = worker.epoch
            frontend.crash_worker(0)
            health = frontend.heartbeat()
            assert health[0] == "dead"  # pre-respawn state
            assert worker.epoch == old_epoch + 1
            requeued_before = counter("repro_pool_inflight_requeued_total")
            task = SimpleNamespace(continuation=None, key="requeue-probe")
            reply = frontend._collect(task, worker, old_epoch, SCAN)
            assert reply[0] == "ok"
            assert (
                counter("repro_pool_inflight_requeued_total")
                == requeued_before + 1
            )

    def test_worker_gauge_tracks_lifecycle(self, snapshot_path):
        with make_pool(snapshot_path, workers=3) as frontend:
            assert counter("repro_pool_workers") == 3
            assert frontend.alive_count() == 3
        assert counter("repro_pool_workers") == 0

    def test_worker_metrics_fold_into_parent(self, snapshot_path):
        """Quanta executed inside workers move parent-side engine
        counters after the merge — ``repro metrics`` is fleet-wide."""
        materialized_before = counter("repro_dict_materialized_rows_total")
        with make_pool(snapshot_path) as frontend:
            frontend.submit("merge-probe", [SCAN])
            reports = frontend.run()
        assert reports["merge-probe"].outcome == "completed"
        assert (
            counter("repro_dict_materialized_rows_total")
            > materialized_before
        )


class TestTokenTransfer:
    """Continuation tokens are self-contained: any process resumes any
    token, byte-identically (satellite of the pool PR)."""

    def _decode(self, payload):
        return [
            {name: term_from_json(blob) for name, blob in row.items()}
            for row in payload["rows"]
        ]

    def _quantum(self, frontend, worker, query, token, page_size=3):
        reply = frontend._rpc(
            worker, ("quantum", query, token, None, page_size)
        )
        assert reply[0] == "ok", reply
        return reply[1]

    @pytest.mark.parametrize("query", WORKLOAD)
    def test_worker_to_worker_resume_is_byte_identical(
        self, snapshot_path, philosophy_graph, query
    ):
        expected = rendered(reference_rows(philosophy_graph, query))
        with make_pool(snapshot_path) as frontend:
            workers = frontend._workers
            rows = []
            payload = self._quantum(frontend, workers[0], query, None)
            rows.extend(self._decode(payload))
            turn = 1
            while not payload["complete"]:
                # Alternate workers on every page: each resume crosses a
                # process boundary with only the token.
                payload = self._quantum(
                    frontend,
                    workers[turn % len(workers)],
                    None,
                    payload["continuation"],
                )
                rows.extend(self._decode(payload))
                turn += 1
        assert turn > 1, "query must page for this test to mean anything"
        assert rendered(rows) == expected

    @pytest.mark.parametrize("query", WORKLOAD)
    def test_worker_token_resumes_in_parent_process(
        self, snapshot_path, philosophy_graph, query
    ):
        expected = rendered(reference_rows(philosophy_graph, query))
        with make_pool(snapshot_path) as frontend:
            payload = self._quantum(
                frontend, frontend._workers[0], query, None
            )
            rows = self._decode(payload)
            token = payload["continuation"]
        assert token is not None
        # The pool is gone; the minting process is gone.  The token
        # alone resumes against a fresh mapping of the same snapshot.
        with open_snapshot(snapshot_path, verify=False) as graph:
            endpoint = LocalEndpoint(graph)
            response = endpoint.query(continuation=token, page_size=3)
            rows.extend(response.result.rows)
            while not response.complete:
                response = endpoint.query(
                    continuation=response.continuation, page_size=3
                )
                rows.extend(response.result.rows)
            assert rendered(rows) == expected


class TestRouting:
    def test_ring_is_deterministic_and_covers_all_slots(self):
        ring = _HashRing(4)
        again = _HashRing(4)
        keys = [f"session-{i}" for i in range(200)]
        slots = [ring.slot_for(key) for key in keys]
        assert slots == [again.slot_for(key) for key in keys]
        assert set(slots) == {0, 1, 2, 3}

    def test_affinity_until_imbalance_then_steal(self, snapshot_path):
        with make_pool(snapshot_path, workers=2) as frontend:
            affinity = frontend._ring.slot_for("session-x")
            other = 1 - affinity
            loads = [0, 0]
            assert frontend._route("session-x", loads) == (
                affinity, "affinity",
            )
            loads[affinity] = frontend.steal_threshold
            assert frontend._route("session-x", loads) == (other, "steal")


class TestStaleness:
    def test_heartbeat_reports_stale_after_snapshot_swap(
        self, tmp_path, philosophy_graph
    ):
        path = str(tmp_path / "swap.snapshot")
        write_snapshot(philosophy_graph, path)
        with make_pool(path) as frontend:
            assert set(frontend.heartbeat().values()) == {"ok"}
            # The classic deploy: rebuild, then rename over the live
            # file.  Workers keep serving the pinned old pages but must
            # report themselves stale.
            write_snapshot(philosophy_graph, path + ".new")
            os.replace(path + ".new", path)
            assert set(frontend.heartbeat().values()) == {"stale"}
