"""Unit tests for the exponential-backoff retry policy."""

import random

import pytest

from repro.serve import BackoffPolicy, RetryBudgetExceeded


class TestSchedule:
    def test_exponential_without_jitter(self):
        policy = BackoffPolicy(base_ms=25.0, multiplier=2.0, max_ms=1600.0)
        assert [policy.delay_ms(k) for k in range(7)] == [
            25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0,
        ]

    def test_capped_at_max(self):
        policy = BackoffPolicy(base_ms=25.0, multiplier=2.0, max_ms=1600.0)
        assert policy.delay_ms(50) == 1600.0

    def test_attempt_must_be_non_negative(self):
        with pytest.raises(ValueError):
            BackoffPolicy().delay_ms(-1)


class TestJitter:
    def test_jitter_stays_within_fraction(self):
        policy = BackoffPolicy(base_ms=100.0, jitter=0.2)
        rng = random.Random(42)
        for _ in range(200):
            delay = policy.delay_ms(0, rng)
            assert 80.0 <= delay <= 120.0

    def test_jitter_actually_varies(self):
        policy = BackoffPolicy(base_ms=100.0, jitter=0.2)
        rng = random.Random(42)
        delays = {policy.delay_ms(0, rng) for _ in range(20)}
        assert len(delays) > 1

    def test_seeded_rng_is_deterministic(self):
        policy = BackoffPolicy()
        a = [policy.delay_ms(k, random.Random(7)) for k in range(5)]
        b = [policy.delay_ms(k, random.Random(7)) for k in range(5)]
        assert a == b

    def test_zero_jitter_ignores_rng(self):
        policy = BackoffPolicy(jitter=0.0)
        assert policy.delay_ms(3, random.Random(1)) == policy.delay_ms(3)


class TestBudget:
    def test_budget_exhaustion_raises(self):
        policy = BackoffPolicy(max_retries=3)
        for attempt in range(3):
            policy.next_delay_ms(attempt, "transient")
        with pytest.raises(RetryBudgetExceeded):
            policy.next_delay_ms(3, "transient")

    def test_zero_budget_never_retries(self):
        policy = BackoffPolicy(max_retries=0)
        with pytest.raises(RetryBudgetExceeded):
            policy.next_delay_ms(0, "transient")


class TestValidation:
    def test_bad_schedules_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_ms=0)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(base_ms=100, max_ms=50)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(max_retries=-1)
