"""Open-loop load generator: seeded determinism, the Zipf scenario
mix, the Poisson arrival process, and scheduling onto a frontend."""

import pytest

from repro.datasets.dbpedia import OWL_THING
from repro.endpoint import SimClock
from repro.obs.metrics import REGISTRY
from repro.serve import LoadGenerator, Scenario, demo_scenarios

SCENARIOS = [
    Scenario("alpha", ("SELECT ?s WHERE { ?s ?p ?o } LIMIT 5",)),
    Scenario("beta", ("SELECT ?p WHERE { ?s ?p ?o } LIMIT 5",)),
    Scenario("gamma", ("SELECT ?o WHERE { ?s ?p ?o } LIMIT 5",)),
]


class RecordingFrontend:
    def __init__(self):
        self.clock = SimClock()
        self.submitted = []

    def submit(self, key, queries, arrive_ms=None):
        self.submitted.append((key, tuple(queries), arrive_ms))
        return True


class TestArrivalProcess:
    def test_same_seed_same_schedule(self):
        draws = [
            list(LoadGenerator(SCENARIOS, seed=7).draw(50))
            for _ in range(2)
        ]
        assert draws[0] == draws[1]

    def test_different_seeds_differ(self):
        one = list(LoadGenerator(SCENARIOS, seed=1).draw(50))
        two = list(LoadGenerator(SCENARIOS, seed=2).draw(50))
        assert one != two

    def test_arrivals_are_strictly_ordered_in_time(self):
        times = [
            at_ms
            for _, _, at_ms, _ in LoadGenerator(SCENARIOS, seed=5).draw(100)
        ]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_mean_interarrival_tracks_the_rate(self):
        rate = 200.0
        generator = LoadGenerator(SCENARIOS, rate_per_s=rate, seed=3)
        arrivals = list(generator.draw(500))
        mean_gap_ms = arrivals[-1][2] / len(arrivals)
        assert 1000.0 / rate * 0.7 < mean_gap_ms < 1000.0 / rate * 1.3

    def test_zipf_mix_favours_the_first_scenario(self):
        generator = LoadGenerator(SCENARIOS, seed=11, exponent=1.0)
        counts = {scenario.name: 0 for scenario in SCENARIOS}
        for _, _, _, name in generator.draw(400):
            counts[name] += 1
        assert counts["alpha"] > counts["beta"] > 0
        assert counts["alpha"] > counts["gamma"] > 0

    def test_arrival_metrics_move(self):
        metric = REGISTRY.get("repro_loadgen_arrivals_total")
        generator = LoadGenerator(SCENARIOS, seed=13)
        before = metric.labels(scenario="alpha").value
        names = [name for _, _, _, name in generator.draw(20)]
        assert metric.labels(scenario="alpha").value == (
            before + names.count("alpha")
        )


class TestScheduling:
    def test_schedule_preregisters_every_arrival(self):
        frontend = RecordingFrontend()
        generator = LoadGenerator(SCENARIOS, seed=9)
        keys = generator.schedule(frontend, 25)
        assert len(keys) == 25
        assert [entry[0] for entry in frontend.submitted] == keys
        times = [entry[2] for entry in frontend.submitted]
        assert times == sorted(times)
        # Session keys are unique even when scenarios repeat.
        assert len(set(keys)) == 25

    def test_scheduled_queries_come_from_the_scenario(self):
        frontend = RecordingFrontend()
        LoadGenerator(SCENARIOS, seed=4).schedule(frontend, 10)
        by_name = {s.name: s.queries for s in SCENARIOS}
        for key, queries, _ in frontend.submitted:
            name = key.rsplit("-", 1)[0]
            assert queries == by_name[name]


class TestConstruction:
    def test_demo_scenarios_cover_the_demo_walks(self):
        scenarios = demo_scenarios(OWL_THING)
        assert [s.name for s in scenarios] == [
            "overview",
            "influence_path",
            "heavy_aggregation",
            "error_detection",
            "hierarchy_walk",
        ]
        assert all(s.queries for s in scenarios)

    def test_hierarchy_walk_is_path_heavy(self):
        """The PR 8 scenario must actually exercise a closure path."""
        walk = next(
            s for s in demo_scenarios(OWL_THING) if s.name == "hierarchy_walk"
        )
        assert any(
            "subClassOf>*" in q or "subClassOf>+" in q for q in walk.queries
        )

    def test_empty_scenario_list_rejected(self):
        with pytest.raises(ValueError):
            LoadGenerator([])

    def test_non_positive_rate_rejected(self):
        with pytest.raises(ValueError):
            LoadGenerator(SCENARIOS, rate_per_s=0.0)

    def test_scenario_needs_queries(self):
        with pytest.raises(ValueError):
            Scenario("empty", ())
