"""Unit tests for the backend circuit breaker's state machine."""

import pytest

from repro.endpoint import SimClock
from repro.serve import CircuitBreaker
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(
        clock=clock, failure_threshold=3, recovery_ms=1000.0
    )


def trip(breaker):
    for _ in range(breaker.failure_threshold):
        breaker.record_failure()


class TestClosed:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failures_below_threshold_stay_closed(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_success_resets_the_failure_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED


class TestOpen:
    def test_threshold_consecutive_failures_open(self, breaker):
        trip(breaker)
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_retry_after_counts_down_on_the_clock(self, breaker, clock):
        trip(breaker)
        assert breaker.retry_after_ms() == 1000.0
        clock.advance(400)
        assert breaker.retry_after_ms() == 600.0

    def test_open_until_recovery_window_elapses(self, breaker, clock):
        trip(breaker)
        clock.advance(999)
        assert breaker.state == OPEN
        clock.advance(1)
        assert breaker.state == HALF_OPEN


class TestHalfOpen:
    def test_admits_bounded_probes(self, breaker, clock):
        trip(breaker)
        clock.advance(1000)
        assert breaker.allow()       # the single trial slot
        assert not breaker.allow()   # everyone else short-circuits

    def test_probe_success_closes(self, breaker, clock):
        trip(breaker)
        clock.advance(1000)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self, breaker, clock):
        trip(breaker)
        clock.advance(1000)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        # A fresh recovery window starts from the re-open.
        assert breaker.retry_after_ms() == 1000.0

    def test_full_cycle_can_repeat(self, breaker, clock):
        for _ in range(2):
            trip(breaker)
            assert breaker.state == OPEN
            clock.advance(1000)
            assert breaker.allow()
            breaker.record_success()
            assert breaker.state == CLOSED


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_ms=0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_trials=0)

    def test_default_clock_created(self):
        assert isinstance(CircuitBreaker().clock, SimClock)
