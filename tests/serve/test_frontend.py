"""Serving-frontend tests: the concurrency soak with injected faults,
admission control, deadlines, retry exhaustion, and the breaker's
fallback ladder — all on simulated time, all deterministic."""

import pytest

from repro.core import Direction, MemberPattern, property_chart_query
from repro.datasets.dbpedia import OWL_THING
from repro.endpoint import (
    FaultInjector,
    LocalEndpoint,
    RemoteEndpoint,
    SimClock,
    SimulatedVirtuosoServer,
)
from repro.perf import (
    Decomposer,
    ElindaEndpoint,
    HeavyQueryStore,
    SpecializedIndexes,
)
from repro.serve import (
    BackoffPolicy,
    CircuitBreaker,
    ServeConfig,
    ServeFrontend,
)

# Three pages at the serving page size of 50.
PAGED = "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 150"
SMALL = "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 10"
CHART = property_chart_query(MemberPattern.of_type(OWL_THING), Direction.OUTGOING)

# One exploration click-path per session, cycled over the pool.
QUERY_POOL = [
    [PAGED, SMALL],
    [SMALL, CHART],
    [CHART, PAGED, SMALL],
]


def _multiset(rows):
    return sorted(
        tuple(sorted((k, v.n3()) for k, v in row.items())) for row in rows
    )


def make_stack(
    graph,
    clock,
    transient_rate=0.0,
    max_active=8,
    queue_capacity=64,
    max_retries=25,
    deadline_ms=None,
    hvs_threshold_ms=0.001,
):
    """The CLI's serving stack, hand-built for tests."""
    faults = FaultInjector(transient_rate=transient_rate, seed=11)
    server = SimulatedVirtuosoServer(graph, clock=clock, faults=faults)
    elinda = ElindaEndpoint(
        RemoteEndpoint(server),
        hvs=HeavyQueryStore(threshold_ms=hvs_threshold_ms, clock=clock),
        decomposer=Decomposer(SpecializedIndexes(graph), clock=clock),
        breaker=CircuitBreaker(
            clock=clock, failure_threshold=5, recovery_ms=500.0
        ),
    )
    config = ServeConfig(
        max_active=max_active,
        queue_capacity=queue_capacity,
        page_size=50,
        deadline_ms=deadline_ms,
        backoff=BackoffPolicy(max_retries=max_retries),
        seed=3,
    )
    return ServeFrontend(elinda, clock=clock, config=config), server


class TestSoak:
    def test_32_sessions_with_faults_all_complete_correctly(
        self, dbpedia_graph, clock
    ):
        """The PR's acceptance soak: 32 concurrent sessions, 10%
        injected transient faults, every session completes and its
        paged rows match a fault-free one-shot execution — whichever
        layer (HVS, decomposer, backend) answered."""
        frontend, server = make_stack(
            dbpedia_graph, clock, transient_rate=0.1
        )
        sessions = {
            f"s{i:02d}": QUERY_POOL[i % len(QUERY_POOL)] for i in range(32)
        }
        for key, queries in sessions.items():
            assert frontend.submit(key, queries)
        reports = frontend.run()

        reference = LocalEndpoint(dbpedia_graph, clock=SimClock())
        expected = {
            q: _multiset(reference.query(q).result.rows)
            for queries in QUERY_POOL
            for q in queries
        }
        assert len(reports) == 32
        for key, queries in sessions.items():
            report = reports[key]
            assert report.outcome == "completed", report.error
            assert len(report.rows) == len(queries)
            for query_text, rows in zip(queries, report.rows):
                assert _multiset(rows) == expected[query_text], (
                    f"session {key} got wrong rows for {query_text!r}"
                )
        # The soak genuinely exercised the fault path ...
        assert server.faults.injected_transient > 0
        # ... and every injected fault was absorbed by a retry.
        total_retries = sum(r.retries for r in reports.values())
        assert total_retries >= server.faults.injected_transient

    def test_hvs_entries_are_version_true_after_soak(
        self, dbpedia_graph, clock
    ):
        """Nothing wrong or partial leaks into the HVS under load:
        every entry holds the full, correct answer for its query at the
        current dataset version."""
        frontend, _ = make_stack(dbpedia_graph, clock, transient_rate=0.1)
        for i in range(8):
            frontend.submit(i, QUERY_POOL[i % len(QUERY_POOL)])
        frontend.run()
        hvs = frontend.endpoint.hvs
        assert len(hvs) > 0  # single-page answers did get cached
        reference = LocalEndpoint(dbpedia_graph, clock=SimClock())
        for normalized, entry in hvs.entries().items():
            # Version-true against the endpoint's view of the dataset
            # (an opaque remote backend pins its version at 0).
            assert entry.dataset_version == frontend.endpoint.dataset_version
            expected = reference.query(normalized).result
            assert _multiset(entry.result.rows) == _multiset(expected.rows)

    def test_multi_page_answers_never_recorded(self, dbpedia_graph, clock):
        from repro.perf import normalize_query

        frontend, _ = make_stack(dbpedia_graph, clock)
        frontend.submit("only", [PAGED])
        reports = frontend.run()
        assert reports["only"].pages > 1  # it really paged
        assert normalize_query(PAGED) not in frontend.endpoint.hvs

    def test_fault_free_run_has_no_retries(self, dbpedia_graph, clock):
        frontend, _ = make_stack(dbpedia_graph, clock)
        for i in range(4):
            frontend.submit(i, [SMALL])
        reports = frontend.run()
        assert all(r.outcome == "completed" for r in reports.values())
        assert all(r.retries == 0 for r in reports.values())


class TestAdmission:
    def test_queue_overflow_is_rejected_at_the_door(
        self, dbpedia_graph, clock
    ):
        frontend, _ = make_stack(
            dbpedia_graph, clock, max_active=1, queue_capacity=1
        )
        assert frontend.submit("a", [SMALL])
        assert not frontend.submit("b", [SMALL])
        reports = frontend.run()
        assert reports["a"].outcome == "completed"
        assert reports["b"].outcome == "rejected"
        assert "queue is full" in reports["b"].error

    def test_duplicate_keys_rejected(self, dbpedia_graph, clock):
        frontend, _ = make_stack(dbpedia_graph, clock)
        frontend.submit("a", [SMALL])
        with pytest.raises(ValueError):
            frontend.submit("a", [SMALL])

    def test_empty_sessions_rejected(self, dbpedia_graph, clock):
        frontend, _ = make_stack(dbpedia_graph, clock)
        with pytest.raises(ValueError):
            frontend.submit("a", [])

    def test_queued_sessions_admitted_as_slots_free(
        self, dbpedia_graph, clock
    ):
        frontend, _ = make_stack(
            dbpedia_graph, clock, max_active=2, queue_capacity=64
        )
        for i in range(6):
            frontend.submit(i, [SMALL])
        reports = frontend.run()
        assert all(r.outcome == "completed" for r in reports.values())
        # Later sessions waited in the queue: admission happened after
        # earlier sessions had already moved the shared clock.
        first_two = {reports[0].admitted_at_ms, reports[1].admitted_at_ms}
        assert reports[5].admitted_at_ms > max(first_two)


class TestFailureModes:
    def test_deadline_exceeded_fails_the_session(self, dbpedia_graph, clock):
        frontend, _ = make_stack(dbpedia_graph, clock, deadline_ms=1.0)
        frontend.submit("slow", [PAGED])
        reports = frontend.run()
        assert reports["slow"].outcome == "failed"
        assert "deadline exceeded" in reports["slow"].error

    def test_retry_budget_exhaustion_fails_the_session(
        self, dbpedia_graph, clock
    ):
        frontend, _ = make_stack(
            dbpedia_graph, clock, transient_rate=1.0, max_retries=2
        )
        frontend.submit("doomed", [SMALL])
        reports = frontend.run()
        assert reports["doomed"].outcome == "failed"
        assert "still failing" in reports["doomed"].error
        assert reports["doomed"].retries == 2

    def test_billed_latency_includes_backoff_waits(
        self, dbpedia_graph, clock
    ):
        calm, _ = make_stack(dbpedia_graph, SimClock())
        calm.submit("s", [SMALL])
        baseline = calm.run()["s"].billed_ms
        stormy, _ = make_stack(dbpedia_graph, clock, transient_rate=0.5)
        stormy.submit("s", [SMALL])
        report = stormy.run()["s"]
        if report.retries:  # seed-dependent, but rate 0.5 makes it sure
            assert report.billed_ms > baseline


class TestFallbackLadder:
    def test_hvs_cached_queries_survive_a_dead_backend(
        self, dbpedia_graph, clock
    ):
        """The breaker degrades along the paper's ladder: with the
        backend 100% failing, a session asking an HVS-cached question
        completes without a single retry, while a session that needs
        the backend exhausts its budget and fails."""
        frontend, server = make_stack(
            dbpedia_graph, clock, max_retries=3
        )
        elinda = frontend.endpoint
        # Seed the HVS with a fault-free one-shot (complete answers
        # only — the serving path's partial pages are never recorded).
        seeded = elinda.query(SMALL)
        assert seeded.complete
        assert elinda.hvs.lookup(SMALL, elinda.dataset_version) is not None
        server.faults.transient_rate = 1.0
        frontend.submit("cached", [SMALL])
        frontend.submit("uncached", [PAGED])
        reports = frontend.run()
        assert reports["cached"].outcome == "completed"
        assert reports["cached"].retries == 0
        assert _multiset(reports["cached"].rows[0]) == _multiset(
            seeded.result.rows
        )
        assert reports["uncached"].outcome == "failed"

    def test_decomposable_queries_survive_a_dead_backend(
        self, dbpedia_graph, clock
    ):
        frontend, server = make_stack(dbpedia_graph, clock, max_retries=3)
        server.faults.transient_rate = 1.0
        frontend.submit("chart", [CHART])
        reports = frontend.run()
        assert reports["chart"].outcome == "completed"
        assert reports["chart"].retries == 0

    def test_breaker_opens_under_sustained_failure(
        self, dbpedia_graph, clock
    ):
        frontend, server = make_stack(
            dbpedia_graph, clock, transient_rate=1.0, max_retries=6
        )
        frontend.submit("doomed", [SMALL])
        frontend.run()
        breaker = frontend.endpoint.breaker
        # Five consecutive failures tripped it; the remaining attempts
        # short-circuited (some may have probed through half-open).
        assert breaker._consecutive_failures >= 0
        assert server.faults.injected_transient < 7  # short-circuits saved requests
