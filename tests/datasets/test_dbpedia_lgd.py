"""Tests for the synthetic dataset generators (DBpedia-like and
LinkedGeoData-like) including determinism and the scale knob."""

import pytest

from repro.datasets import (
    DBpediaConfig,
    generate_dbpedia,
    generate_lgd,
    inject_birthplace_errors,
    planted_errors,
    recommended_scale,
)
from repro.datasets.dbpedia import OWL_THING
from repro.rdf import OWL, RDF, RDFS


class TestDBpediaGenerator:
    def test_deterministic(self, dbpedia_config):
        a = generate_dbpedia(dbpedia_config)
        b = generate_dbpedia(dbpedia_config)
        assert set(a.graph) == set(b.graph)

    def test_different_seeds_differ(self):
        a = generate_dbpedia(DBpediaConfig(seed=1))
        b = generate_dbpedia(DBpediaConfig(seed=2))
        assert set(a.graph) != set(b.graph)

    def test_root_is_owl_thing(self, dbpedia):
        assert dbpedia.facts["thing"] == OWL_THING
        assert OWL_THING == OWL.term("Thing")

    def test_scale_changes_size(self, dbpedia_config, dbpedia):
        bigger = generate_dbpedia(DBpediaConfig(scale=dbpedia_config.scale * 2))
        assert len(bigger.graph) > len(dbpedia.graph)

    def test_scaled_counts_follow_paper_numbers(self):
        config = DBpediaConfig(scale=0.001)
        dataset = generate_dbpedia(config)
        politician = dataset.facts["politician"]
        assert dataset.instance_count(politician) == round(40_000 * 0.001)

    def test_recommended_scale_inverse_of_config_scale(self):
        small = DBpediaConfig(scale=0.0001)
        large = DBpediaConfig(scale=0.001)
        assert recommended_scale(small) > recommended_scale(large)

    def test_type_chains_materialised(self, dbpedia, dbpedia_graph):
        philosopher = dbpedia.facts["philosopher"]
        person = dbpedia.facts["person"]
        agent = dbpedia.facts["agent"]
        rdf_type = RDF.term("type")
        for instance in list(dbpedia.instances_of[philosopher])[:5]:
            for cls in (philosopher, person, agent, OWL_THING):
                assert (instance, rdf_type, cls) in dbpedia_graph

    def test_every_class_declared_and_labelled(self, dbpedia, dbpedia_graph):
        rdf_type = RDF.term("type")
        owl_class = OWL.term("Class")
        for cls in dbpedia.children[dbpedia.facts["thing"]]:
            assert (cls, rdf_type, owl_class) in dbpedia_graph
            assert any(dbpedia_graph.objects(cls, RDFS.term("label")))

    def test_place_is_largest_agent_second(self, dbpedia):
        thing = dbpedia.facts["thing"]
        top = sorted(
            dbpedia.children[thing],
            key=lambda cls: -dbpedia.instance_count(cls),
        )
        assert top[0] == dbpedia.facts["place"]
        assert top[1] == dbpedia.facts["agent"]

    def test_vienna_born_philosophers_exist(self, dbpedia, dbpedia_graph):
        from repro.rdf import DBO

        vienna = dbpedia.facts["vienna"]
        born = set(
            dbpedia_graph.subjects(DBO.term("birthPlace"), vienna)
        )
        assert set(dbpedia.facts["vienna_born"]) <= born

    def test_influencer_targets_include_scientists(self, dbpedia):
        scientist = dbpedia.facts["scientist"]
        targets = set(dbpedia.facts["influencer_targets"])
        assert targets & dbpedia.instances_of[scientist]

    def test_ground_truth_instance_sets_match_graph(self, dbpedia, dbpedia_graph):
        rdf_type = RDF.term("type")
        philosopher = dbpedia.facts["philosopher"]
        from_graph = set(dbpedia_graph.subjects(rdf_type, philosopher))
        assert from_graph == dbpedia.instances_of[philosopher]


class TestLGDGenerator:
    def test_no_root_class(self, lgd):
        rdf_type = RDF.term("type")
        assert not list(lgd.graph.subjects(rdf_type, OWL_THING))

    def test_no_hierarchy(self, lgd):
        assert not list(
            lgd.graph.triples(None, RDFS.term("subClassOf"), None)
        )

    def test_classes_declared(self, lgd):
        rdf_type = RDF.term("type")
        declared = set(lgd.graph.subjects(rdf_type, OWL.term("Class")))
        assert set(lgd.facts["classes"]) == declared

    def test_every_feature_has_coordinates(self, lgd):
        from repro.datasets import LGDO

        for cls in lgd.facts["classes"]:
            for instance in lgd.instances_of.get(cls, ()):
                assert any(lgd.graph.objects(instance, LGDO.term("lat")))
                assert any(lgd.graph.objects(instance, LGDO.term("long")))

    def test_zipf_spread(self, lgd):
        counts = sorted(
            (lgd.instance_count(cls) for cls in lgd.facts["classes"]),
            reverse=True,
        )
        assert counts[0] > counts[-1]

    def test_deterministic(self):
        assert set(generate_lgd().graph) == set(generate_lgd().graph)


class TestErrorInjection:
    def test_plants_exact_count(self, dbpedia_config):
        dataset = generate_dbpedia(dbpedia_config)
        planted = inject_birthplace_errors(dataset, count=4)
        assert len(planted) == 4
        from repro.rdf import DBO

        for person, food in planted:
            assert (person, DBO.term("birthPlace"), food) in dataset.graph
        assert planted_errors(dataset) == planted

    def test_objects_are_foods(self, dbpedia_config):
        dataset = generate_dbpedia(dbpedia_config)
        food = dataset.facts["food"]
        for _person, planted_food in inject_birthplace_errors(dataset, count=3):
            assert planted_food in dataset.instances_of[food]

    def test_rejects_zero_count(self, dbpedia_config):
        dataset = generate_dbpedia(dbpedia_config)
        with pytest.raises(ValueError):
            inject_birthplace_errors(dataset, count=0)

    def test_accumulates(self, dbpedia_config):
        dataset = generate_dbpedia(dbpedia_config)
        inject_birthplace_errors(dataset, count=2)
        inject_birthplace_errors(dataset, count=3)
        assert len(planted_errors(dataset)) == 5

    def test_no_errors_initially(self, dbpedia):
        assert planted_errors(dbpedia) == []
