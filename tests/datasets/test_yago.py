"""Tests for the YAGO-like dataset and its eLinda interplay (rdfs:Class
declarations, deep chains, multilingual labels)."""

import pytest

from repro.core import ClassSearchIndex, StatisticsService
from repro.datasets import SCHEMA, YagoConfig, generate_yago
from repro.endpoint import LocalEndpoint
from repro.explorer import ExplorerSession, SettingsForm
from repro.rdf import OWL, RDF, RDFS


@pytest.fixture(scope="module")
def yago():
    return generate_yago()


@pytest.fixture()
def yago_endpoint(yago):
    return LocalEndpoint(yago.graph)


class TestGenerator:
    def test_deterministic(self):
        assert set(generate_yago().graph) == set(generate_yago().graph)

    def test_classes_declared_rdfs_not_owl(self, yago):
        rdf_type = RDF.term("type")
        rdfs_class = RDFS.term("Class")
        owl_class = OWL.term("Class")
        declared = set(yago.graph.subjects(rdf_type, rdfs_class))
        assert yago.facts["root"] in declared
        assert not list(yago.graph.subjects(rdf_type, owl_class))

    def test_deep_chains_materialised(self, yago):
        """Instances of the deepest leaves are typed all the way up."""
        classes = yago.facts["classes"]
        astro = classes["Astrophysicist"]
        root = yago.facts["root"]
        members = yago.instances_of.get(astro, set())
        assert members
        for instance in list(members)[:3]:
            for ancestor in ("Physicist", "Scientist", "Person"):
                assert instance in yago.instances_of[classes[ancestor]]
            assert instance in yago.instances_of[root]

    def test_multilingual_labels(self, yago):
        classes = yago.facts["classes"]
        labels = list(yago.graph.objects(classes["Movie"], RDFS.term("label")))
        languages = {l.language for l in labels}
        assert len(languages) == YagoConfig().languages

    def test_instance_total(self, yago):
        root = yago.facts["root"]
        assert yago.instance_count(root) >= YagoConfig().total_instances

    def test_config_validation(self):
        with pytest.raises(ValueError):
            YagoConfig(languages=0)


class TestElindaOverYago:
    def test_autocomplete_finds_rdfs_classes(self, yago_endpoint):
        """Section 3.2: the search list collects owl:Class *or*
        rdfs:Class subjects."""
        index = ClassSearchIndex.build(yago_endpoint)
        matches = index.complete("Astro")
        assert any(e.cls == SCHEMA.term("Astrophysicist") for e in matches)

    def test_session_over_schema_thing(self, yago, yago_endpoint):
        settings = SettingsForm(root_class=yago.facts["root"])
        session = ExplorerSession(yago_endpoint, settings=settings)
        chart = session.current_pane.subclass_chart()
        labels = {bar.label.local_name for bar in chart}
        assert "Person" in labels and "Place" in labels

    def test_deep_drilldown(self, yago, yago_endpoint):
        settings = SettingsForm(root_class=yago.facts["root"])
        session = ExplorerSession(yago_endpoint, settings=settings)
        pane = session.current_pane
        for name in ("Person", "Scientist", "Physicist", "Astrophysicist"):
            pane = session.open_subclass_pane(pane, SCHEMA.term(name))
        assert pane.instance_count == yago.instance_count(
            SCHEMA.term("Astrophysicist")
        )
        assert pane.trail.depth == 5

    def test_closure_matches_ground_truth(self, yago, yago_endpoint):
        service = StatisticsService(yago_endpoint)
        root = yago.facts["root"]
        assert service.all_subclasses(root) == yago.subclasses_of(root)

    def test_dataset_statistics(self, yago, yago_endpoint):
        service = StatisticsService(yago_endpoint)
        stats = service.dataset_statistics()
        assert stats.total_triples == len(yago.graph)
        # All declared classes found via the rdfs:Class UNION branch.
        assert stats.class_count == len(yago.facts["classes"])
