"""Unit tests for the Zipf helpers and the ontology builder."""

import random

import pytest

from repro.datasets import OntologyBuilder, allocate_zipf, pick_weighted, zipf_weights
from repro.rdf import Namespace, RDF, RDFS, OWL, URI


class TestZipf:
    def test_weights_sum_to_one(self):
        weights = zipf_weights(10)
        assert sum(weights) == pytest.approx(1.0)

    def test_weights_decrease(self):
        weights = zipf_weights(10, 1.2)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_zero_count(self):
        assert zipf_weights(0) == []
        assert allocate_zipf(100, 0) == []

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(5, -1)

    def test_allocation_sums_to_total(self):
        shares = allocate_zipf(1000, 7, 1.1)
        assert sum(shares) == 1000
        assert shares[0] >= shares[-1]

    def test_allocation_small_total(self):
        shares = allocate_zipf(3, 10)
        assert sum(shares) == 3

    def test_pick_weighted_deterministic_with_seed(self):
        rng1, rng2 = random.Random(1), random.Random(1)
        items = ["a", "b", "c"]
        weights = [0.5, 0.3, 0.2]
        picks1 = [pick_weighted(rng1, items, weights) for _ in range(20)]
        picks2 = [pick_weighted(rng2, items, weights) for _ in range(20)]
        assert picks1 == picks2

    def test_pick_weighted_length_mismatch(self):
        with pytest.raises(ValueError):
            pick_weighted(random.Random(), ["a"], [0.5, 0.5])


class TestOntologyBuilder:
    @pytest.fixture()
    def builder(self):
        return OntologyBuilder(
            Namespace("http://onto/"), Namespace("http://res/"), seed=1
        )

    def test_add_class_declares(self, builder):
        cls = builder.add_class("Animal")
        assert (cls, RDF.term("type"), OWL.term("Class")) in builder.graph
        labels = list(builder.graph.objects(cls, RDFS.term("label")))
        assert labels[0].lexical == "animal"

    def test_camel_case_label(self, builder):
        cls = builder.add_class("BigAnimal")
        label = next(builder.graph.objects(cls, RDFS.term("label")))
        assert label.lexical == "big animal"

    def test_subclass_link(self, builder):
        animal = builder.add_class("Animal")
        dog = builder.add_class("Dog", parent=animal)
        assert (dog, RDFS.term("subClassOf"), animal) in builder.graph
        assert builder.ancestors(dog) == [animal]

    def test_duplicate_class_rejected(self, builder):
        builder.add_class("Animal")
        with pytest.raises(ValueError):
            builder.add_class("Animal")

    def test_unknown_parent_rejected(self, builder):
        with pytest.raises(ValueError):
            builder.add_class("Dog", parent=URI("http://onto/Nope"))

    def test_custom_uri(self, builder):
        root = builder.add_class("Thing", uri=OWL.term("Thing"))
        assert root == OWL.term("Thing")

    def test_instances_materialise_chain(self, builder):
        animal = builder.add_class("Animal")
        dog = builder.add_class("Dog", parent=animal)
        instances = builder.add_instances(dog, 3)
        assert len(instances) == 3
        for instance in instances:
            assert (instance, RDF.term("type"), dog) in builder.graph
            assert (instance, RDF.term("type"), animal) in builder.graph
        assert builder.instances_of[animal] == set(instances)

    def test_instances_without_chain(self, builder):
        animal = builder.add_class("Animal")
        dog = builder.add_class("Dog", parent=animal)
        (instance,) = builder.add_instances(dog, 1, materialise_chain=False)
        assert (instance, RDF.term("type"), animal) not in builder.graph

    def test_cover_with_property_exact_coverage(self, builder):
        cls = builder.add_class("Animal")
        instances = builder.add_instances(cls, 100)
        prop, covered = builder.cover_with_property(instances, "legs", 0.25)
        assert len(covered) == 25
        assert builder.graph.count(None, prop, None) == 25

    def test_cover_with_objects_and_fanout(self, builder):
        cls = builder.add_class("Animal")
        instances = builder.add_instances(cls, 10)
        targets = builder.add_instances(cls, 5)
        prop, covered = builder.cover_with_property(
            instances, "friend", 1.0, objects=targets, fanout=2
        )
        # Values drawn from targets; fanout may dedupe but >= 1 per member.
        assert builder.graph.count(None, prop, None) >= len(instances)
        for triple in builder.graph.triples(None, prop, None):
            assert triple.object in set(targets)

    def test_cover_invalid_coverage(self, builder):
        cls = builder.add_class("Animal")
        instances = builder.add_instances(cls, 5)
        with pytest.raises(ValueError):
            builder.cover_with_property(instances, "p", 1.5)

    def test_build_snapshot(self, builder):
        animal = builder.add_class("Animal")
        builder.add_instances(animal, 2)
        dataset = builder.build(facts={"root": animal})
        assert dataset.instance_count(animal) == 2
        assert dataset.facts["root"] == animal
        assert dataset.primary_instance_counts[animal] == 2

    def test_subclasses_of(self, builder):
        a = builder.add_class("A")
        b = builder.add_class("B", parent=a)
        c = builder.add_class("C", parent=b)
        dataset = builder.build()
        assert dataset.subclasses_of(a) == {b, c}
        assert dataset.subclasses_of(a, transitive=False) == {b}

    def test_determinism(self):
        def make():
            builder = OntologyBuilder(
                Namespace("http://onto/"), Namespace("http://res/"), seed=99
            )
            cls = builder.add_class("Animal")
            instances = builder.add_instances(cls, 50)
            builder.cover_with_property(instances, "legs", 0.4)
            return set(builder.graph)

        assert make() == make()
