"""Unit tests for the algebra optimizer passes and the TopK operator."""

import pytest

from repro.rdf import RDF, Graph, Literal, URI
from repro.sparql.algebra import (
    BGP,
    AlgebraNode,
    Distinct,
    Filter,
    Join,
    LeftJoin,
    OrderBy,
    Slice,
    TopK,
    Union,
    ValuesTable,
    translate_query,
)
from repro.sparql.ast import TriplePatternNode, Var
from repro.sparql.evaluator import Evaluator
from repro.sparql.optimizer import PASS_NAMES, optimize
from repro.sparql.parser import parse_query

EX = "http://example.org/"


def _walk(node):
    yield node
    for name in ("input", "left", "right"):
        child = getattr(node, name, None)
        if isinstance(child, AlgebraNode):
            yield from _walk(child)
    for child in getattr(node, "branches", None) or []:
        yield from _walk(child)


def _find(node, kind):
    return [n for n in _walk(node) if isinstance(n, kind)]


def _plan(query_text, graph=None, passes=None):
    raw = translate_query(parse_query(query_text))
    optimized, report = optimize(raw, graph=graph, passes=passes)
    return raw, optimized, report


@pytest.fixture
def graph():
    g = Graph()
    for i in range(10):
        g.add(URI(f"{EX}s{i}"), URI(f"{EX}common"), Literal(str(i)))
    g.add(URI(f"{EX}s0"), URI(f"{EX}rare"), URI(f"{EX}o"))
    g.add(URI(f"{EX}s1"), RDF.term("type"), URI(f"{EX}Thing"))
    return g


class TestConstantFolding:
    def test_true_filter_removed(self):
        _, optimized, report = _plan(
            f"SELECT ?s WHERE {{ ?s <{EX}common> ?o FILTER(1 = 1) }}"
        )
        assert not _find(optimized, Filter)
        assert not _find(optimized, BGP)[0].filters
        assert "constant_folding" in report.passes_applied() or (
            "filter_pushdown" in report.passes_applied()
        )

    def test_false_filter_becomes_empty_table(self, graph):
        _, optimized, _ = _plan(
            f"SELECT ?s WHERE {{ ?s <{EX}common> ?o FILTER(1 = 2) }}"
        )
        tables = _find(optimized, ValuesTable)
        assert tables and all(not t.rows for t in tables)
        result = Evaluator(graph).evaluate(optimized)
        assert list(result) == []

    def test_folds_constant_subexpression(self):
        _, optimized, report = _plan(
            f"SELECT ?s WHERE {{ ?s <{EX}common> ?o FILTER(?o = STR(1 + 2)) }}"
        )
        assert ("constant_folding", "folded STR(1 + 2)") in report.notes or any(
            name == "constant_folding" for name, _ in report.notes
        )


class TestFilterPushdown:
    def test_filter_inlined_into_bgp(self):
        _, optimized, _ = _plan(
            f"SELECT ?s WHERE {{ ?s <{EX}common> ?o FILTER(?o = \"3\") }}"
        )
        assert not _find(optimized, Filter)
        bgp = _find(optimized, BGP)[0]
        assert len(bgp.filters) == 1

    def test_conjunction_split_and_inlined(self):
        _, optimized, _ = _plan(
            f"SELECT ?s WHERE {{ ?s <{EX}common> ?o FILTER(?o != \"1\" && ?o != \"2\") }}"
        )
        assert not _find(optimized, Filter)
        assert len(_find(optimized, BGP)[0].filters) == 2

    def test_filter_pushed_below_optional(self):
        _, optimized, _ = _plan(
            f"SELECT * WHERE {{ ?s <{EX}common> ?o "
            f"OPTIONAL {{ ?s <{EX}rare> ?x }} FILTER(?o = \"0\") }}"
        )
        left_joins = _find(optimized, LeftJoin)
        assert left_joins
        assert isinstance(left_joins[0].left, BGP)
        assert left_joins[0].left.filters
        assert not _find(optimized, Filter)

    def test_filter_distributed_over_union(self):
        _, optimized, _ = _plan(
            f"SELECT ?s WHERE {{ {{ ?s <{EX}common> ?o }} UNION "
            f"{{ ?s <{EX}rare> ?o }} FILTER(BOUND(?s)) }}"
        )
        union = _find(optimized, Union)[0]
        for branch in union.branches:
            assert _find(branch, BGP)[0].filters
        assert not _find(optimized, Filter)

    def test_exists_filter_never_moved(self):
        _, optimized, _ = _plan(
            f"SELECT ?s WHERE {{ ?s <{EX}common> ?o "
            f"FILTER(EXISTS {{ ?s <{EX}rare> ?x }}) }}"
        )
        assert _find(optimized, Filter), "EXISTS must stay a Filter operator"
        assert not _find(optimized, BGP)[0].filters

    def test_correctness_against_unoptimized(self, graph):
        query = parse_query(
            f"SELECT ?s ?o WHERE {{ ?s <{EX}common> ?o FILTER(?o > \"3\") }}"
        )
        raw = translate_query(query)
        optimized, _ = optimize(raw, graph=graph)
        before = Evaluator(graph).run_translated(query, raw)
        after = Evaluator(graph).run_translated(query, optimized)
        assert sorted(
            tuple(sorted(r.items())) for r in after.rows
        ) == sorted(tuple(sorted(r.items())) for r in before.rows)


class TestBGPMerge:
    def test_adjacent_bgps_merged(self):
        p1 = TriplePatternNode(Var("s"), URI(f"{EX}common"), Var("o"))
        p2 = TriplePatternNode(Var("s"), URI(f"{EX}rare"), Var("x"))
        node = Join(BGP((p1,)), BGP((p2,)))
        optimized, report = optimize(node, passes=["bgp_merge"])
        assert isinstance(optimized, BGP)
        assert optimized.patterns == (p1, p2)
        assert "bgp_merge" in report.passes_applied()


class TestProjectionPushdown:
    def test_projection_pushed_below_join(self):
        _, optimized, report = _plan(
            f"SELECT ?s WHERE {{ ?s <{EX}common> ?o "
            f"OPTIONAL {{ ?s <{EX}rare> ?x }} }}",
            passes=["projection_pushdown"],
        )
        assert "projection_pushdown" in report.passes_applied()

    def test_distinct_blocks_pruning(self):
        _, _, report = _plan(
            f"SELECT DISTINCT * WHERE {{ ?s <{EX}common> ?o "
            f"OPTIONAL {{ ?s <{EX}rare> ?x }} }}",
            passes=["projection_pushdown"],
        )
        assert "projection_pushdown" not in report.passes_applied()


class TestStatsReorder:
    def test_rare_pattern_runs_first(self, graph):
        _, optimized, report = _plan(
            f"SELECT ?s WHERE {{ ?s <{EX}common> ?o . ?s <{EX}rare> ?x }}",
            graph=graph,
        )
        bgp = _find(optimized, BGP)[0]
        assert bgp.preordered
        assert bgp.patterns[0].predicate == URI(f"{EX}rare")

    def test_reorder_without_graph_is_noop(self):
        _, optimized, _ = _plan(
            f"SELECT ?s WHERE {{ ?s <{EX}common> ?o . ?s <{EX}rare> ?x }}",
            passes=["stats_reorder"],
        )
        assert not _find(optimized, BGP)[0].preordered

    def test_statistics_follow_graph_version(self, graph):
        stats = graph.statistics()
        assert stats is graph.statistics(), "statistics cached per version"
        graph.add(URI(f"{EX}s9"), URI(f"{EX}rare"), URI(f"{EX}o2"))
        assert graph.statistics() is not stats, "cache dropped on update"


class TestTopKFusion:
    def test_order_limit_fuses(self):
        _, optimized, report = _plan(
            f"SELECT ?s ?o WHERE {{ ?s <{EX}common> ?o }} "
            "ORDER BY ?o LIMIT 3 OFFSET 2"
        )
        top = _find(optimized, TopK)
        assert top and top[0].limit == 3 and top[0].offset == 2
        assert not _find(optimized, OrderBy)
        assert not _find(optimized, Slice)
        assert "top_k_fusion" in report.passes_applied()

    def test_order_without_limit_does_not_fuse(self):
        _, optimized, _ = _plan(
            f"SELECT ?s WHERE {{ ?s <{EX}common> ?o }} ORDER BY ?o"
        )
        assert not _find(optimized, TopK)
        assert _find(optimized, OrderBy)

    def test_distinct_between_order_and_limit_blocks_fusion(self):
        _, optimized, _ = _plan(
            f"SELECT DISTINCT ?s WHERE {{ ?s <{EX}common> ?o }} "
            "ORDER BY ?s LIMIT 3"
        )
        assert not _find(optimized, TopK)
        assert _find(optimized, Distinct)

    def test_topk_matches_sort_and_slice_with_ties(self):
        g = Graph()
        for i in range(20):
            # Only 4 distinct keys -> plenty of ties for the heap to
            # break by arrival order, exactly like the stable sort.
            g.add(URI(f"{EX}s{i}"), URI(f"{EX}p"), Literal(str(i % 4)))
        for limit, offset in [(1, 0), (3, 2), (5, 0), (50, 3), (2, 40)]:
            text = (
                f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o }} "
                f"ORDER BY ?o LIMIT {limit} OFFSET {offset}"
            )
            query = parse_query(text)
            raw = translate_query(query)
            optimized, _ = optimize(raw, passes=["top_k_fusion"])
            assert _find(optimized, TopK)
            before = Evaluator(g).run_translated(query, raw)
            after = Evaluator(g).run_translated(query, optimized)
            assert after.rows == before.rows, text

    def test_topk_limit_zero_yields_nothing(self, graph):
        query = parse_query(
            f"SELECT ?s WHERE {{ ?s <{EX}common> ?o }} ORDER BY ?o LIMIT 0"
        )
        optimized, _ = optimize(translate_query(query))
        result = Evaluator(graph).run_translated(query, optimized)
        assert result.rows == []


class TestOptimizeAPI:
    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError):
            optimize(BGP(()), passes=["not_a_pass"])

    def test_pass_names_complete(self):
        assert list(PASS_NAMES) == [
            "constant_folding",
            "bgp_merge",
            "filter_pushdown",
            "projection_pushdown",
            "stats_reorder",
            "top_k_fusion",
        ]

    def test_public_evaluate(self, graph):
        bgp = BGP(
            (TriplePatternNode(Var("s"), URI(f"{EX}rare"), Var("o")),)
        )
        rows = list(Evaluator(graph).evaluate(bgp))
        assert rows == [{"s": URI(f"{EX}s0"), "o": URI(f"{EX}o")}]


class TestDistinctKeying:
    def test_distinct_handles_heterogeneous_rows(self, graph):
        # OPTIONAL produces rows with different bound-variable sets;
        # DISTINCT must key them consistently without re-sorting each row.
        text = (
            f"SELECT DISTINCT ?s ?x WHERE {{ ?s <{EX}common> ?o "
            f"OPTIONAL {{ ?s <{EX}rare> ?x }} }}"
        )
        result = Evaluator(graph).run(parse_query(text))
        seen = [tuple(sorted(r.items())) for r in result.rows]
        assert len(seen) == len(set(seen))
        assert len(result.rows) == 10
