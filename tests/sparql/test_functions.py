"""Unit tests for SPARQL expression functions and operator semantics."""

import pytest

from repro.rdf import BNode, Literal, URI
from repro.sparql.ast import (
    AggregateExpr,
    BinaryExpr,
    FunctionCall,
    TermExpr,
    UnaryExpr,
    Var,
    VarExpr,
)
from repro.sparql.errors import ExpressionError
from repro.sparql.functions import (
    effective_boolean_value,
    evaluate_aggregate,
    evaluate_expression,
    term_order_key,
)

INT = "http://www.w3.org/2001/XMLSchema#integer"
BOOL = "http://www.w3.org/2001/XMLSchema#boolean"


def lit(value, **kwargs):
    return Literal(value, **kwargs)


def call(name, *terms):
    return FunctionCall(name, tuple(TermExpr(t) for t in terms))


def ev(expr, binding=None):
    return evaluate_expression(expr, binding or {})


class TestEBV:
    @pytest.mark.parametrize(
        "term,expected",
        [
            (lit(True), True),
            (lit(False), False),
            (lit(0), False),
            (lit(3), True),
            (lit(""), False),
            (lit("x"), True),
            (lit("x", language="en"), True),
        ],
    )
    def test_ebv(self, term, expected):
        assert effective_boolean_value(term) is expected

    def test_ebv_of_uri_errors(self):
        with pytest.raises(ExpressionError):
            effective_boolean_value(URI("http://a"))


class TestComparison:
    def test_numeric_equality_across_datatypes(self):
        e = BinaryExpr("=", TermExpr(lit(5)), TermExpr(lit(5.0)))
        assert ev(e).lexical == "true"

    def test_string_ordering(self):
        e = BinaryExpr("<", TermExpr(lit("apple")), TermExpr(lit("banana")))
        assert ev(e).lexical == "true"

    def test_numeric_ordering(self):
        assert ev(BinaryExpr(">", TermExpr(lit(10)), TermExpr(lit(2)))).lexical == "true"

    def test_boolean_ordering(self):
        assert (
            ev(BinaryExpr("<", TermExpr(lit(False)), TermExpr(lit(True)))).lexical
            == "true"
        )

    def test_incomparable_raises(self):
        with pytest.raises(ExpressionError):
            ev(BinaryExpr("<", TermExpr(lit("a")), TermExpr(lit(5))))

    def test_uri_equality(self):
        e = BinaryExpr("=", TermExpr(URI("http://a")), TermExpr(URI("http://a")))
        assert ev(e).lexical == "true"


class TestLogic:
    def test_or_short_circuits_error(self):
        # error || true  ->  true (SPARQL error tolerance)
        bad = BinaryExpr("/", TermExpr(lit(1)), TermExpr(lit(0)))
        e = BinaryExpr("||", bad, TermExpr(lit(True)))
        assert ev(e).lexical == "true"

    def test_or_error_and_false_raises(self):
        bad = BinaryExpr("/", TermExpr(lit(1)), TermExpr(lit(0)))
        e = BinaryExpr("||", bad, TermExpr(lit(False)))
        with pytest.raises(ExpressionError):
            ev(e)

    def test_and_with_error_and_false(self):
        bad = BinaryExpr("/", TermExpr(lit(1)), TermExpr(lit(0)))
        e = BinaryExpr("&&", bad, TermExpr(lit(False)))
        assert ev(e).lexical == "false"

    def test_not(self):
        assert ev(UnaryExpr("!", TermExpr(lit(True)))).lexical == "false"


class TestArithmetic:
    def test_integer_addition(self):
        out = ev(BinaryExpr("+", TermExpr(lit(2)), TermExpr(lit(3))))
        assert out.lexical == "5"
        assert out.datatype == INT

    def test_integer_division_exact(self):
        out = ev(BinaryExpr("/", TermExpr(lit(6)), TermExpr(lit(3))))
        assert out.lexical == "2"

    def test_division_inexact_is_float(self):
        out = ev(BinaryExpr("/", TermExpr(lit(7)), TermExpr(lit(2))))
        assert float(out.lexical) == 3.5

    def test_division_by_zero_errors(self):
        with pytest.raises(ExpressionError):
            ev(BinaryExpr("/", TermExpr(lit(1)), TermExpr(lit(0))))

    def test_unary_minus(self):
        assert ev(UnaryExpr("-", TermExpr(lit(5)))).lexical == "-5"

    def test_arithmetic_on_string_errors(self):
        with pytest.raises(ExpressionError):
            ev(BinaryExpr("+", TermExpr(lit("a")), TermExpr(lit(1))))


class TestStringBuiltins:
    def test_str_of_uri(self):
        assert ev(call("STR", URI("http://a"))).lexical == "http://a"

    def test_lang_and_langmatches(self):
        assert ev(call("LANG", lit("x", language="en"))).lexical == "en"
        assert ev(call("LANGMATCHES", lit("en-gb"), lit("en"))).lexical == "true"
        assert ev(call("LANGMATCHES", lit("en"), lit("*"))).lexical == "true"
        assert ev(call("LANGMATCHES", lit(""), lit("*"))).lexical == "false"

    def test_datatype(self):
        assert ev(call("DATATYPE", lit(5))).value == INT

    def test_case_functions(self):
        assert ev(call("UCASE", lit("abc"))).lexical == "ABC"
        assert ev(call("LCASE", lit("ABC"))).lexical == "abc"

    def test_strlen_concat(self):
        assert ev(call("STRLEN", lit("abcd"))).lexical == "4"
        assert ev(call("CONCAT", lit("a"), lit("b"), lit("c"))).lexical == "abc"

    def test_substr_one_indexed(self):
        assert ev(
            FunctionCall(
                "SUBSTR",
                (TermExpr(lit("hello")), TermExpr(lit(2)), TermExpr(lit(3))),
            )
        ).lexical == "ell"

    def test_contains_starts_ends(self):
        assert ev(call("CONTAINS", lit("hello"), lit("ell"))).lexical == "true"
        assert ev(call("STRSTARTS", lit("hello"), lit("he"))).lexical == "true"
        assert ev(call("STRENDS", lit("hello"), lit("lo"))).lexical == "true"

    def test_strbefore_strafter(self):
        assert ev(call("STRBEFORE", lit("a-b"), lit("-"))).lexical == "a"
        assert ev(call("STRAFTER", lit("a-b"), lit("-"))).lexical == "b"
        assert ev(call("STRAFTER", lit("ab"), lit("-"))).lexical == ""

    def test_replace(self):
        assert ev(
            FunctionCall(
                "REPLACE",
                (TermExpr(lit("banana")), TermExpr(lit("an")), TermExpr(lit("X"))),
            )
        ).lexical == "bXXa"

    def test_replace_preserves_language(self):
        out = ev(
            FunctionCall(
                "REPLACE",
                (
                    TermExpr(lit("abc", language="en")),
                    TermExpr(lit("b")),
                    TermExpr(lit("z")),
                ),
            )
        )
        assert out.language == "en"

    def test_encode_for_uri(self):
        assert ev(call("ENCODE_FOR_URI", lit("a b/c"))).lexical == "a%20b%2Fc"

    def test_regex_flags(self):
        assert ev(
            FunctionCall(
                "REGEX",
                (TermExpr(lit("HELLO")), TermExpr(lit("hello")), TermExpr(lit("i"))),
            )
        ).lexical == "true"

    def test_bad_regex_errors(self):
        with pytest.raises(ExpressionError):
            ev(call("REGEX", lit("x"), lit("(unclosed")))


class TestTermBuiltins:
    def test_type_checks(self):
        assert ev(call("ISIRI", URI("http://a"))).lexical == "true"
        assert ev(call("ISLITERAL", lit("x"))).lexical == "true"
        assert ev(call("ISNUMERIC", lit(5))).lexical == "true"
        assert ev(call("ISNUMERIC", lit("5"))).lexical == "false"

    def test_isblank(self):
        expr = FunctionCall("ISBLANK", (VarExpr(Var("b")),))
        assert (
            evaluate_expression(expr, {"b": BNode("x")}).lexical == "true"
        )

    def test_sameterm_exact(self):
        assert ev(call("SAMETERM", lit(5), lit(5))).lexical == "true"
        assert ev(call("SAMETERM", lit(5), lit(5.0))).lexical == "false"

    def test_iri_from_string(self):
        assert ev(call("IRI", lit("http://a"))) == URI("http://a")

    def test_bound(self):
        expr = FunctionCall("BOUND", (VarExpr(Var("x")),))
        assert evaluate_expression(expr, {"x": lit(1)}).lexical == "true"
        assert evaluate_expression(expr, {}).lexical == "false"

    def test_if_and_coalesce(self):
        e = FunctionCall(
            "IF", (TermExpr(lit(True)), TermExpr(lit("yes")), TermExpr(lit("no")))
        )
        assert ev(e).lexical == "yes"
        bad = BinaryExpr("/", TermExpr(lit(1)), TermExpr(lit(0)))
        e = FunctionCall("COALESCE", (bad, TermExpr(lit("fallback"))))
        assert ev(e).lexical == "fallback"

    def test_numeric_functions(self):
        assert ev(call("ABS", lit(-3))).lexical == "3"
        assert ev(call("CEIL", lit(2.1))).lexical == "3"
        assert ev(call("FLOOR", lit(2.9))).lexical == "2"
        assert ev(call("ROUND", lit(2.5))).lexical == "3"

    def test_unbound_variable_errors(self):
        with pytest.raises(ExpressionError):
            evaluate_expression(VarExpr(Var("nope")), {})


class TestAggregateFunctions:
    def test_count_skips_errors(self):
        group = [{"v": lit(1)}, {}, {"v": lit(2)}]
        agg = AggregateExpr("COUNT", VarExpr(Var("v")))
        assert evaluate_aggregate(agg, group).lexical == "2"

    def test_count_star_counts_all(self):
        agg = AggregateExpr("COUNT", None)
        assert evaluate_aggregate(agg, [{}, {}, {}]).lexical == "3"

    def test_sum_empty_group_is_zero(self):
        agg = AggregateExpr("SUM", VarExpr(Var("v")))
        assert evaluate_aggregate(agg, []).lexical == "0"

    def test_avg_empty_group_errors(self):
        agg = AggregateExpr("AVG", VarExpr(Var("v")))
        with pytest.raises(ExpressionError):
            evaluate_aggregate(agg, [])

    def test_distinct_dedupe(self):
        group = [{"v": lit(1)}, {"v": lit(1)}, {"v": lit(2)}]
        agg = AggregateExpr("SUM", VarExpr(Var("v")), distinct=True)
        assert evaluate_aggregate(agg, group).lexical == "3"

    def test_sample_returns_first(self):
        group = [{"v": lit("a")}, {"v": lit("b")}]
        agg = AggregateExpr("SAMPLE", VarExpr(Var("v")))
        assert evaluate_aggregate(agg, group).lexical == "a"

    def test_min_max_strings(self):
        group = [{"v": lit("b")}, {"v": lit("a")}]
        assert evaluate_aggregate(
            AggregateExpr("MIN", VarExpr(Var("v"))), group
        ).lexical == "a"
        assert evaluate_aggregate(
            AggregateExpr("MAX", VarExpr(Var("v"))), group
        ).lexical == "b"

    def test_aggregate_outside_group_errors(self):
        with pytest.raises(ExpressionError):
            ev(AggregateExpr("COUNT", None))


class TestOrderKey:
    def test_total_order_across_kinds(self):
        terms = [lit("z"), URI("http://a"), None, BNode("b"), lit(5)]
        keys = [term_order_key(t) for t in terms]
        ordered = sorted(keys)
        # unbound < bnode < URI < literal
        assert ordered[0] == term_order_key(None)
        assert ordered[1] == term_order_key(BNode("b"))
        assert ordered[2] == term_order_key(URI("http://a"))

    def test_numeric_literals_by_value(self):
        assert term_order_key(lit(2)) < term_order_key(lit(10))
        assert term_order_key(Literal("9", datatype=INT)) < term_order_key(
            Literal("10", datatype=INT)
        )
