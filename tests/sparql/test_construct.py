"""Unit tests for CONSTRUCT queries, including over the HTTP/JSON wire
and through the chart engine's bar export."""

import pytest

from repro.rdf import BNode, Graph, URI
from repro.sparql import GraphResult, evaluate
from repro.sparql.errors import SparqlSyntaxError

P = (
    "PREFIX dbo: <http://dbpedia.org/ontology/>\n"
    "PREFIX dbr: <http://dbpedia.org/resource/>\n"
    "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n"
)


class TestConstructEvaluation:
    def test_template_instantiation(self, philosophy_graph):
        result = evaluate(
            philosophy_graph,
            P + "CONSTRUCT { ?s dbo:inspiredBy ?o } "
            "WHERE { ?s dbo:influencedBy ?o }",
        )
        assert isinstance(result, GraphResult)
        assert len(result) == 3
        predicates = {t.predicate.local_name for t in result.graph}
        assert predicates == {"inspiredBy"}

    def test_short_form(self, philosophy_graph):
        result = evaluate(
            philosophy_graph, P + "CONSTRUCT WHERE { ?s a dbo:Philosopher }"
        )
        assert len(result) == 3
        assert all(t.predicate.value.endswith("#type") for t in result.graph)

    def test_short_form_rejects_filters(self, philosophy_graph):
        with pytest.raises(SparqlSyntaxError):
            evaluate(
                philosophy_graph,
                P + "CONSTRUCT WHERE { ?s a dbo:Philosopher FILTER(?s != dbr:Plato) }",
            )

    def test_multi_triple_template(self, philosophy_graph):
        result = evaluate(
            philosophy_graph,
            P + "CONSTRUCT { ?s a dbo:Influencer . ?o a dbo:Influencee } "
            "WHERE { ?o dbo:influencedBy ?s }",
        )
        types = {t.object.local_name for t in result.graph}
        assert types == {"Influencer", "Influencee"}

    def test_unbound_template_triples_skipped(self, philosophy_graph):
        result = evaluate(
            philosophy_graph,
            P + "CONSTRUCT { ?s dbo:place ?p } WHERE { "
            "?s a dbo:Philosopher OPTIONAL { ?s dbo:birthPlace ?p } }",
        )
        # Kant has no birthPlace -> his template triple is skipped.
        assert len(result) == 2

    def test_literal_subject_skipped(self, philosophy_graph):
        result = evaluate(
            philosophy_graph,
            P + "CONSTRUCT { ?l dbo:of ?s } WHERE { ?s rdfs:label ?l }",
        )
        assert len(result) == 0

    def test_blank_nodes_freshened_per_solution(self, philosophy_graph):
        result = evaluate(
            philosophy_graph,
            P + "CONSTRUCT { ?s dbo:link _:n . _:n dbo:to ?o } "
            "WHERE { ?s dbo:influencedBy ?o }",
        )
        bnodes = {
            t.object for t in result.graph if isinstance(t.object, BNode)
        }
        # Three solutions -> three distinct blank nodes.
        assert len(bnodes) == 3

    def test_limit_offset(self, philosophy_graph):
        full = evaluate(
            philosophy_graph,
            P + "CONSTRUCT WHERE { ?s a dbo:Philosopher }",
        )
        page = evaluate(
            philosophy_graph,
            P + "CONSTRUCT WHERE { ?s a dbo:Philosopher } LIMIT 2",
        )
        assert len(page) == 2
        assert set(page.graph) <= set(full.graph)

    def test_deduplicates(self, philosophy_graph):
        result = evaluate(
            philosophy_graph,
            P + "CONSTRUCT { ?s a dbo:Mentioned } WHERE { ?s ?p ?o }",
        )
        subjects = {t.subject for t in result.graph}
        assert len(result) == len(subjects)

    def test_ntriples_round_trip(self, philosophy_graph):
        result = evaluate(
            philosophy_graph, P + "CONSTRUCT WHERE { ?s dbo:influencedBy ?o }"
        )
        from repro.rdf import parse_ntriples

        reparsed = Graph(parse_ntriples(result.to_ntriples()))
        assert set(reparsed) == set(result.graph)

    def test_paths_rejected_in_template(self, philosophy_graph):
        with pytest.raises(SparqlSyntaxError):
            evaluate(
                philosophy_graph,
                P + "CONSTRUCT { ?s dbo:a/dbo:b ?o } WHERE { ?s ?p ?o }",
            )


class TestConstructOverTheWire:
    def test_remote_construct(self, virtuoso_server):
        from repro.endpoint import RemoteEndpoint

        remote = RemoteEndpoint(virtuoso_server)
        graph = remote.construct(
            P + "CONSTRUCT WHERE { ?s a dbo:Philosopher } LIMIT 5"
        )
        assert len(graph) == 5

    def test_construct_helper_type_checks(self, philosophy_endpoint):
        with pytest.raises(TypeError):
            philosophy_endpoint.construct("ASK { ?s ?p ?o }")
        with pytest.raises(TypeError):
            philosophy_endpoint.select(
                P + "CONSTRUCT WHERE { ?s a dbo:Philosopher }"
            )


class TestBarExport:
    def test_export_bar_subgraph(self, philosophy_endpoint, philosophy_graph):
        from repro.core import ChartEngine
        from repro.rdf import DBO, OWL

        engine = ChartEngine(philosophy_endpoint, OWL.term("Thing"))
        chart = engine.initial_chart()
        agent_bar = chart[DBO.term("Agent")]
        subgraph = engine.export_bar(agent_bar)
        # Every triple's subject is an Agent member.
        members = set(philosophy_graph.subjects(None, DBO.term("Agent")))
        from repro.rdf import RDF

        members = set(
            philosophy_graph.subjects(RDF.term("type"), DBO.term("Agent"))
        )
        assert {t.subject for t in subgraph} == members
        # All of their outgoing triples are present.
        expected = sum(
            1
            for t in philosophy_graph.triples()
            if t.subject in members
        )
        assert len(subgraph) == expected
