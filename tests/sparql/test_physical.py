"""The physical operator tree: equivalence with the recursive
evaluator, the save/load protocol, and bounded per-call progress."""

import pytest

from repro.rdf import Graph, Literal, URI
from repro.sparql.algebra import translate_query
from repro.sparql.evaluator import Evaluator
from repro.sparql.optimizer import optimize
from repro.sparql.parser import parse_query
from repro.sparql.physical import PlanStateError
from repro.sparql.planner import PhysicalPlanFactory, build_physical_plan

EX = "http://ex.org/"


def _uri(name: str) -> URI:
    return URI(EX + name)


@pytest.fixture()
def graph() -> Graph:
    g = Graph()
    for i in range(12):
        person = _uri(f"person{i:02d}")
        g.add(person, _uri("type"), _uri("Person"))
        g.add(person, _uri("age"), Literal(20 + i))
        g.add(person, _uri("name"), Literal(f"name{i:02d}"))
        if i % 3 == 0:
            g.add(person, _uri("city"), _uri(f"city{i % 2}"))
        g.add(person, _uri("knows"), _uri(f"person{(i + 1) % 12:02d}"))
    for i in range(2):
        g.add(_uri(f"city{i}"), _uri("type"), _uri("City"))
    return g


QUERIES = [
    f"SELECT ?s ?a WHERE {{ ?s <{EX}type> <{EX}Person> . ?s <{EX}age> ?a }}",
    f"SELECT ?s ?c WHERE {{ ?s <{EX}age> ?a . OPTIONAL {{ ?s <{EX}city> ?c }} }}",
    f"SELECT DISTINCT ?c WHERE {{ ?s <{EX}city> ?c }}",
    f"SELECT ?s ?a WHERE {{ ?s <{EX}age> ?a }} ORDER BY DESC(?a) LIMIT 4",
    f"SELECT ?c (COUNT(?s) AS ?n) WHERE {{ ?s <{EX}city> ?c }} GROUP BY ?c",
    "SELECT ?s WHERE { { ?s <%stype> <%sPerson> } UNION { ?s <%stype> <%sCity> } } LIMIT 9"
    % (EX, EX, EX, EX),
    f"SELECT ?s WHERE {{ ?s <{EX}age> ?a . FILTER(?a > 25) }}",
    f"SELECT ?s WHERE {{ ?s <{EX}type> <{EX}Person> . "
    f"MINUS {{ ?s <{EX}city> ?c }} }}",
    f"SELECT (STR(?a) AS ?b) WHERE {{ ?s <{EX}age> ?a }} OFFSET 3 LIMIT 5",
    f"ASK {{ ?s <{EX}city> <{EX}city1> }}",
    f"SELECT ?o WHERE {{ <{EX}person00> <{EX}knows>+ ?o }} LIMIT 6",
    f"SELECT ?s ?v WHERE {{ VALUES ?v {{ 1 2 }} ?s <{EX}city> <{EX}city0> }}",
    f"SELECT ?s ?d WHERE {{ ?s <{EX}age> ?a . BIND(?a * 2 AS ?d) "
    f"FILTER(?d < 50) }} ORDER BY ?d",
]


def _compile(graph: Graph, text: str):
    query = parse_query(text)
    algebra, _ = optimize(translate_query(query), graph=graph)
    return query, algebra


def _evaluator_run(graph: Graph, query, algebra):
    evaluator = Evaluator(graph)
    result = evaluator.run_translated(query, algebra)
    return result, evaluator.stats


def _stats_tuple(stats):
    return (
        stats.intermediate_bindings,
        stats.pattern_scans,
        stats.groups,
        stats.results,
    )


@pytest.mark.parametrize("text", QUERIES)
def test_physical_matches_evaluator(graph, text):
    from repro.sparql.executor import run_to_completion

    query, algebra = _compile(graph, text)
    expected, expected_stats = _evaluator_run(graph, query, algebra)
    plan = PhysicalPlanFactory(query, algebra).instantiate(graph)
    actual = run_to_completion(plan)
    if hasattr(expected, "value"):
        assert actual.value == expected.value
    else:
        assert actual.vars == expected.vars
        assert actual.rows == expected.rows  # values AND order
    assert _stats_tuple(plan.stats) == _stats_tuple(expected_stats)


@pytest.mark.parametrize("text", [q for q in QUERIES if not q.startswith("ASK")])
def test_save_load_at_every_row_boundary(graph, text):
    """Suspending+restoring after each row reproduces the exact run."""
    query, algebra = _compile(graph, text)
    expected, _ = _evaluator_run(graph, query, algebra)
    factory = PhysicalPlanFactory(query, algebra)

    plan = factory.instantiate(graph)
    rows = []
    while not plan.root.done:
        row = plan.root.next()
        if row is None:
            continue
        rows.append(row)
        state = plan.save()
        plan = factory.instantiate(graph)
        plan.load(state)
    assert rows == expected.rows


def test_save_state_is_json_serialisable(graph):
    import json

    query, algebra = _compile(graph, QUERIES[4])
    plan = PhysicalPlanFactory(query, algebra).instantiate(graph)
    for _ in range(5):
        plan.root.next()
    state = plan.save()
    restored = json.loads(json.dumps(state))
    clone = PhysicalPlanFactory(query, algebra).instantiate(graph)
    clone.load(restored)


def test_load_rejects_mismatched_plan_shape(graph):
    q1, a1 = _compile(graph, QUERIES[0])
    q2, a2 = _compile(graph, QUERIES[4])
    state = PhysicalPlanFactory(q1, a1).instantiate(graph).save()
    other = PhysicalPlanFactory(q2, a2).instantiate(graph)
    with pytest.raises(PlanStateError):
        other.load(state)


def test_construct_has_no_physical_plan(graph):
    from repro.sparql.errors import SparqlEvalError

    with pytest.raises(SparqlEvalError):
        build_physical_plan(
            graph, f"CONSTRUCT {{ ?s ?p ?o }} WHERE {{ ?s ?p ?o }}"
        )


def test_pipeline_breaker_reports_bounded_progress(graph):
    """ORDER BY buffers in bounded batches: next() yields None (progress,
    no row) before the first row — the hook time-slicing relies on."""
    plan = build_physical_plan(
        graph, f"SELECT ?s WHERE {{ ?s ?p ?o }} ORDER BY ?s"
    )
    none_steps = 0
    first_row = None
    while first_row is None and not plan.root.done:
        first_row = plan.root.next()
        if first_row is None:
            none_steps += 1
    assert first_row is not None
    assert none_steps > 0


def test_operator_counters_and_walk(graph):
    from repro.sparql.executor import run_to_completion

    plan = build_physical_plan(
        graph,
        f"SELECT ?s ?a WHERE {{ ?s <{EX}type> <{EX}Person> . "
        f"?s <{EX}age> ?a }} ORDER BY ?a LIMIT 3",
    )
    run_to_completion(plan)
    operators = list(plan.root.walk())
    assert len(operators) >= 3
    assert plan.root.rows_produced == 3
    for op in operators:
        assert op.calls > 0
        assert op.wall_s >= 0.0
        assert isinstance(op.detail(), str)


def test_resume_does_not_double_bill_scans(graph):
    """A restored scan skips already-delivered candidates without
    re-charging pattern_scans for the replayed scan start."""
    text = f"SELECT ?s ?a WHERE {{ ?s <{EX}age> ?a }}"
    query, algebra = _compile(graph, text)
    factory = PhysicalPlanFactory(query, algebra)

    one_shot = factory.instantiate(graph)
    from repro.sparql.executor import run_to_completion

    run_to_completion(one_shot)

    resumed = factory.instantiate(graph)
    total_rows = 0
    while not resumed.root.done:
        row = resumed.root.next()
        if row is not None:
            total_rows += 1
            state = resumed.save()
            resumed_stats_carrier = factory.instantiate(graph)
            # Stats live on the runtime, not the token: carry them over
            # the way the executor's restore_plan does.
            resumed_stats_carrier.runtime.stats.merge(resumed.stats)
            resumed_stats_carrier.load(state)
            resumed = resumed_stats_carrier
    assert total_rows == 12
    assert resumed.stats.pattern_scans == one_shot.stats.pattern_scans
    assert (
        resumed.stats.intermediate_bindings
        == one_shot.stats.intermediate_bindings
    )
