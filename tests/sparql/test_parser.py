"""Unit tests for the SPARQL parser."""

import pytest

from repro.rdf import URI
from repro.sparql import SparqlSyntaxError, parse_query
from repro.sparql.ast import (
    AggregateExpr,
    AskQuery,
    BindPattern,
    BinaryExpr,
    FilterPattern,
    FunctionCall,
    OptionalPattern,
    SelectQuery,
    SubSelectPattern,
    TriplePatternNode,
    UnionPattern,
    ValuesPattern,
    Var,
    VarExpr,
)

PREFIXES = "PREFIX dbo: <http://dbpedia.org/ontology/>\n"


class TestSelectBasics:
    def test_simple_select(self):
        q = parse_query("SELECT ?s WHERE { ?s ?p ?o . }")
        assert isinstance(q, SelectQuery)
        assert [p.var.name for p in q.projections] == ["s"]
        assert len(q.where.children) == 1
        assert isinstance(q.where.children[0], TriplePatternNode)

    def test_select_star(self):
        q = parse_query("SELECT * WHERE { ?s ?p ?o }")
        assert q.projections is None

    def test_distinct_and_reduced(self):
        assert parse_query("SELECT DISTINCT ?s WHERE {?s ?p ?o}").distinct
        assert parse_query("SELECT REDUCED ?s WHERE {?s ?p ?o}").reduced

    def test_where_keyword_optional(self):
        q = parse_query("SELECT ?s { ?s ?p ?o }")
        assert isinstance(q, SelectQuery)

    def test_prefix_expansion(self):
        q = parse_query(PREFIXES + "SELECT ?s WHERE { ?s a dbo:Person . }")
        triple = q.where.children[0]
        assert triple.object == URI("http://dbpedia.org/ontology/Person")
        assert triple.predicate.value.endswith("#type")

    def test_unknown_prefix_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?s WHERE { ?s a nope:X . }")

    def test_from_clause_skipped(self):
        q = parse_query(
            "SELECT ?s FROM <http://example.org/g> WHERE { ?s ?p ?o }"
        )
        assert isinstance(q, SelectQuery)

    def test_trailing_garbage_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?s WHERE { ?s ?p ?o } extra:stuff")

    def test_projection_expression(self):
        q = parse_query("SELECT (COUNT(?s) AS ?n) WHERE { ?s ?p ?o }")
        assert q.projections[0].var == Var("n")
        assert isinstance(q.projections[0].expression, AggregateExpr)

    def test_virtuoso_style_projection_without_parens(self):
        # The paper's Section 4 query: SELECT ?p COUNT(?p) AS ?count ...
        q = parse_query(
            "SELECT ?p COUNT(?p) AS ?count SUM(?sp) AS ?spp "
            "WHERE { ?s ?p ?o } GROUP BY ?p"
        )
        names = [p.var.name for p in q.projections]
        assert names == ["p", "count", "spp"]


class TestTriplesBlocks:
    def test_semicolon_comma(self):
        q = parse_query(
            PREFIXES
            + "SELECT ?s WHERE { ?s a dbo:Person ; dbo:knows ?a, ?b . }"
        )
        triples = [
            c for c in q.where.children if isinstance(c, TriplePatternNode)
        ]
        assert len(triples) == 3
        assert all(t.subject == Var("s") for t in triples)

    def test_literal_objects(self):
        q = parse_query(
            'SELECT ?s WHERE { ?s ?p "x"@en . ?s ?q 5 . ?s ?r -2.5 . ?s ?b true . }'
        )
        triples = q.where.children
        assert triples[0].object.language == "en"
        assert triples[1].object.lexical == "5"
        assert triples[2].object.lexical == "-2.5"
        assert triples[3].object.lexical == "true"

    def test_variable_not_allowed_as_datatype(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query('SELECT ?s WHERE { ?s ?p "x"^^?t . }')


class TestGraphPatterns:
    def test_optional(self):
        q = parse_query(
            "SELECT ?s WHERE { ?s ?p ?o . OPTIONAL { ?s ?q ?r } }"
        )
        assert any(isinstance(c, OptionalPattern) for c in q.where.children)

    def test_union(self):
        q = parse_query(
            "SELECT ?s WHERE { { ?s a ?x } UNION { ?s ?p ?y } }"
        )
        union = next(
            c for c in q.where.children if isinstance(c, UnionPattern)
        )
        assert len(union.alternatives) == 2

    def test_three_way_union(self):
        q = parse_query(
            "SELECT ?s WHERE { {?s a ?x} UNION {?s ?p ?y} UNION {?s ?q ?z} }"
        )
        union = q.where.children[0]
        assert len(union.alternatives) == 3

    def test_filter(self):
        q = parse_query("SELECT ?s WHERE { ?s ?p ?o . FILTER(?o > 5) }")
        filt = next(c for c in q.where.children if isinstance(c, FilterPattern))
        assert isinstance(filt.expression, BinaryExpr)

    def test_filter_bare_builtin(self):
        q = parse_query("SELECT ?s WHERE { ?s ?p ?o . FILTER REGEX(?o, \"x\") }")
        filt = next(c for c in q.where.children if isinstance(c, FilterPattern))
        assert isinstance(filt.expression, FunctionCall)

    def test_bind(self):
        q = parse_query("SELECT ?n WHERE { ?s ?p ?o . BIND(STRLEN(?o) AS ?n) }")
        bind = next(c for c in q.where.children if isinstance(c, BindPattern))
        assert bind.var == Var("n")

    def test_values_single_var(self):
        q = parse_query(
            "SELECT ?s WHERE { VALUES ?s { <http://a> <http://b> } ?s ?p ?o }"
        )
        values = next(c for c in q.where.children if isinstance(c, ValuesPattern))
        assert len(values.rows) == 2

    def test_values_multi_var_with_undef(self):
        q = parse_query(
            "SELECT ?s ?o WHERE { VALUES (?s ?o) { (<http://a> UNDEF) } }"
        )
        values = q.where.children[0]
        assert values.rows[0][1] is None

    def test_values_arity_mismatch_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query(
                "SELECT ?s WHERE { VALUES (?s ?o) { (<http://a>) } }"
            )

    def test_subselect(self):
        q = parse_query(
            "SELECT ?s WHERE { { SELECT ?s WHERE { ?s ?p ?o } LIMIT 5 } }"
        )
        sub = q.where.children[0]
        assert isinstance(sub, SubSelectPattern)
        assert sub.query.limit == 5

    def test_graph_pattern_unsupported(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?s WHERE { GRAPH ?g { ?s ?p ?o } }")

    def test_exists_parses(self):
        from repro.sparql.ast import ExistsExpr

        q = parse_query(
            "SELECT ?s WHERE { ?s ?p ?o FILTER(EXISTS { ?s a ?c }) }"
        )
        expr = q.where.children[1].expression
        assert isinstance(expr, ExistsExpr)
        assert not expr.negated

    def test_not_exists_parses(self):
        from repro.sparql.ast import ExistsExpr

        q = parse_query(
            "SELECT ?s WHERE { ?s ?p ?o FILTER(NOT EXISTS { ?s a ?c }) }"
        )
        assert q.where.children[1].expression.negated


class TestSolutionModifiers:
    def test_group_by_having_order_limit_offset(self):
        q = parse_query(
            "SELECT ?p (COUNT(?s) AS ?n) WHERE { ?s ?p ?o } "
            "GROUP BY ?p HAVING(?n > 2) ORDER BY DESC(?n) LIMIT 10 OFFSET 5"
        )
        assert len(q.group_by) == 1
        assert len(q.having) == 1
        assert q.order_by[0].descending
        assert q.limit == 10
        assert q.offset == 5

    def test_offset_before_limit(self):
        q = parse_query("SELECT ?s WHERE { ?s ?p ?o } OFFSET 2 LIMIT 3")
        assert q.offset == 2 and q.limit == 3

    def test_order_by_plain_variable(self):
        q = parse_query("SELECT ?s WHERE { ?s ?p ?o } ORDER BY ?s")
        assert not q.order_by[0].descending

    def test_order_by_asc(self):
        q = parse_query("SELECT ?s WHERE { ?s ?p ?o } ORDER BY ASC(?s)")
        assert not q.order_by[0].descending

    def test_group_by_expression_with_as(self):
        q = parse_query(
            "SELECT ?l (COUNT(*) AS ?n) WHERE { ?s ?p ?o } "
            "GROUP BY (LCASE(STR(?o)) AS ?l)"
        )
        from repro.sparql.ast import Projection

        assert isinstance(q.group_by[0], Projection)

    def test_empty_group_by_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?s WHERE { ?s ?p ?o } GROUP BY LIMIT 2")


class TestExpressions:
    def test_precedence(self):
        q = parse_query("SELECT ?x WHERE { FILTER(?a || ?b && ?c = ?d + ?e * ?f) }")
        expr = q.where.children[0].expression
        assert expr.op == "||"
        assert expr.right.op == "&&"
        assert expr.right.right.op == "="
        assert expr.right.right.right.op == "+"
        assert expr.right.right.right.right.op == "*"

    def test_unary_not(self):
        q = parse_query("SELECT ?x WHERE { FILTER(!BOUND(?x)) }")
        expr = q.where.children[0].expression
        assert expr.op == "!"

    def test_in_and_not_in(self):
        q = parse_query(
            "SELECT ?x WHERE { FILTER(?x IN (1, 2)) FILTER(?x NOT IN (3)) }"
        )
        first, second = [c.expression for c in q.where.children]
        assert not first.negated
        assert second.negated

    def test_aggregate_distinct(self):
        q = parse_query("SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s ?p ?o }")
        agg = q.projections[0].expression
        assert agg.distinct

    def test_count_star(self):
        q = parse_query("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }")
        assert q.projections[0].expression.argument is None

    def test_star_only_for_count(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT (SUM(*) AS ?n) WHERE { ?s ?p ?o }")

    def test_group_concat_separator(self):
        q = parse_query(
            'SELECT (GROUP_CONCAT(?o ; SEPARATOR = ", ") AS ?all) '
            "WHERE { ?s ?p ?o }"
        )
        assert q.projections[0].expression.separator == ", "

    def test_builtin_arity_checked(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?x WHERE { FILTER(STRLEN(?a, ?b)) }")

    def test_if_coalesce(self):
        q = parse_query(
            "SELECT ?x WHERE { FILTER(IF(BOUND(?x), COALESCE(?a, ?b), false)) }"
        )
        assert isinstance(q.where.children[0].expression, FunctionCall)


class TestAsk:
    def test_ask(self):
        q = parse_query("ASK { ?s ?p ?o }")
        assert isinstance(q, AskQuery)

    def test_ask_with_where(self):
        q = parse_query("ASK WHERE { ?s ?p ?o }")
        assert isinstance(q, AskQuery)

    def test_construct_parses(self):
        from repro.sparql.ast import ConstructQuery

        q = parse_query("CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o }")
        assert isinstance(q, ConstructQuery)
        assert len(q.template) == 1

    def test_describe_unsupported(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("DESCRIBE <http://x> WHERE { ?s ?p ?o }")


class TestRoundTripStr:
    @pytest.mark.parametrize(
        "text",
        [
            "SELECT ?s WHERE { ?s ?p ?o . }",
            "SELECT DISTINCT ?s WHERE { ?s ?p ?o . } LIMIT 3",
            "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . } GROUP BY ?p",
        ],
    )
    def test_str_reparses(self, text):
        """str(query) must itself be parseable (stable surface form)."""
        q1 = parse_query(text)
        q2 = parse_query(str(q1))
        assert type(q1) is type(q2)
