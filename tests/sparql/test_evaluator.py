"""Unit tests for SPARQL evaluation over the micro philosophy graph."""

import pytest

from repro.rdf import DBO, DBR, Literal, URI, parse_turtle
from repro.sparql import SparqlEvalError, evaluate

P = "PREFIX dbo: <http://dbpedia.org/ontology/>\n" \
    "PREFIX dbr: <http://dbpedia.org/resource/>\n" \
    "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n" \
    "PREFIX owl: <http://www.w3.org/2002/07/owl#>\n"


def names(result, var):
    return sorted(
        term.local_name for term in result.column(var) if term is not None
    )


class TestBGP:
    def test_single_pattern(self, philosophy_graph):
        r = evaluate(philosophy_graph, P + "SELECT ?s WHERE { ?s a dbo:Philosopher }")
        assert names(r, "s") == ["Aristotle", "Kant", "Plato"]

    def test_join_on_shared_variable(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + "SELECT ?s ?place WHERE { ?s a dbo:Philosopher . "
            "?s dbo:birthPlace ?place . }",
        )
        assert names(r, "s") == ["Aristotle", "Plato"]

    def test_repeated_variable_in_pattern(self):
        g = parse_turtle(
            "@prefix ex: <http://ex/> .\n"
            "ex:a ex:knows ex:a .\nex:a ex:knows ex:b .\n"
        )
        r = evaluate(g, "SELECT ?x WHERE { ?x <http://ex/knows> ?x . }")
        assert len(r.rows) == 1
        assert r.rows[0]["x"].local_name == "a"

    def test_empty_result(self, philosophy_graph):
        r = evaluate(philosophy_graph, P + "SELECT ?s WHERE { ?s a dbo:Event }")
        assert len(r.rows) == 0

    def test_chain_join(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + "SELECT ?who WHERE { dbr:Kant dbo:influencedBy ?x . "
            "?x dbo:birthPlace ?where . ?x rdfs:label ?who . }",
        )
        # Kant influenced by Newton (Woolsthorpe) and Plato (Athens).
        assert sorted(t.lexical for t in r.column("who")) == [
            "Isaac Newton",
            "Plato",
        ]

    def test_select_star_collects_variables(self, philosophy_graph):
        r = evaluate(philosophy_graph, P + "SELECT * WHERE { ?s dbo:influencedBy ?o }")
        assert set(r.vars) == {"s", "o"}


class TestFilter:
    def test_comparison(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + 'SELECT ?s WHERE { ?s rdfs:label ?l . FILTER(STR(?l) > "K") }',
        )
        assert "Plato" in names(r, "s")

    def test_filter_error_is_false(self, philosophy_graph):
        # Comparing a URI with a number errors -> row dropped, not crash.
        r = evaluate(
            philosophy_graph,
            P + "SELECT ?s WHERE { ?s dbo:birthPlace ?p . FILTER(?p > 5) }",
        )
        assert len(r.rows) == 0

    def test_regex(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + 'SELECT ?s WHERE { ?s rdfs:label ?l . FILTER REGEX(?l, "^A") }',
        )
        assert names(r, "s") == ["Aristotle", "Athens"]

    def test_not_equal_uri(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + "SELECT ?s WHERE { ?s a dbo:Philosopher . FILTER(?s != dbr:Plato) }",
        )
        assert names(r, "s") == ["Aristotle", "Kant"]

    def test_in_list(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + "SELECT ?s WHERE { ?s a dbo:Philosopher . "
            "FILTER(?s IN (dbr:Plato, dbr:Kant)) }",
        )
        assert names(r, "s") == ["Kant", "Plato"]


class TestOptionalUnionMinus:
    def test_optional_keeps_unmatched(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + "SELECT ?s ?p WHERE { ?s a dbo:Philosopher . "
            "OPTIONAL { ?s dbo:birthPlace ?p } }",
        )
        by_name = {row["s"].local_name: row.get("p") for row in r.rows}
        assert by_name["Kant"] is None
        assert by_name["Plato"] is not None

    def test_optional_with_filter_condition(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + "SELECT ?s ?p WHERE { ?s a dbo:Philosopher . "
            "OPTIONAL { ?s dbo:birthPlace ?p FILTER(?p = dbr:Athens) } }",
        )
        by_name = {row["s"].local_name: row.get("p") for row in r.rows}
        assert by_name["Plato"].local_name == "Athens"
        assert by_name["Aristotle"] is None

    def test_union(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + "SELECT ?s WHERE { { ?s a dbo:Scientist } UNION "
            "{ ?s a dbo:Philosopher } }",
        )
        assert len(r.rows) == 4

    def test_minus(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + "SELECT ?s WHERE { ?s a dbo:Person . "
            "MINUS { ?s dbo:birthPlace ?p } }",
        )
        assert names(r, "s") == ["Kant"]

    def test_minus_no_shared_vars_removes_nothing(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + "SELECT ?s WHERE { ?s a dbo:Person . MINUS { ?x a dbo:Place } }",
        )
        assert len(r.rows) == 4


class TestBindValues:
    def test_bind(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + "SELECT ?s ?n WHERE { ?s rdfs:label ?l . BIND(STRLEN(?l) AS ?n) }",
        )
        lengths = {row["s"].local_name: int(row["n"].lexical) for row in r.rows}
        assert lengths["Plato"] == 5

    def test_bind_error_leaves_unbound(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + "SELECT ?s ?n WHERE { ?s a dbo:Philosopher . "
            "BIND(1/0 AS ?n) }",
        )
        assert all(row.get("n") is None for row in r.rows)

    def test_values_join(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + "SELECT ?s ?p WHERE { VALUES ?s { dbr:Plato dbr:Newton } "
            "?s dbo:birthPlace ?p . }",
        )
        assert names(r, "s") == ["Newton", "Plato"]


class TestAggregates:
    def test_count_group(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + "SELECT ?t (COUNT(?s) AS ?n) WHERE { ?s a ?t } GROUP BY ?t "
            "ORDER BY DESC(?n)",
        )
        counts = {row["t"].local_name: int(row["n"].lexical) for row in r.rows}
        assert counts["Thing"] == 7
        assert counts["Philosopher"] == 3
        # Sorted descending.
        values = [int(row["n"].lexical) for row in r.rows]
        assert values == sorted(values, reverse=True)

    def test_count_distinct(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + "SELECT (COUNT(DISTINCT ?p) AS ?n) WHERE { ?s ?p ?o }",
        )
        # type, subClassOf, label, birthPlace, era, influencedBy
        assert int(r.scalar().lexical) == 6

    def test_count_star_empty_graph_is_zero(self):
        from repro.rdf import Graph

        r = evaluate(Graph(), "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }")
        assert int(r.scalar().lexical) == 0

    def test_sum_avg_min_max(self):
        g = parse_turtle(
            "@prefix ex: <http://ex/> .\n"
            "ex:a ex:v 1 . ex:b ex:v 2 . ex:c ex:v 3 .\n"
        )
        r = evaluate(
            g,
            "SELECT (SUM(?v) AS ?s) (AVG(?v) AS ?a) (MIN(?v) AS ?lo) "
            "(MAX(?v) AS ?hi) WHERE { ?x <http://ex/v> ?v }",
        )
        row = r.rows[0]
        assert int(row["s"].lexical) == 6
        assert float(row["a"].lexical) == 2.0
        assert int(row["lo"].lexical) == 1
        assert int(row["hi"].lexical) == 3

    def test_group_concat(self):
        g = parse_turtle(
            "@prefix ex: <http://ex/> .\nex:a ex:n \"x\" . ex:a ex:n \"y\" .\n"
        )
        r = evaluate(
            g,
            'SELECT (GROUP_CONCAT(?n ; SEPARATOR = "|") AS ?all) '
            "WHERE { ?s <http://ex/n> ?n }",
        )
        assert sorted(r.scalar().lexical.split("|")) == ["x", "y"]

    def test_having(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + "SELECT ?t (COUNT(?s) AS ?n) WHERE { ?s a ?t } GROUP BY ?t "
            "HAVING(COUNT(?s) >= 3) ORDER BY ?t",
        )
        labels = {row["t"].local_name for row in r.rows}
        assert labels == {"Agent", "Person", "Philosopher", "Place", "Thing"}

    def test_nested_subquery_aggregation(self, philosophy_graph):
        # The paper's heavy-query shape.
        r = evaluate(
            philosophy_graph,
            P + "SELECT ?p (COUNT(?p) AS ?c) (SUM(?sp) AS ?t) WHERE { "
            "{ SELECT ?s ?p (COUNT(*) AS ?sp) WHERE { ?s a owl:Thing . "
            "?s ?p ?o . } GROUP BY ?s ?p } } GROUP BY ?p ORDER BY DESC(?c)",
        )
        by_prop = {
            row["p"].local_name: (int(row["c"].lexical), int(row["t"].lexical))
            for row in r.rows
        }
        # influencedBy: 2 subjects featuring it, 3 triples in total.
        assert by_prop["influencedBy"] == (2, 3)
        assert by_prop["type"][0] == 7


class TestModifiers:
    def test_order_by_label(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + "SELECT ?l WHERE { ?s rdfs:label ?l } ORDER BY ?l",
        )
        labels = [t.lexical for t in r.column("l")]
        assert labels == sorted(labels)

    def test_order_by_desc(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + "SELECT ?l WHERE { ?s rdfs:label ?l } ORDER BY DESC(?l)",
        )
        labels = [t.lexical for t in r.column("l")]
        assert labels == sorted(labels, reverse=True)

    def test_limit_offset(self, philosophy_graph):
        all_rows = evaluate(
            philosophy_graph,
            P + "SELECT ?l WHERE { ?s rdfs:label ?l } ORDER BY ?l",
        )
        page = evaluate(
            philosophy_graph,
            P + "SELECT ?l WHERE { ?s rdfs:label ?l } ORDER BY ?l "
            "LIMIT 2 OFFSET 1",
        )
        assert [r["l"] for r in page.rows] == [r["l"] for r in all_rows.rows[1:3]]

    def test_distinct(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + "SELECT DISTINCT ?t WHERE { ?s a ?t . ?s a dbo:Person . }",
        )
        assert len(r.rows) == len({tuple(row.items()) for row in r.rows})

    def test_offset_beyond_end(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            P + "SELECT ?s WHERE { ?s a dbo:Philosopher } OFFSET 100",
        )
        assert len(r.rows) == 0


class TestAsk:
    def test_ask_true_and_false(self, philosophy_graph):
        assert evaluate(philosophy_graph, P + "ASK { ?s a dbo:Philosopher }").value
        assert not evaluate(philosophy_graph, P + "ASK { ?s a dbo:Event }").value

    def test_ask_short_circuits(self, philosophy_graph):
        r = evaluate(philosophy_graph, P + "ASK { ?s ?p ?o }")
        # Short-circuit: far fewer intermediate bindings than the graph.
        assert r.stats.intermediate_bindings <= 2


class TestStats:
    def test_stats_count_work(self, philosophy_graph):
        r = evaluate(philosophy_graph, P + "SELECT ?s WHERE { ?s a dbo:Person }")
        assert r.stats.results == len(r.rows)
        assert r.stats.intermediate_bindings >= len(r.rows)
        assert r.stats.pattern_scans >= 1

    def test_rebinding_in_bind_raises(self, philosophy_graph):
        with pytest.raises(SparqlEvalError):
            evaluate(
                philosophy_graph,
                P + "SELECT ?s WHERE { ?s a dbo:Person . BIND(1 AS ?s) }",
            )
