"""Streaming aggregation: the O(groups) continuation-token regime.

Blocking operators (aggregation, sort, top-k) fold input into bounded
accumulators and serialise only their un-emitted suffix, so suspended
tokens are O(groups) — not O(input) — and shrink as results drain.
Every test here holds the paged result (including resumes that decode
and restore the token in a *fresh* endpoint, the cross-process path)
byte-identical to one-shot evaluation.
"""

import pytest

from repro.endpoint import LocalEndpoint
from repro.rdf import Graph, Literal, URI

EX = "http://ex.org/"
XSD_INT = "http://www.w3.org/2001/XMLSchema#integer"


def num(value) -> Literal:
    return Literal(str(value), datatype=XSD_INT)


def build_graph() -> Graph:
    graph = Graph(name="agg")
    score = URI(EX + "score")
    tag = URI(EX + "tag")
    for i in range(30):
        subject = URI(EX + f"s{i % 5}")
        graph.add(subject, score, num(i))
        graph.add(subject, tag, Literal(f"t{i}"))
    # A tie group: two lexically distinct literals with equal numeric
    # order keys — MIN keeps the first seen, MAX the last seen.
    ties = URI(EX + "ties")
    graph.add(ties, score, num("2"))
    graph.add(ties, score, Literal("02", datatype=XSD_INT))
    # A poisoned group: one non-numeric member value errors SUM/AVG.
    poison = URI(EX + "poison")
    graph.add(poison, score, num(1))
    graph.add(poison, score, Literal("oops"))
    return graph


@pytest.fixture(scope="module")
def graph() -> Graph:
    return build_graph()


def rendered(rows):
    return [
        tuple(sorted((name, term.n3()) for name, term in row.items()))
        for row in rows
    ]


def one_shot(graph, query):
    return rendered(LocalEndpoint(graph).query(query).result.rows)


def paged_same_endpoint(graph, query, page_size=1):
    """Pages on one endpoint (the live-plan resume fast path)."""
    rows = []
    endpoint = LocalEndpoint(graph)
    for response in endpoint.query_all_pages(query, page_size=page_size):
        rows.extend(response.result.rows)
    return rendered(rows)


def paged_fresh_endpoints(graph, query, page_size=1):
    """A fresh endpoint per page: every resume decodes and restores the
    token — exactly what a pool worker does with another worker's
    token."""
    rows = []
    response = LocalEndpoint(graph).query(query, page_size=page_size)
    rows.extend(response.result.rows)
    while not response.complete:
        response = LocalEndpoint(graph).query(
            continuation=response.continuation, page_size=page_size
        )
        rows.extend(response.result.rows)
    return rendered(rows)


def token_sizes(graph, query, page_size):
    """Byte length of every continuation token a paged run mints."""
    sizes = []
    response = LocalEndpoint(graph).query(query, page_size=page_size)
    while not response.complete:
        sizes.append(len(response.continuation))
        response = LocalEndpoint(graph).query(
            continuation=response.continuation, page_size=page_size
        )
    return sizes


GROUPED = {
    "count": f"SELECT ?g (COUNT(?v) AS ?a) WHERE {{ ?g <{EX}score> ?v }} GROUP BY ?g ORDER BY ?g",
    "count_star": f"SELECT ?g (COUNT(*) AS ?a) WHERE {{ ?g <{EX}score> ?v }} GROUP BY ?g ORDER BY ?g",
    "sum": f"SELECT ?g (SUM(?v) AS ?a) WHERE {{ ?g <{EX}score> ?v }} GROUP BY ?g ORDER BY ?g",
    "avg": f"SELECT ?g (AVG(?v) AS ?a) WHERE {{ ?g <{EX}score> ?v }} GROUP BY ?g ORDER BY ?g",
    "min": f"SELECT ?g (MIN(?v) AS ?a) WHERE {{ ?g <{EX}score> ?v }} GROUP BY ?g ORDER BY ?g",
    "max": f"SELECT ?g (MAX(?v) AS ?a) WHERE {{ ?g <{EX}score> ?v }} GROUP BY ?g ORDER BY ?g",
    "sample": f"SELECT ?g (SAMPLE(?v) AS ?a) WHERE {{ ?g <{EX}score> ?v }} GROUP BY ?g ORDER BY ?g",
    "group_concat": f"SELECT ?g (GROUP_CONCAT(?t) AS ?a) WHERE {{ ?g <{EX}tag> ?t }} GROUP BY ?g ORDER BY ?g",
    "distinct_count": f"SELECT ?g (COUNT(DISTINCT ?v) AS ?a) WHERE {{ ?g <{EX}score> ?v }} GROUP BY ?g ORDER BY ?g",
    "having": f"SELECT ?g (COUNT(?v) AS ?a) WHERE {{ ?g <{EX}score> ?v }} GROUP BY ?g HAVING (COUNT(?v) > 2) ORDER BY ?g",
}

IMPLICIT = {
    "count_all": f"SELECT (COUNT(*) AS ?a) WHERE {{ ?s <{EX}score> ?v }}",
    "empty_count": f"SELECT (COUNT(?v) AS ?a) WHERE {{ ?s <{EX}missing> ?v }}",
    "empty_sum": f"SELECT (SUM(?v) AS ?a) WHERE {{ ?s <{EX}missing> ?v }}",
}


class TestPagedParity:
    """Paged ≡ one-shot, on both resume paths, for every aggregate —
    including MIN/MAX tie-breaking, poisoned groups, DISTINCT and
    HAVING (which fall back to buffering), and empty groups."""

    @pytest.mark.parametrize("name", sorted(GROUPED))
    def test_grouped_aggregate(self, graph, name):
        query = GROUPED[name]
        expected = one_shot(graph, query)
        assert paged_same_endpoint(graph, query) == expected
        assert paged_fresh_endpoints(graph, query) == expected

    @pytest.mark.parametrize("name", sorted(IMPLICIT))
    def test_implicit_group(self, graph, name):
        query = IMPLICIT[name]
        expected = one_shot(graph, query)
        assert len(expected) == 1
        assert paged_fresh_endpoints(graph, query) == expected

    def test_order_by_parity(self, graph):
        query = (
            f"SELECT ?g ?v WHERE {{ ?g <{EX}score> ?v }} "
            "ORDER BY ?v ?g"
        )
        expected = one_shot(graph, query)
        assert paged_fresh_endpoints(graph, query, page_size=5) == expected

    def test_top_k_parity(self, graph):
        query = (
            f"SELECT ?g ?v WHERE {{ ?g <{EX}score> ?v }} "
            "ORDER BY DESC(?v) LIMIT 12 OFFSET 3"
        )
        expected = one_shot(graph, query)
        assert paged_fresh_endpoints(graph, query, page_size=4) == expected


class TestTokenGrowth:
    def make_wide_graph(self, groups=60):
        graph = Graph(name="wide")
        score = URI(EX + "score")
        for i in range(groups):
            graph.add(URI(EX + f"w{i:03d}"), score, num(i))
        return graph

    def test_aggregation_tokens_shrink_as_groups_emit(self):
        graph = self.make_wide_graph()
        query = (
            f"SELECT ?g (SUM(?v) AS ?a) WHERE {{ ?g <{EX}score> ?v }} "
            "GROUP BY ?g ORDER BY ?g"
        )
        sizes = token_sizes(graph, query, page_size=5)
        assert len(sizes) > 5
        # Emitted groups leave the token: the last suspension is
        # strictly smaller than the first, and the tail keeps falling.
        assert sizes[-1] < sizes[0]
        assert sizes[-1] < sizes[len(sizes) // 2]

    def test_sort_tokens_shrink_as_rows_drain(self):
        graph = self.make_wide_graph()
        query = f"SELECT ?g ?v WHERE {{ ?g <{EX}score> ?v }} ORDER BY ?v"
        sizes = token_sizes(graph, query, page_size=5)
        assert len(sizes) > 5
        assert sizes[-1] < sizes[0]

    def test_streaming_token_is_o_groups_not_o_input(self):
        """Doubling members-per-group must not grow the suspended
        aggregation state: the fold keeps O(1) per group."""
        score = URI(EX + "score")

        def graph_with(members_per_group):
            graph = Graph(name=f"m{members_per_group}")
            for g in range(8):
                for m in range(members_per_group):
                    graph.add(
                        URI(EX + f"g{g}"), score, num(g * 1000 + m)
                    )
            return graph

        query = (
            f"SELECT ?g (SUM(?v) AS ?a) WHERE {{ ?g <{EX}score> ?v }} "
            "GROUP BY ?g ORDER BY ?g"
        )
        small = max(token_sizes(graph_with(10), query, page_size=2))
        large = max(token_sizes(graph_with(40), query, page_size=2))
        # 4x the input, ~same suspended state (IDs may print a few more
        # digits; allow slack far below the 4x a buffering regime shows).
        assert large < small * 1.5
