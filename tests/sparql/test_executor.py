"""The time-quantum executor: paging, continuation tokens and their
error taxonomy, per-page stats deltas, and the round-robin scheduler."""

import base64
import json

import pytest

from repro.obs.metrics import REGISTRY
from repro.rdf import Graph, Literal, URI
from repro.sparql import executor
from repro.sparql.executor import (
    ExpiredTokenError,
    MalformedTokenError,
    RoundRobinScheduler,
    TokenVersionError,
    decode_continuation,
    encode_continuation,
    restore_plan,
    run_quantum,
    run_to_completion,
)
from repro.sparql.planner import build_physical_plan

EX = "http://ex.org/"


def _uri(name: str) -> URI:
    return URI(EX + name)


@pytest.fixture()
def graph() -> Graph:
    g = Graph()
    for i in range(20):
        subject = _uri(f"s{i:02d}")
        g.add(subject, _uri("type"), _uri("Thing"))
        g.add(subject, _uri("value"), Literal(i))
    return g


QUERY = f"SELECT ?s ?v WHERE {{ ?s <{EX}type> <{EX}Thing> . ?s <{EX}value> ?v }}"


def _one_shot(graph):
    plan = build_physical_plan(graph, QUERY)
    result = run_to_completion(plan)
    return result.rows, plan.stats


# ----------------------------------------------------------------------
# run_quantum
# ----------------------------------------------------------------------


def test_row_budget_bounds_every_page(graph):
    plan = build_physical_plan(graph, QUERY)
    pages = []
    while True:
        page = run_quantum(plan, page_size=7)
        pages.append(page)
        assert len(page.rows) <= 7
        if page.complete:
            break
    assert [len(p.rows) for p in pages] == [7, 7, 6]
    assert [p.reason for p in pages] == ["row_budget", "row_budget", "complete"]
    expected_rows, _ = _one_shot(graph)
    collected = [row for page in pages for row in page.rows]
    assert collected == expected_rows


def test_deadline_suspends_and_execution_still_completes(graph):
    plan = build_physical_plan(
        graph, f"SELECT ?s WHERE {{ ?s ?p ?o }} ORDER BY ?s"
    )
    rows = []
    reasons = set()
    for _ in range(10_000):
        page = run_quantum(plan, quantum_ms=0.01)
        rows.extend(page.rows)
        reasons.add(page.reason)
        if page.complete:
            break
    assert page.complete
    assert "deadline" in reasons
    assert len(rows) == 40


def test_page_stats_deltas_sum_to_one_shot(graph):
    _, one_shot_stats = _one_shot(graph)
    plan = build_physical_plan(graph, QUERY)
    totals = {"intermediate_bindings": 0, "pattern_scans": 0, "results": 0}
    while True:
        page = run_quantum(plan, page_size=3)
        totals["intermediate_bindings"] += page.stats.intermediate_bindings
        totals["pattern_scans"] += page.stats.pattern_scans
        totals["results"] += page.stats.results
        if page.complete:
            break
    assert totals["intermediate_bindings"] == one_shot_stats.intermediate_bindings
    assert totals["pattern_scans"] == one_shot_stats.pattern_scans
    assert totals["results"] == one_shot_stats.results


def test_run_to_completion_ask_short_circuits(graph):
    plan = build_physical_plan(graph, f"ASK {{ ?s <{EX}value> 3 }}")
    result = run_to_completion(plan)
    assert result.value is True
    absent = build_physical_plan(graph, f"ASK {{ ?s <{EX}value> 99 }}")
    assert run_to_completion(absent).value is False


# ----------------------------------------------------------------------
# Continuation tokens
# ----------------------------------------------------------------------


def _suspend(graph, page_size=5):
    plan = build_physical_plan(graph, QUERY)
    page = run_quantum(plan, page_size=page_size)
    assert not page.complete
    token = encode_continuation(plan, graph, QUERY)
    return plan, page, token


def test_token_round_trip_resumes_exactly(graph):
    expected_rows, one_shot_stats = _one_shot(graph)
    factory = build_physical_plan(graph, QUERY).factory
    rows = []
    stats_totals = 0
    token = None
    while True:
        if token is None:
            plan = factory.instantiate(graph)
        else:
            plan = restore_plan(factory, graph, decode_continuation(token))
        page = run_quantum(plan, page_size=4)
        rows.extend(page.rows)
        stats_totals += page.stats.pattern_scans
        if page.complete:
            break
        token = encode_continuation(plan, graph, QUERY)
    assert rows == expected_rows  # values AND order across resumes
    assert stats_totals == one_shot_stats.pattern_scans


def test_token_is_opaque_but_stable_json(graph):
    _, _, token = _suspend(graph)
    blob = json.loads(base64.urlsafe_b64decode(token.encode("ascii")))
    assert blob["v"] == executor.TOKEN_VERSION
    assert blob["graph"] == graph.version
    assert blob["query"] == QUERY
    assert blob["state"]["op"]


@pytest.mark.parametrize(
    "token",
    [
        "garbage",
        "!!!not-base64!!!",
        base64.urlsafe_b64encode(b"not json").decode("ascii"),
        base64.urlsafe_b64encode(b'{"v": 1}').decode("ascii"),
        base64.urlsafe_b64encode(b'["a", "list"]').decode("ascii"),
    ],
)
def test_malformed_tokens_rejected(token):
    with pytest.raises(MalformedTokenError):
        decode_continuation(token)


def test_cross_version_token_rejected(graph):
    _, _, token = _suspend(graph)
    blob = json.loads(base64.urlsafe_b64decode(token.encode("ascii")))
    blob["v"] = executor.TOKEN_VERSION + 1
    tampered = base64.urlsafe_b64encode(
        json.dumps(blob).encode("utf-8")
    ).decode("ascii")
    with pytest.raises(TokenVersionError):
        decode_continuation(tampered)


def test_expired_token_after_graph_mutation(graph):
    plan, _, token = _suspend(graph)
    graph.add(_uri("new"), _uri("type"), _uri("Thing"))
    with pytest.raises(ExpiredTokenError):
        restore_plan(plan.factory, graph, decode_continuation(token))


def test_tampered_state_tree_rejected_cleanly(graph):
    plan, _, token = _suspend(graph)
    blob = decode_continuation(token)
    blob["state"] = {"op": "Nonsense", "done": False}
    with pytest.raises(MalformedTokenError):
        restore_plan(plan.factory, graph, blob)


def test_token_reject_metrics_move(graph):
    rejects = REGISTRY.get("repro_exec_token_rejects_total")
    before = rejects.labels(reason="malformed").value
    with pytest.raises(MalformedTokenError):
        decode_continuation("garbage")
    assert rejects.labels(reason="malformed").value == before + 1

    plan, _, token = _suspend(graph)
    before = rejects.labels(reason="expired").value
    graph.add(_uri("bump"), _uri("type"), _uri("Thing"))
    with pytest.raises(ExpiredTokenError):
        restore_plan(plan.factory, graph, decode_continuation(token))
    assert rejects.labels(reason="expired").value == before + 1


def test_suspension_and_page_metrics_move(graph):
    pages = REGISTRY.get("repro_exec_pages_total")
    suspensions = REGISTRY.get("repro_exec_suspensions_total")
    before_complete = pages.labels(outcome="complete").value
    before_suspended = pages.labels(outcome="suspended").value
    before_budget = suspensions.labels(reason="row_budget").value

    plan = build_physical_plan(graph, QUERY)
    while not run_quantum(plan, page_size=6).complete:
        pass
    assert pages.labels(outcome="complete").value == before_complete + 1
    assert pages.labels(outcome="suspended").value == before_suspended + 3
    assert suspensions.labels(reason="row_budget").value == before_budget + 3


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------


def test_scheduler_round_robin_fairness(graph):
    scheduler = RoundRobinScheduler(page_size=4)
    for key in ("a", "b", "c"):
        scheduler.submit(key, build_physical_plan(graph, QUERY))
    first_round = [key for key, _ in scheduler.run_round()]
    assert first_round == ["a", "b", "c"]
    second_round = [key for key, _ in scheduler.run_round()]
    assert second_round == ["a", "b", "c"]


def test_scheduler_drain_matches_one_shot(graph):
    expected_rows, _ = _one_shot(graph)
    scheduler = RoundRobinScheduler(page_size=3)
    scheduler.submit("x", build_physical_plan(graph, QUERY))
    scheduler.submit(
        "y", build_physical_plan(graph, f"SELECT ?s WHERE {{ ?s ?p ?o }}")
    )
    collected = scheduler.drain()
    assert collected["x"] == expected_rows
    assert len(collected["y"]) == 40
    assert len(scheduler) == 0


def test_scheduler_completed_sessions_leave_rotation(graph):
    scheduler = RoundRobinScheduler(page_size=100)
    scheduler.submit("short", build_physical_plan(graph, QUERY))
    scheduler.submit(
        "long", build_physical_plan(graph, f"SELECT ?s WHERE {{ ?s ?p ?o }}")
    )
    key, page = scheduler.step()
    assert key == "short" and page.complete
    assert len(scheduler) == 1


def test_scheduler_rejects_duplicate_and_supports_cancel(graph):
    scheduler = RoundRobinScheduler()
    scheduler.submit("k", build_physical_plan(graph, QUERY))
    with pytest.raises(ValueError):
        scheduler.submit("k", build_physical_plan(graph, QUERY))
    scheduler.cancel("k")
    assert len(scheduler) == 0
    assert scheduler.step() is None
