"""Additional evaluator edge cases: REDUCED, nested OPTIONALs, VALUES
joins, HAVING combinations, Virtuoso-dialect projections, and work
counters."""

import pytest

from repro.rdf import Graph, Literal, URI, parse_turtle
from repro.sparql import evaluate

P = (
    "PREFIX dbo: <http://dbpedia.org/ontology/>\n"
    "PREFIX dbr: <http://dbpedia.org/resource/>\n"
    "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n"
)


@pytest.fixture(scope="module")
def team_graph():
    return parse_turtle(
        """
        @prefix ex: <http://ex/> .
        ex:alice ex:worksAt ex:acme ; ex:age 30 ; ex:knows ex:bob .
        ex:bob ex:worksAt ex:acme ; ex:age 25 .
        ex:carol ex:worksAt ex:globex ; ex:age 35 ; ex:knows ex:alice .
        ex:dave ex:age 40 .
        ex:acme ex:in ex:springfield .
        """
    )


def names(result, var):
    return sorted(
        term.local_name for term in result.column(var) if term is not None
    )


class TestReduced:
    def test_reduced_collapses_adjacent_duplicates(self, team_graph):
        # ORDER first so duplicates are adjacent; REDUCED then behaves
        # like DISTINCT.
        r = evaluate(
            team_graph,
            "SELECT REDUCED ?c WHERE { ?p <http://ex/worksAt> ?c . "
            "?p <http://ex/age> ?a } ORDER BY ?c",
        )
        companies = [t.local_name for t in r.column("c")]
        assert companies == ["acme", "globex"]


class TestNestedOptional:
    def test_optional_inside_optional(self, team_graph):
        r = evaluate(
            team_graph,
            "SELECT ?p ?company ?place WHERE { ?p <http://ex/age> ?a . "
            "OPTIONAL { ?p <http://ex/worksAt> ?company . "
            "OPTIONAL { ?company <http://ex/in> ?place } } }",
        )
        rows = {row["p"].local_name: row for row in r.rows}
        assert rows["alice"]["place"].local_name == "springfield"
        assert rows["carol"].get("place") is None
        assert rows["dave"].get("company") is None
        assert len(r.rows) == 4

    def test_two_optionals_compose(self, team_graph):
        r = evaluate(
            team_graph,
            "SELECT ?p ?c ?k WHERE { ?p <http://ex/age> ?a . "
            "OPTIONAL { ?p <http://ex/worksAt> ?c } "
            "OPTIONAL { ?p <http://ex/knows> ?k } }",
        )
        rows = {row["p"].local_name: row for row in r.rows}
        assert rows["alice"]["k"].local_name == "bob"
        assert rows["bob"].get("k") is None


class TestValuesJoins:
    def test_values_two_vars_joins_both(self, team_graph):
        r = evaluate(
            team_graph,
            "SELECT ?p ?c WHERE { VALUES (?p ?c) { "
            "(<http://ex/alice> <http://ex/acme>) "
            "(<http://ex/alice> <http://ex/globex>) } "
            "?p <http://ex/worksAt> ?c }",
        )
        assert len(r.rows) == 1
        assert r.rows[0]["c"].local_name == "acme"

    def test_values_undef_acts_as_wildcard(self, team_graph):
        r = evaluate(
            team_graph,
            "SELECT ?p ?c WHERE { VALUES (?p ?c) { "
            "(<http://ex/alice> UNDEF) } ?p <http://ex/worksAt> ?c }",
        )
        assert len(r.rows) == 1

    def test_values_after_pattern(self, team_graph):
        r = evaluate(
            team_graph,
            "SELECT ?p WHERE { ?p <http://ex/age> ?a . "
            "VALUES ?p { <http://ex/bob> <http://ex/dave> } }",
        )
        assert names(r, "p") == ["bob", "dave"]


class TestHaving:
    def test_multiple_having_conditions(self, team_graph):
        r = evaluate(
            team_graph,
            "SELECT ?c (COUNT(?p) AS ?n) (AVG(?a) AS ?avg) WHERE { "
            "?p <http://ex/worksAt> ?c . ?p <http://ex/age> ?a } "
            "GROUP BY ?c HAVING(COUNT(?p) >= 2) (AVG(?a) < 30)",
        )
        assert len(r.rows) == 1
        assert r.rows[0]["c"].local_name == "acme"

    def test_having_filters_all_groups(self, team_graph):
        r = evaluate(
            team_graph,
            "SELECT ?c (COUNT(?p) AS ?n) WHERE { "
            "?p <http://ex/worksAt> ?c } GROUP BY ?c HAVING(COUNT(?p) > 5)",
        )
        assert len(r.rows) == 0


class TestProjectionForms:
    def test_expression_over_group_key(self, team_graph):
        r = evaluate(
            team_graph,
            "SELECT ?c (COUNT(?p) AS ?n) (STR(?c) AS ?text) WHERE { "
            "?p <http://ex/worksAt> ?c } GROUP BY ?c ORDER BY ?c",
        )
        assert r.rows[0]["text"].lexical == "http://ex/acme"

    def test_arithmetic_over_aggregates(self, team_graph):
        r = evaluate(
            team_graph,
            "SELECT ((MAX(?a) - MIN(?a)) AS ?spread) WHERE { "
            "?p <http://ex/age> ?a }",
        )
        assert int(r.scalar().lexical) == 15

    def test_bind_then_group(self, team_graph):
        r = evaluate(
            team_graph,
            "SELECT ?decade (COUNT(?p) AS ?n) WHERE { "
            "?p <http://ex/age> ?a . BIND(FLOOR(?a / 10) AS ?decade) } "
            "GROUP BY ?decade ORDER BY ?decade",
        )
        decades = {
            int(row["decade"].lexical): int(row["n"].lexical) for row in r.rows
        }
        assert decades == {3: 2, 2: 1, 4: 1}


class TestWorkCounters:
    def test_limit_stops_early(self, dbpedia_graph):
        unlimited = evaluate(
            dbpedia_graph, "SELECT ?s WHERE { ?s ?p ?o }"
        )
        limited = evaluate(
            dbpedia_graph, "SELECT ?s WHERE { ?s ?p ?o } LIMIT 1"
        )
        assert (
            limited.stats.intermediate_bindings
            < unlimited.stats.intermediate_bindings / 100
        )

    def test_selective_pattern_ordered_first(self, dbpedia_graph):
        """The join reorderer starts from the most selective pattern, so
        a highly selective query touches few bindings."""
        r = evaluate(
            dbpedia_graph,
            P + "SELECT ?o WHERE { ?s ?p ?o . dbr:Vienna rdfs:label ?o . }",
        )
        assert r.stats.intermediate_bindings < 100


class TestEmptyAndDegenerate:
    def test_empty_group_graph_pattern(self, team_graph):
        r = evaluate(team_graph, "SELECT (1 AS ?one) WHERE { }")
        assert int(r.scalar().lexical) == 1

    def test_union_of_empty_branches(self, team_graph):
        r = evaluate(
            team_graph,
            "SELECT ?x WHERE { { ?x a <http://ex/Nope> } UNION "
            "{ ?x a <http://ex/AlsoNope> } }",
        )
        assert len(r.rows) == 0

    def test_filter_only_group(self, team_graph):
        r = evaluate(team_graph, "SELECT (2 AS ?two) WHERE { FILTER(true) }")
        assert int(r.scalar().lexical) == 2

    def test_cross_product_when_no_shared_vars(self, team_graph):
        r = evaluate(
            team_graph,
            "SELECT ?a ?b WHERE { ?a <http://ex/in> ?x . "
            "?b <http://ex/knows> ?y . }",
        )
        # 1 'in' triple x 2 'knows' triples.
        assert len(r.rows) == 2
