"""Unit tests for result containers and the SPARQL-JSON wire format."""

import json

import pytest

from repro.rdf import BNode, Literal, URI
from repro.sparql import (
    AskResult,
    SelectResult,
    evaluate,
    results_from_json,
    results_to_json,
)


@pytest.fixture()
def result():
    rows = [
        {"s": URI("http://a"), "n": Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer")},
        {"s": URI("http://b")},
        {"s": URI("http://c"), "n": Literal("hi", language="en")},
    ]
    return SelectResult(["s", "n"], rows)


class TestSelectResult:
    def test_len_iter_bool(self, result):
        assert len(result) == 3
        assert bool(result)
        assert len(list(result)) == 3
        assert not SelectResult(["x"], [])

    def test_column_with_unbound(self, result):
        column = result.column("n")
        assert column[1] is None
        assert len(column) == 3

    def test_scalar(self):
        r = SelectResult(["n"], [{"n": Literal("7")}])
        assert r.scalar() == Literal("7")

    def test_scalar_rejects_non_1x1(self, result):
        with pytest.raises(ValueError):
            result.scalar()

    def test_to_table_contains_headers_and_values(self, result):
        table = result.to_table()
        assert "?s" in table and "?n" in table
        assert "hi" in table

    def test_to_table_truncates(self):
        rows = [{"x": Literal(str(i))} for i in range(100)]
        table = SelectResult(["x"], rows).to_table(max_rows=5)
        assert "95 more rows" in table

    def test_equality(self, result):
        clone = SelectResult(result.vars, list(result.rows))
        assert result == clone


class TestAskResult:
    def test_bool_and_eq(self):
        assert AskResult(True)
        assert not AskResult(False)
        assert AskResult(True) == True  # noqa: E712
        assert AskResult(True) == AskResult(True)


class TestJsonFormat:
    def test_select_round_trip(self, result):
        text = results_to_json(result)
        parsed = results_from_json(text)
        assert parsed.vars == result.vars
        assert parsed.rows == result.rows

    def test_bnode_round_trip(self):
        r = SelectResult(["b"], [{"b": BNode("x1")}])
        assert results_from_json(results_to_json(r)).rows[0]["b"] == BNode("x1")

    def test_ask_round_trip(self):
        for value in (True, False):
            parsed = results_from_json(results_to_json(AskResult(value)))
            assert isinstance(parsed, AskResult)
            assert parsed.value is value

    def test_json_structure_matches_w3c_format(self, result):
        blob = json.loads(results_to_json(result))
        assert blob["head"]["vars"] == ["s", "n"]
        bindings = blob["results"]["bindings"]
        assert bindings[0]["s"] == {"type": "uri", "value": "http://a"}
        assert bindings[0]["n"]["datatype"].endswith("integer")
        assert bindings[2]["n"]["xml:lang"] == "en"
        # Unbound variables are simply absent.
        assert "n" not in bindings[1]

    def test_typed_literal_legacy_type_accepted(self):
        text = json.dumps(
            {
                "head": {"vars": ["x"]},
                "results": {
                    "bindings": [
                        {
                            "x": {
                                "type": "typed-literal",
                                "value": "5",
                                "datatype": "http://www.w3.org/2001/XMLSchema#integer",
                            }
                        }
                    ]
                },
            }
        )
        parsed = results_from_json(text)
        assert parsed.rows[0]["x"].is_numeric

    def test_unknown_term_type_raises(self):
        text = json.dumps(
            {
                "head": {"vars": ["x"]},
                "results": {"bindings": [{"x": {"type": "mystery", "value": ""}}]},
            }
        )
        with pytest.raises(ValueError):
            results_from_json(text)

    def test_evaluated_result_serialises(self, philosophy_graph):
        r = evaluate(
            philosophy_graph,
            "PREFIX dbo: <http://dbpedia.org/ontology/> "
            "SELECT ?s WHERE { ?s a dbo:Philosopher }",
        )
        parsed = results_from_json(results_to_json(r))
        assert sorted(t.value for t in parsed.column("s")) == sorted(
            t.value for t in r.column("s")
        )
