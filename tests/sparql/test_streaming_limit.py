"""Regression tests: LIMIT bounds the work of join pipelines.

The hash joins build their (right) side eagerly but *stream* the probe
side, so a ``Slice`` above a join must stop pulling the probe subtree
after ``limit`` rows — the scan and binding counters stay bounded
instead of growing with the data.  Both execution back halves (the
recursive evaluator and the physical operator tree) are covered.
"""

import pytest

from repro.rdf import Graph, Literal, URI
from repro.sparql.evaluator import Evaluator
from repro.sparql.executor import run_to_completion
from repro.sparql.parser import parse_query
from repro.sparql.planner import build_physical_plan

EX = "http://ex.org/"
N = 400  # members on the streaming (probe) side
LIMIT = 3


@pytest.fixture(scope="module")
def graph() -> Graph:
    g = Graph()
    for i in range(N):
        subject = URI(f"{EX}s{i}")
        g.add(subject, URI(EX + "p1"), Literal(i))
        g.add(subject, URI(EX + "p2"), Literal(i % 7))
    return g


def _physical_stats(graph, text):
    plan = build_physical_plan(graph, text)
    result = run_to_completion(plan)
    return len(result.rows), plan.stats


def _evaluator_stats(graph, text):
    evaluator = Evaluator(graph)
    result = evaluator.run(parse_query(text))
    return len(result.rows), evaluator.stats


JOIN = f"SELECT ?s ?a WHERE {{ ?s <{EX}p1> ?a . ?s <{EX}p2> ?b }}"
OPTIONAL = f"SELECT ?s WHERE {{ ?s <{EX}p1> ?a . OPTIONAL {{ ?s <{EX}p2> ?b }} }}"


@pytest.mark.parametrize("runner", [_physical_stats, _evaluator_stats])
def test_limit_bounds_bgp_join_scans(graph, runner):
    """An index-nested BGP join starts one scan per probe row: LIMIT
    must cap that at O(limit), not O(N)."""
    full_rows, full = runner(graph, JOIN)
    limited_rows, limited = runner(graph, JOIN + f" LIMIT {LIMIT}")
    assert full_rows == N
    assert limited_rows == LIMIT
    assert full.pattern_scans >= N  # the unlimited run really is O(N)
    # 1 scan for the driving pattern + one per delivered probe row,
    # with a little slack for prefetch batching.
    assert limited.pattern_scans <= 1 + 2 * LIMIT
    assert limited.intermediate_bindings <= 2 * LIMIT


@pytest.mark.parametrize("runner", [_physical_stats, _evaluator_stats])
def test_limit_bounds_hash_join_probe_side(graph, runner):
    """A hash join drains its build side (O(N) is unavoidable there)
    but the probe side streams: total work under LIMIT stays near one
    build-side pass instead of two full passes."""
    full_rows, full = runner(graph, OPTIONAL)
    limited_rows, limited = runner(graph, OPTIONAL + f" LIMIT {LIMIT}")
    assert full_rows == N
    assert limited_rows == LIMIT
    assert full.intermediate_bindings >= 2 * N
    # build side (N) + bounded probe; far below the unlimited 3N.
    assert limited.intermediate_bindings <= N + 8 * LIMIT


def test_both_halves_agree_on_bounded_work(graph):
    """The physical tree must not do more work than the evaluator it
    replaces (the refactor's no-regression guarantee under LIMIT)."""
    for text in (JOIN + f" LIMIT {LIMIT}", OPTIONAL + f" LIMIT {LIMIT}"):
        _, physical = _physical_stats(graph, text)
        _, evaluator = _evaluator_stats(graph, text)
        assert physical.pattern_scans == evaluator.pattern_scans
        assert (
            physical.intermediate_bindings == evaluator.intermediate_bindings
        )
