"""Unit tests for property paths and EXISTS/NOT EXISTS."""

import pytest

from repro.rdf import Graph, URI, parse_turtle
from repro.sparql import evaluate, parse_query
from repro.sparql.ast import (
    AlternativePath,
    InversePath,
    RepeatPath,
    SequencePath,
)
from repro.sparql.paths import eval_path

P = (
    "PREFIX dbo: <http://dbpedia.org/ontology/>\n"
    "PREFIX dbr: <http://dbpedia.org/resource/>\n"
    "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n"
    "PREFIX owl: <http://www.w3.org/2002/07/owl#>\n"
)


@pytest.fixture(scope="module")
def chain_graph():
    return parse_turtle(
        """
        @prefix dbo: <http://dbpedia.org/ontology/> .
        @prefix dbr: <http://dbpedia.org/resource/> .
        @prefix owl: <http://www.w3.org/2002/07/owl#> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        dbo:Agent rdfs:subClassOf owl:Thing .
        dbo:Person rdfs:subClassOf dbo:Agent .
        dbo:Philosopher rdfs:subClassOf dbo:Person .
        dbo:Place rdfs:subClassOf owl:Thing .
        dbr:Plato a dbo:Philosopher ; dbo:influencedBy dbr:Socrates .
        dbr:Aristotle a dbo:Philosopher ; dbo:influencedBy dbr:Plato .
        dbr:Zeno a dbo:Philosopher ; dbo:influencedBy dbr:Aristotle .
        """
    )


def locals_of(result, var):
    return sorted(t.local_name for t in result.column(var) if t is not None)


class TestPathParsing:
    def test_plain_iri_stays_uri(self):
        q = parse_query(P + "SELECT ?s WHERE { ?s dbo:p ?o }")
        assert isinstance(q.where.children[0].predicate, URI)

    def test_star(self):
        q = parse_query(P + "SELECT ?s WHERE { ?s rdfs:subClassOf* ?o }")
        path = q.where.children[0].predicate
        assert isinstance(path, RepeatPath)
        assert path.min_hops == 0 and not path.max_one

    def test_plus_and_question(self):
        plus = parse_query(P + "SELECT ?s WHERE { ?s dbo:p+ ?o }")
        assert plus.where.children[0].predicate.min_hops == 1
        optional = parse_query(P + "SELECT ?s WHERE { ?s dbo:p? ?o }")
        assert optional.where.children[0].predicate.max_one

    def test_sequence_and_inverse(self):
        q = parse_query(P + "SELECT ?s WHERE { ?s dbo:p/^dbo:q ?o }")
        path = q.where.children[0].predicate
        assert isinstance(path, SequencePath)
        assert isinstance(path.steps[1], InversePath)

    def test_alternative_with_grouping(self):
        q = parse_query(P + "SELECT ?s WHERE { ?s (dbo:p|dbo:q)+ ?o }")
        path = q.where.children[0].predicate
        assert isinstance(path, RepeatPath)
        assert isinstance(path.inner, AlternativePath)

    def test_a_in_path(self):
        q = parse_query(P + "SELECT ?s WHERE { ?s a/rdfs:subClassOf* ?c }")
        path = q.where.children[0].predicate
        assert isinstance(path, SequencePath)

    def test_str_round_trip(self):
        text = P + "SELECT ?s WHERE { ?s (dbo:p|^dbo:q)/dbo:r* ?o . }"
        q1 = parse_query(text)
        q2 = parse_query(str(q1))
        assert str(q1.where) == str(q2.where)


class TestPathEvaluation:
    def test_transitive_subclass(self, chain_graph):
        r = evaluate(
            chain_graph, P + "SELECT ?c WHERE { ?c rdfs:subClassOf+ owl:Thing }"
        )
        assert locals_of(r, "c") == ["Agent", "Person", "Philosopher", "Place"]

    def test_star_includes_zero_hops(self, chain_graph):
        r = evaluate(
            chain_graph, P + "SELECT ?c WHERE { ?c rdfs:subClassOf* dbo:Person }"
        )
        assert locals_of(r, "c") == ["Person", "Philosopher"]

    def test_type_via_path(self, chain_graph):
        """a/rdfs:subClassOf* computes inferred types."""
        r = evaluate(
            chain_graph,
            P + "SELECT ?c WHERE { dbr:Plato a/rdfs:subClassOf* ?c }",
        )
        assert locals_of(r, "c") == ["Agent", "Person", "Philosopher", "Thing"]

    def test_sequence(self, chain_graph):
        r = evaluate(
            chain_graph,
            P + "SELECT ?x WHERE { dbr:Zeno dbo:influencedBy/dbo:influencedBy ?x }",
        )
        assert locals_of(r, "x") == ["Plato"]

    def test_inverse(self, chain_graph):
        r = evaluate(
            chain_graph, P + "SELECT ?x WHERE { dbr:Plato ^dbo:influencedBy ?x }"
        )
        assert locals_of(r, "x") == ["Aristotle"]

    def test_plus_closure(self, chain_graph):
        r = evaluate(
            chain_graph, P + "SELECT ?x WHERE { dbr:Zeno dbo:influencedBy+ ?x }"
        )
        assert locals_of(r, "x") == ["Aristotle", "Plato", "Socrates"]

    def test_question_mark(self, chain_graph):
        r = evaluate(
            chain_graph, P + "SELECT ?x WHERE { dbr:Zeno dbo:influencedBy? ?x }"
        )
        assert locals_of(r, "x") == ["Aristotle", "Zeno"]

    def test_reverse_closure_from_object(self, chain_graph):
        r = evaluate(
            chain_graph, P + "SELECT ?x WHERE { ?x dbo:influencedBy+ dbr:Socrates }"
        )
        assert locals_of(r, "x") == ["Aristotle", "Plato", "Zeno"]

    def test_both_endpoints_bound(self, chain_graph):
        assert evaluate(
            chain_graph,
            P + "ASK { dbr:Zeno dbo:influencedBy+ dbr:Socrates }",
        ).value
        assert not evaluate(
            chain_graph,
            P + "ASK { dbr:Socrates dbo:influencedBy+ dbr:Zeno }",
        ).value

    def test_cycle_terminates(self):
        g = parse_turtle(
            "@prefix ex: <http://ex/> .\n"
            "ex:a ex:next ex:b . ex:b ex:next ex:c . ex:c ex:next ex:a .\n"
        )
        r = evaluate(g, "SELECT ?x WHERE { <http://ex/a> <http://ex/next>+ ?x }")
        assert locals_of(r, "x") == ["a", "b", "c"]

    def test_pairs_are_distinct(self, chain_graph):
        pairs = list(
            eval_path(
                chain_graph,
                None,
                RepeatPath(URI("http://dbpedia.org/ontology/influencedBy"), 1),
                None,
            )
        )
        assert len(pairs) == len(set(pairs))

    def test_alternative(self, chain_graph):
        r = evaluate(
            chain_graph,
            P + "SELECT ?x WHERE { dbr:Aristotle (dbo:influencedBy|a) ?x }",
        )
        assert locals_of(r, "x") == ["Philosopher", "Plato"]

    def test_path_joins_with_other_patterns(self, chain_graph):
        r = evaluate(
            chain_graph,
            P
            + "SELECT ?s WHERE { ?s dbo:influencedBy+ dbr:Socrates . "
            "?s a dbo:Philosopher . }",
        )
        assert locals_of(r, "s") == ["Aristotle", "Plato", "Zeno"]


class TestExists:
    def test_exists_filters(self, chain_graph):
        r = evaluate(
            chain_graph,
            P + "SELECT ?s WHERE { ?s a dbo:Philosopher "
            "FILTER(EXISTS { ?s dbo:influencedBy dbr:Plato }) }",
        )
        assert locals_of(r, "s") == ["Aristotle"]

    def test_not_exists(self, chain_graph):
        r = evaluate(
            chain_graph,
            P + "SELECT ?s WHERE { ?s a dbo:Philosopher "
            "FILTER(NOT EXISTS { ?x dbo:influencedBy ?s }) }",
        )
        assert locals_of(r, "s") == ["Zeno"]

    def test_exists_combined_with_boolean_ops(self, chain_graph):
        r = evaluate(
            chain_graph,
            P + "SELECT ?s WHERE { ?s a dbo:Philosopher "
            "FILTER(EXISTS { ?s dbo:influencedBy dbr:Plato } || "
            "EXISTS { ?s dbo:influencedBy dbr:Socrates }) }",
        )
        assert locals_of(r, "s") == ["Aristotle", "Plato"]

    def test_exists_sees_outer_bindings(self, chain_graph):
        """The correlation: ?s inside EXISTS refers to the outer row."""
        r = evaluate(
            chain_graph,
            P + "SELECT ?s WHERE { ?s a dbo:Philosopher "
            "FILTER(EXISTS { ?s dbo:influencedBy ?someone }) }",
        )
        assert locals_of(r, "s") == ["Aristotle", "Plato", "Zeno"]

    def test_exists_with_path_inside(self, chain_graph):
        r = evaluate(
            chain_graph,
            P + "SELECT ?s WHERE { ?s a dbo:Philosopher "
            "FILTER(EXISTS { ?s dbo:influencedBy+ dbr:Socrates }) }",
        )
        assert locals_of(r, "s") == ["Aristotle", "Plato", "Zeno"]
