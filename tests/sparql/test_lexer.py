"""Unit tests for the SPARQL tokenizer."""

import pytest

from repro.sparql import SparqlSyntaxError, TokenType, tokenize


def kinds(text):
    return [t.type for t in tokenize(text)[:-1]]  # drop EOF


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasics:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select Where FILTER")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "WHERE", "FILTER"]
        assert all(t.type == TokenType.KEYWORD for t in tokens[:-1])

    def test_variables(self):
        tokens = tokenize("?s $o ?long_name")
        assert [t.value for t in tokens[:-1]] == ["s", "o", "long_name"]
        assert all(t.type == TokenType.VAR for t in tokens[:-1])

    def test_bare_question_mark_is_path_operator(self):
        tokens = tokenize("? ")
        assert tokens[0].type == TokenType.PUNCT
        assert tokens[0].value == "?"

    def test_empty_dollar_variable_raises(self):
        with pytest.raises(SparqlSyntaxError):
            tokenize("$ ")

    def test_iri(self):
        (token, _eof) = tokenize("<http://example.org/X>")
        assert token.type == TokenType.IRI
        assert token.value == "http://example.org/X"

    def test_pname(self):
        (token, _eof) = tokenize("dbo:Person")
        assert token.type == TokenType.PNAME
        assert token.value == "dbo:Person"

    def test_default_prefix_pname(self):
        (token, _eof) = tokenize(":Person")
        assert token.value == ":Person"

    def test_bare_prefix_declaration_form(self):
        tokens = tokenize("PREFIX dbo: <http://dbpedia.org/ontology/>")
        assert tokens[1].type == TokenType.PNAME
        assert tokens[1].value == "dbo:"

    def test_bnode(self):
        (token, _eof) = tokenize("_:b1")
        assert token.type == TokenType.BNODE
        assert token.value == "b1"


class TestLiterals:
    def test_string(self):
        (token, _eof) = tokenize('"hello world"')
        assert token.type == TokenType.STRING
        assert token.value == "hello world"

    def test_single_quoted(self):
        (token, _eof) = tokenize("'hi'")
        assert token.value == "hi"

    def test_escapes(self):
        (token, _eof) = tokenize(r'"a\nb\t\"c\""')
        assert token.value == 'a\nb\t"c"'

    def test_unicode_escape(self):
        (token, _eof) = tokenize(r'"é"')
        assert token.value == "é"

    def test_long_string(self):
        (token, _eof) = tokenize('"""multi\nline"""')
        assert token.value == "multi\nline"

    def test_unterminated_string_raises(self):
        with pytest.raises(SparqlSyntaxError):
            tokenize('"open')

    def test_langtag(self):
        tokens = tokenize('"hi"@en-GB')
        assert tokens[1].type == TokenType.LANGTAG
        assert tokens[1].value == "en-GB"

    @pytest.mark.parametrize(
        "text,type_",
        [
            ("42", TokenType.INTEGER),
            ("3.14", TokenType.DECIMAL),
            ("1e5", TokenType.DOUBLE),
            ("2.5e-3", TokenType.DOUBLE),
        ],
    )
    def test_numbers(self, text, type_):
        (token, _eof) = tokenize(text)
        assert token.type == type_
        assert token.value == text


class TestOperatorsAndAmbiguity:
    def test_comparison_operators(self):
        assert values("?x <= ?y >= ?z != ?w") == ["x", "<=", "y", ">=", "z", "!=", "w"]

    def test_less_than_not_confused_with_iri(self):
        tokens = tokenize("FILTER(?x < 3)")
        kinds_found = [t.type for t in tokens]
        assert TokenType.IRI not in kinds_found

    def test_less_than_variable(self):
        tokens = tokenize("?x < ?y")
        assert tokens[1].value == "<"
        assert tokens[1].type == TokenType.PUNCT

    def test_iri_followed_by_dot(self):
        tokens = tokenize("<http://a> <http://p> <http://b> .")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.IRI,
            TokenType.IRI,
            TokenType.IRI,
            TokenType.PUNCT,
        ]

    def test_double_pipe_and_ampersand(self):
        assert values("?a || ?b && ?c")[1] == "||"
        assert values("?a || ?b && ?c")[3] == "&&"

    def test_comments_skipped(self):
        tokens = tokenize("?s # comment here\n?o")
        assert [t.value for t in tokens[:-1]] == ["s", "o"]

    def test_line_column_tracking(self):
        tokens = tokenize("?a\n  ?b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unknown_character_raises(self):
        with pytest.raises(SparqlSyntaxError):
            tokenize("?s ~ ?o")

    def test_unknown_word_raises(self):
        with pytest.raises(SparqlSyntaxError):
            tokenize("bogusword")

    def test_pname_trailing_dot_is_terminator(self):
        tokens = tokenize("dbo:Person.")
        assert tokens[0].value == "dbo:Person"
        assert tokens[1].value == "."
