"""Units for the preemptable ID-space property-path operators (PR 8):
the lowering/hop kernel, closure edge cases, deterministic emit order,
mid-closure save/load, and the PathScan token schema."""

import pytest

from repro.rdf import Graph, URI
from repro.sparql.ast import InversePath, RepeatPath, SequencePath
from repro.sparql.executor import (
    MalformedTokenError,
    decode_continuation,
    encode_continuation,
    restore_plan,
    run_quantum,
    run_to_completion,
)
from repro.sparql.paths import (
    build_pair_iterator,
    eval_path,
    hop_ids,
    iter_node_ids,
    lower_path,
    path_hop,
)
from repro.sparql.physical import PathScanOp, PatternScanOp
from repro.sparql.planner import build_physical_plan

P = URI("http://ex.org/p")
Q = URI("http://ex.org/q")


def node(name: str) -> URI:
    return URI(f"http://ex.org/{name}")


def cycle_graph() -> Graph:
    """A → B → C → A plus a spur C → D."""
    g = Graph()
    g.add(node("A"), P, node("B"))
    g.add(node("B"), P, node("C"))
    g.add(node("C"), P, node("A"))
    g.add(node("C"), P, node("D"))
    return g


def drain(iterator, limit=10_000):
    pairs = []
    for _ in range(limit):
        if iterator.done:
            return pairs
        pair = iterator.next_pair()
        if pair is not None:
            pairs.append(pair)
    raise AssertionError("pair iterator did not terminate")


def pairs_for(graph, subject, path, object):
    return list(eval_path(graph, subject, path, object))


class TestLowering:
    def test_unknown_predicate_lowers_to_impossible_id(self):
        g = cycle_graph()
        code = lower_path(URI("http://ex.org/never"), g.dictionary.lookup)
        assert code == ("edge", -1)
        assert hop_ids(g, code, g.dictionary.encode(node("A"))) == []

    def test_edge_lowers_to_predicate_id(self):
        g = cycle_graph()
        code = lower_path(P, g.dictionary.lookup)
        assert code == ("edge", g.dictionary.lookup(P))

    def test_hops_are_sorted_ids(self):
        g = Graph()
        for name in ["z", "m", "a"]:
            g.add(node("hub"), P, node(name))
        code = lower_path(P, g.dictionary.lookup)
        hops = hop_ids(g, code, g.dictionary.encode(node("hub")))
        assert hops == sorted(hops)
        assert len(hops) == 3

    def test_backward_hop_inverts_the_edge(self):
        g = cycle_graph()
        code = lower_path(P, g.dictionary.lookup)
        enc = g.dictionary.encode
        assert enc(node("B")) in hop_ids(g, code, enc(node("A")), True)
        assert enc(node("C")) in hop_ids(g, code, enc(node("A")), False)


class TestClosureEdgeCases:
    def test_cycle_through_start_node(self):
        """`p+` on a cycle reaches the start node itself."""
        g = cycle_graph()
        a = node("A")
        reached = {o for (_s, o) in pairs_for(g, a, RepeatPath(P, min_hops=1), None)}
        assert reached == {a, node("B"), node("C"), node("D")}

    def test_star_emits_each_pair_once_on_cycles(self):
        g = cycle_graph()
        pairs = pairs_for(g, node("A"), RepeatPath(P, min_hops=0), None)
        assert len(pairs) == len(set(pairs))

    def test_optional_hop_self_pairs(self):
        """`p?` relates every node to itself plus single hops."""
        g = cycle_graph()
        pairs = set(
            pairs_for(g, None, RepeatPath(P, min_hops=0, max_one=True), None)
        )
        for name in ["A", "B", "C", "D"]:
            assert (node(name), node(name)) in pairs
        assert (node("A"), node("B")) in pairs
        assert (node("A"), node("C")) not in pairs

    def test_zero_length_path_matches_terms_outside_the_graph(self):
        g = cycle_graph()
        ghost = URI("http://ex.org/ghost")
        assert pairs_for(g, ghost, RepeatPath(P, min_hops=0), None) == [
            (ghost, ghost)
        ]
        assert pairs_for(g, ghost, RepeatPath(P, min_hops=1), None) == []

    def test_bound_object_backward_walk(self):
        """`?s p+ <C>` explores backwards from the object."""
        g = cycle_graph()
        sources = {
            s for (s, _o) in pairs_for(g, None, RepeatPath(P, min_hops=1), node("C"))
        }
        assert sources == {node("A"), node("B"), node("C")}  # cycle: C too

    def test_both_endpoints_bound_reachability(self):
        g = cycle_graph()
        one = pairs_for(g, node("A"), RepeatPath(P, min_hops=1), node("D"))
        assert one == [(node("A"), node("D"))]
        none = pairs_for(g, node("D"), RepeatPath(P, min_hops=1), node("A"))
        assert none == []  # D is a sink

    def test_sequence_with_bound_object_walks_tail_first(self):
        g = cycle_graph()
        path = SequencePath((P, P))
        pairs = pairs_for(g, None, path, node("A"))
        assert (node("B"), node("A")) in pairs  # B → C → A

    def test_inverse_closure(self):
        g = cycle_graph()
        pairs = set(
            pairs_for(g, node("D"), RepeatPath(InversePath(P), min_hops=1), None)
        )
        assert pairs == {(node("D"), n) for n in [node("A"), node("B"), node("C")]}


class TestDeterministicOrder:
    def test_path_hop_returns_sorted_id_order(self):
        g = Graph()
        targets = [node(n) for n in ["z", "m", "a", "q"]]
        for t in targets:
            g.add(node("hub"), P, t)
        hops = path_hop(g, node("hub"), P)
        assert isinstance(hops, list)
        ids = [g.dictionary.encode(t) for t in hops]
        assert ids == sorted(ids)
        assert set(hops) == set(targets)

    def test_emission_order_is_reproducible(self):
        g = cycle_graph()
        path = RepeatPath(P, min_hops=0)
        first = pairs_for(g, None, path, None)
        second = pairs_for(g, None, path, None)
        assert first == second

    def test_iter_node_ids_ascends_and_covers_all_nodes(self):
        g = cycle_graph()
        ids = list(iter_node_ids(g))
        assert ids == sorted(ids)
        expected = set()
        for s, _p, o in g.triples_ids(None, None, None):
            expected.add(s)
            expected.add(o)
        assert set(ids) == expected

    def test_iter_node_ids_skips_predicate_only_terms(self):
        g = cycle_graph()
        pid = g.dictionary.lookup(P)
        assert pid is not None
        assert pid not in set(iter_node_ids(g))


class TestPairIteratorSuspension:
    def test_mid_closure_save_load_resumes_identically(self):
        g = cycle_graph()
        code = lower_path(RepeatPath(P, min_hops=0), g.dictionary.lookup)
        start = g.dictionary.encode(node("A"))

        reference = drain(build_pair_iterator(g, code, start, None))
        assert reference  # sanity

        # Suspend after every single call, round-tripping the state.
        for stop_after in range(1, 12):
            iterator = build_pair_iterator(g, code, start, None)
            collected = []
            for _ in range(stop_after):
                if iterator.done:
                    break
                pair = iterator.next_pair()
                if pair is not None:
                    collected.append(pair)
            state = iterator.save()
            fresh = build_pair_iterator(g, code, start, None)
            fresh.load(state)
            collected.extend(drain(fresh))
            assert collected == reference, f"diverged at step {stop_after}"

    def test_full_closure_save_load_resumes_identically(self):
        g = cycle_graph()
        code = lower_path(RepeatPath(P, min_hops=0), g.dictionary.lookup)
        reference = drain(build_pair_iterator(g, code, None, None))
        for stop_after in range(1, 30, 3):
            iterator = build_pair_iterator(g, code, None, None)
            collected = []
            for _ in range(stop_after):
                if iterator.done:
                    break
                pair = iterator.next_pair()
                if pair is not None:
                    collected.append(pair)
            state = iterator.save()
            fresh = build_pair_iterator(g, code, None, None)
            fresh.load(state)
            collected.extend(drain(fresh))
            assert collected == reference

    def test_loading_wrong_kind_is_rejected(self):
        g = cycle_graph()
        edge_code = lower_path(P, g.dictionary.lookup)
        closure_code = lower_path(RepeatPath(P, min_hops=0), g.dictionary.lookup)
        start = g.dictionary.encode(node("A"))
        state = build_pair_iterator(g, closure_code, start, None).save()
        with pytest.raises(ValueError):
            build_pair_iterator(g, edge_code, start, None).load(state)


class TestPathScanOp:
    QUERY = (
        "SELECT ?s ?o WHERE { ?s <http://ex.org/p>* ?o }"
    )

    def test_planner_mounts_path_scan_for_path_predicates(self):
        g = cycle_graph()
        plan = build_physical_plan(g, self.QUERY)
        labels = [op.label for op in plan.root.walk()]
        assert "PathScan" in labels
        assert not any(
            isinstance(op, PatternScanOp) for op in plan.root.walk()
        )

    def test_flat_patterns_still_use_pattern_scan(self):
        g = cycle_graph()
        plan = build_physical_plan(
            g, "SELECT ?s ?o WHERE { ?s <http://ex.org/p> ?o }"
        )
        assert not any(
            isinstance(op, PathScanOp) for op in plan.root.walk()
        )

    def test_quantum_suspends_inside_a_closure(self):
        """A path query must not run to completion inside one page."""
        g = Graph()
        with g.bulk():
            for i in range(200):
                g.add(node(f"n{i}"), P, node(f"n{i + 1}"))
        plan = build_physical_plan(
            g, "SELECT ?o WHERE { <http://ex.org/n0> <http://ex.org/p>* ?o }"
        )
        page = run_quantum(plan, page_size=5)
        assert not page.complete
        assert len(page.rows) == 5

    def test_token_resumes_mid_traversal(self):
        g = cycle_graph()
        expected = run_to_completion(build_physical_plan(g, self.QUERY))
        factory = build_physical_plan(g, self.QUERY).factory
        plan = factory.instantiate(g)
        rows = []
        for _ in range(1000):
            page = run_quantum(plan, page_size=2)
            rows.extend(page.rows)
            if page.complete:
                break
            token = encode_continuation(plan, g, self.QUERY)
            plan = restore_plan(factory, g, decode_continuation(token))
        assert rows == expected.rows

    def test_frontier_detail_renders_after_execution(self):
        g = cycle_graph()
        plan = build_physical_plan(g, self.QUERY)
        run_to_completion(plan)
        op = next(
            op for op in plan.root.walk() if isinstance(op, PathScanOp)
        )
        hops, peak, visited = op.frontier_stats()
        assert hops > 0 and visited > 0
        assert "hops=" in op.detail()

    def test_pre_pr8_path_token_is_rejected_as_malformed(self):
        """Old tokens carried PatternScan-shaped state for path scans;
        the restored plan now expects PathScan, so the label check must
        turn them into a clean MalformedTokenError (HTTP 400), not a
        crash or a silently wrong resume."""
        g = cycle_graph()
        factory = build_physical_plan(g, self.QUERY).factory
        plan = factory.instantiate(g)
        run_quantum(plan, page_size=2)
        token = encode_continuation(plan, g, self.QUERY)
        blob = decode_continuation(token)

        def relabel(state):
            if isinstance(state, dict):
                if state.get("op") == "PathScan":
                    state["op"] = "PatternScan"
                    state.pop("path", None)
                    state["offset"] = 0
                for value in state.values():
                    relabel(value)

        relabel(blob["state"])
        with pytest.raises(MalformedTokenError):
            restore_plan(factory, g, blob)
