"""Shared fixtures: datasets and endpoints reused across the suite.

The synthetic DBpedia dataset is deterministic, so it is generated once
per session; tests must not mutate it (tests that need a mutable graph
take a copy or build their own).
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import (
    DBpediaConfig,
    generate_dbpedia,
    generate_lgd,
)
from repro.endpoint import LocalEndpoint, SimClock, SimulatedVirtuosoServer
from repro.rdf import Graph, parse_turtle

def pytest_collection_modifyitems(config, items):
    """Skip ``multicore``-marked tests on single-core runners.

    The pool's *functional* tests (fork, routing, crash recovery,
    byte-identical pages) run everywhere; only tests that assert a real
    wall-clock parallel speedup carry the marker.
    """
    if (os.cpu_count() or 1) >= 2:
        return
    skip = pytest.mark.skip(reason="needs >=2 CPU cores for parallel speedup")
    for item in items:
        if "multicore" in item.keywords:
            item.add_marker(skip)


PHILOSOPHY_TTL = """
@prefix dbo: <http://dbpedia.org/ontology/> .
@prefix dbr: <http://dbpedia.org/resource/> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

dbo:Agent rdfs:subClassOf owl:Thing .
dbo:Person rdfs:subClassOf dbo:Agent .
dbo:Philosopher rdfs:subClassOf dbo:Person .
dbo:Scientist rdfs:subClassOf dbo:Person .
dbo:Place rdfs:subClassOf owl:Thing .

dbr:Plato a dbo:Philosopher, dbo:Person, dbo:Agent, owl:Thing ;
    rdfs:label "Plato"@en ;
    dbo:birthPlace dbr:Athens ;
    dbo:era "Ancient philosophy" .
dbr:Aristotle a dbo:Philosopher, dbo:Person, dbo:Agent, owl:Thing ;
    rdfs:label "Aristotle"@en ;
    dbo:birthPlace dbr:Stagira ;
    dbo:influencedBy dbr:Plato .
dbr:Kant a dbo:Philosopher, dbo:Person, dbo:Agent, owl:Thing ;
    rdfs:label "Immanuel Kant"@en ;
    dbo:influencedBy dbr:Newton, dbr:Plato .
dbr:Newton a dbo:Scientist, dbo:Person, dbo:Agent, owl:Thing ;
    rdfs:label "Isaac Newton"@en ;
    dbo:birthPlace dbr:Woolsthorpe .
dbr:Athens a dbo:Place, owl:Thing ;
    rdfs:label "Athens"@en .
dbr:Stagira a dbo:Place, owl:Thing .
dbr:Woolsthorpe a dbo:Place, owl:Thing .
"""


@pytest.fixture(scope="session")
def philosophy_graph() -> Graph:
    """A hand-written micro graph with the paper's running example."""
    return parse_turtle(PHILOSOPHY_TTL)


@pytest.fixture(scope="session")
def dbpedia_config() -> DBpediaConfig:
    return DBpediaConfig()


@pytest.fixture(scope="session")
def dbpedia(dbpedia_config):
    """The synthetic DBpedia dataset at the default (test) scale."""
    return generate_dbpedia(dbpedia_config)


@pytest.fixture(scope="session")
def dbpedia_graph(dbpedia) -> Graph:
    return dbpedia.graph


@pytest.fixture(scope="session")
def lgd():
    """The LinkedGeoData-like flat dataset."""
    return generate_lgd()


@pytest.fixture()
def clock() -> SimClock:
    return SimClock()


@pytest.fixture()
def local_endpoint(dbpedia_graph, clock) -> LocalEndpoint:
    return LocalEndpoint(dbpedia_graph, clock=clock)


@pytest.fixture()
def philosophy_endpoint(philosophy_graph, clock) -> LocalEndpoint:
    return LocalEndpoint(philosophy_graph, clock=clock)


@pytest.fixture()
def virtuoso_server(dbpedia_graph, clock) -> SimulatedVirtuosoServer:
    return SimulatedVirtuosoServer(dbpedia_graph, clock=clock)
