"""Unit tests for the statistics service and class autocomplete."""

import pytest

from repro.core import ClassSearchIndex, StatisticsService
from repro.rdf import DBO, OWL, URI

THING = OWL.term("Thing")


@pytest.fixture()
def stats(philosophy_endpoint):
    return StatisticsService(philosophy_endpoint)


class TestDatasetStatistics:
    def test_totals(self, stats, philosophy_graph):
        ds = stats.dataset_statistics()
        assert ds.total_triples == len(philosophy_graph)
        # The micro graph declares no owl:Class subjects.
        assert ds.class_count == 0

    def test_dbpedia_class_count(self, local_endpoint, dbpedia):
        service = StatisticsService(local_endpoint)
        ds = service.dataset_statistics()
        # Every declared class except the undeclared root bookkeeping.
        assert ds.class_count >= 330
        assert ds.total_triples == len(dbpedia.graph)


class TestClassStatistics:
    def test_subclass_counts(self, stats):
        person = stats.class_statistics(DBO.term("Person"))
        assert person.instance_count == 4
        assert person.direct_subclasses == 2
        assert person.total_subclasses == 2

    def test_indirect_subclasses(self, stats):
        thing = stats.class_statistics(THING)
        assert thing.direct_subclasses == 2  # Agent, Place
        assert thing.total_subclasses == 5

    def test_summary_text(self, stats):
        text = stats.class_statistics(DBO.term("Person")).summary()
        assert "Person" in text and "2 direct" in text

    def test_cache_hit_avoids_queries(self, stats, philosophy_endpoint):
        stats.direct_subclasses(THING)
        queries_after_first = len(philosophy_endpoint.query_log)
        stats.direct_subclasses(THING)
        assert len(philosophy_endpoint.query_log) == queries_after_first

    def test_cache_invalidated_by_version(self, philosophy_graph):
        from repro.endpoint import LocalEndpoint

        graph = philosophy_graph.copy()
        endpoint = LocalEndpoint(graph)
        service = StatisticsService(endpoint)
        assert len(service.direct_subclasses(THING)) == 2
        graph.add(
            DBO.term("Idea"),
            URI("http://www.w3.org/2000/01/rdf-schema#subClassOf"),
            THING,
        )
        assert len(service.direct_subclasses(THING)) == 3


class TestSearchIndex:
    @pytest.fixture()
    def index(self, local_endpoint):
        return ClassSearchIndex.build(local_endpoint)

    def test_builds_from_declared_classes(self, index):
        assert len(index) >= 330
        assert DBO.term("Philosopher") in index

    def test_complete_prefix(self, index):
        matches = index.complete("Philo")
        assert any(e.cls == DBO.term("Philosopher") for e in matches)

    def test_complete_case_insensitive(self, index):
        assert index.complete("philo") == index.complete("PHILO")

    def test_complete_ranked_by_instance_count(self, index):
        matches = index.complete("A", limit=50)
        counts = [e.instance_count for e in matches]
        assert counts == sorted(counts, reverse=True)

    def test_complete_empty_prefix_returns_top(self, index):
        top = index.complete("", limit=3)
        assert len(top) == 3
        # The biggest class first.
        assert top[0].instance_count >= top[1].instance_count

    def test_complete_limit(self, index):
        assert len(index.complete("A", limit=2)) == 2
        assert index.complete("A", limit=0) == []

    def test_search_substring(self, index):
        matches = index.search("osopher")
        assert any(e.cls == DBO.term("Philosopher") for e in matches)
        assert index.complete("osopher") == []  # prefix-only

    def test_entry_lookup(self, index):
        entry = index.entry(DBO.term("Philosopher"))
        assert entry is not None
        assert entry.instance_count == 40
        assert "40" in str(entry)

    def test_no_match(self, index):
        assert index.complete("Zzzz") == []
        assert index.entry(DBO.term("Zzzz")) is None

    def test_build_without_counts_is_cheaper(self, local_endpoint):
        baseline = len(local_endpoint.query_log)
        ClassSearchIndex.build(local_endpoint, with_counts=False)
        cheap_queries = len(local_endpoint.query_log) - baseline
        assert cheap_queries == 1  # just the class list


class TestSubclassClosurePath:
    """The path-based closure agrees with the iterative drill-down."""

    def test_agreement_micro(self, stats):
        from repro.rdf import OWL

        thing = OWL.term("Thing")
        assert stats.all_subclasses(thing) == stats.all_subclasses_iterative(thing)

    def test_agreement_dbpedia(self, local_endpoint, dbpedia):
        service = StatisticsService(local_endpoint)
        agent = dbpedia.facts["agent"]
        via_path = service.all_subclasses(agent)
        via_iteration = service.all_subclasses_iterative(agent)
        assert via_path == via_iteration
        assert len(via_path) == 277

    def test_path_uses_single_query(self, local_endpoint, dbpedia):
        service = StatisticsService(local_endpoint)
        before = len(local_endpoint.query_log)
        service.all_subclasses(dbpedia.facts["agent"])
        assert len(local_endpoint.query_log) - before == 1
