"""Unit tests for the bar/chart formal model."""

import pytest

from repro.core import Bar, BarChart, BarType, Direction
from repro.rdf import URI

EX = "http://example.org/"


def uri(name):
    return URI(EX + name)


def bar(name, members, type_=BarType.CLASS, coverage=None):
    return Bar(
        label=uri(name),
        type=type_,
        uris=frozenset(uri(m) for m in members),
        coverage=coverage,
    )


class TestBar:
    def test_size_from_uris(self):
        assert bar("A", ["x", "y"]).size == 2

    def test_size_from_count(self):
        lazy = Bar(label=uri("A"), type=BarType.CLASS, count=7)
        assert lazy.size == 7

    def test_requires_uris_or_count(self):
        with pytest.raises(ValueError):
            Bar(label=uri("A"), type=BarType.CLASS)

    def test_contains(self):
        b = bar("A", ["x"])
        assert uri("x") in b
        assert uri("y") not in b

    def test_contains_unmaterialised_raises(self):
        lazy = Bar(label=uri("A"), type=BarType.CLASS, count=1)
        with pytest.raises(ValueError):
            uri("x") in lazy

    def test_filter(self):
        b = bar("A", ["x", "y", "z"])
        kept = b.filter(lambda u: u.local_name != "y")
        assert kept.size == 2
        assert uri("y") not in kept
        # Original untouched (bars are immutable values).
        assert b.size == 3

    def test_filter_unmaterialised_raises(self):
        lazy = Bar(label=uri("A"), type=BarType.CLASS, count=1)
        with pytest.raises(ValueError):
            lazy.filter(lambda u: True)

    def test_with_uris_sets_count(self):
        lazy = Bar(label=uri("A"), type=BarType.CLASS, count=99)
        materialised = lazy.with_uris(frozenset({uri("x")}))
        assert materialised.size == 1
        assert materialised.count == 1


class TestBarChart:
    @pytest.fixture()
    def chart(self):
        return BarChart(
            [
                bar("Small", ["a"]),
                bar("Big", ["a", "b", "c"]),
                bar("Mid", ["a", "b"]),
                bar("Empty", []),
            ]
        )

    def test_labels_sorted_by_height(self, chart):
        assert [l.local_name for l in chart.labels()] == [
            "Big",
            "Mid",
            "Small",
            "Empty",
        ]

    def test_ties_broken_by_label(self):
        chart = BarChart([bar("B", ["x"]), bar("A", ["y"])])
        assert [l.local_name for l in chart.labels()] == ["A", "B"]

    def test_getitem(self, chart):
        assert chart[uri("Big")].size == 3
        with pytest.raises(KeyError):
            chart[uri("Nope")]

    def test_get_and_contains(self, chart):
        assert chart.get(uri("Nope")) is None
        assert uri("Big") in chart

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            BarChart([bar("A", ["x"]), bar("A", ["y"])])

    def test_top(self, chart):
        assert [b.label.local_name for b in chart.top(2)] == ["Big", "Mid"]
        assert chart.top(0) == []
        with pytest.raises(ValueError):
            chart.top(-1)

    def test_nonempty(self, chart):
        assert len(chart.nonempty()) == 3

    def test_total_size(self, chart):
        assert chart.total_size() == 6

    def test_above_coverage(self):
        chart = BarChart(
            [
                bar("High", ["a", "b"], BarType.PROPERTY, coverage=0.8),
                bar("AtThreshold", ["a"], BarType.PROPERTY, coverage=0.2),
                bar("Low", ["a"], BarType.PROPERTY, coverage=0.1),
                bar("NoCoverage", ["a"], BarType.PROPERTY),
            ]
        )
        kept = chart.above_coverage(0.2)
        assert {b.label.local_name for b in kept} == {"High", "AtThreshold"}

    def test_filter_bars(self, chart):
        filtered = chart.filter_bars(lambda u: u.local_name == "a")
        assert filtered[uri("Big")].size == 1
        assert filtered[uri("Empty")].size == 0

    def test_as_rows(self, chart):
        rows = chart.as_rows()
        assert rows[0] == (uri("Big"), 3)
        assert len(rows) == 4

    def test_equality(self, chart):
        same = BarChart({b.label: b for b in chart.sorted_bars()})
        assert chart == same

    def test_iteration_order_matches_sorted(self, chart):
        assert list(chart) == chart.sorted_bars()
