"""Unit tests for the reference expansions (the paper's Section 2
definitions, executed on the micro philosophy graph)."""

import pytest

from repro.core import (
    Bar,
    BarType,
    Direction,
    ExpansionError,
    filter_expansion,
    initial_chart,
    object_expansion,
    property_expansion,
    root_bar,
    subclass_expansion,
)
from repro.rdf import DBO, DBR, OWL, RDFS, URI

THING = OWL.term("Thing")


class TestRootAndInitial:
    def test_root_bar_members(self, philosophy_graph):
        bar = root_bar(philosophy_graph, THING)
        assert bar.type is BarType.CLASS
        assert bar.label == THING
        assert bar.size == 7  # 4 persons + 3 places

    def test_initial_chart_is_subclass_expansion_of_root(self, philosophy_graph):
        chart = initial_chart(philosophy_graph, THING)
        assert chart == subclass_expansion(
            philosophy_graph, root_bar(philosophy_graph, THING)
        )
        assert {l.local_name for l in chart.labels()} == {"Agent", "Place"}

    def test_rootless_class_gives_empty_root(self, philosophy_graph):
        bar = root_bar(philosophy_graph, DBO.term("Event"))
        assert bar.size == 0


class TestSubclassExpansion:
    def test_definition(self, philosophy_graph):
        """labels(B) = subclasses of lambda; B[tau] = members of class tau."""
        bar = root_bar(philosophy_graph, DBO.term("Person"))
        chart = subclass_expansion(philosophy_graph, bar)
        assert {l.local_name for l in chart.labels()} == {
            "Philosopher",
            "Scientist",
        }
        assert chart[DBO.term("Philosopher")].size == 3
        assert chart[DBO.term("Scientist")].size == 1

    def test_result_bars_are_class_bars(self, philosophy_graph):
        chart = subclass_expansion(
            philosophy_graph, root_bar(philosophy_graph, DBO.term("Person"))
        )
        assert all(b.type is BarType.CLASS for b in chart)

    def test_bars_are_subsets_of_input(self, philosophy_graph):
        bar = root_bar(philosophy_graph, DBO.term("Person"))
        chart = subclass_expansion(philosophy_graph, bar)
        for sub_bar in chart:
            assert sub_bar.uris <= bar.uris

    def test_narrowed_input_narrows_output(self, philosophy_graph):
        """T consists of s IN S of class tau — not all instances of tau."""
        narrowed = Bar(
            label=DBO.term("Person"),
            type=BarType.CLASS,
            uris=frozenset({DBR.term("Plato"), DBR.term("Newton")}),
        )
        chart = subclass_expansion(philosophy_graph, narrowed)
        assert chart[DBO.term("Philosopher")].uris == frozenset({DBR.term("Plato")})

    def test_rejects_property_bar(self, philosophy_graph):
        prop_bar = Bar(
            label=DBO.term("birthPlace"),
            type=BarType.PROPERTY,
            uris=frozenset(),
        )
        with pytest.raises(ExpansionError):
            subclass_expansion(philosophy_graph, prop_bar)

    def test_rejects_unmaterialised_bar(self, philosophy_graph):
        lazy = Bar(label=THING, type=BarType.CLASS, count=3)
        with pytest.raises(ExpansionError):
            subclass_expansion(philosophy_graph, lazy)


class TestPropertyExpansion:
    def test_outgoing_definition(self, philosophy_graph):
        bar = root_bar(philosophy_graph, DBO.term("Philosopher"))
        chart = property_expansion(philosophy_graph, bar)
        names = {l.local_name for l in chart.labels()}
        assert names == {"type", "label", "birthPlace", "era", "influencedBy"}
        # B[pi] = members featuring pi.
        assert chart[DBO.term("influencedBy")].uris == frozenset(
            {DBR.term("Aristotle"), DBR.term("Kant")}
        )

    def test_coverage(self, philosophy_graph):
        bar = root_bar(philosophy_graph, DBO.term("Philosopher"))
        chart = property_expansion(philosophy_graph, bar)
        assert chart[DBO.term("birthPlace")].coverage == pytest.approx(2 / 3)
        assert chart[RDFS.term("label")].coverage == pytest.approx(1.0)

    def test_incoming_definition(self, philosophy_graph):
        bar = root_bar(philosophy_graph, DBO.term("Philosopher"))
        chart = property_expansion(philosophy_graph, bar, Direction.INCOMING)
        # Plato is the object of influencedBy twice.
        assert chart[DBO.term("influencedBy")].uris == frozenset(
            {DBR.term("Plato")}
        )

    def test_bars_are_property_type_with_direction(self, philosophy_graph):
        bar = root_bar(philosophy_graph, DBO.term("Person"))
        chart = property_expansion(philosophy_graph, bar, Direction.INCOMING)
        assert all(b.type is BarType.PROPERTY for b in chart)
        assert all(b.direction is Direction.INCOMING for b in chart)

    def test_empty_set_has_empty_chart(self, philosophy_graph):
        empty = Bar(label=THING, type=BarType.CLASS, uris=frozenset())
        chart = property_expansion(philosophy_graph, empty)
        assert len(chart) == 0

    def test_rejects_property_bar(self, philosophy_graph):
        prop_bar = Bar(
            label=DBO.term("birthPlace"), type=BarType.PROPERTY, uris=frozenset()
        )
        with pytest.raises(ExpansionError):
            property_expansion(philosophy_graph, prop_bar)


class TestObjectExpansion:
    def _influenced_by_bar(self, graph):
        phil = root_bar(graph, DBO.term("Philosopher"))
        return property_expansion(graph, phil)[DBO.term("influencedBy")]

    def test_outgoing_definition(self, philosophy_graph):
        """Objects connected via lambda, grouped by their class."""
        chart = object_expansion(
            philosophy_graph, self._influenced_by_bar(philosophy_graph)
        )
        names = {l.local_name for l in chart.labels()}
        # Plato (Philosopher/Person/Agent/Thing) and Newton (Scientist/...).
        assert "Philosopher" in names and "Scientist" in names
        assert chart[DBO.term("Scientist")].uris == frozenset({DBR.term("Newton")})
        assert chart[DBO.term("Person")].uris == frozenset(
            {DBR.term("Plato"), DBR.term("Newton")}
        )

    def test_result_bars_are_class_bars(self, philosophy_graph):
        chart = object_expansion(
            philosophy_graph, self._influenced_by_bar(philosophy_graph)
        )
        assert all(b.type is BarType.CLASS for b in chart)

    def test_incoming_collects_subjects(self, philosophy_graph):
        phil = root_bar(philosophy_graph, DBO.term("Philosopher"))
        incoming = property_expansion(
            philosophy_graph, phil, Direction.INCOMING
        )[DBO.term("influencedBy")]
        chart = object_expansion(
            philosophy_graph, incoming, Direction.INCOMING
        )
        # Who influenced-by-points *to* philosophers: Aristotle, Kant.
        assert chart[DBO.term("Philosopher")].uris == frozenset(
            {DBR.term("Aristotle"), DBR.term("Kant")}
        )

    def test_untyped_objects_excluded(self, philosophy_graph):
        phil = root_bar(philosophy_graph, DBO.term("Philosopher"))
        era_bar = property_expansion(philosophy_graph, phil)[DBO.term("era")]
        chart = object_expansion(philosophy_graph, era_bar)
        assert len(chart) == 0  # literal objects have no class

    def test_rejects_class_bar(self, philosophy_graph):
        with pytest.raises(ExpansionError):
            object_expansion(
                philosophy_graph, root_bar(philosophy_graph, THING)
            )


class TestFilterExpansion:
    def test_condition_filter(self, philosophy_graph):
        bar = root_bar(philosophy_graph, DBO.term("Philosopher"))
        filtered = filter_expansion(
            bar, lambda u: u.local_name.startswith("A")
        )
        assert filtered.uris == frozenset({DBR.term("Aristotle")})

    def test_allowed_set_intersection(self, philosophy_graph):
        bar = root_bar(philosophy_graph, DBO.term("Philosopher"))
        filtered = filter_expansion(
            bar, lambda u: True, allowed={DBR.term("Plato"), DBR.term("Newton")}
        )
        assert filtered.uris == frozenset({DBR.term("Plato")})

    def test_original_unchanged(self, philosophy_graph):
        bar = root_bar(philosophy_graph, DBO.term("Philosopher"))
        filter_expansion(bar, lambda u: False)
        assert bar.size == 3

    def test_requires_materialised(self):
        lazy = Bar(label=THING, type=BarType.CLASS, count=5)
        with pytest.raises(ExpansionError):
            filter_expansion(lazy, lambda u: True)
