"""Unit tests for the endpoint-backed chart engine.

The central invariant: every engine chart agrees (labels and heights)
with the reference expansion computed directly on the graph.
"""

import pytest

from repro.core import (
    BarType,
    ChartEngine,
    Direction,
    initial_chart,
    object_expansion,
    property_expansion,
    root_bar,
    subclass_expansion,
)
from repro.rdf import DBO, DBR, Literal, OWL

THING = OWL.term("Thing")


@pytest.fixture()
def engine(philosophy_endpoint):
    return ChartEngine(philosophy_endpoint, THING)


def heights(chart):
    return {bar.label: bar.size for bar in chart}


class TestAgainstReference:
    def test_root_bar_count(self, engine, philosophy_graph):
        assert engine.root_bar().size == root_bar(philosophy_graph, THING).size

    def test_initial_chart(self, engine, philosophy_graph):
        assert heights(engine.initial_chart()) == heights(
            initial_chart(philosophy_graph, THING)
        )

    def test_subclass_chain(self, engine, philosophy_graph):
        chart = engine.initial_chart()
        agent = chart[DBO.term("Agent")]
        engine_person = engine.subclass_chart(agent)
        reference = subclass_expansion(
            philosophy_graph,
            subclass_expansion(
                philosophy_graph, root_bar(philosophy_graph, THING)
            )[DBO.term("Agent")],
        )
        assert heights(engine_person) == heights(reference)

    def test_property_chart_both_directions(self, engine, philosophy_graph):
        chart = engine.initial_chart()
        agent = chart[DBO.term("Agent")]
        person_chart = engine.subclass_chart(agent)
        person = person_chart[DBO.term("Person")]
        ref_person = subclass_expansion(
            philosophy_graph,
            subclass_expansion(
                philosophy_graph, root_bar(philosophy_graph, THING)
            )[DBO.term("Agent")],
        )[DBO.term("Person")]
        for direction in (Direction.OUTGOING, Direction.INCOMING):
            via_engine = engine.property_chart(person, direction)
            via_reference = property_expansion(
                philosophy_graph, ref_person, direction
            )
            assert heights(via_engine) == heights(via_reference)
            for bar in via_engine:
                ref_bar = via_reference[bar.label]
                assert bar.coverage == pytest.approx(ref_bar.coverage)

    def test_object_chart(self, engine, philosophy_graph):
        person = engine.subclass_chart(
            engine.initial_chart()[DBO.term("Agent")]
        )[DBO.term("Person")]
        influenced = engine.property_chart(person)[DBO.term("influencedBy")]
        via_engine = engine.object_chart(influenced)
        ref_person = root_bar(philosophy_graph, DBO.term("Person"))
        ref_influenced = property_expansion(philosophy_graph, ref_person)[
            DBO.term("influencedBy")
        ]
        via_reference = object_expansion(philosophy_graph, ref_influenced)
        assert heights(via_engine) == heights(via_reference)


class TestEngineMechanics:
    def test_bars_carry_patterns(self, engine):
        chart = engine.initial_chart()
        for bar in chart:
            assert bar.pattern is not None

    def test_materialise(self, engine):
        agent = engine.initial_chart()[DBO.term("Agent")]
        materialised = engine.materialise(agent)
        assert materialised.uris is not None
        assert len(materialised.uris) == agent.size
        assert DBR.term("Plato") in materialised.uris

    def test_materialise_with_limit(self, engine):
        agent = engine.initial_chart()[DBO.term("Agent")]
        limited = engine.materialise(agent, limit=2)
        assert len(limited.uris) == 2

    def test_materialise_idempotent_on_materialised(self, engine):
        agent = engine.initial_chart()[DBO.term("Agent")]
        materialised = engine.materialise(agent)
        assert engine.materialise(materialised) is materialised

    def test_refresh_count(self, engine):
        agent = engine.initial_chart()[DBO.term("Agent")]
        assert engine.refresh_count(agent).size == agent.size

    def test_sparql_for_is_executable(self, engine, philosophy_endpoint):
        agent = engine.initial_chart()[DBO.term("Agent")]
        query = engine.sparql_for(agent)
        result = philosophy_endpoint.select(query)
        assert len(result.rows) == agent.size

    def test_bar_from_explicit_uris(self, engine, philosophy_graph):
        from repro.core import Bar

        explicit = Bar(
            label=DBO.term("Philosopher"),
            type=BarType.CLASS,
            uris=frozenset({DBR.term("Plato"), DBR.term("Kant")}),
        )
        chart = engine.property_chart(explicit)
        assert chart[DBO.term("influencedBy")].size == 1  # only Kant

    def test_filtered_bar(self, engine):
        person = engine.subclass_chart(
            engine.initial_chart()[DBO.term("Agent")]
        )[DBO.term("Person")]
        vienna_style = engine.filtered_bar(
            person, {DBO.term("birthPlace"): DBR.term("Athens")}
        )
        assert vienna_style.size == 1  # only Plato born in Athens

    def test_filtered_bar_literal_value(self, engine):
        person = engine.subclass_chart(
            engine.initial_chart()[DBO.term("Agent")]
        )[DBO.term("Person")]
        filtered = engine.filtered_bar(
            person, {DBO.term("era"): Literal("Ancient philosophy")}
        )
        assert filtered.size == 1  # Plato

    def test_subclass_on_property_bar_rejected(self, engine):
        person = engine.subclass_chart(
            engine.initial_chart()[DBO.term("Agent")]
        )[DBO.term("Person")]
        prop = engine.property_chart(person)[DBO.term("birthPlace")]
        with pytest.raises(ValueError):
            engine.subclass_chart(prop)
        with pytest.raises(ValueError):
            engine.property_chart(prop)

    def test_object_on_class_bar_rejected(self, engine):
        agent = engine.initial_chart()[DBO.term("Agent")]
        with pytest.raises(ValueError):
            engine.object_chart(agent)
