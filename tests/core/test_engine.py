"""Unit tests for the endpoint-backed chart engine.

The central invariant: every engine chart agrees (labels and heights)
with the reference expansion computed directly on the graph.
"""

import pytest

from repro.core import (
    BarType,
    ChartEngine,
    Direction,
    initial_chart,
    object_expansion,
    property_expansion,
    root_bar,
    subclass_expansion,
)
from repro.rdf import DBO, DBR, Literal, OWL

THING = OWL.term("Thing")
XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"
XSD_DECIMAL = "http://www.w3.org/2001/XMLSchema#decimal"
XSD_DOUBLE = "http://www.w3.org/2001/XMLSchema#double"


@pytest.fixture()
def engine(philosophy_endpoint):
    return ChartEngine(philosophy_endpoint, THING)


def heights(chart):
    return {bar.label: bar.size for bar in chart}


class TestAgainstReference:
    def test_root_bar_count(self, engine, philosophy_graph):
        assert engine.root_bar().size == root_bar(philosophy_graph, THING).size

    def test_initial_chart(self, engine, philosophy_graph):
        assert heights(engine.initial_chart()) == heights(
            initial_chart(philosophy_graph, THING)
        )

    def test_subclass_chain(self, engine, philosophy_graph):
        chart = engine.initial_chart()
        agent = chart[DBO.term("Agent")]
        engine_person = engine.subclass_chart(agent)
        reference = subclass_expansion(
            philosophy_graph,
            subclass_expansion(
                philosophy_graph, root_bar(philosophy_graph, THING)
            )[DBO.term("Agent")],
        )
        assert heights(engine_person) == heights(reference)

    def test_property_chart_both_directions(self, engine, philosophy_graph):
        chart = engine.initial_chart()
        agent = chart[DBO.term("Agent")]
        person_chart = engine.subclass_chart(agent)
        person = person_chart[DBO.term("Person")]
        ref_person = subclass_expansion(
            philosophy_graph,
            subclass_expansion(
                philosophy_graph, root_bar(philosophy_graph, THING)
            )[DBO.term("Agent")],
        )[DBO.term("Person")]
        for direction in (Direction.OUTGOING, Direction.INCOMING):
            via_engine = engine.property_chart(person, direction)
            via_reference = property_expansion(
                philosophy_graph, ref_person, direction
            )
            assert heights(via_engine) == heights(via_reference)
            for bar in via_engine:
                ref_bar = via_reference[bar.label]
                assert bar.coverage == pytest.approx(ref_bar.coverage)

    def test_object_chart(self, engine, philosophy_graph):
        person = engine.subclass_chart(
            engine.initial_chart()[DBO.term("Agent")]
        )[DBO.term("Person")]
        influenced = engine.property_chart(person)[DBO.term("influencedBy")]
        via_engine = engine.object_chart(influenced)
        ref_person = root_bar(philosophy_graph, DBO.term("Person"))
        ref_influenced = property_expansion(philosophy_graph, ref_person)[
            DBO.term("influencedBy")
        ]
        via_reference = object_expansion(philosophy_graph, ref_influenced)
        assert heights(via_engine) == heights(via_reference)


class TestEngineMechanics:
    def test_bars_carry_patterns(self, engine):
        chart = engine.initial_chart()
        for bar in chart:
            assert bar.pattern is not None

    def test_materialise(self, engine):
        agent = engine.initial_chart()[DBO.term("Agent")]
        materialised = engine.materialise(agent)
        assert materialised.uris is not None
        assert len(materialised.uris) == agent.size
        assert DBR.term("Plato") in materialised.uris

    def test_materialise_with_limit(self, engine):
        agent = engine.initial_chart()[DBO.term("Agent")]
        limited = engine.materialise(agent, limit=2)
        assert len(limited.uris) == 2

    def test_materialise_idempotent_on_materialised(self, engine):
        agent = engine.initial_chart()[DBO.term("Agent")]
        materialised = engine.materialise(agent)
        assert engine.materialise(materialised) is materialised

    def test_refresh_count(self, engine):
        agent = engine.initial_chart()[DBO.term("Agent")]
        assert engine.refresh_count(agent).size == agent.size

    def test_sparql_for_is_executable(self, engine, philosophy_endpoint):
        agent = engine.initial_chart()[DBO.term("Agent")]
        query = engine.sparql_for(agent)
        result = philosophy_endpoint.select(query)
        assert len(result.rows) == agent.size

    def test_bar_from_explicit_uris(self, engine, philosophy_graph):
        from repro.core import Bar

        explicit = Bar(
            label=DBO.term("Philosopher"),
            type=BarType.CLASS,
            uris=frozenset({DBR.term("Plato"), DBR.term("Kant")}),
        )
        chart = engine.property_chart(explicit)
        assert chart[DBO.term("influencedBy")].size == 1  # only Kant

    def test_filtered_bar(self, engine):
        person = engine.subclass_chart(
            engine.initial_chart()[DBO.term("Agent")]
        )[DBO.term("Person")]
        vienna_style = engine.filtered_bar(
            person, {DBO.term("birthPlace"): DBR.term("Athens")}
        )
        assert vienna_style.size == 1  # only Plato born in Athens

    def test_filtered_bar_literal_value(self, engine):
        person = engine.subclass_chart(
            engine.initial_chart()[DBO.term("Agent")]
        )[DBO.term("Person")]
        filtered = engine.filtered_bar(
            person, {DBO.term("era"): Literal("Ancient philosophy")}
        )
        assert filtered.size == 1  # Plato

    def test_subclass_on_property_bar_rejected(self, engine):
        person = engine.subclass_chart(
            engine.initial_chart()[DBO.term("Agent")]
        )[DBO.term("Person")]
        prop = engine.property_chart(person)[DBO.term("birthPlace")]
        with pytest.raises(ValueError):
            engine.subclass_chart(prop)
        with pytest.raises(ValueError):
            engine.property_chart(prop)

    def test_object_on_class_bar_rejected(self, engine):
        agent = engine.initial_chart()[DBO.term("Agent")]
        with pytest.raises(ValueError):
            engine.object_chart(agent)


class TestAsInt:
    """Regressions for count coercion: backends may type counts as
    xsd:decimal/xsd:double; an integral float is still an exact count."""

    def test_plain_integer(self):
        from repro.core.engine import _as_int

        assert _as_int(Literal("3", datatype=XSD_INTEGER)) == 3

    def test_integral_decimal_lexical(self):
        from repro.core.engine import _as_int

        assert _as_int(Literal("3.0", datatype=XSD_DECIMAL)) == 3

    def test_integral_double_scientific(self):
        from repro.core.engine import _as_int

        assert _as_int(Literal("3.0e0", datatype=XSD_DOUBLE)) == 3

    def test_non_integral_and_junk_fall_back_to_zero(self):
        from repro.core.engine import _as_int

        assert _as_int(Literal("3.5", datatype=XSD_DECIMAL)) == 0
        assert _as_int(Literal("not a count")) == 0
        assert _as_int(None) == 0
        assert _as_int(DBO.term("Person")) == 0


class _UnpagedEndpoint:
    """Test double whose query() takes no paging parameters."""

    def __init__(self, inner):
        self._inner = inner
        self.query_calls = 0

    def select(self, query_text):
        return self._inner.select(query_text)

    def query(self, query_text):
        self.query_calls += 1
        return self._inner.query(query_text)


class _BrokenPagedEndpoint:
    """Paging-shaped signature, but evaluation raises a genuine
    TypeError — the old blanket ``except TypeError`` probe swallowed
    this and silently served the unpaged path."""

    def select(self, query_text):
        raise TypeError("boom inside evaluation")

    def query(self, query_text, page_size=None, continuation=None, **kwargs):
        raise TypeError("boom inside evaluation")


class TestPagingDetection:
    def test_unpaged_signature_falls_back_to_select(self, philosophy_endpoint):
        endpoint = _UnpagedEndpoint(philosophy_endpoint)
        engine = ChartEngine(endpoint, THING, page_size=10)
        chart = engine.initial_chart()
        assert heights(chart) == heights(
            ChartEngine(philosophy_endpoint, THING).initial_chart()
        )
        # The narrow-signature query() was never probed with paging
        # kwargs, and no pages were fetched.
        assert endpoint.query_calls == 0
        assert engine.pages_fetched == 0

    def test_paged_signature_pages(self, philosophy_endpoint):
        engine = ChartEngine(philosophy_endpoint, THING, page_size=1)
        chart = engine.initial_chart()
        assert heights(chart) == heights(
            ChartEngine(philosophy_endpoint, THING).initial_chart()
        )
        assert engine.pages_fetched > 1

    def test_genuine_typeerror_propagates(self):
        engine = ChartEngine(_BrokenPagedEndpoint(), THING, page_size=5)
        with pytest.raises(TypeError, match="boom inside evaluation"):
            engine._select("SELECT ?s WHERE { ?s ?p ?o }")

    def test_supports_paging_attribute_wins(self, philosophy_endpoint):
        from repro.core.engine import _supports_paging

        endpoint = _UnpagedEndpoint(philosophy_endpoint)
        assert not _supports_paging(endpoint)
        endpoint.supports_paging = True
        assert _supports_paging(endpoint)

    def test_detection_is_cached(self, philosophy_endpoint):
        engine = ChartEngine(philosophy_endpoint, THING, page_size=5)
        assert engine._paged is None
        engine.initial_chart()
        first = engine._paged
        engine.initial_chart()
        assert engine._paged is first is True
