"""Unit tests for SPARQL generation (MemberPattern and chart queries).

Every generated query must (1) parse in our engine and (2) produce the
same answer as the corresponding reference computation — the second half
is covered in test_engine.py and the integration suite; here we check
composition, renaming, and the statistics queries.
"""

import pytest

from repro.core import Direction, MemberPattern
from repro.core.queries import (
    class_count_query,
    class_instance_count_query,
    class_list_query,
    count_query,
    labels_query,
    members_query,
    object_chart_query,
    property_chart_query,
    property_values_query,
    subclass_chart_query,
    subclass_counts_query,
    total_triples_query,
)
from repro.datasets.dbpedia import OWL_THING
from repro.rdf import DBO, DBR, Literal
from repro.sparql import evaluate, parse_query


class TestMemberPattern:
    def test_of_type_renders(self):
        pattern = MemberPattern.of_type(OWL_THING)
        text = pattern.render()
        assert "?s" in text and "owl#Thing" in text

    def test_and_type_composes(self):
        pattern = MemberPattern.of_type(OWL_THING).and_type(DBO.term("Agent"))
        assert len(pattern.lines) == 2

    def test_and_property_uses_fresh_variables(self):
        pattern = (
            MemberPattern.of_type(OWL_THING)
            .and_property(DBO.term("a"))
            .and_property(DBO.term("b"))
        )
        text = pattern.render()
        assert "?v0" in text and "?v1" in text

    def test_and_property_incoming_reverses_edge(self):
        pattern = MemberPattern.of_type(OWL_THING).and_property(
            DBO.term("author"), Direction.INCOMING
        )
        line = pattern.lines[-1]
        assert line.startswith("?v0")
        assert line.rstrip(" .").endswith("{S}")

    def test_reroot_renames_old_member_var(self):
        pattern = MemberPattern.of_type(DBO.term("Philosopher")).reroot_via(
            DBO.term("influencedBy")
        )
        text = pattern.render()
        # Old member variable renamed away from ?s.
        assert "?m0 <http://dbpedia.org/ontology/influencedBy> ?s ." in text
        assert "?m0 <http://www.w3.org/1999/02/22-rdf-syntax-ns#type>" in text

    def test_reroot_incoming(self):
        pattern = MemberPattern.of_type(DBO.term("Philosopher")).reroot_via(
            DBO.term("author"), Direction.INCOMING
        )
        assert any(
            line.startswith("{S} <http://dbpedia.org/ontology/author>")
            for line in pattern.lines
        )

    def test_reroot_with_type(self):
        pattern = MemberPattern.of_type(DBO.term("Philosopher")).reroot_via(
            DBO.term("influencedBy"), new_type=DBO.term("Scientist")
        )
        assert "Scientist" in pattern.render()

    def test_of_values(self):
        pattern = MemberPattern.of_values([DBR.term("Plato"), DBR.term("Kant")])
        assert pattern.render().startswith("  VALUES ?s")

    def test_and_value_literal(self):
        pattern = MemberPattern.of_type(OWL_THING).and_value(
            DBO.term("era"), Literal("Modern")
        )
        assert '"Modern"' in pattern.render()

    def test_custom_member_var(self):
        pattern = MemberPattern.of_type(OWL_THING)
        assert "?member" in pattern.render(member_var="?member")


ALL_QUERY_BUILDERS = [
    lambda: members_query(MemberPattern.of_type(OWL_THING)),
    lambda: members_query(MemberPattern.of_type(OWL_THING), limit=5),
    lambda: count_query(MemberPattern.of_type(OWL_THING)),
    lambda: subclass_chart_query(MemberPattern.of_type(OWL_THING), OWL_THING),
    lambda: property_chart_query(MemberPattern.of_type(OWL_THING)),
    lambda: property_chart_query(
        MemberPattern.of_type(OWL_THING), Direction.INCOMING
    ),
    lambda: object_chart_query(
        MemberPattern.of_type(DBO.term("Philosopher")),
        DBO.term("influencedBy"),
    ),
    lambda: object_chart_query(
        MemberPattern.of_type(DBO.term("Philosopher")),
        DBO.term("author"),
        Direction.INCOMING,
    ),
    lambda: total_triples_query(),
    lambda: class_count_query(),
    lambda: class_list_query(),
    lambda: class_instance_count_query(DBO.term("Person")),
    lambda: subclass_counts_query(DBO.term("Agent")),
    lambda: labels_query([DBR.term("Plato"), DBR.term("Kant")]),
    lambda: property_values_query(
        MemberPattern.of_type(DBO.term("Philosopher")),
        [DBO.term("birthPlace"), DBO.term("influencedBy")],
        limit=10,
    ),
]


class TestGeneratedQueriesParse:
    @pytest.mark.parametrize("builder", ALL_QUERY_BUILDERS)
    def test_parses(self, builder):
        parse_query(builder())

    @pytest.mark.parametrize("builder", ALL_QUERY_BUILDERS)
    def test_evaluates_without_error(self, builder, philosophy_graph):
        evaluate(philosophy_graph, builder())


class TestQuerySemantics:
    def test_count_query_counts_members(self, philosophy_graph):
        result = evaluate(
            philosophy_graph,
            count_query(MemberPattern.of_type(DBO.term("Philosopher"))),
        )
        assert int(result.scalar().lexical) == 3

    def test_members_query_distinct(self, philosophy_graph):
        pattern = MemberPattern.of_type(OWL_THING).and_type(DBO.term("Person"))
        result = evaluate(philosophy_graph, members_query(pattern))
        values = [t.value for t in result.column("s")]
        assert len(values) == len(set(values)) == 4

    def test_subclass_chart_includes_empty_subclasses(self, philosophy_graph):
        result = evaluate(
            philosophy_graph,
            subclass_chart_query(
                MemberPattern.of_type(DBO.term("Person")), DBO.term("Person")
            ),
        )
        counts = {
            row["sub"].local_name: int(row["count"].lexical)
            for row in result.rows
        }
        assert counts == {"Philosopher": 3, "Scientist": 1}

    def test_total_triples(self, philosophy_graph):
        result = evaluate(philosophy_graph, total_triples_query())
        assert int(result.scalar().lexical) == len(philosophy_graph)

    def test_labels_query(self, philosophy_graph):
        result = evaluate(
            philosophy_graph, labels_query([DBR.term("Plato")])
        )
        assert result.rows[0]["label"].lexical == "Plato"

    def test_property_values_query_rows(self, philosophy_graph):
        query = property_values_query(
            MemberPattern.of_type(DBO.term("Philosopher")),
            [DBO.term("birthPlace")],
        )
        result = evaluate(philosophy_graph, query)
        subjects = {t.local_name for t in result.column("s")}
        assert subjects == {"Plato", "Aristotle", "Kant"}  # OPTIONAL keeps Kant
