"""Unit tests for the data table (Section 3.3)."""

import pytest

from repro.core import (
    DataTable,
    MemberPattern,
    contains_filter,
    equals_filter,
)
from repro.rdf import DBO, DBR, Literal


@pytest.fixture()
def table(philosophy_endpoint):
    return DataTable(
        philosophy_endpoint, MemberPattern.of_type(DBO.term("Philosopher"))
    )


class TestColumns:
    def test_add_column_fills_values(self, table):
        table.add_column(DBO.term("birthPlace"))
        rows = dict(table.rows())
        assert rows[DBR.term("Plato")][DBO.term("birthPlace")] == [
            DBR.term("Athens")
        ]

    def test_rows_include_members_without_value(self, table):
        table.add_column(DBO.term("birthPlace"))
        rows = dict(table.rows())
        assert rows[DBR.term("Kant")][DBO.term("birthPlace")] == []

    def test_multi_valued_cells(self, table):
        table.add_column(DBO.term("influencedBy"))
        rows = dict(table.rows())
        assert len(rows[DBR.term("Kant")][DBO.term("influencedBy")]) == 2

    def test_add_column_idempotent(self, table):
        table.add_column(DBO.term("birthPlace"))
        table.add_column(DBO.term("birthPlace"))
        assert table.columns == [DBO.term("birthPlace")]

    def test_remove_column_drops_filter(self, table):
        table.add_column(DBO.term("birthPlace"))
        table.set_filter(DBO.term("birthPlace"), equals_filter(DBR.term("Athens")))
        table.remove_column(DBO.term("birthPlace"))
        assert table.columns == []
        assert table.filters == {}

    def test_two_columns(self, table):
        table.add_column(DBO.term("birthPlace"))
        table.add_column(DBO.term("influencedBy"))
        rows = dict(table.rows())
        aristotle = rows[DBR.term("Aristotle")]
        assert aristotle[DBO.term("birthPlace")] == [DBR.term("Stagira")]
        assert aristotle[DBO.term("influencedBy")] == [DBR.term("Plato")]


class TestFilters:
    def test_equals_filter(self, table):
        table.add_column(DBO.term("birthPlace"))
        table.set_filter(
            DBO.term("birthPlace"), equals_filter(DBR.term("Athens"))
        )
        assert table.filtered_members() == frozenset({DBR.term("Plato")})

    def test_contains_filter_on_uri(self, table):
        table.add_column(DBO.term("birthPlace"))
        table.set_filter(DBO.term("birthPlace"), contains_filter("stagira"))
        assert table.filtered_members() == frozenset({DBR.term("Aristotle")})

    def test_contains_filter_on_literal(self, table):
        table.add_column(DBO.term("era"))
        table.set_filter(DBO.term("era"), contains_filter("ancient"))
        assert table.filtered_members() == frozenset({DBR.term("Plato")})

    def test_filter_on_missing_column_raises(self, table):
        with pytest.raises(KeyError):
            table.set_filter(DBO.term("nope"), contains_filter("x"))

    def test_clear_filter(self, table):
        table.add_column(DBO.term("birthPlace"))
        table.set_filter(
            DBO.term("birthPlace"), equals_filter(DBR.term("Athens"))
        )
        table.clear_filter(DBO.term("birthPlace"))
        assert len(table.rows()) == 3

    def test_unfiltered_rows_still_available(self, table):
        """Applying filters leaves the pane's S unchanged (Section 3.3)."""
        table.add_column(DBO.term("birthPlace"))
        table.set_filter(
            DBO.term("birthPlace"), equals_filter(DBR.term("Athens"))
        )
        assert len(table.rows(apply_filters=False)) == 3
        assert len(table.rows()) == 1

    def test_rows_without_value_fail_value_filters(self, table):
        table.add_column(DBO.term("birthPlace"))
        table.set_filter(DBO.term("birthPlace"), contains_filter(""))
        # Kant has no birthPlace; contains("") matches any present value.
        assert DBR.term("Kant") not in table.filtered_members()

    def test_filtered_pattern_is_queryable(self, table, philosophy_endpoint):
        table.add_column(DBO.term("birthPlace"))
        table.set_filter(
            DBO.term("birthPlace"), equals_filter(DBR.term("Athens"))
        )
        pattern = table.filtered_pattern()
        from repro.core.queries import count_query

        count = philosophy_endpoint.select(count_query(pattern)).scalar()
        assert int(count.lexical) == 1


class TestSparqlExposure:
    def test_to_sparql_parses_and_runs(self, table, philosophy_endpoint):
        table.add_column(DBO.term("birthPlace"))
        table.add_column(DBO.term("influencedBy"))
        result = philosophy_endpoint.select(table.to_sparql())
        assert "col0" in result.vars and "col1" in result.vars

    def test_render_contains_values(self, table):
        table.add_column(DBO.term("birthPlace"))
        text = table.render()
        assert "Athens" in text
        assert "instance" in text

    def test_invalidate_refetches(self, table, philosophy_endpoint):
        table.add_column(DBO.term("birthPlace"))
        table.rows()
        queries_before = len(philosophy_endpoint.query_log)
        table.rows()  # cached
        assert len(philosophy_endpoint.query_log) == queries_before
        table.invalidate()
        table.rows()
        assert len(philosophy_endpoint.query_log) == queries_before + 1
