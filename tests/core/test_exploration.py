"""Unit tests for exploration paths (formal conditions a/b/c)."""

import pytest

from repro.core import (
    ChartEngine,
    ExpansionError,
    ExpansionKind,
    Exploration,
)
from repro.rdf import DBO, DBR, OWL

THING = OWL.term("Thing")


@pytest.fixture()
def exploration(philosophy_graph):
    return Exploration(philosophy_graph, THING)


class TestConstruction:
    def test_initial_chart_is_b0(self, exploration):
        assert exploration.length == 0
        assert exploration.current is exploration.initial
        assert DBO.term("Agent") in exploration.initial

    def test_graph_mode_requires_root(self, philosophy_graph):
        with pytest.raises(ValueError):
            Exploration(philosophy_graph)

    def test_engine_mode(self, philosophy_endpoint):
        engine = ChartEngine(philosophy_endpoint, THING)
        exploration = Exploration(engine)
        assert DBO.term("Agent") in exploration.initial

    def test_rejects_other_sources(self):
        with pytest.raises(TypeError):
            Exploration("not a graph")  # type: ignore[arg-type]


class TestStepping:
    def test_condition_a_label_must_exist(self, exploration):
        with pytest.raises(ExpansionError):
            exploration.step(DBO.term("Nope"), ExpansionKind.SUBCLASS)

    def test_condition_b_applicability(self, exploration):
        exploration.step(DBO.term("Agent"), ExpansionKind.SUBCLASS)
        exploration.step(DBO.term("Person"), ExpansionKind.PROPERTY_OUT)
        # Current chart has property bars; subclass expansion on one of
        # them violates applicability.
        with pytest.raises(ExpansionError):
            exploration.step(DBO.term("birthPlace"), ExpansionKind.SUBCLASS)

    def test_condition_c_chart_is_expansion_result(self, exploration, philosophy_graph):
        from repro.core import subclass_expansion

        chart = exploration.step(DBO.term("Agent"), ExpansionKind.SUBCLASS)
        expected = subclass_expansion(
            philosophy_graph, exploration.initial[DBO.term("Agent")]
        )
        assert chart == expected

    def test_full_paper_path(self, exploration):
        """Thing -> Agent -> Person -> Philosopher -> influencedBy -> objects."""
        exploration.step(DBO.term("Agent"), ExpansionKind.SUBCLASS)
        exploration.step(DBO.term("Person"), ExpansionKind.SUBCLASS)
        exploration.step(DBO.term("Philosopher"), ExpansionKind.PROPERTY_OUT)
        chart = exploration.step(
            DBO.term("influencedBy"), ExpansionKind.OBJECT_OUT
        )
        assert exploration.length == 4
        assert DBO.term("Scientist") in chart

    def test_path_records_steps(self, exploration):
        exploration.step(DBO.term("Agent"), ExpansionKind.SUBCLASS)
        exploration.step(DBO.term("Person"), ExpansionKind.SUBCLASS)
        assert exploration.path() == [
            (DBO.term("Agent"), ExpansionKind.SUBCLASS),
            (DBO.term("Person"), ExpansionKind.SUBCLASS),
        ]

    def test_incoming_expansions(self, exploration):
        exploration.step(DBO.term("Agent"), ExpansionKind.SUBCLASS)
        exploration.step(DBO.term("Person"), ExpansionKind.SUBCLASS)
        chart = exploration.step(
            DBO.term("Philosopher"), ExpansionKind.PROPERTY_IN
        )
        assert DBO.term("influencedBy") in chart

    def test_back(self, exploration):
        exploration.step(DBO.term("Agent"), ExpansionKind.SUBCLASS)
        before = exploration.current
        exploration.step(DBO.term("Person"), ExpansionKind.SUBCLASS)
        assert exploration.back() == before
        assert exploration.length == 1

    def test_back_at_root_raises(self, exploration):
        with pytest.raises(IndexError):
            exploration.back()

    def test_step_filter(self, exploration):
        exploration.step(DBO.term("Agent"), ExpansionKind.SUBCLASS)
        chart = exploration.step_filter(
            DBO.term("Person"), lambda u: u.local_name == "Plato"
        )
        assert chart[DBO.term("Person")].uris == frozenset({DBR.term("Plato")})

    def test_step_filter_requires_graph_mode(self, philosophy_endpoint):
        engine = ChartEngine(philosophy_endpoint, THING)
        exploration = Exploration(engine)
        with pytest.raises(ExpansionError):
            exploration.step_filter(DBO.term("Agent"), lambda u: True)


class TestEngineAgreement:
    def test_same_path_same_heights(self, philosophy_graph, philosophy_endpoint):
        engine = ChartEngine(philosophy_endpoint, THING)
        reference = Exploration(philosophy_graph, THING)
        endpoint_backed = Exploration(engine)
        path = [
            (DBO.term("Agent"), ExpansionKind.SUBCLASS),
            (DBO.term("Person"), ExpansionKind.SUBCLASS),
            (DBO.term("Philosopher"), ExpansionKind.PROPERTY_OUT),
            (DBO.term("influencedBy"), ExpansionKind.OBJECT_OUT),
        ]
        for label, kind in path:
            ref_chart = reference.step(label, kind)
            eng_chart = endpoint_backed.step(label, kind)
            assert {b.label: b.size for b in ref_chart} == {
                b.label: b.size for b in eng_chart
            }


class TestExpansionKind:
    def test_directions(self):
        assert ExpansionKind.PROPERTY_IN.direction.value == "incoming"
        assert ExpansionKind.OBJECT_OUT.direction.value == "outgoing"
        assert ExpansionKind.SUBCLASS.direction.value == "outgoing"

    def test_applicability_table(self):
        from repro.core import BarType

        assert ExpansionKind.SUBCLASS.applicable_to(BarType.CLASS)
        assert not ExpansionKind.SUBCLASS.applicable_to(BarType.PROPERTY)
        assert ExpansionKind.OBJECT_IN.applicable_to(BarType.PROPERTY)
        assert not ExpansionKind.OBJECT_IN.applicable_to(BarType.CLASS)
