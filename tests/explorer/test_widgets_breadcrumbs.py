"""Unit tests for chart widgets and breadcrumb trails."""

import pytest

from repro.core import Bar, BarChart, BarType
from repro.explorer import (
    BreadcrumbTrail,
    CoverageThresholdWidget,
    DEFAULT_COVERAGE_THRESHOLD,
    TRAIL_COLOURS,
    VisibleRangeWidget,
)
from repro.rdf import URI


def chart_of(count):
    bars = [
        Bar(
            label=URI(f"http://ex/p{i:03d}"),
            type=BarType.PROPERTY,
            count=count - i,
            coverage=(count - i) / count,
        )
        for i in range(count)
    ]
    return BarChart(bars)


class TestVisibleRange:
    def test_initial_window(self):
        widget = VisibleRangeWidget(window_size=5)
        visible = widget.visible(chart_of(20))
        assert len(visible) == 5
        assert visible[0].size == 20  # tallest first

    def test_scroll_right_and_left(self):
        chart = chart_of(20)
        widget = VisibleRangeWidget(window_size=5)
        widget.scroll_right(chart)
        assert widget.offset == 5
        assert widget.visible(chart)[0].size == 15
        widget.scroll_left()
        assert widget.offset == 0

    def test_scroll_clamps_at_end(self):
        chart = chart_of(7)
        widget = VisibleRangeWidget(window_size=5)
        widget.scroll_right(chart)
        widget.scroll_right(chart)
        assert widget.offset == 2
        assert not widget.can_scroll_right(chart)

    def test_scroll_left_clamps_at_zero(self):
        widget = VisibleRangeWidget(window_size=5)
        widget.scroll_left()
        assert widget.offset == 0
        assert not widget.can_scroll_left()

    def test_custom_step(self):
        chart = chart_of(20)
        widget = VisibleRangeWidget(window_size=5)
        widget.scroll_right(chart, step=2)
        assert widget.offset == 2

    def test_reset(self):
        chart = chart_of(20)
        widget = VisibleRangeWidget(window_size=5)
        widget.scroll_right(chart)
        widget.reset()
        assert widget.offset == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            VisibleRangeWidget(window_size=0)
        with pytest.raises(ValueError):
            VisibleRangeWidget(offset=-1)

    def test_small_chart_fully_visible(self):
        widget = VisibleRangeWidget(window_size=50)
        assert len(widget.visible(chart_of(3))) == 3


class TestCoverageThreshold:
    def test_default_is_twenty_percent(self):
        assert DEFAULT_COVERAGE_THRESHOLD == 0.20
        assert CoverageThresholdWidget().threshold == 0.20

    def test_apply(self):
        widget = CoverageThresholdWidget()
        chart = chart_of(10)  # coverages 1.0, 0.9, ..., 0.1
        kept = widget.apply(chart)
        assert len(kept) == 9  # 0.1 < 0.2 dropped
        assert widget.hidden_count(chart) == 1

    def test_adjusting_reveals_more(self):
        widget = CoverageThresholdWidget()
        chart = chart_of(10)
        widget.set_threshold(0.05)
        assert len(widget.apply(chart)) == 10

    def test_reveal_more_steps_down(self):
        widget = CoverageThresholdWidget()
        widget.reveal_more()
        assert widget.threshold == pytest.approx(0.15)
        for _ in range(10):
            widget.reveal_more()
        assert widget.threshold == 0.0

    def test_history(self):
        widget = CoverageThresholdWidget()
        widget.set_threshold(0.5)
        widget.set_threshold(0.3)
        assert widget.history == [0.2, 0.5]

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            CoverageThresholdWidget(threshold=1.5)
        widget = CoverageThresholdWidget()
        with pytest.raises(ValueError):
            widget.set_threshold(-0.1)


class TestBreadcrumbs:
    def test_extended_is_persistent(self):
        trail = BreadcrumbTrail()
        longer = trail.extended(URI("http://ex/Agent"), "subclass")
        assert trail.depth == 0
        assert longer.depth == 1

    def test_render_path(self):
        trail = (
            BreadcrumbTrail()
            .extended(URI("http://ex/Thing"), "root")
            .extended(URI("http://ex/Agent"), "subclass")
            .extended(URI("http://ex/Person"), "subclass")
        )
        assert trail.render() == "Thing -> Agent -> Person"

    def test_empty_render(self):
        assert BreadcrumbTrail().render() == "(root)"

    def test_labels_and_path(self):
        trail = BreadcrumbTrail().extended(URI("http://ex/A"), "subclass")
        assert trail.labels() == [URI("http://ex/A")]
        assert trail.path() == [(URI("http://ex/A"), "subclass")]

    def test_colours(self):
        trail = BreadcrumbTrail(colour="orange")
        assert trail.extended(URI("http://ex/A"), "x").colour == "orange"
        assert trail.recoloured("green").colour == "green"
        assert len(set(TRAIL_COLOURS)) == len(TRAIL_COLOURS)

    def test_str_includes_colour(self):
        assert "[blue]" in str(BreadcrumbTrail(colour="blue"))
