"""Tests for progressive (incremental) chart loading through the engine
and the pane."""

import pytest

from repro.core import ChartEngine, Direction
from repro.datasets.dbpedia import OWL_THING
from repro.endpoint import LocalEndpoint, RemoteEndpoint, SimClock, SimulatedVirtuosoServer
from repro.explorer import ExplorerSession
from repro.rdf import DBO


class TestEngineProgressive:
    def test_final_chart_matches_one_shot_sums(self, dbpedia_graph):
        engine = ChartEngine(
            LocalEndpoint(dbpedia_graph, clock=SimClock()), OWL_THING
        )
        root = engine.root_bar()
        one_shot = engine.property_chart(root)
        final_chart = None
        steps = 0
        for chart, partial in engine.property_chart_incremental(
            root, window_size=5000
        ):
            final_chart = chart
            steps += 1
        assert steps > 1
        assert final_chart is not None
        # Same property set; counts within page-boundary tolerance.
        assert {b.label for b in final_chart} == {b.label for b in one_shot}
        for bar in final_chart:
            exact = one_shot[bar.label].size
            assert exact <= bar.size <= exact + steps

    def test_progressive_charts_grow(self, dbpedia_graph):
        engine = ChartEngine(
            LocalEndpoint(dbpedia_graph, clock=SimClock()), OWL_THING
        )
        root = engine.root_bar()
        previous_total = 0
        for chart, _partial in engine.property_chart_incremental(
            root, window_size=4000
        ):
            total = chart.total_size()
            assert total >= previous_total
            previous_total = total

    def test_works_over_remote_endpoint(self, dbpedia_graph):
        server = SimulatedVirtuosoServer(dbpedia_graph, clock=SimClock())
        engine = ChartEngine(RemoteEndpoint(server), OWL_THING)
        root = engine.root_bar()
        charts = list(
            engine.property_chart_incremental(
                root, window_size=8000, max_steps=2
            )
        )
        assert len(charts) == 2
        assert not charts[-1][1].complete

    def test_rejects_property_bar(self, dbpedia_graph):
        engine = ChartEngine(
            LocalEndpoint(dbpedia_graph, clock=SimClock()), OWL_THING
        )
        root = engine.root_bar()
        prop_bar = engine.property_chart(root).sorted_bars()[0]
        with pytest.raises(ValueError):
            next(engine.property_chart_incremental(prop_bar))


class TestPaneProgressive:
    def test_progressive_and_caches_final(self, dbpedia_graph):
        session = ExplorerSession(LocalEndpoint(dbpedia_graph, clock=SimClock()))
        pane = session.open_class_pane(DBO.term("Person"))
        seen = 0
        for chart, partial in pane.property_chart_progressive(window_size=1500):
            seen += 1
            assert len(chart) > 0 or not partial.complete
        assert seen >= 1
        # The final chart was cached; no further endpoint traffic needed.
        queries_before = len(session.endpoint.query_log)
        cached = pane.property_chart(Direction.OUTGOING)
        assert len(session.endpoint.query_log) == queries_before
        assert len(cached) > 0

    def test_coverage_values_present(self, dbpedia_graph):
        session = ExplorerSession(LocalEndpoint(dbpedia_graph, clock=SimClock()))
        pane = session.open_class_pane(DBO.term("Philosopher"))
        for chart, partial in pane.property_chart_progressive(window_size=10**6):
            assert partial.complete
            for bar in chart:
                assert bar.coverage is not None
                assert 0 < bar.coverage <= 1.0
