"""Unit tests for the settings form and endpoint wiring."""

import pytest

from repro.endpoint import RemoteEndpoint, SimulatedVirtuosoServer
from repro.explorer import SettingsError, SettingsForm, connect
from repro.perf import ElindaEndpoint


class TestValidation:
    def test_defaults_valid(self):
        SettingsForm().validate()

    def test_bad_mode(self):
        with pytest.raises(SettingsError):
            SettingsForm(mode="cloud").validate()

    def test_bad_url(self):
        with pytest.raises(SettingsError):
            SettingsForm(endpoint_url="ftp://x").validate()

    def test_bad_threshold(self):
        with pytest.raises(SettingsError):
            SettingsForm(coverage_threshold=2.0).validate()

    def test_bad_incremental(self):
        with pytest.raises(SettingsError):
            SettingsForm(incremental_window=0).validate()
        with pytest.raises(SettingsError):
            SettingsForm(incremental_steps=-1).validate()

    def test_remote_mode_forbids_preprocessing(self):
        """Remote compatibility mode cannot use HVS/decomposer —
        'we have no access to the actual RDF graph and cannot execute
        any preprocessing' (Section 4)."""
        with pytest.raises(SettingsError):
            SettingsForm(mode="remote").validate()
        SettingsForm(
            mode="remote", use_hvs=False, use_decomposer=False
        ).validate()


class TestConnect:
    def test_local_mode_builds_elinda_stack(self, virtuoso_server):
        settings = SettingsForm(endpoint_url=virtuoso_server.url)
        endpoint = connect(settings, {virtuoso_server.url: virtuoso_server})
        assert isinstance(endpoint, ElindaEndpoint)
        assert endpoint.hvs is not None
        assert endpoint.decomposer is not None

    def test_local_mode_without_acceleration(self, virtuoso_server):
        settings = SettingsForm(
            endpoint_url=virtuoso_server.url,
            use_hvs=False,
            use_decomposer=False,
        )
        endpoint = connect(settings, {virtuoso_server.url: virtuoso_server})
        assert isinstance(endpoint, ElindaEndpoint)
        assert endpoint.hvs is None
        assert endpoint.decomposer is None

    def test_remote_mode_builds_http_client(self, virtuoso_server):
        settings = SettingsForm(
            endpoint_url=virtuoso_server.url,
            mode="remote",
            use_hvs=False,
            use_decomposer=False,
        )
        endpoint = connect(settings, {virtuoso_server.url: virtuoso_server})
        assert isinstance(endpoint, RemoteEndpoint)

    def test_unknown_url_rejected(self, virtuoso_server):
        settings = SettingsForm(endpoint_url="http://nowhere/sparql")
        with pytest.raises(SettingsError):
            connect(settings, {virtuoso_server.url: virtuoso_server})

    def test_connected_endpoint_answers(self, virtuoso_server):
        settings = SettingsForm(endpoint_url=virtuoso_server.url)
        endpoint = connect(settings, {virtuoso_server.url: virtuoso_server})
        assert endpoint.ask("ASK { ?s ?p ?o }")
