"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestStats:
    def test_dbpedia(self, capsys):
        code, out, _err = run(capsys, "stats")
        assert code == 0
        assert "triples:" in out
        assert "49 direct / 330 total" in out

    def test_lgd(self, capsys):
        code, out, _err = run(capsys, "--dataset", "lgd", "stats")
        assert code == 0
        assert "root |S|:      0" in out

    def test_yago(self, capsys):
        code, out, _err = run(capsys, "--dataset", "yago", "stats")
        assert code == 0
        assert "Thing" in out


class TestChart:
    def test_subclass_chart(self, capsys):
        code, out, _err = run(capsys, "chart", "dbo:Person", "--top", "5")
        assert code == 0
        assert "dbo:Athlete" in out or "Athlete" in out

    def test_property_chart_with_threshold(self, capsys):
        code, out, _err = run(
            capsys, "chart", "dbo:Politician", "--tab", "properties"
        )
        assert code == 0
        assert "dbo:party" in out
        assert "%" in out

    def test_ingoing_chart(self, capsys):
        code, out, _err = run(
            capsys, "chart", "dbo:Philosopher", "--tab", "ingoing", "--top", "12"
        )
        assert code == 0
        assert "dbo:author" in out

    def test_full_uri_accepted(self, capsys):
        code, out, _err = run(
            capsys, "chart", "http://dbpedia.org/ontology/Person", "--top", "3"
        )
        assert code == 0

    def test_unknown_qname_prefix_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["chart", "nope:Person"])


class TestPath:
    def test_drilldown(self, capsys):
        code, out, _err = run(
            capsys, "path", "dbo:Agent", "dbo:Person", "dbo:Philosopher"
        )
        assert code == 0
        assert "Thing -> Agent -> Person -> Philosopher" in out

    def test_bad_step_returns_error(self, capsys):
        code, _out, err = run(capsys, "path", "dbo:Philosopher")
        assert code == 1
        assert "error" in err


class TestConnectionsSearchSparql:
    def test_connections(self, capsys):
        code, out, _err = run(
            capsys, "connections", "dbo:Philosopher", "dbo:influencedBy"
        )
        assert code == 0
        assert "dbo:Scientist" in out

    def test_connections_unknown_property(self, capsys):
        code, _out, err = run(
            capsys, "connections", "dbo:Philosopher", "dbo:noSuchProp"
        )
        assert code == 1
        assert "error" in err

    def test_search(self, capsys):
        code, out, _err = run(capsys, "search", "Phil")
        assert code == 0
        assert "dbo:Philosopher" in out

    def test_search_no_match(self, capsys):
        code, out, _err = run(capsys, "search", "Zzzzz")
        assert code == 0
        assert "no matching" in out

    def test_sparql_select(self, capsys):
        code, out, _err = run(
            capsys,
            "sparql",
            "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }",
        )
        assert code == 0
        assert "?n" in out and "simulated ms" in out

    def test_sparql_ask(self, capsys):
        code, out, _err = run(capsys, "sparql", "ASK { ?s ?p ?o }")
        assert code == 0
        assert out.strip() == "yes"

    def test_sparql_syntax_error(self, capsys):
        code, _out, err = run(capsys, "sparql", "SELEKT nonsense")
        assert code == 1
        assert "error" in err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.dataset == "dbpedia"
        assert args.seed == 42


class TestLoadFile:
    @pytest.fixture()
    def turtle_file(self, tmp_path):
        path = tmp_path / "mini.ttl"
        path.write_text(
            "@prefix dbo: <http://dbpedia.org/ontology/> .\n"
            "@prefix dbr: <http://dbpedia.org/resource/> .\n"
            "@prefix owl: <http://www.w3.org/2002/07/owl#> .\n"
            "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
            "dbo:Agent rdfs:subClassOf owl:Thing .\n"
            'dbr:A a dbo:Agent, owl:Thing ; rdfs:label "A"@en .\n'
            "dbr:B a dbo:Agent, owl:Thing .\n"
        )
        return str(path)

    def test_stats_on_loaded_turtle(self, capsys, turtle_file):
        code, out, _err = run(capsys, "--load", turtle_file, "stats")
        assert code == 0
        assert "triples:       6" in out

    def test_chart_on_loaded_turtle(self, capsys, turtle_file):
        code, out, _err = run(
            capsys, "--load", turtle_file, "chart", "owl:Thing"
        )
        assert code == 0
        assert "dbo:Agent" in out

    def test_load_ntriples(self, capsys, tmp_path):
        path = tmp_path / "mini.nt"
        path.write_text(
            "<http://x/a> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
            "<http://www.w3.org/2002/07/owl#Thing> .\n"
        )
        code, out, _err = run(capsys, "--load", str(path), "stats")
        assert code == 0
        assert "root |S|:      1" in out

    def test_custom_root(self, capsys, turtle_file):
        code, out, _err = run(
            capsys, "--load", turtle_file, "--root", "dbo:Agent", "stats"
        )
        assert code == 0
        assert "root class:    Agent" in out


class TestDemo:
    def test_demo_walkthrough(self, capsys):
        code, out, _err = run(capsys, "demo")
        assert code == 0
        assert "Scenario 1" in out
        assert "Scenario 2" in out
        assert "influencing philosophers" in out
        assert "suspicious: 4 birth places are of type Food" in out
        assert "Query monitor" in out

    def test_fig4_table(self, capsys):
        code, out, _err = run(capsys, "fig4")
        assert code == 0
        assert "decomposer" in out
        assert "454 s" in out


class TestExplain:
    def test_plain_explain(self, capsys):
        code, out, _err = run(
            capsys, "explain", "SELECT ?s WHERE { ?s ?p ?o } LIMIT 5"
        )
        assert code == 0
        assert out.startswith("EXPLAIN\n")
        assert "Slice" in out
        assert "est_rows=" in out
        assert "rows=" not in out.replace("est_rows=", "")

    def test_explain_analyze(self, capsys):
        code, out, _err = run(
            capsys,
            "explain",
            "--analyze",
            "SELECT ?s WHERE { ?s ?p ?o } LIMIT 5",
        )
        assert code == 0
        assert out.startswith("EXPLAIN ANALYZE\n")
        assert "wall=" in out
        assert "result rows: 5" in out

    def test_explain_chart(self, capsys):
        code, out, _err = run(
            capsys, "explain", "--chart", "dbo:Person", "--analyze"
        )
        assert code == 0
        assert "Aggregation" in out
        assert "BGP" in out

    def test_explain_json(self, capsys):
        import json

        code, out, _err = run(
            capsys,
            "explain",
            "--json",
            "SELECT ?s WHERE { ?s ?p ?o } LIMIT 5",
        )
        assert code == 0
        document = json.loads(out)
        assert document["analyzed"] is False
        assert document["plan"]["operator"] == "Slice"

    def test_explain_analyze_json_includes_spans(self, capsys):
        import json

        code, out, _err = run(
            capsys,
            "explain",
            "--json",
            "--analyze",
            "SELECT ?s WHERE { ?s ?p ?o } LIMIT 5",
        )
        assert code == 0
        # First a JSON document, then one span per JSON line.
        document, _, span_lines = out.partition("}\n{")
        spans = [
            json.loads(line)
            for line in ("{" + span_lines).strip().splitlines()
            if line.strip().startswith("{")
        ]
        assert spans
        assert all("operator" in span for span in spans)

    def test_explain_rejects_construct(self, capsys):
        code, _out, err = run(
            capsys,
            "explain",
            "CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o }",
        )
        assert code == 1
        assert "SELECT and ASK" in err

    def test_explain_requires_input(self, capsys):
        code, _out, err = run(capsys, "explain")
        assert code == 2
        assert "provide a query" in err

    def test_self_test(self, capsys):
        code, out, _err = run(capsys, "explain", "--self-test")
        assert code == 0
        assert "self-test passed" in out
        assert "FAIL" not in out


class TestMetrics:
    def test_metrics_dump(self, capsys):
        code, out, _err = run(capsys, "metrics")
        assert code == 0
        assert "# TYPE repro_eval_queries_total counter" in out

    def test_metrics_exercise_touches_every_layer(self, capsys):
        code, out, _err = run(capsys, "metrics", "--exercise")
        assert code == 0
        assert 'repro_router_queries_total{route="decomposer"} 1' in out
        assert 'repro_router_queries_total{route="hvs"} 1' in out
        assert 'repro_router_queries_total{route="backend"} 1' in out
        assert 'repro_hvs_lookups_total{outcome="hit"} 1' in out
        assert 'repro_virtuoso_requests_total{status="ok"} 1' in out
        assert 'repro_incremental_windows_total{mode="local"} 2' in out
