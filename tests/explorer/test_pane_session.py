"""Unit tests for panes and the explorer session (Section 3 behaviours),
run against the micro philosophy graph for speed."""

import pytest

from repro.core import Bar, BarType, ChartEngine, Direction, StatisticsService
from repro.explorer import ExplorerSession, Pane, SettingsForm, Tab
from repro.rdf import DBO, DBR, OWL

THING = OWL.term("Thing")


@pytest.fixture()
def session(philosophy_endpoint):
    return ExplorerSession(philosophy_endpoint, settings=SettingsForm())


class TestInitialPane:
    def test_opens_on_root(self, session):
        assert len(session.panes) == 1
        pane = session.current_pane
        assert pane.pane_type == THING
        assert pane.instance_count == 7

    def test_dataset_statistics_fetched_first(self, session, philosophy_graph):
        assert session.dataset_statistics.total_triples == len(philosophy_graph)

    def test_default_tab_is_subclass_chart(self, session):
        pane = session.current_pane
        assert pane.active_tab is Tab.SUBCLASSES
        assert DBO.term("Agent") in pane.subclass_chart()

    def test_corner_statistics(self, session):
        stats = session.current_pane.corner_statistics()
        assert stats.instance_count == 7
        assert stats.direct_subclasses == 2
        assert stats.total_subclasses == 5


class TestNavigation:
    def test_subclass_click_opens_pane_below(self, session):
        pane = session.open_subclass_pane(session.current_pane, DBO.term("Agent"))
        assert len(session.panes) == 2
        assert pane.pane_type == DBO.term("Agent")
        assert pane.trail.render() == "Thing -> Agent"

    def test_unknown_subclass_raises(self, session):
        with pytest.raises(KeyError):
            session.open_subclass_pane(session.current_pane, DBO.term("Nope"))

    def test_fig2_path(self, session):
        p0 = session.current_pane
        p1 = session.open_subclass_pane(p0, DBO.term("Agent"))
        p2 = session.open_subclass_pane(p1, DBO.term("Person"))
        p3 = session.open_subclass_pane(p2, DBO.term("Philosopher"))
        assert p3.trail.render() == "Thing -> Agent -> Person -> Philosopher"
        assert p3.instance_count == 3

    def test_search_pane_opens_without_drill_down(self, session, philosophy_graph):
        # Micro graph has no owl:Class declarations, so patch the search
        # check via a session over the big dataset is done elsewhere;
        # here we check the error path.
        with pytest.raises(KeyError):
            session.open_search_pane(DBO.term("Philosopher"))

    def test_close_pane(self, session):
        pane = session.open_subclass_pane(session.current_pane, DBO.term("Agent"))
        session.close_pane(pane)
        assert len(session.panes) == 1

    def test_hover_matches_statistics(self, session):
        text = session.current_pane.hover(DBO.term("Agent"))
        assert "instances: 4" in text
        assert "direct subclasses: 1" in text


class TestPropertyTab:
    @pytest.fixture()
    def philosopher_pane(self, session):
        p1 = session.open_subclass_pane(session.current_pane, DBO.term("Agent"))
        p2 = session.open_subclass_pane(p1, DBO.term("Person"))
        return session.open_subclass_pane(p2, DBO.term("Philosopher"))

    def test_property_chart_coverage(self, philosopher_pane):
        chart = philosopher_pane.property_chart()
        assert chart[DBO.term("influencedBy")].coverage == pytest.approx(2 / 3)

    def test_threshold_filters(self, philosopher_pane):
        philosopher_pane.threshold_widget.set_threshold(0.7)
        significant = philosopher_pane.significant_properties()
        assert DBO.term("influencedBy") not in significant

    def test_charts_cached(self, philosopher_pane, philosophy_endpoint):
        philosopher_pane.property_chart()
        count = len(philosophy_endpoint.query_log)
        philosopher_pane.property_chart()
        assert len(philosophy_endpoint.query_log) == count

    def test_table_column_from_bar(self, philosopher_pane):
        table = philosopher_pane.select_property_column(DBO.term("birthPlace"))
        rows = dict(table.rows())
        assert rows[DBR.term("Plato")][DBO.term("birthPlace")] == [
            DBR.term("Athens")
        ]

    def test_unknown_column_raises(self, philosopher_pane):
        with pytest.raises(KeyError):
            philosopher_pane.select_property_column(DBO.term("nope"))

    def test_filter_expansion_pane(self, session, philosopher_pane):
        from repro.core import equals_filter

        table = philosopher_pane.select_property_column(DBO.term("birthPlace"))
        table.set_filter(DBO.term("birthPlace"), equals_filter(DBR.term("Athens")))
        filtered_pane = session.open_filtered_pane(philosopher_pane)
        assert filtered_pane.instance_count == 1
        # Original pane's S unchanged.
        assert philosopher_pane.instance_count == 3
        assert filtered_pane.trail.crumbs[-1].action == "filter"

    def test_sparql_for_bar(self, philosopher_pane, philosophy_endpoint):
        query = philosopher_pane.sparql_for(
            DBO.term("birthPlace"), Tab.PROPERTY_DATA
        )
        result = philosophy_endpoint.select(query)
        assert len(result.rows) == 2


class TestConnectionsTab:
    @pytest.fixture()
    def philosopher_pane(self, session):
        p1 = session.open_subclass_pane(session.current_pane, DBO.term("Agent"))
        p2 = session.open_subclass_pane(p1, DBO.term("Person"))
        return session.open_subclass_pane(p2, DBO.term("Philosopher"))

    def test_connections_chart(self, philosopher_pane):
        chart = philosopher_pane.connections_chart(DBO.term("influencedBy"))
        assert DBO.term("Scientist") in chart
        assert chart[DBO.term("Scientist")].size == 1

    def test_unknown_property_raises(self, philosopher_pane):
        with pytest.raises(KeyError):
            philosopher_pane.connections_chart(DBO.term("nope"))

    def test_connections_pane_is_narrowed(self, session, philosopher_pane):
        pane = session.open_connections_pane(
            philosopher_pane, DBO.term("influencedBy"), DBO.term("Person")
        )
        # Plato and Newton influenced philosophers; NOT all 4 persons.
        assert pane.instance_count == 2
        assert pane.trail.crumbs[-2].action == "connections"

    def test_unknown_object_type_raises(self, session, philosopher_pane):
        with pytest.raises(KeyError):
            session.open_connections_pane(
                philosopher_pane, DBO.term("influencedBy"), DBO.term("Food")
            )


class TestRendering:
    def test_pane_render(self, session):
        text = session.current_pane.render()
        assert "Pane: Thing" in text
        assert "|S|=7" in text

    def test_session_render_lists_panes(self, session):
        session.open_subclass_pane(session.current_pane, DBO.term("Agent"))
        text = session.render()
        assert "pane 1" in text and "pane 2" in text
        assert "triples" in text

    def test_property_tab_render(self, session):
        pane = session.current_pane
        pane.switch_tab(Tab.PROPERTY_DATA)
        assert "%" in pane.render()


class TestPaneValidation:
    def test_rejects_property_bar(self, philosophy_endpoint):
        engine = ChartEngine(philosophy_endpoint, THING)
        stats = StatisticsService(philosophy_endpoint)
        bad = Bar(label=DBO.term("p"), type=BarType.PROPERTY, count=1)
        with pytest.raises(ValueError):
            Pane(engine, stats, bad)


class TestVisibleRangeInPane:
    def test_pane_has_visible_widget(self, session):
        pane = session.current_pane
        chart = pane.subclass_chart()
        visible = pane.visible_widget.visible(chart)
        assert len(visible) <= pane.visible_widget.window_size
        # Tallest bars shown first.
        assert visible[0].size == chart.sorted_bars()[0].size

    def test_scrolling_the_initial_chart(self, philosophy_graph):
        # Use the big dataset where 49 > window size.
        from repro.datasets import generate_dbpedia
        from repro.endpoint import LocalEndpoint, SimClock

        dataset = generate_dbpedia()
        big = ExplorerSession(LocalEndpoint(dataset.graph, clock=SimClock()))
        pane = big.current_pane
        chart = pane.subclass_chart()
        widget = pane.visible_widget
        assert widget.can_scroll_right(chart)
        first_page = [b.label for b in widget.visible(chart)]
        widget.scroll_right(chart)
        second_page = [b.label for b in widget.visible(chart)]
        assert not set(first_page) & set(second_page)
        widget.scroll_left()
        assert [b.label for b in widget.visible(chart)] == first_page
