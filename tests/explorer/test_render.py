"""Unit tests for ASCII chart rendering."""

from repro.core import Bar, BarChart, BarType
from repro.explorer import hover_box, render_bar_line, render_chart
from repro.rdf import DBO, URI


def make_chart():
    return BarChart(
        [
            Bar(label=DBO.term("Place"), type=BarType.CLASS, count=100),
            Bar(label=DBO.term("Agent"), type=BarType.CLASS, count=50),
            Bar(label=DBO.term("Work"), type=BarType.CLASS, count=1),
            Bar(label=DBO.term("Empty"), type=BarType.CLASS, count=0),
        ]
    )


class TestRenderChart:
    def test_contains_labels_and_counts(self):
        text = render_chart(make_chart(), title="Initial chart")
        assert "Initial chart" in text
        assert "dbo:Place" in text
        assert "100" in text

    def test_bars_proportional(self):
        lines = render_chart(make_chart(), width=40).splitlines()
        place_line = next(l for l in lines if "Place" in l)
        agent_line = next(l for l in lines if "Agent" in l)
        assert place_line.count("#") == 40
        assert agent_line.count("#") == 20

    def test_nonzero_bar_never_invisible(self):
        lines = render_chart(make_chart(), width=40).splitlines()
        work_line = next(l for l in lines if "Work" in l)
        assert work_line.count("#") == 1
        empty_line = next(l for l in lines if "Empty" in l)
        assert empty_line.count("#") == 0

    def test_top_truncation_notice(self):
        text = render_chart(make_chart(), top=2)
        assert "2 more bars" in text

    def test_empty_chart(self):
        assert "(empty chart)" in render_chart(BarChart())

    def test_coverage_shown_for_property_bars(self):
        chart = BarChart(
            [
                Bar(
                    label=DBO.term("birthPlace"),
                    type=BarType.PROPERTY,
                    count=10,
                    coverage=0.76,
                )
            ]
        )
        assert "76.0%" in render_chart(chart)

    def test_unknown_namespace_falls_back_to_local_name(self):
        chart = BarChart(
            [Bar(label=URI("http://mystery.org/Zap"), type=BarType.CLASS, count=1)]
        )
        assert "Zap" in render_chart(chart)


class TestHoverBox:
    def test_fig1_style_box(self):
        bar = Bar(label=DBO.term("Agent"), type=BarType.CLASS, count=2_200_000)
        text = hover_box(bar, direct_subclasses=5, total_subclasses=277)
        assert "Agent" in text
        assert "2,200,000" in text
        assert "direct subclasses: 5" in text
        assert "subclasses in total: 277" in text

    def test_property_bar_shows_coverage(self):
        bar = Bar(
            label=DBO.term("party"),
            type=BarType.PROPERTY,
            count=20,
            coverage=0.86,
        )
        assert "86.0%" in hover_box(bar)

    def test_render_bar_line_zero_max(self):
        bar = Bar(label=DBO.term("X"), type=BarType.CLASS, count=0)
        line = render_bar_line(bar, max_size=0)
        assert "|" in line
