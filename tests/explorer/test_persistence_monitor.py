"""Unit tests for session save/replay and the query monitor."""

import json

import pytest

from repro.core import Direction, equals_filter
from repro.endpoint import LocalEndpoint, SimClock
from repro.explorer import (
    ExplorerSession,
    QueryMonitor,
    SessionReplayError,
    load_actions,
    replay_session,
    save_session,
)
from repro.rdf import DBO, DBR


@pytest.fixture()
def session(philosophy_graph):
    return ExplorerSession(LocalEndpoint(philosophy_graph, clock=SimClock()))


def build_walkthrough(session):
    """A representative multi-action exploration."""
    p0 = session.panes[0]
    agent = session.open_subclass_pane(p0, DBO.term("Agent"))
    person = session.open_subclass_pane(agent, DBO.term("Person"))
    philosopher = session.open_subclass_pane(person, DBO.term("Philosopher"))
    table = philosopher.select_property_column(DBO.term("birthPlace"))
    table.set_filter(DBO.term("birthPlace"), equals_filter(DBR.term("Athens")))
    session.open_filtered_pane(philosopher)
    session.open_connections_pane(
        philosopher, DBO.term("influencedBy"), DBO.term("Person")
    )
    return session


class TestSaveLoad:
    def test_action_log_records_everything(self, session):
        build_walkthrough(session)
        kinds = [action["kind"] for action in session.action_log]
        assert kinds == [
            "subclass",
            "subclass",
            "subclass",
            "filtered",
            "connections",
        ]

    def test_save_is_valid_json(self, session):
        build_walkthrough(session)
        blob = json.loads(save_session(session))
        assert blob["version"] == 1
        assert len(blob["actions"]) == 5
        assert blob["settings"]["root_class"].endswith("Thing")

    def test_load_round_trip(self, session):
        build_walkthrough(session)
        actions = load_actions(save_session(session))
        assert actions[0] == {
            "kind": "subclass",
            "pane": 0,
            "class": DBO.term("Agent").value,
        }

    def test_load_rejects_bad_version(self):
        with pytest.raises(SessionReplayError):
            load_actions(json.dumps({"version": 99, "actions": []}))

    def test_load_rejects_missing_actions(self):
        with pytest.raises(SessionReplayError):
            load_actions(json.dumps({"version": 1}))


class TestReplay:
    def test_replay_rebuilds_identical_panes(self, session, philosophy_graph):
        build_walkthrough(session)
        saved = save_session(session)
        fresh_endpoint = LocalEndpoint(philosophy_graph, clock=SimClock())
        replayed = replay_session(fresh_endpoint, saved)
        assert len(replayed.panes) == len(session.panes)
        for original, copy in zip(session.panes, replayed.panes):
            assert original.pane_type == copy.pane_type
            assert original.instance_count == copy.instance_count
            assert original.trail.render() == copy.trail.render()

    def test_replay_preserves_filtered_members(self, session, philosophy_graph):
        build_walkthrough(session)
        saved = save_session(session)
        replayed = replay_session(
            LocalEndpoint(philosophy_graph, clock=SimClock()), saved
        )
        filtered_pane = replayed.panes[4]
        materialised = replayed.engine.materialise(filtered_pane.bar)
        assert materialised.uris == frozenset({DBR.term("Plato")})

    def test_replay_with_close(self, session, philosophy_graph):
        p1 = session.open_subclass_pane(session.panes[0], DBO.term("Agent"))
        session.close_pane(p1)
        session.open_subclass_pane(session.panes[0], DBO.term("Place"))
        replayed = replay_session(
            LocalEndpoint(philosophy_graph, clock=SimClock()),
            save_session(session),
        )
        assert [pane.pane_type.local_name for pane in replayed.panes] == [
            "Thing",
            "Place",
        ]

    def test_replay_unknown_action_raises(self, philosophy_graph):
        bad = json.dumps(
            {"version": 1, "settings": {}, "actions": [{"kind": "teleport"}]}
        )
        with pytest.raises(SessionReplayError):
            replay_session(
                LocalEndpoint(philosophy_graph, clock=SimClock()), bad
            )

    def test_replay_bad_pane_index_raises(self, philosophy_graph):
        bad = json.dumps(
            {
                "version": 1,
                "settings": {},
                "actions": [
                    {"kind": "subclass", "pane": 9, "class": "http://x/C"}
                ],
            }
        )
        with pytest.raises(SessionReplayError):
            replay_session(
                LocalEndpoint(philosophy_graph, clock=SimClock()), bad
            )


class TestQueryMonitor:
    def test_by_source_counts(self, session):
        build_walkthrough(session)
        monitor = QueryMonitor(session.endpoint)
        summary = monitor.by_source()
        assert "local" in summary
        assert summary["local"].queries == len(session.endpoint.query_log)
        assert summary["local"].total_ms > 0
        assert summary["local"].min_ms <= summary["local"].mean_ms
        assert summary["local"].mean_ms <= summary["local"].max_ms

    def test_mark_windows(self, session):
        monitor = QueryMonitor(session.endpoint)
        monitor.mark()
        assert monitor.entries(since_mark=True) == []
        session.open_subclass_pane(session.panes[0], DBO.term("Agent"))
        assert len(monitor.entries(since_mark=True)) > 0
        assert len(monitor.entries()) > len(monitor.entries(since_mark=True))

    def test_heavy_detection(self, session):
        monitor = QueryMonitor(session.endpoint, heavy_threshold_ms=0.0001)
        heavy = monitor.heavy_queries()
        assert heavy
        latencies = [entry.elapsed_ms for entry in heavy]
        assert latencies == sorted(latencies, reverse=True)

    def test_slowest_limit(self, session):
        build_walkthrough(session)
        monitor = QueryMonitor(session.endpoint)
        assert len(monitor.slowest(3)) == 3

    def test_render(self, session):
        build_walkthrough(session)
        monitor = QueryMonitor(session.endpoint, heavy_threshold_ms=0.0001)
        text = monitor.render()
        assert "Query monitor" in text
        assert "local" in text
        assert "heavy queries" in text

    def test_total_simulated(self, session, clock):
        monitor = QueryMonitor(session.endpoint)
        assert monitor.total_simulated_ms() == pytest.approx(
            sum(e.elapsed_ms for e in session.endpoint.query_log)
        )

    # -- mark robustness (regression: position-based marks silently
    # misattributed entries after the endpoint log was cleared) --------

    def test_mark_survives_log_clear(self, session):
        build_walkthrough(session)
        monitor = QueryMonitor(session.endpoint)
        monitor.mark()
        session.endpoint.query_log.clear()
        session.open_subclass_pane(session.panes[0], DBO.term("Agent"))
        new = monitor.entries(since_mark=True)
        # Every post-clear entry is visible; nothing is hidden behind the
        # stale position.
        assert new == session.endpoint.query_log

    def test_mark_detects_replaced_entries(self, session):
        build_walkthrough(session)
        monitor = QueryMonitor(session.endpoint)
        monitor.mark()
        # Rebuild the log to the same length with different entries.
        old = list(session.endpoint.query_log)
        session.endpoint.query_log.clear()
        session.endpoint.query_log.extend(
            type(entry)(
                query_text=entry.query_text,
                elapsed_ms=entry.elapsed_ms,
                source=entry.source,
                result_rows=entry.result_rows,
            )
            for entry in old
        )
        assert monitor.entries(since_mark=True) == session.endpoint.query_log

    def test_mark_normal_window_still_works(self, session):
        monitor = QueryMonitor(session.endpoint)
        build_walkthrough(session)
        marked = monitor.mark()
        assert monitor.entries(since_mark=True) == []
        session.open_subclass_pane(session.panes[0], DBO.term("Agent"))
        window = monitor.entries(since_mark=True)
        assert window == session.endpoint.query_log[marked:]

    # -- per-operator breakdown ----------------------------------------

    def test_by_operator_from_traced_endpoint(self, philosophy_graph):
        endpoint = LocalEndpoint(philosophy_graph, trace=True)
        endpoint.query("SELECT ?s ?o WHERE { ?s ?p ?o } LIMIT 5")
        monitor = QueryMonitor(endpoint)
        breakdown = monitor.by_operator()
        assert "BGP" in breakdown
        assert breakdown["BGP"].rows > 0
        assert breakdown["BGP"].queries == 1
        assert "Slice" in breakdown
        assert breakdown["Slice"].rows == 5

    def test_by_operator_empty_without_tracing(self, philosophy_graph):
        endpoint = LocalEndpoint(philosophy_graph)
        endpoint.query("SELECT ?s WHERE { ?s ?p ?o } LIMIT 5")
        monitor = QueryMonitor(endpoint)
        assert monitor.by_operator() == {}

    def test_render_includes_operator_section(self, philosophy_graph):
        endpoint = LocalEndpoint(philosophy_graph, trace=True)
        endpoint.query("SELECT ?s WHERE { ?s ?p ?o } LIMIT 5")
        text = QueryMonitor(endpoint).render()
        assert "operator" in text
        assert "BGP" in text
