"""Metrics emitted by the engine layers move when — and only when —
the corresponding code paths run."""

import pytest

from repro.core import Direction, MemberPattern, property_chart_query
from repro.endpoint import LocalEndpoint, SimClock
from repro.obs.metrics import REGISTRY
from repro.perf import (
    Decomposer,
    ElindaEndpoint,
    HeavyQueryStore,
    IncrementalConfig,
    IncrementalEvaluator,
    SpecializedIndexes,
)
from repro.rdf import DBO


def counter_value(name, **labels):
    metric = REGISTRY.get(name)
    assert metric is not None, name
    return metric.labels(**labels).value if labels else metric.value


@pytest.fixture()
def chart_query():
    return property_chart_query(
        MemberPattern.of_type(DBO.term("Philosopher")), Direction.OUTGOING
    )


class TestEvaluatorMetrics:
    def test_query_and_binding_counters_move(self, local_endpoint):
        queries = counter_value("repro_eval_queries_total")
        bindings = counter_value("repro_eval_bindings_total")
        local_endpoint.query("SELECT ?s ?o WHERE { ?s ?p ?o } LIMIT 10")
        assert counter_value("repro_eval_queries_total") == queries + 1
        assert counter_value("repro_eval_bindings_total") > bindings

    def test_index_lookup_counter_classifies_branches(self, dbpedia_graph):
        spo = counter_value("repro_graph_index_lookups_total", index="spo")
        full = counter_value(
            "repro_graph_index_lookups_total", index="full_scan"
        )
        next(iter(dbpedia_graph.triples()), None)  # unconstrained scan
        subject = next(iter(dbpedia_graph.triples())).subject
        list(dbpedia_graph.triples(subject=subject))  # SPO branch
        assert (
            counter_value("repro_graph_index_lookups_total", index="spo")
            == spo + 1
        )
        assert (
            counter_value("repro_graph_index_lookups_total", index="full_scan")
            == full + 2
        )


class TestRouterToggles:
    def test_decomposer_counter_moves_only_when_enabled(
        self, dbpedia_graph, chart_query
    ):
        elinda = ElindaEndpoint(
            LocalEndpoint(dbpedia_graph, clock=SimClock()),
            decomposer=Decomposer(SpecializedIndexes(dbpedia_graph)),
            use_hvs=False,
        )
        rewritten = counter_value(
            "repro_decomposer_requests_total", outcome="rewritten"
        )
        elinda.query(chart_query)
        assert (
            counter_value("repro_decomposer_requests_total", outcome="rewritten")
            == rewritten + 1
        )
        elinda.use_decomposer = False
        elinda.query(chart_query)
        assert (
            counter_value("repro_decomposer_requests_total", outcome="rewritten")
            == rewritten + 1
        )

    def test_hvs_counters_move_only_when_enabled(
        self, dbpedia_graph, chart_query
    ):
        elinda = ElindaEndpoint(
            LocalEndpoint(dbpedia_graph, clock=SimClock()),
            hvs=HeavyQueryStore(threshold_ms=0.000001),
        )
        misses = counter_value("repro_hvs_lookups_total", outcome="miss")
        hits = counter_value("repro_hvs_lookups_total", outcome="hit")
        stores = counter_value("repro_hvs_stores_total")
        elinda.query(chart_query)  # miss + store
        elinda.query(chart_query)  # hit
        assert counter_value("repro_hvs_lookups_total", outcome="miss") == misses + 1
        assert counter_value("repro_hvs_lookups_total", outcome="hit") == hits + 1
        assert counter_value("repro_hvs_stores_total") == stores + 1
        elinda.use_hvs = False
        elinda.query(chart_query)
        assert counter_value("repro_hvs_lookups_total", outcome="hit") == hits + 1
        assert counter_value("repro_hvs_lookups_total", outcome="miss") == misses + 1

    def test_route_counter_attributes_each_answer(
        self, dbpedia_graph, chart_query
    ):
        elinda = ElindaEndpoint(
            LocalEndpoint(dbpedia_graph, clock=SimClock()),
            hvs=HeavyQueryStore(threshold_ms=0.000001),
            decomposer=Decomposer(SpecializedIndexes(dbpedia_graph)),
        )
        routes = {
            route: counter_value("repro_router_queries_total", route=route)
            for route in ("hvs", "decomposer", "backend")
        }
        elinda.query(chart_query)  # decomposer
        elinda.use_decomposer = False
        elinda.query(chart_query)  # backend (stored)
        elinda.query(chart_query)  # hvs
        for route in routes:
            assert (
                counter_value("repro_router_queries_total", route=route)
                == routes[route] + 1
            )


class TestEndpointMetrics:
    def test_observe_response_counts_once_per_query(self, dbpedia_graph):
        endpoint = LocalEndpoint(dbpedia_graph, clock=SimClock())
        queries = counter_value("repro_endpoint_queries_total", source="local")
        simulated = counter_value(
            "repro_endpoint_simulated_ms_total", source="local"
        )
        response = endpoint.query("SELECT ?s WHERE { ?s ?p ?o } LIMIT 1")
        assert (
            counter_value("repro_endpoint_queries_total", source="local")
            == queries + 1
        )
        assert counter_value(
            "repro_endpoint_simulated_ms_total", source="local"
        ) == pytest.approx(simulated + response.elapsed_ms)

    def test_router_does_not_double_count_backend_queries(
        self, dbpedia_graph
    ):
        elinda = ElindaEndpoint(LocalEndpoint(dbpedia_graph, clock=SimClock()))
        queries = counter_value("repro_endpoint_queries_total", source="local")
        elinda.query("SELECT ?s WHERE { ?s ?p ?o } LIMIT 1")
        # Logged by both the backend and the router, but counted once.
        assert (
            counter_value("repro_endpoint_queries_total", source="local")
            == queries + 1
        )
        assert len(elinda.query_log) == 1
        assert len(elinda.backend.query_log) == 1


class TestIncrementalMetrics:
    def test_window_counter_counts_each_window(self, dbpedia_graph, chart_query):
        windows = counter_value("repro_incremental_windows_total", mode="local")
        evaluator = IncrementalEvaluator(
            dbpedia_graph, IncrementalConfig(window_size=500, max_steps=3)
        )
        final = evaluator.run_to_completion(chart_query)
        assert counter_value(
            "repro_incremental_windows_total", mode="local"
        ) == windows + final.windows_consumed
