"""EXPLAIN / EXPLAIN ANALYZE: plans, spans, and row accounting."""

import json

import pytest

from repro.core import Direction, MemberPattern, property_chart_query
from repro.obs import explain
from repro.obs.metrics import REGISTRY
from repro.obs.tracing import EvalProbe
from repro.rdf import DBO
from repro.sparql import SparqlEvalError
from repro.sparql.evaluator import Evaluator
from repro.sparql.parser import parse_query


class TestExplain:
    def test_plain_explain_does_not_execute(self, dbpedia_graph):
        before = REGISTRY.get("repro_eval_queries_total").value
        explained = explain(
            dbpedia_graph, "SELECT ?s WHERE { ?s ?p ?o } LIMIT 5"
        )
        assert not explained.analyzed
        assert explained.result is None
        assert all(
            plan.actual_rows is None for plan in explained.plan.walk()
        )
        assert REGISTRY.get("repro_eval_queries_total").value == before

    def test_estimates_present_on_every_node(self, dbpedia_graph):
        query = property_chart_query(
            MemberPattern.of_type(DBO.term("Person")), Direction.OUTGOING
        )
        explained = explain(dbpedia_graph, query)
        for plan in explained.plan.walk():
            assert plan.estimated_rows >= 0

    def test_construct_rejected(self, dbpedia_graph):
        with pytest.raises(SparqlEvalError):
            explain(dbpedia_graph, "CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o }")


class TestExplainAnalyze:
    @pytest.fixture(scope="class")
    def analyzed(self, dbpedia_graph):
        query = property_chart_query(
            MemberPattern.of_type(DBO.term("Person")), Direction.OUTGOING
        )
        return query, explain(dbpedia_graph, query, analyze=True)

    def test_every_operator_measured(self, analyzed):
        _, explained = analyzed
        for plan in explained.plan.walk():
            assert plan.actual_rows is not None
            assert plan.wall_ms is not None
            assert plan.wall_ms >= plan.self_wall_ms >= 0
            assert plan.invocations >= 1

    def test_root_rows_match_select_result(self, analyzed, local_endpoint):
        query, explained = analyzed
        select_rows = len(local_endpoint.select(query).rows)
        assert explained.plan.actual_rows == select_rows
        assert explained.result_rows == select_rows

    def test_parent_rows_consistent_with_pipeline(self, analyzed):
        _, explained = analyzed
        # OrderBy passes every aggregated row through unchanged.
        order_by, aggregation = (
            explained.plan,
            explained.plan.children[0],
        )
        assert order_by.label == "OrderBy"
        assert aggregation.label == "Aggregation"
        assert order_by.actual_rows == aggregation.actual_rows

    def test_render_contains_estimates_and_actuals(self, analyzed):
        _, explained = analyzed
        text = explained.render()
        assert text.startswith("EXPLAIN ANALYZE")
        assert "est_rows=" in text
        assert "wall=" in text
        assert f"result rows: {explained.result_rows}" in text

    def test_json_plan_round_trips(self, analyzed):
        _, explained = analyzed
        document = json.loads(explained.to_json())
        assert document["analyzed"] is True
        assert document["result_rows"] == explained.result_rows
        assert document["plan"]["operator"] == "OrderBy"
        assert document["plan"]["actual_rows"] == explained.plan.actual_rows

    def test_span_json_lines_schema(self, analyzed):
        _, explained = analyzed
        spans = [
            json.loads(line)
            for line in explained.to_json_lines().splitlines()
        ]
        assert spans
        required = {
            "span_id",
            "parent_id",
            "operator",
            "detail",
            "rows",
            "wall_ms",
            "self_wall_ms",
            "invocations",
            "finished",
        }
        by_id = {span["span_id"]: span for span in spans}
        for span in spans:
            assert required <= set(span)
            if span["parent_id"] is not None:
                assert span["parent_id"] in by_id

    def test_limit_leaves_upstream_unfinished(self, dbpedia_graph):
        explained = explain(
            dbpedia_graph,
            "SELECT ?s WHERE { ?s ?p ?o } LIMIT 3",
            analyze=True,
        )
        spans = [
            json.loads(line)
            for line in explained.to_json_lines().splitlines()
        ]
        bgp = next(span for span in spans if span["operator"] == "BGP")
        assert bgp["finished"] is False
        assert bgp["rows"] == 3


class TestProbeMerging:
    def test_exists_subpattern_spans_merge(self, dbpedia_graph):
        # FILTER EXISTS re-translates its pattern once per candidate row;
        # the probe must merge those into one span with invocations > 1
        # rather than exploding the tree.
        probe = EvalProbe()
        query = parse_query(
            "SELECT ?s WHERE { ?s ?p ?o . "
            "FILTER EXISTS { ?s <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?t } "
            "} LIMIT 20"
        )
        Evaluator(dbpedia_graph, probe=probe).run(query)
        exists_spans = [
            span
            for root in probe.roots
            for span in root.walk()
            if span.label == "BGP" and "rdf-syntax" in span.detail
        ]
        assert len(exists_spans) == 1
        assert exists_spans[0].invocations > 1
