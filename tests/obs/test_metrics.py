"""Unit tests for the dependency-free metrics registry."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        counter = registry.counter("t_total", "help")
        assert counter.value == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self, registry):
        counter = registry.counter("t_total", "help")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_labelled_parent_rejects_direct_inc(self, registry):
        counter = registry.counter("t_total", "help", labelnames=("kind",))
        with pytest.raises(MetricError):
            counter.inc()

    def test_unlabelled_rejects_labels_call(self, registry):
        counter = registry.counter("t_total", "help")
        with pytest.raises(MetricError):
            counter.labels(kind="x")


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("g", "help")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13


class TestLabels:
    def test_children_are_independent_and_cached(self, registry):
        counter = registry.counter("t_total", "help", labelnames=("kind",))
        counter.labels(kind="a").inc()
        counter.labels(kind="a").inc()
        counter.labels(kind="b").inc()
        assert counter.labels(kind="a").value == 2
        assert counter.labels(kind="b").value == 1
        assert counter.labels(kind="a") is counter.labels(kind="a")

    def test_wrong_label_names_rejected(self, registry):
        counter = registry.counter("t_total", "help", labelnames=("kind",))
        with pytest.raises(MetricError):
            counter.labels(other="a")
        with pytest.raises(MetricError):
            counter.labels(kind="a", extra="b")

    def test_cardinality_limit_enforced(self):
        counter = Counter("t_total", "help", labelnames=("k",), max_label_sets=3)
        for index in range(3):
            counter.labels(k=str(index)).inc()
        with pytest.raises(MetricError, match="cardinality"):
            counter.labels(k="overflow")
        # Existing children keep working at the limit.
        counter.labels(k="0").inc()
        assert counter.labels(k="0").value == 2

    def test_samples_carry_label_values(self, registry):
        counter = registry.counter("t_total", "help", labelnames=("kind",))
        counter.labels(kind="a").inc(4)
        samples = list(counter.samples())
        assert samples == [("t_total", {"kind": "a"}, 4.0)]


class TestHistogram:
    def test_buckets_are_cumulative(self):
        histogram = Histogram("h", "help", buckets=(1, 5, 10))
        for value in (0.5, 0.7, 3, 7, 100):
            histogram.observe(value)
        counts = histogram.bucket_counts()
        assert counts[1.0] == 2
        assert counts[5.0] == 3
        assert counts[10.0] == 4
        assert counts[float("inf")] == 5
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(111.2)

    def test_boundary_value_lands_in_its_bucket(self):
        histogram = Histogram("h", "help", buckets=(1, 5))
        histogram.observe(5)
        assert histogram.bucket_counts()[5.0] == 1
        assert histogram.bucket_counts()[1.0] == 0

    def test_bucket_bounds_sorted_and_unique(self):
        histogram = Histogram("h", "help", buckets=(10, 1, 5))
        assert histogram.buckets == (1.0, 5.0, 10.0)
        with pytest.raises(MetricError):
            Histogram("h", "help", buckets=(1, 1))
        with pytest.raises(MetricError):
            Histogram("h", "help", buckets=())

    def test_default_buckets(self, registry):
        histogram = registry.histogram("h_ms", "help")
        assert histogram.buckets == DEFAULT_LATENCY_BUCKETS_MS

    def test_labelled_histogram_samples(self, registry):
        histogram = registry.histogram(
            "h_ms", "help", labelnames=("source",), buckets=(1, 10)
        )
        histogram.labels(source="local").observe(3)
        names = {name for name, _, _ in histogram.samples()}
        assert names == {"h_ms_bucket", "h_ms_sum", "h_ms_count"}
        rendered = registry.render()
        assert 'h_ms_bucket{le="10",source="local"} 1' in rendered


class TestRegistry:
    def test_registration_is_idempotent(self, registry):
        first = registry.counter("t_total", "help", labelnames=("k",))
        second = registry.counter("t_total", "help", labelnames=("k",))
        assert first is second

    def test_conflicting_registration_raises(self, registry):
        registry.counter("t_total", "help")
        with pytest.raises(MetricError):
            registry.gauge("t_total", "help")
        registry.counter("l_total", "help", labelnames=("a",))
        with pytest.raises(MetricError):
            registry.counter("l_total", "help", labelnames=("b",))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.counter("bad-name", "help")
        with pytest.raises(MetricError):
            registry.counter("ok_total", "help", labelnames=("bad-label",))
        with pytest.raises(MetricError):
            registry.counter("ok_total", "help", labelnames=("a", "a"))

    def test_contains_and_names(self, registry):
        registry.counter("a_total", "help")
        registry.gauge("b", "help")
        assert "a_total" in registry
        assert "missing" not in registry
        assert registry.names() == ["a_total", "b"]

    def test_reset_keeps_prebound_children_alive(self, registry):
        counter = registry.counter("t_total", "help", labelnames=("k",))
        child = counter.labels(k="x")  # pre-bound, as instrumented modules do
        child.inc(5)
        registry.reset()
        assert child.value == 0
        child.inc()
        # The zeroed child must still be the registered series.
        assert counter.labels(k="x").value == 1
        assert 't_total{k="x"} 1' in registry.render()

    def test_render_format(self, registry):
        counter = registry.counter("t_total", "the help text")
        counter.inc(2)
        rendered = registry.render()
        assert "# HELP t_total the help text" in rendered
        assert "# TYPE t_total counter" in rendered
        assert "t_total 2" in rendered

    def test_render_escapes_label_values(self, registry):
        counter = registry.counter("t_total", "help", labelnames=("k",))
        counter.labels(k='a"b\nc').inc()
        assert 't_total{k="a\\"b\\nc"} 1' in registry.render()

    def test_thread_safety_of_child_creation(self, registry):
        counter = registry.counter("t_total", "help", labelnames=("k",))
        children = []

        def bind():
            children.append(counter.labels(k="shared"))

        threads = [threading.Thread(target=bind) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(child is children[0] for child in children)
