"""docs/OBSERVABILITY.md is a contract: its catalogue and the live
registry must agree exactly."""

import pathlib
import re

# Importing these modules registers every metric of the codebase.
import repro.endpoint.base  # noqa: F401
import repro.endpoint.faults  # noqa: F401
import repro.endpoint.virtuoso  # noqa: F401
import repro.endpoint.wire  # noqa: F401
import repro.perf.decomposer  # noqa: F401
import repro.perf.hvs  # noqa: F401
import repro.perf.incremental  # noqa: F401
import repro.perf.plancache  # noqa: F401
import repro.perf.remote_incremental  # noqa: F401
import repro.perf.router  # noqa: F401
import repro.perf.views  # noqa: F401
import repro.rdf.graph  # noqa: F401
import repro.rdf.snapshot  # noqa: F401
import repro.rdf.stats  # noqa: F401
import repro.serve.breaker  # noqa: F401
import repro.serve.frontend  # noqa: F401
import repro.serve.loadgen  # noqa: F401
import repro.serve.pool  # noqa: F401
import repro.serve.retry  # noqa: F401
import repro.sparql.evaluator  # noqa: F401
import repro.sparql.executor  # noqa: F401
import repro.sparql.optimizer  # noqa: F401
from repro.obs.metrics import REGISTRY

DOC = pathlib.Path(__file__).resolve().parents[2] / "docs" / "OBSERVABILITY.md"


def documented_metrics():
    """Metric names from the catalogue table's first column."""
    names = set()
    for line in DOC.read_text(encoding="utf-8").splitlines():
        match = re.match(r"\| `(repro_[a-z0-9_]+)` \|", line)
        if match:
            names.add(match.group(1))
    return names


def test_catalogue_file_exists():
    assert DOC.is_file()


def test_every_documented_metric_is_registered():
    documented = documented_metrics()
    assert documented, "no catalogue rows found in docs/OBSERVABILITY.md"
    registered = set(REGISTRY.names())
    missing = documented - registered
    assert not missing, f"documented but not registered: {sorted(missing)}"


def test_every_registered_metric_is_documented():
    documented = documented_metrics()
    registered = set(REGISTRY.names())
    undocumented = registered - documented
    assert not undocumented, (
        f"registered but missing from docs/OBSERVABILITY.md: "
        f"{sorted(undocumented)}"
    )


def test_architecture_doc_exists_and_is_linked():
    docs = DOC.parent
    architecture = docs / "ARCHITECTURE.md"
    assert architecture.is_file()
    readme = (docs.parent / "README.md").read_text(encoding="utf-8")
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/OBSERVABILITY.md" in readme
