"""Unit tests for the specialised indexes and the decomposer."""

import pytest

from repro.core import Direction, MemberPattern, property_chart_query
from repro.datasets.dbpedia import OWL_THING
from repro.endpoint import LocalEndpoint, SimClock
from repro.perf import Decomposer, SpecializedIndexes, match_property_expansion
from repro.rdf import DBO


def canon(result):
    return sorted(
        tuple(sorted((name, term.n3()) for name, term in row.items()))
        for row in result.rows
    )


@pytest.fixture(scope="module")
def indexes(dbpedia_graph):
    return SpecializedIndexes(dbpedia_graph)


class TestSpecializedIndexes:
    def test_instance_counts_match_graph(self, indexes, dbpedia):
        philosopher = dbpedia.facts["philosopher"]
        assert indexes.instance_count(philosopher) == dbpedia.instance_count(
            philosopher
        )

    def test_unknown_class_is_empty(self, indexes):
        assert indexes.instances(DBO.term("NoSuchClass")) == frozenset()
        assert indexes.instance_count(DBO.term("NoSuchClass")) == 0

    def test_property_expansion_counts_match_reference(
        self, indexes, dbpedia, dbpedia_graph
    ):
        from repro.core import BarType, property_expansion, root_bar

        philosopher = dbpedia.facts["philosopher"]
        bar = root_bar(dbpedia_graph, philosopher)
        reference = property_expansion(dbpedia_graph, bar, Direction.OUTGOING)
        rows = indexes.property_expansion([philosopher], Direction.OUTGOING)
        by_prop = {row.prop: row.subject_count for row in rows}
        assert by_prop == {bar.label: bar.size for bar in reference}

    def test_triple_counts_exceed_subject_counts(self, indexes, dbpedia):
        rows = indexes.property_expansion(
            [dbpedia.facts["philosopher"]], Direction.OUTGOING
        )
        assert all(row.triple_count >= row.subject_count for row in rows)

    def test_rows_sorted_by_support(self, indexes):
        rows = indexes.property_expansion([OWL_THING], Direction.OUTGOING)
        counts = [row.subject_count for row in rows]
        assert counts == sorted(counts, reverse=True)

    def test_subclass_chain_uses_smallest_class(self, indexes, dbpedia):
        # Thing + Agent + Person + Philosopher intersect to Philosopher.
        chain = [
            OWL_THING,
            dbpedia.facts["agent"],
            dbpedia.facts["person"],
            dbpedia.facts["philosopher"],
        ]
        rows_chain = indexes.property_expansion(chain, Direction.OUTGOING)
        rows_direct = indexes.property_expansion(
            [dbpedia.facts["philosopher"]], Direction.OUTGOING
        )
        assert [
            (r.prop, r.subject_count) for r in rows_chain
        ] == [(r.prop, r.subject_count) for r in rows_direct]

    def test_non_nested_classes_fall_through(self, indexes, dbpedia):
        # Philosopher and Food instance sets do not nest.
        rows = indexes.property_expansion(
            [dbpedia.facts["philosopher"], dbpedia.facts["food"]],
            Direction.OUTGOING,
        )
        assert rows is None

    def test_unknown_class_in_list_falls_through(self, indexes):
        assert (
            indexes.property_expansion(
                [DBO.term("NoSuchClass")], Direction.INCOMING
            )
            is None
        )

    def test_entries_touched_accumulates(self, dbpedia_graph):
        local = SpecializedIndexes(dbpedia_graph)
        assert local.entries_touched == 0
        local.property_expansion([OWL_THING], Direction.OUTGOING)
        assert local.entries_touched > 0


class TestDetector:
    def test_matches_generated_outgoing_query(self):
        query = property_chart_query(MemberPattern.of_type(OWL_THING))
        spec = match_property_expansion(query)
        assert spec is not None
        assert spec.classes == (OWL_THING,)
        assert spec.direction is Direction.OUTGOING

    def test_matches_generated_incoming_query(self):
        query = property_chart_query(
            MemberPattern.of_type(OWL_THING), Direction.INCOMING
        )
        spec = match_property_expansion(query)
        assert spec.direction is Direction.INCOMING

    def test_matches_subclass_chain_pattern(self, dbpedia):
        pattern = (
            MemberPattern.of_type(OWL_THING)
            .and_type(dbpedia.facts["agent"])
            .and_type(dbpedia.facts["person"])
        )
        spec = match_property_expansion(property_chart_query(pattern))
        assert len(spec.classes) == 3

    def test_rejects_values_restricted_pattern(self, dbpedia):
        # Filter expansions (VALUES sets) are outside decomposer scope.
        pattern = MemberPattern.of_values(list(dbpedia.facts["philosophers"])[:3])
        assert match_property_expansion(property_chart_query(pattern)) is None

    def test_rejects_property_constrained_pattern(self):
        pattern = MemberPattern.of_type(OWL_THING).and_property(
            DBO.term("birthPlace")
        )
        assert match_property_expansion(property_chart_query(pattern)) is None

    @pytest.mark.parametrize(
        "query",
        [
            "SELECT ?s WHERE { ?s ?p ?o }",
            "ASK { ?s ?p ?o }",
            "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }",
            "not even sparql",
        ],
    )
    def test_rejects_other_queries(self, query):
        assert match_property_expansion(query) is None


class TestDecomposer:
    def test_answers_match_engine_exactly(self, dbpedia_graph, indexes):
        endpoint = LocalEndpoint(dbpedia_graph)
        decomposer = Decomposer(indexes)
        for direction in (Direction.OUTGOING, Direction.INCOMING):
            query = property_chart_query(
                MemberPattern.of_type(OWL_THING), direction
            )
            via_engine = endpoint.select(query)
            via_decomposer = decomposer.try_answer(query)
            assert via_decomposer is not None
            assert canon(via_decomposer.result) == canon(via_engine)

    def test_answers_subclass_chain(self, dbpedia_graph, indexes, dbpedia):
        endpoint = LocalEndpoint(dbpedia_graph)
        decomposer = Decomposer(indexes)
        pattern = MemberPattern.of_type(OWL_THING).and_type(
            dbpedia.facts["politician"]
        )
        query = property_chart_query(pattern)
        assert canon(decomposer.try_answer(query).result) == canon(
            endpoint.select(query)
        )

    def test_out_of_scope_returns_none_and_counts_miss(self, indexes):
        decomposer = Decomposer(indexes)
        assert decomposer.try_answer("SELECT ?s WHERE { ?s ?p ?o }") is None
        assert decomposer.misses == 1

    def test_latency_is_seconds_not_minutes(self, indexes):
        clock = SimClock()
        decomposer = Decomposer(indexes, clock=clock)
        query = property_chart_query(MemberPattern.of_type(OWL_THING))
        response = decomposer.try_answer(query)
        assert 100 < response.elapsed_ms < 10_000
        assert response.source == "decomposer"
        assert clock.now_ms == response.elapsed_ms

    def test_hit_counter(self, indexes):
        decomposer = Decomposer(indexes)
        query = property_chart_query(MemberPattern.of_type(OWL_THING))
        decomposer.try_answer(query)
        assert decomposer.hits == 1
