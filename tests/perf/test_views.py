"""Materialized chart views: shape matching, router placement, and
incremental (delta) maintenance.

The two central invariants:

* every view-served chart is row-identical to what the backend would
  have computed for the same query, and
* after any interleaving of ``add`` / ``remove`` / ``bulk_load`` the
  delta-maintained tables equal a from-scratch rebuild.
"""

import pytest

from repro.core import Direction, MemberPattern
from repro.core.queries import (
    count_query,
    members_query,
    object_chart_query,
    property_chart_query,
    subclass_chart_query,
)
from repro.datasets.dbpedia import OWL_THING
from repro.endpoint import LocalEndpoint, SimClock
from repro.obs.metrics import REGISTRY
from repro.perf import (
    Decomposer,
    ElindaEndpoint,
    HeavyQueryStore,
    MaterializedViews,
    SpecializedIndexes,
    match_member_count,
    match_object_chart,
    match_subclass_chart,
)
from repro.rdf import DBO, DBR, OWL, RDF, Graph

THING = OWL.term("Thing")
RDF_TYPE = RDF.term("type")


def canon(result):
    return sorted(
        tuple(sorted((name, term.n3()) for name, term in row.items()))
        for row in result.rows
    )


def counter(name, **labels):
    metric = REGISTRY.get(name)
    return metric.labels(**labels).value if labels else metric.value


def copy_graph(graph):
    return Graph(list(graph.triples()))


@pytest.fixture()
def views(dbpedia_graph):
    built = MaterializedViews(dbpedia_graph, track=False)
    built.plan_cache = None
    return built


@pytest.fixture()
def philosophy_views(philosophy_graph):
    return MaterializedViews(philosophy_graph, track=False)


class TestShapeMatchers:
    def test_subclass_chart_shape(self):
        pattern = MemberPattern.of_type(THING).and_type(DBO.term("Agent"))
        spec = match_subclass_chart(
            subclass_chart_query(pattern, DBO.term("Agent"))
        )
        assert spec is not None
        assert set(spec.classes) == {THING, DBO.term("Agent")}
        assert spec.parent == DBO.term("Agent")

    def test_member_count_shape(self):
        spec = match_member_count(count_query(MemberPattern.of_type(THING)))
        assert spec is not None
        assert spec.classes == (THING,)

    def test_object_chart_shapes_both_directions(self):
        prop = DBO.term("influencedBy")
        for direction in (Direction.OUTGOING, Direction.INCOMING):
            pattern = MemberPattern.of_type(DBO.term("Philosopher"))
            spec = match_object_chart(
                object_chart_query(pattern, prop, direction)
            )
            assert spec is not None
            assert spec.prop == prop
            assert spec.direction is direction

    def test_object_chart_tolerates_property_bar_pattern(self):
        """A property bar's pattern carries a redundant existence line
        (``?s <prop> ?vN``); the chart's own edge subsumes it."""
        prop = DBO.term("influencedBy")
        pattern = MemberPattern.of_type(DBO.term("Philosopher")).and_property(
            prop
        )
        spec = match_object_chart(
            object_chart_query(pattern, prop, Direction.OUTGOING)
        )
        assert spec is not None
        assert spec.classes == (DBO.term("Philosopher"),)

    def test_values_pattern_not_matched(self):
        pattern = MemberPattern.of_values([DBR.term("Plato")])
        assert match_member_count(count_query(pattern)) is None

    def test_members_query_not_matched(self):
        query = members_query(MemberPattern.of_type(THING), limit=5)
        assert match_subclass_chart(query) is None
        assert match_member_count(query) is None
        assert match_object_chart(query) is None


class TestAnswersMatchBackend:
    """View answers must be row-identical to the real engine's."""

    @pytest.mark.parametrize(
        "direction", [Direction.OUTGOING, Direction.INCOMING]
    )
    def test_property_chart(self, views, local_endpoint, direction):
        query = property_chart_query(MemberPattern.of_type(OWL_THING), direction)
        response = views.try_answer(query)
        assert response is not None and response.source == "views"
        assert canon(response.result) == canon(local_endpoint.select(query))

    def test_subclass_chart(self, views, local_endpoint):
        query = subclass_chart_query(MemberPattern.of_type(OWL_THING), OWL_THING)
        response = views.try_answer(query)
        assert response is not None
        assert canon(response.result) == canon(local_endpoint.select(query))

    def test_member_count(self, views, local_endpoint):
        pattern = MemberPattern.of_type(OWL_THING).and_type(DBO.term("Agent"))
        query = count_query(pattern)
        response = views.try_answer(query)
        assert response is not None
        assert canon(response.result) == canon(local_endpoint.select(query))

    def test_object_chart(self, philosophy_views, philosophy_endpoint):
        pattern = MemberPattern.of_type(DBO.term("Philosopher"))
        query = object_chart_query(
            pattern, DBO.term("influencedBy"), Direction.OUTGOING
        )
        response = philosophy_views.try_answer(query)
        assert response is not None
        assert canon(response.result) == canon(
            philosophy_endpoint.select(query)
        )

    def test_object_chart_incoming(self, philosophy_views, philosophy_endpoint):
        pattern = MemberPattern.of_type(DBO.term("Person"))
        query = object_chart_query(
            pattern, DBO.term("influencedBy"), Direction.INCOMING
        )
        response = philosophy_views.try_answer(query)
        assert response is not None
        assert canon(response.result) == canon(
            philosophy_endpoint.select(query)
        )

    def test_unrecognised_query_misses(self, philosophy_views):
        before = counter(
            "repro_view_lookups_total", shape="other", outcome="miss"
        )
        assert philosophy_views.try_answer("SELECT ?s WHERE { ?s ?p ?o }") is None
        assert (
            counter("repro_view_lookups_total", shape="other", outcome="miss")
            == before + 1
        )


class TestRouterPlacement:
    def _ladder(self, graph):
        clock = SimClock()
        views = MaterializedViews(graph, clock=clock)
        elinda = ElindaEndpoint(
            LocalEndpoint(graph, clock=clock),
            hvs=HeavyQueryStore(clock=clock),
            views=views,
            decomposer=Decomposer(views, clock=clock),
        )
        return elinda, views

    def test_views_answer_before_decomposer(self, philosophy_graph):
        elinda, _views = self._ladder(copy_graph(philosophy_graph))
        query = property_chart_query(
            MemberPattern.of_type(THING), Direction.OUTGOING
        )
        before = counter("repro_router_queries_total", route="views")
        response = elinda.query(query)
        assert response.source == "views"
        assert counter("repro_router_queries_total", route="views") == before + 1

    def test_views_toggle_falls_to_decomposer(self, philosophy_graph):
        elinda, _views = self._ladder(copy_graph(philosophy_graph))
        elinda.use_views = False
        query = property_chart_query(
            MemberPattern.of_type(THING), Direction.OUTGOING
        )
        response = elinda.query(query)
        assert response.source == "decomposer"

    def test_views_stay_routable_after_mutation(self, philosophy_graph):
        """The build-once decomposer goes stale on a write; the tracked
        views do not — charts keep coming from the views route."""
        graph = copy_graph(philosophy_graph)
        elinda, views = self._ladder(graph)
        graph.add(DBR.term("Hypatia"), RDF_TYPE, DBO.term("Philosopher"))
        query = property_chart_query(
            MemberPattern.of_type(DBO.term("Philosopher")), Direction.OUTGOING
        )
        assert views.is_fresh
        response = elinda.query(query)
        assert response.source == "views"
        reference = LocalEndpoint(graph, clock=SimClock())
        assert canon(response.result) == canon(reference.select(query))

    def test_detached_views_go_stale(self, philosophy_graph):
        graph = copy_graph(philosophy_graph)
        elinda, views = self._ladder(graph)
        views.detach()
        graph.add(DBR.term("Hypatia"), RDF_TYPE, DBO.term("Philosopher"))
        assert not views.is_fresh
        query = property_chart_query(
            MemberPattern.of_type(THING), Direction.OUTGOING
        )
        assert elinda.query(query).source == "local"

    def test_specialized_indexes_remain_build_once(self, philosophy_graph):
        graph = copy_graph(philosophy_graph)
        indexes = SpecializedIndexes(graph)
        assert indexes.is_fresh
        graph.add(DBR.term("Hypatia"), RDF_TYPE, DBO.term("Philosopher"))
        assert not indexes.is_fresh


class TestDeltaMaintenance:
    def test_add_remove_equal_rebuild(self, philosophy_graph):
        graph = copy_graph(philosophy_graph)
        views = MaterializedViews(graph)
        hypatia = DBR.term("Hypatia")
        graph.add(hypatia, RDF_TYPE, DBO.term("Philosopher"))
        graph.add(hypatia, DBO.term("influencedBy"), DBR.term("Plato"))
        graph.remove(
            DBR.term("Kant"), DBO.term("influencedBy"), DBR.term("Plato")
        )
        graph.remove(DBR.term("Plato"), RDF_TYPE, DBO.term("Philosopher"))
        rebuilt = MaterializedViews(graph, track=False)
        assert views.table_state() == rebuilt.table_state()

    def test_bulk_load_deltas(self, philosophy_graph):
        graph = copy_graph(philosophy_graph)
        views = MaterializedViews(graph)
        before = counter("repro_view_deltas_total", op="add")
        fresh = graph.bulk_load(
            [
                (DBR.term("Hypatia"), RDF_TYPE, DBO.term("Philosopher")),
                (DBR.term("Hypatia"), DBO.term("era"), DBR.term("Athens")),
                # A duplicate of an existing triple: no delta for it.
                (DBR.term("Plato"), RDF_TYPE, DBO.term("Philosopher")),
            ]
        )
        assert fresh == 2
        assert counter("repro_view_deltas_total", op="add") == before + 2
        rebuilt = MaterializedViews(graph, track=False)
        assert views.table_state() == rebuilt.table_state()

    def test_clear_rebuilds(self, philosophy_graph):
        graph = copy_graph(philosophy_graph)
        views = MaterializedViews(graph)
        before = counter("repro_view_rebuilds_total", reason="clear")
        graph.clear()
        assert counter("repro_view_rebuilds_total", reason="clear") == before + 1
        assert views.instance_count(DBO.term("Philosopher")) == 0
        assert views.is_fresh

    def test_no_op_mutations_fire_no_deltas(self, philosophy_graph):
        graph = copy_graph(philosophy_graph)
        MaterializedViews(graph)
        before = counter("repro_view_deltas_total", op="add")
        before_rm = counter("repro_view_deltas_total", op="remove")
        graph.add(DBR.term("Plato"), RDF_TYPE, DBO.term("Philosopher"))
        graph.remove(DBR.term("Plato"), RDF_TYPE, DBO.term("NoSuchClass"))
        assert counter("repro_view_deltas_total", op="add") == before
        assert counter("repro_view_deltas_total", op="remove") == before_rm

    def test_mutated_answers_match_backend(self, philosophy_graph):
        graph = copy_graph(philosophy_graph)
        views = MaterializedViews(graph)
        graph.add(DBR.term("Hypatia"), RDF_TYPE, DBO.term("Philosopher"))
        graph.add(
            DBR.term("Hypatia"), DBO.term("influencedBy"), DBR.term("Plato")
        )
        reference = LocalEndpoint(graph, clock=SimClock())
        for query in (
            property_chart_query(
                MemberPattern.of_type(DBO.term("Philosopher")),
                Direction.OUTGOING,
            ),
            subclass_chart_query(MemberPattern.of_type(THING), THING),
            count_query(MemberPattern.of_type(DBO.term("Philosopher"))),
            object_chart_query(
                MemberPattern.of_type(DBO.term("Philosopher")),
                DBO.term("influencedBy"),
                Direction.OUTGOING,
            ),
        ):
            response = views.try_answer(query)
            assert response is not None
            assert canon(response.result) == canon(reference.select(query))


class TestConnectionTables:
    def test_lazy_materialization(self, philosophy_graph):
        graph = copy_graph(philosophy_graph)
        views = MaterializedViews(graph)
        classes = [DBO.term("Philosopher")]
        prop = DBO.term("influencedBy")
        before = counter("repro_view_rebuilds_total", reason="connection")
        first = views.connection_expansion(classes, prop, Direction.OUTGOING)
        assert (
            counter("repro_view_rebuilds_total", reason="connection")
            == before + 1
        )
        again = views.connection_expansion(classes, prop, Direction.OUTGOING)
        # Second lookup is served from the materialized table.
        assert (
            counter("repro_view_rebuilds_total", reason="connection")
            == before + 1
        )
        assert first == again

    def test_edge_delta_updates_materialized_table(self, philosophy_graph):
        graph = copy_graph(philosophy_graph)
        views = MaterializedViews(graph)
        classes = [DBO.term("Philosopher")]
        prop = DBO.term("influencedBy")
        views.connection_expansion(classes, prop, Direction.OUTGOING)
        # An edge of an existing member: updated in place, no rebuild.
        before = counter("repro_view_rebuilds_total", reason="connection")
        graph.add(DBR.term("Kant"), prop, DBR.term("Aristotle"))
        rows = views.connection_expansion(classes, prop, Direction.OUTGOING)
        assert (
            counter("repro_view_rebuilds_total", reason="connection") == before
        )
        reference = LocalEndpoint(graph, clock=SimClock())
        query = object_chart_query(
            MemberPattern.of_type(DBO.term("Philosopher")),
            prop,
            Direction.OUTGOING,
        )
        assert canon(views.try_answer(query).result) == canon(
            reference.select(query)
        )
        assert rows  # typed objects exist in the philosophy graph

    def test_membership_change_drops_and_rematerializes(self, philosophy_graph):
        graph = copy_graph(philosophy_graph)
        views = MaterializedViews(graph)
        classes = [DBO.term("Philosopher")]
        prop = DBO.term("influencedBy")
        views.connection_expansion(classes, prop, Direction.OUTGOING)
        before = counter("repro_view_rebuilds_total", reason="connection")
        graph.add(DBR.term("Hypatia"), RDF_TYPE, DBO.term("Philosopher"))
        graph.add(DBR.term("Hypatia"), prop, DBR.term("Plato"))
        rows = views.connection_expansion(classes, prop, Direction.OUTGOING)
        assert (
            counter("repro_view_rebuilds_total", reason="connection")
            == before + 1
        )
        reference = LocalEndpoint(graph, clock=SimClock())
        query = object_chart_query(
            MemberPattern.of_type(DBO.term("Philosopher")),
            prop,
            Direction.OUTGOING,
        )
        assert canon(views.try_answer(query).result) == canon(
            reference.select(query)
        )
        assert rows


class TestLegacyIndexApi:
    """The SpecializedIndexes surface the decomposer relies on."""

    def test_instances_decode(self, philosophy_views):
        assert DBR.term("Plato") in philosophy_views.instances(
            DBO.term("Philosopher")
        )
        assert philosophy_views.instances(DBO.term("NoSuchClass")) == frozenset()

    def test_classes_sorted(self, philosophy_views):
        listed = philosophy_views.classes()
        assert listed == sorted(listed, key=lambda cls: cls.value)
        assert DBO.term("Philosopher") in listed

    def test_property_expansion_none_for_unknown(self, philosophy_views):
        assert (
            philosophy_views.property_expansion(
                [DBO.term("NoSuchClass")], Direction.OUTGOING
            )
            is None
        )
