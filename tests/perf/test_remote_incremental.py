"""Unit tests for incremental evaluation in remote compatibility mode."""

import pytest

from repro.core import Direction, MemberPattern, property_chart_query
from repro.datasets.dbpedia import OWL_THING
from repro.endpoint import LocalEndpoint, RemoteEndpoint, SimClock, SimulatedVirtuosoServer
from repro.perf import RemoteIncrementalConfig, RemoteIncrementalEvaluator
from repro.rdf import DBO


@pytest.fixture()
def remote(dbpedia_graph, clock):
    server = SimulatedVirtuosoServer(dbpedia_graph, clock=clock)
    return RemoteEndpoint(server)


def chart_map(result):
    return {
        row["p"]: (int(row["count"].lexical), int(row["triples"].lexical))
        for row in result.rows
    }


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RemoteIncrementalConfig(window_size=0)
        with pytest.raises(ValueError):
            RemoteIncrementalConfig(max_steps=0)


class TestConvergence:
    def test_triple_sums_converge_exactly(self, remote, dbpedia_graph):
        """The SUM column is window-invariant: it must equal the
        one-shot chart exactly."""
        pattern = MemberPattern.of_type(DBO.term("Philosopher"))
        one_shot = LocalEndpoint(dbpedia_graph).select(
            property_chart_query(pattern)
        )
        evaluator = RemoteIncrementalEvaluator(
            remote, RemoteIncrementalConfig(window_size=50)
        )
        final = evaluator.run_to_completion(pattern)
        assert final.complete
        expected = {row["p"]: int(row["triples"].lexical) for row in one_shot}
        measured = {prop: triples for prop, (_c, triples) in chart_map(final.result).items()}
        assert measured == expected

    def test_subject_counts_close_to_exact(self, remote, dbpedia_graph):
        """COUNT may over-count subjects straddling page boundaries by at
        most one per boundary."""
        pattern = MemberPattern.of_type(DBO.term("Philosopher"))
        one_shot = LocalEndpoint(dbpedia_graph).select(
            property_chart_query(pattern)
        )
        window = 50
        evaluator = RemoteIncrementalEvaluator(
            remote, RemoteIncrementalConfig(window_size=window)
        )
        final = evaluator.run_to_completion(pattern)
        boundaries = final.windows_consumed - 1
        expected = {row["p"]: int(row["count"].lexical) for row in one_shot}
        for prop, (count, _triples) in chart_map(final.result).items():
            assert expected[prop] <= count <= expected[prop] + boundaries

    def test_single_page_equals_oneshot(self, remote, dbpedia_graph):
        pattern = MemberPattern.of_type(DBO.term("Philosopher"))
        one_shot = LocalEndpoint(dbpedia_graph).select(
            property_chart_query(pattern)
        )
        evaluator = RemoteIncrementalEvaluator(
            remote, RemoteIncrementalConfig(window_size=10**6)
        )
        final = evaluator.run_to_completion(pattern)
        assert final.step == 1 and final.complete
        assert chart_map(final.result) == {
            row["p"]: (
                int(row["count"].lexical),
                int(row["triples"].lexical),
            )
            for row in one_shot
        }

    def test_incoming_direction(self, remote, dbpedia_graph):
        pattern = MemberPattern.of_type(DBO.term("Philosopher"))
        one_shot = LocalEndpoint(dbpedia_graph).select(
            property_chart_query(pattern, Direction.INCOMING)
        )
        final = RemoteIncrementalEvaluator(
            remote, RemoteIncrementalConfig(window_size=40)
        ).run_to_completion(pattern, Direction.INCOMING)
        expected = {row["p"]: int(row["triples"].lexical) for row in one_shot}
        measured = {p: t for p, (_c, t) in chart_map(final.result).items()}
        assert measured == expected


class TestPaging:
    def test_each_step_is_one_http_request(self, dbpedia_graph, clock):
        server = SimulatedVirtuosoServer(dbpedia_graph, clock=clock)
        remote = RemoteEndpoint(server)
        evaluator = RemoteIncrementalEvaluator(
            remote, RemoteIncrementalConfig(window_size=100)
        )
        pattern = MemberPattern.of_type(DBO.term("Politician"))
        partials = list(evaluator.run(pattern))
        assert server.requests_served == len(partials)

    def test_max_steps_cap(self, remote):
        pattern = MemberPattern.of_type(OWL_THING)
        evaluator = RemoteIncrementalEvaluator(
            remote, RemoteIncrementalConfig(window_size=500, max_steps=2)
        )
        partials = list(evaluator.run(pattern))
        assert len(partials) == 2
        assert not partials[-1].complete

    def test_counts_grow_monotonically(self, remote):
        pattern = MemberPattern.of_type(DBO.term("Philosopher"))
        evaluator = RemoteIncrementalEvaluator(
            remote, RemoteIncrementalConfig(window_size=60)
        )
        previous = 0
        for partial in evaluator.run(pattern):
            total = sum(
                int(row["triples"].lexical) for row in partial.result.rows
            )
            assert total >= previous
            previous = total

    def test_first_page_latency_below_one_shot(self, dbpedia_graph):
        pattern = MemberPattern.of_type(OWL_THING)
        clock_a = SimClock()
        remote_a = RemoteEndpoint(
            SimulatedVirtuosoServer(dbpedia_graph, clock=clock_a)
        )
        first = next(
            RemoteIncrementalEvaluator(
                remote_a, RemoteIncrementalConfig(window_size=500)
            ).run(pattern)
        )
        clock_b = SimClock()
        remote_b = RemoteEndpoint(
            SimulatedVirtuosoServer(dbpedia_graph, clock=clock_b)
        )
        one_shot = remote_b.query(property_chart_query(pattern))
        assert first.elapsed_ms < one_shot.elapsed_ms

    def test_rows_sorted_by_count(self, remote):
        pattern = MemberPattern.of_type(DBO.term("Philosopher"))
        final = RemoteIncrementalEvaluator(
            remote, RemoteIncrementalConfig(window_size=80)
        ).run_to_completion(pattern)
        counts = [int(row["count"].lexical) for row in final.result.rows]
        assert counts == sorted(counts, reverse=True)
