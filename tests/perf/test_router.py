"""Unit tests for the eLinda endpoint router (Fig. 3 wiring)."""

import pytest

from repro.core import Direction, MemberPattern, property_chart_query
from repro.datasets.dbpedia import OWL_THING, recommended_scale
from repro.endpoint import (
    LocalEndpoint,
    REMOTE_VIRTUOSO_PROFILE,
    RemoteEndpoint,
    SimClock,
    SimulatedVirtuosoServer,
)
from repro.perf import (
    Decomposer,
    ElindaEndpoint,
    HeavyQueryStore,
    SpecializedIndexes,
)

HEAVY = property_chart_query(MemberPattern.of_type(OWL_THING))
LIGHT = "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }"


@pytest.fixture()
def stack(dbpedia_graph, dbpedia_config, clock):
    """A full eLinda endpoint over a slow simulated Virtuoso backend."""
    profile = REMOTE_VIRTUOSO_PROFILE.scaled(recommended_scale(dbpedia_config))
    server = SimulatedVirtuosoServer(dbpedia_graph, clock=clock, cost_model=profile)
    backend = RemoteEndpoint(server)
    hvs = HeavyQueryStore(clock=clock)
    decomposer = Decomposer(SpecializedIndexes(dbpedia_graph), clock=clock)
    return ElindaEndpoint(backend, hvs=hvs, decomposer=decomposer)


class TestRoutingOrder:
    def test_decomposable_query_skips_backend(self, stack):
        response = stack.query(HEAVY)
        assert response.source == "decomposer"
        assert stack.backend.query_log == []

    def test_non_decomposable_goes_to_backend(self, stack):
        response = stack.query(LIGHT)
        assert response.source == "virtuoso"

    def test_hvs_wins_over_decomposer_once_cached(self, stack):
        # Force the heavy query through the backend once (decomposer off).
        stack.use_decomposer = False
        first = stack.query(HEAVY)
        assert first.source == "virtuoso"
        stack.use_decomposer = True
        second = stack.query(HEAVY)
        assert second.source == "hvs"
        assert second.elapsed_ms < first.elapsed_ms

    def test_light_queries_never_cached(self, stack):
        light = "SELECT ?s WHERE { ?s ?p ?o } LIMIT 1"
        first = stack.query(light)
        assert first.elapsed_ms < 1000  # genuinely light
        repeat = stack.query(light)
        assert repeat.source == "virtuoso"

    def test_all_sources_agree(self, stack, dbpedia_graph):
        """The same query answered by all three paths yields identical
        row multisets."""
        def canon(result):
            return sorted(
                tuple(sorted((k, v.n3()) for k, v in row.items()))
                for row in result.rows
            )

        via_decomposer = stack.query(HEAVY)
        stack.use_decomposer = False
        via_backend = stack.query(HEAVY)     # virtuoso, then cached
        via_hvs = stack.query(HEAVY)
        assert via_hvs.source == "hvs"
        assert (
            canon(via_decomposer.result)
            == canon(via_backend.result)
            == canon(via_hvs.result)
        )


class TestSwitches:
    def test_both_off_routes_everything_to_backend(self, stack):
        stack.use_hvs = False
        stack.use_decomposer = False
        assert stack.query(HEAVY).source == "virtuoso"
        assert stack.query(HEAVY).source == "virtuoso"

    def test_hvs_disabled_still_decomposes(self, stack):
        stack.use_hvs = False
        assert stack.query(HEAVY).source == "decomposer"

    def test_missing_components_tolerated(self, dbpedia_graph):
        bare = ElindaEndpoint(LocalEndpoint(dbpedia_graph))
        assert bare.query(LIGHT).source == "local"


class TestInvalidation:
    def test_stale_indexes_bypass_decomposer(self, dbpedia_graph, clock):
        graph = dbpedia_graph.copy()
        backend = LocalEndpoint(graph, clock=clock)
        decomposer = Decomposer(SpecializedIndexes(graph), clock=clock)
        stack = ElindaEndpoint(backend, decomposer=decomposer)
        assert stack.query(HEAVY).source == "decomposer"
        from repro.rdf import URI

        graph.add(URI("http://new"), URI("http://p"), URI("http://o"))
        assert stack.query(HEAVY).source == "local"

    def test_hvs_invalidated_on_update(self, dbpedia_graph, clock):
        graph = dbpedia_graph.copy()
        backend = LocalEndpoint(graph, clock=clock)
        hvs = HeavyQueryStore(threshold_ms=0.001, clock=clock)
        stack = ElindaEndpoint(backend, hvs=hvs)
        stack.query(LIGHT)
        assert stack.query(LIGHT).source == "hvs"
        from repro.rdf import URI

        graph.add(URI("http://new2"), URI("http://p"), URI("http://o"))
        assert stack.query(LIGHT).source == "local"

    def test_dataset_version_delegates_to_backend(self, stack, dbpedia_graph):
        assert stack.dataset_version == stack.backend.dataset_version


class TestPagedRouting:
    """The router speaks the paged query protocol without compromising
    the HVS: continuations bypass the cache layers, partial pages are
    never recorded, and racing updates drop the record."""

    PAGED = "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 120"

    def _drain(self, stack, page_size=50):
        response = stack.query(self.PAGED, page_size=page_size)
        rows = list(response.result.rows)
        pages = 1
        while not response.complete:
            response = stack.query(
                self.PAGED,
                page_size=page_size,
                continuation=response.continuation,
            )
            rows.extend(response.result.rows)
            pages += 1
        return rows, pages

    def test_paged_equals_one_shot(self, stack):
        # Drain first: a one-shot answer would be HVS-cached, and a
        # subsequent fresh paged request would (correctly) hit the HVS
        # and come back complete in a single response.
        rows, pages = self._drain(stack)
        one_shot = stack.query(self.PAGED)
        assert pages > 1
        assert rows == list(one_shot.result.rows)

    def test_continuation_bypasses_hvs_and_decomposer(
        self, stack, monkeypatch
    ):
        first = stack.query(self.PAGED, page_size=50)
        assert not first.complete
        lookups_before = stack.hvs.stats.hits + stack.hvs.stats.misses
        consulted = []
        monkeypatch.setattr(
            stack.decomposer,
            "try_answer",
            lambda query_text: consulted.append(query_text),
        )
        resumed = stack.query(
            self.PAGED, page_size=50, continuation=first.continuation
        )
        assert resumed.source == "virtuoso"
        assert (
            stack.hvs.stats.hits + stack.hvs.stats.misses == lookups_before
        )
        assert consulted == []

    def test_partial_pages_never_recorded(self, stack, monkeypatch):
        recorded = []
        original = stack.hvs.record

        def spy(query_text, result, runtime_ms, dataset_version):
            recorded.append((query_text, result))
            return original(query_text, result, runtime_ms, dataset_version)

        monkeypatch.setattr(stack.hvs, "record", spy)
        rows, pages = self._drain(stack)
        assert pages > 1
        # Each partial page (and the final continuation-resumed page)
        # was skipped: only fresh single-response answers are offered.
        assert all(len(result.rows) == len(rows) for _, result in recorded)
        assert self.PAGED not in [q for q, _ in recorded]

    def test_racing_update_drops_the_record(self, dbpedia_graph, clock):
        """Regression: a result computed against version N must not be
        cached under version N+1 when the graph moves mid-execution."""
        from repro.rdf import URI

        graph = dbpedia_graph.copy()
        backend = LocalEndpoint(graph, clock=clock)
        hvs = HeavyQueryStore(threshold_ms=0.001, clock=clock)
        racer = ElindaEndpoint(backend, hvs=hvs)

        original = backend.query

        def query_and_mutate(query_text, **kwargs):
            response = original(query_text, **kwargs)
            # The knowledge base updates while the answer is in flight.
            graph.add(URI("http://racer"), URI("http://p"), URI("http://o"))
            return response

        backend.query = query_and_mutate
        racer.query(LIGHT)
        assert LIGHT not in hvs  # stale answer was not cached
        backend.query = original
        racer.query(LIGHT)
        assert LIGHT in hvs  # without the race it is cached


class TestLatencyShape:
    def test_fig4_ordering(self, stack):
        """virtuoso >> decomposer >> hvs — the Fig. 4 story."""
        stack.use_decomposer = False
        virtuoso_ms = stack.query(HEAVY).elapsed_ms
        hvs_ms = stack.query(HEAVY).elapsed_ms
        stack.use_decomposer = True
        stack.hvs.clear()
        decomposer_ms = stack.query(HEAVY).elapsed_ms
        assert virtuoso_ms > 50 * decomposer_ms
        assert decomposer_ms > 5 * hvs_ms
