"""Tests for the version-aware LRU plan cache and its endpoint wiring."""

import pytest

from repro.endpoint.clock import SimClock
from repro.endpoint.local import LocalEndpoint
from repro.perf.plancache import (
    _EVICTIONS_TOTAL,
    _HITS,
    _INVALIDATIONS_TOTAL,
    _MISSES,
    CachedPlan,
    PlanCache,
    build_plan,
)
from repro.rdf import Graph, Literal, URI

EX = "http://example.org/"
QUERY = f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o }}"


@pytest.fixture
def graph():
    g = Graph()
    for i in range(5):
        g.add(URI(f"{EX}s{i}"), URI(f"{EX}p"), Literal(str(i)))
    return g


class TestPlanCache:
    def test_miss_then_hit(self, graph):
        cache = PlanCache()
        hits, misses = _HITS.value, _MISSES.value
        first = cache.get(QUERY, graph=graph)
        assert _MISSES.value == misses + 1 and _HITS.value == hits
        second = cache.get(QUERY, graph=graph)
        assert _HITS.value == hits + 1
        assert second is first
        assert len(cache) == 1

    def test_key_is_whitespace_normalised(self, graph):
        cache = PlanCache()
        first = cache.get(QUERY, graph=graph)
        second = cache.get(
            f"SELECT ?s ?o\nWHERE {{\n  ?s <{EX}p> ?o\n}}", graph=graph
        )
        assert second is first

    def test_version_invalidation_rederives_plan(self, graph):
        """Acceptance criterion: plans are re-derived after a graph update."""
        cache = PlanCache()
        first = cache.get(QUERY, graph=graph)
        assert first.stats_version == graph.version
        invalidations = _INVALIDATIONS_TOTAL.value
        graph.add(URI(f"{EX}s9"), URI(f"{EX}p"), Literal("9"))
        second = cache.get(QUERY, graph=graph)
        assert second is not first
        assert second.stats_version == graph.version
        assert _INVALIDATIONS_TOTAL.value == invalidations + 1

    def test_structural_plans_survive_updates(self, graph):
        cache = PlanCache()
        first = cache.get(QUERY, graph=None, optimize=False)
        assert first.stats_version is None
        graph.add(URI(f"{EX}s9"), URI(f"{EX}p"), Literal("9"))
        assert cache.get(QUERY, graph=graph, optimize=False) is first

    def test_lru_eviction_at_capacity(self, graph):
        cache = PlanCache(capacity=2)
        evictions = _EVICTIONS_TOTAL.value
        q1 = f"SELECT ?s WHERE {{ ?s <{EX}p1> ?o }}"
        q2 = f"SELECT ?s WHERE {{ ?s <{EX}p2> ?o }}"
        q3 = f"SELECT ?s WHERE {{ ?s <{EX}p3> ?o }}"
        cache.get(q1)
        cache.get(q2)
        cache.get(q1)  # refresh q1; q2 becomes the LRU entry
        cache.get(q3)
        assert len(cache) == 2
        assert _EVICTIONS_TOTAL.value == evictions + 1
        assert q1 in cache and q3 in cache and q2 not in cache

    def test_construct_falls_back_to_ast_only(self):
        cache = PlanCache()
        plan = cache.get(
            f"CONSTRUCT {{ ?s <{EX}q> ?o }} WHERE {{ ?s <{EX}p> ?o }}"
        )
        assert plan.algebra is None and plan.raw_algebra is None
        assert plan.query is not None

    def test_empty_cache_is_truthy(self):
        # Regression: LocalEndpoint once discarded a fresh cache because
        # an empty PlanCache was falsy through __len__.
        assert bool(PlanCache())
        assert len(PlanCache()) == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_clear(self, graph):
        cache = PlanCache()
        cache.get(QUERY, graph=graph)
        cache.clear()
        assert len(cache) == 0


class TestBuildPlan:
    def test_optimized_plan_records_version(self, graph):
        plan = build_plan(QUERY, graph=graph)
        assert plan.stats_version == graph.version
        assert plan.algebra is not None
        assert plan.raw_algebra is not None

    def test_unoptimized_plan_shares_raw(self):
        plan = build_plan(QUERY, optimize=False)
        assert plan.algebra is plan.raw_algebra
        assert plan.stats_version is None


class TestEndpointWiring:
    def test_default_endpoint_has_private_cache(self, graph):
        endpoint = LocalEndpoint(graph, clock=SimClock())
        assert isinstance(endpoint.plan_cache, PlanCache)
        hits = _HITS.value
        first = endpoint.query(QUERY)
        second = endpoint.query(QUERY)
        assert _HITS.value == hits + 1
        assert [dict(r) for r in second.result.rows] == [
            dict(r) for r in first.result.rows
        ]

    def test_plan_cache_false_disables_caching(self, graph):
        endpoint = LocalEndpoint(graph, clock=SimClock(), plan_cache=False)
        assert endpoint.plan_cache is None
        hits = _HITS.value
        endpoint.query(QUERY)
        endpoint.query(QUERY)
        assert _HITS.value == hits

    def test_shared_cache_instance(self, graph):
        shared = PlanCache()
        a = LocalEndpoint(graph, clock=SimClock(), plan_cache=shared)
        b = LocalEndpoint(graph, clock=SimClock(), plan_cache=shared)
        a.query(QUERY)
        hits = _HITS.value
        b.query(QUERY)
        assert _HITS.value == hits + 1

    def test_unoptimized_endpoint_matches_optimized(self, graph):
        plain = LocalEndpoint(
            graph, clock=SimClock(), optimize=False, plan_cache=False
        )
        tuned = LocalEndpoint(graph, clock=SimClock())
        query = (
            f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o FILTER(?o != \"1\") }} "
            "ORDER BY ?s ?o LIMIT 3"
        )
        before = plain.query(query).result.rows
        after = tuned.query(query).result.rows
        assert after == before

    def test_endpoint_replans_after_update(self, graph):
        endpoint = LocalEndpoint(graph, clock=SimClock())
        assert len(endpoint.query(QUERY).result.rows) == 5
        graph.add(URI(f"{EX}s9"), URI(f"{EX}p"), Literal("9"))
        assert len(endpoint.query(QUERY).result.rows) == 6
