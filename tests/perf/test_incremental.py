"""Unit tests for incremental evaluation."""

import pytest

from repro.core import Direction, MemberPattern, property_chart_query
from repro.datasets.dbpedia import OWL_THING
from repro.endpoint import SimClock
from repro.perf import IncrementalConfig, IncrementalEvaluator
from repro.rdf import Graph, Literal, URI
from repro.sparql import SparqlEvalError, evaluate

CHART_QUERY = property_chart_query(MemberPattern.of_type(OWL_THING))
SIMPLE_COUNT = (
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
    "SELECT ?t (COUNT(?s) AS ?n) WHERE { ?s rdf:type ?t } GROUP BY ?t"
)


def rows_as_map(result, key, *values):
    return {
        row[key]: tuple(int(row[v].lexical) for v in values) for row in result.rows
    }


class TestConfig:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            IncrementalConfig(window_size=0)

    def test_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            IncrementalConfig(max_steps=0)


class TestConvergence:
    def test_subject_windows_converge_to_oneshot(self, dbpedia_graph):
        """The merged final chart equals the one-shot evaluation
        (exactness of subject-aligned windows)."""
        one_shot = evaluate(dbpedia_graph, SIMPLE_COUNT)
        incremental = IncrementalEvaluator(
            dbpedia_graph, IncrementalConfig(window_size=1500)
        )
        final = incremental.run_to_completion(SIMPLE_COUNT)
        assert final.complete
        assert rows_as_map(final.result, "t", "n") == rows_as_map(
            one_shot, "t", "n"
        )

    def test_heavy_chart_query_converges(self, dbpedia_graph):
        one_shot = evaluate(dbpedia_graph, CHART_QUERY)
        incremental = IncrementalEvaluator(
            dbpedia_graph, IncrementalConfig(window_size=4000)
        )
        final = incremental.run_to_completion(CHART_QUERY)
        assert rows_as_map(final.result, "p", "count", "triples") == rows_as_map(
            one_shot, "p", "count", "triples"
        )

    def test_single_window_equals_oneshot(self, philosophy_graph):
        evaluator = IncrementalEvaluator(
            philosophy_graph, IncrementalConfig(window_size=10_000)
        )
        final = evaluator.run_to_completion(SIMPLE_COUNT)
        assert final.step == 1
        assert final.complete
        assert rows_as_map(final.result, "t", "n") == rows_as_map(
            evaluate(philosophy_graph, SIMPLE_COUNT), "t", "n"
        )

    def test_counts_grow_monotonically(self, dbpedia_graph):
        evaluator = IncrementalEvaluator(
            dbpedia_graph, IncrementalConfig(window_size=2000)
        )
        previous_total = 0
        for partial in evaluator.run(SIMPLE_COUNT):
            total = sum(
                int(row["n"].lexical) for row in partial.result.rows
            )
            assert total >= previous_total
            previous_total = total


class TestStepCap:
    def test_k_steps_cap(self, dbpedia_graph):
        evaluator = IncrementalEvaluator(
            dbpedia_graph, IncrementalConfig(window_size=1000, max_steps=2)
        )
        partials = list(evaluator.run(SIMPLE_COUNT))
        assert len(partials) == 2
        assert not partials[-1].complete

    def test_first_window_latency_below_full(self, dbpedia_graph):
        """Time-to-first-chart is the point of incremental evaluation."""
        full = IncrementalEvaluator(
            dbpedia_graph, IncrementalConfig(window_size=10**9)
        ).run_to_completion(CHART_QUERY)
        first = next(
            IncrementalEvaluator(
                dbpedia_graph, IncrementalConfig(window_size=1000)
            ).run(CHART_QUERY)
        )
        assert first.elapsed_ms < full.elapsed_ms

    def test_cumulative_tracks_clock(self, dbpedia_graph):
        clock = SimClock()
        evaluator = IncrementalEvaluator(
            dbpedia_graph, IncrementalConfig(window_size=3000), clock=clock
        )
        final = evaluator.run_to_completion(SIMPLE_COUNT)
        assert clock.now_ms == pytest.approx(final.cumulative_ms)


class TestScope:
    def test_ask_rejected(self, philosophy_graph):
        evaluator = IncrementalEvaluator(philosophy_graph)
        with pytest.raises(SparqlEvalError):
            list(evaluator.run("ASK { ?s ?p ?o }"))

    def test_avg_rejected_as_non_mergeable(self, philosophy_graph):
        evaluator = IncrementalEvaluator(philosophy_graph)
        with pytest.raises(SparqlEvalError):
            list(
                evaluator.run(
                    "SELECT (AVG(?o) AS ?a) WHERE { ?s ?p ?o }"
                )
            )

    def test_non_aggregate_query_unions_rows(self, philosophy_graph):
        evaluator = IncrementalEvaluator(
            philosophy_graph, IncrementalConfig(window_size=5)
        )
        final = evaluator.run_to_completion(
            "PREFIX dbo: <http://dbpedia.org/ontology/>\n"
            "SELECT ?s WHERE { ?s a dbo:Philosopher }"
        )
        one_shot = evaluate(
            philosophy_graph,
            "PREFIX dbo: <http://dbpedia.org/ontology/>\n"
            "SELECT ?s WHERE { ?s a dbo:Philosopher }",
        )
        assert {row["s"] for row in final.result.rows} == {
            row["s"] for row in one_shot.rows
        }

    def test_empty_graph_raises(self):
        evaluator = IncrementalEvaluator(Graph())
        with pytest.raises(SparqlEvalError):
            evaluator.run_to_completion(SIMPLE_COUNT)

    def test_triple_windows_mode_runs(self, philosophy_graph):
        """The paper's literal raw-triple windows: partials approximate,
        still one partial per window."""
        evaluator = IncrementalEvaluator(
            philosophy_graph,
            IncrementalConfig(window_size=7, by_subject=False),
        )
        partials = list(evaluator.run(SIMPLE_COUNT))
        assert len(partials) == (len(philosophy_graph) + 6) // 7
        assert partials[-1].complete


EX = "http://example.org/"
XSD_DECIMAL = "http://www.w3.org/2001/XMLSchema#decimal"
XSD_DOUBLE = "http://www.w3.org/2001/XMLSchema#double"
XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"

SUM_QUERY = "SELECT (SUM(?o) AS ?s) WHERE { ?x <http://example.org/p> ?o }"
MINMAX_QUERY = (
    "SELECT (MIN(?o) AS ?lo) (MAX(?o) AS ?hi)"
    " WHERE { ?x <http://example.org/p> ?o }"
)


def _value_graph(*literals):
    graph = Graph()
    for index, literal in enumerate(literals):
        graph.add(URI(f"{EX}s{index}"), URI(f"{EX}p"), literal)
    return graph


class TestMergeValue:
    """Regressions for the PR 9 merge fixes: SUM over non-integer
    numerics and numeric (not lexicographic) MIN/MAX ordering."""

    def test_sum_keeps_decimal_contributions(self):
        # Before the fix, any non-integer literal arriving mid-merge
        # reset the accumulated total to the new value.  Binary-exact
        # decimals (halves/quarters) make the float sum reproducible.
        graph = _value_graph(
            Literal("1.5", datatype=XSD_DECIMAL),
            Literal("2.25", datatype=XSD_DECIMAL),
            Literal("3", datatype=XSD_INTEGER),
        )
        evaluator = IncrementalEvaluator(graph, IncrementalConfig(window_size=1))
        final = evaluator.run_to_completion(SUM_QUERY)
        assert final.result.rows == evaluate(graph, SUM_QUERY).rows
        (row,) = final.result.rows
        assert row["s"].lexical == "6.75"
        assert row["s"].datatype == XSD_DOUBLE

    def test_sum_all_integers_stays_integer_typed(self):
        graph = _value_graph(
            Literal("2", datatype=XSD_INTEGER),
            Literal("40", datatype=XSD_INTEGER),
        )
        evaluator = IncrementalEvaluator(graph, IncrementalConfig(window_size=1))
        (row,) = evaluator.run_to_completion(SUM_QUERY).result.rows
        assert row["s"].lexical == "42"
        assert row["s"].datatype == XSD_INTEGER

    def test_sum_unparseable_partial_keeps_accumulated_total(self):
        evaluator = IncrementalEvaluator(Graph())
        old = Literal("6", datatype=XSD_INTEGER)
        merged = evaluator._merge_value("sum", old, Literal("not a number"))
        assert merged == old

    def test_min_max_numeric_not_lexicographic(self):
        # Lexicographic sort_key ranks "10" below "9"; SPARQL value
        # order must pick 9 as the minimum and 10 as the maximum.
        graph = _value_graph(
            Literal("9", datatype=XSD_INTEGER),
            Literal("10", datatype=XSD_INTEGER),
        )
        evaluator = IncrementalEvaluator(graph, IncrementalConfig(window_size=1))
        final = evaluator.run_to_completion(MINMAX_QUERY)
        assert final.result.rows == evaluate(graph, MINMAX_QUERY).rows
        (row,) = final.result.rows
        assert row["lo"].lexical == "9"
        assert row["hi"].lexical == "10"

    def test_min_max_across_mixed_numeric_datatypes(self):
        graph = _value_graph(
            Literal("1.5", datatype=XSD_DECIMAL),
            Literal("3", datatype=XSD_INTEGER),
            Literal("2.5e0", datatype=XSD_DOUBLE),
        )
        evaluator = IncrementalEvaluator(graph, IncrementalConfig(window_size=1))
        final = evaluator.run_to_completion(MINMAX_QUERY)
        assert final.result.rows == evaluate(graph, MINMAX_QUERY).rows


class TestStreamingWindows:
    """run() must hold one window of lookahead, never the whole list."""

    def test_window_stream_is_pulled_lazily(self, philosophy_graph, monkeypatch):
        import repro.perf.incremental as incremental_module

        real_maker = incremental_module._subject_windows
        pulled = []

        def counting_maker(graph, window_size):
            for window in real_maker(graph, window_size):
                pulled.append(len(window))
                yield window

        monkeypatch.setattr(
            incremental_module, "_subject_windows", counting_maker
        )
        evaluator = IncrementalEvaluator(
            philosophy_graph, IncrementalConfig(window_size=5)
        )
        stream = evaluator.run(SIMPLE_COUNT)
        first = next(stream)
        # Exactly the current window plus the one-ahead completeness
        # peek have been materialized — not the full window list.
        assert len(pulled) == 2
        assert not first.complete
        rest = list(stream)
        assert rest[-1].complete
        total = len(pulled)
        assert total == first.windows_consumed + len(rest)

    def test_streamed_final_matches_one_shot(self, philosophy_graph):
        evaluator = IncrementalEvaluator(
            philosophy_graph, IncrementalConfig(window_size=5)
        )
        final = evaluator.run_to_completion(SIMPLE_COUNT)
        assert rows_as_map(final.result, "t", "n") == rows_as_map(
            evaluate(philosophy_graph, SIMPLE_COUNT), "t", "n"
        )
