"""Unit tests for the heavy-query store."""

import pytest

from repro.endpoint import SimClock
from repro.perf import (
    DEFAULT_HEAVY_THRESHOLD_MS,
    HeavyQueryStore,
    normalize_query,
)
from repro.rdf import Literal
from repro.sparql.results import AskResult, SelectResult

QUERY = "SELECT ?s WHERE { ?s ?p ?o }"
RESULT = SelectResult(["s"], [{"s": Literal("x")}])


class TestNormalization:
    def test_collapses_whitespace(self):
        assert normalize_query("SELECT   ?s\nWHERE  { ?s ?p ?o }") == normalize_query(
            "SELECT ?s WHERE { ?s ?p ?o }"
        )

    def test_strips(self):
        assert normalize_query("  ASK {}  ") == "ASK {}"


class TestNormalizationQuoteAware:
    """Regression: collapsing whitespace *inside* string literals made
    distinct queries share a cache key, so an HVS hit served the wrong
    result."""

    def test_literal_whitespace_distinguishes_queries(self):
        double_space = 'SELECT ?s WHERE { ?s ?p ?l FILTER(?l = "a  b") }'
        single_space = 'SELECT ?s WHERE { ?s ?p ?l FILTER(?l = "a b") }'
        assert normalize_query(double_space) != normalize_query(single_space)

    def test_distinct_literals_do_not_collide_in_the_store(self):
        hvs = HeavyQueryStore(clock=SimClock())
        double_space = 'SELECT ?s WHERE { ?s ?p ?l FILTER(?l = "a  b") }'
        single_space = 'SELECT ?s WHERE { ?s ?p ?l FILTER(?l = "a b") }'
        result_double = SelectResult(["s"], [{"s": Literal("double")}])
        hvs.record(double_space, result_double, runtime_ms=5000, dataset_version=1)
        assert hvs.lookup(single_space, dataset_version=1) is None
        hit = hvs.lookup(double_space, dataset_version=1)
        assert hit is not None and hit.result is result_double

    def test_whitespace_outside_literals_still_collapses(self):
        assert normalize_query(
            'SELECT   ?s\nWHERE  { ?s ?p  "a  b" }'
        ) == normalize_query('SELECT ?s WHERE { ?s ?p "a  b" }')

    def test_single_quoted_literals(self):
        assert normalize_query("ASK { ?s ?p 'x  y' }") != normalize_query(
            "ASK { ?s ?p 'x y' }"
        )

    def test_triple_quoted_literals(self):
        long_form = 'ASK { ?s ?p """line\n  indented""" }'
        assert '"""line\n  indented"""' in normalize_query(long_form)

    def test_escaped_quote_does_not_end_the_literal(self):
        query = 'ASK { ?s ?p "two  \\" spaces" }'
        assert '"two  \\" spaces"' in normalize_query(query)

    def test_quotes_inside_literals_do_not_open_new_literals(self):
        # The apostrophe inside a double-quoted literal is plain text;
        # whitespace after the literal must still collapse.
        query = 'ASK { ?s ?p "it\'s"   . }'
        assert normalize_query(query) == 'ASK { ?s ?p "it\'s" . }'

    def test_unterminated_literal_swallows_the_tail(self):
        assert normalize_query('ASK { ?s ?p "open  end') == 'ASK { ?s ?p "open  end'


class TestHeavinessThreshold:
    def test_default_threshold_is_one_second(self):
        assert DEFAULT_HEAVY_THRESHOLD_MS == 1000.0

    def test_light_queries_not_stored(self):
        hvs = HeavyQueryStore()
        assert not hvs.record(QUERY, RESULT, runtime_ms=500, dataset_version=1)
        assert QUERY not in hvs
        assert hvs.stats.rejected_light == 1

    def test_heavy_queries_stored(self):
        hvs = HeavyQueryStore()
        assert hvs.record(QUERY, RESULT, runtime_ms=5000, dataset_version=1)
        assert QUERY in hvs
        assert len(hvs) == 1

    def test_exactly_threshold_is_not_heavy(self):
        # Paper: "queries with runtime *bigger* than one second".
        hvs = HeavyQueryStore()
        assert not hvs.record(QUERY, RESULT, runtime_ms=1000.0, dataset_version=1)

    def test_custom_threshold(self):
        hvs = HeavyQueryStore(threshold_ms=10)
        assert hvs.record(QUERY, RESULT, runtime_ms=11, dataset_version=1)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            HeavyQueryStore(threshold_ms=0)

    def test_non_result_rejected(self):
        hvs = HeavyQueryStore()
        with pytest.raises(TypeError):
            hvs.record(QUERY, {"not": "a result"}, 5000, 1)


class TestLookup:
    def test_hit_returns_same_result(self):
        hvs = HeavyQueryStore()
        hvs.record(QUERY, RESULT, 5000, dataset_version=1)
        response = hvs.lookup(QUERY, dataset_version=1)
        assert response is not None
        assert response.result is RESULT
        assert response.source == "hvs"

    def test_hit_is_whitespace_insensitive(self):
        hvs = HeavyQueryStore()
        hvs.record(QUERY, RESULT, 5000, dataset_version=1)
        assert hvs.lookup("SELECT  ?s  WHERE { ?s ?p ?o }", 1) is not None

    def test_miss_returns_none(self):
        hvs = HeavyQueryStore()
        assert hvs.lookup(QUERY, dataset_version=1) is None
        assert hvs.stats.misses == 1

    def test_hit_latency_is_fast_and_advances_clock(self):
        clock = SimClock()
        hvs = HeavyQueryStore(clock=clock)
        hvs.record(QUERY, RESULT, 5000, dataset_version=1)
        response = hvs.lookup(QUERY, 1)
        assert response.elapsed_ms < 100  # "around 80 milliseconds"
        assert clock.now_ms == response.elapsed_ms

    def test_ask_results_cacheable(self):
        hvs = HeavyQueryStore()
        hvs.record("ASK { ?s ?p ?o }", AskResult(True), 5000, 1)
        response = hvs.lookup("ASK { ?s ?p ?o }", 1)
        assert response.result.value is True

    def test_hit_counters(self):
        hvs = HeavyQueryStore()
        hvs.record(QUERY, RESULT, 5000, 1)
        hvs.lookup(QUERY, 1)
        hvs.lookup(QUERY, 1)
        hvs.lookup("SELECT ?x WHERE { ?x ?y ?z }", 1)
        assert hvs.stats.hits == 2
        assert hvs.stats.misses == 1
        assert 0 < hvs.stats.hit_rate < 1
        assert hvs.entries()[normalize_query(QUERY)].hits == 2


class TestInvalidation:
    def test_cleared_on_version_change(self):
        # "The HVS is cleared on any update to the eLinda knowledge bases."
        hvs = HeavyQueryStore()
        hvs.record(QUERY, RESULT, 5000, dataset_version=1)
        assert hvs.lookup(QUERY, dataset_version=2) is None
        assert len(hvs) == 0
        assert hvs.stats.invalidations == 1

    def test_same_version_keeps_entries(self):
        hvs = HeavyQueryStore()
        hvs.record(QUERY, RESULT, 5000, dataset_version=7)
        assert hvs.lookup(QUERY, dataset_version=7) is not None

    def test_explicit_clear(self):
        hvs = HeavyQueryStore()
        hvs.record(QUERY, RESULT, 5000, 1)
        hvs.clear()
        assert len(hvs) == 0

    def test_record_after_version_change_clears_old(self):
        hvs = HeavyQueryStore()
        hvs.record(QUERY, RESULT, 5000, dataset_version=1)
        hvs.record("ASK { ?a ?b ?c }", AskResult(True), 5000, dataset_version=2)
        assert QUERY not in hvs
        assert len(hvs) == 1
