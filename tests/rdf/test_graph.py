"""Unit tests for the indexed graph store."""

import pytest

from repro.rdf import Graph, Literal, Triple, TriplePattern, URI

EX = "http://example.org/"


def uri(name: str) -> URI:
    return URI(EX + name)


@pytest.fixture()
def graph() -> Graph:
    g = Graph()
    g.add(uri("a"), uri("knows"), uri("b"))
    g.add(uri("a"), uri("knows"), uri("c"))
    g.add(uri("b"), uri("knows"), uri("c"))
    g.add(uri("a"), uri("name"), Literal("Alice"))
    g.add(uri("c"), uri("name"), Literal("Carol"))
    return g


class TestMutation:
    def test_add_returns_true_for_new(self):
        g = Graph()
        assert g.add(uri("s"), uri("p"), uri("o")) is True
        assert g.add(uri("s"), uri("p"), uri("o")) is False
        assert len(g) == 1

    def test_version_increments_on_change_only(self):
        g = Graph()
        v0 = g.version
        g.add(uri("s"), uri("p"), uri("o"))
        v1 = g.version
        assert v1 > v0
        g.add(uri("s"), uri("p"), uri("o"))  # duplicate
        assert g.version == v1

    def test_remove(self, graph):
        assert graph.remove(uri("a"), uri("knows"), uri("b")) is True
        assert graph.remove(uri("a"), uri("knows"), uri("b")) is False
        assert len(graph) == 4
        assert (uri("a"), uri("knows"), uri("b")) not in graph

    def test_remove_pattern(self, graph):
        removed = graph.remove_pattern(predicate=uri("knows"))
        assert removed == 3
        assert len(graph) == 2

    def test_clear(self, graph):
        graph.clear()
        assert len(graph) == 0
        assert not graph

    def test_type_validation(self):
        g = Graph()
        with pytest.raises(TypeError):
            g.add(Literal("x"), uri("p"), uri("o"))  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            g.add(uri("s"), Literal("p"), uri("o"))  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            g.add(uri("s"), uri("p"), object())  # type: ignore[arg-type]

    def test_update_counts_new_triples(self, graph):
        extra = [
            Triple(uri("a"), uri("knows"), uri("b")),  # duplicate
            Triple(uri("d"), uri("knows"), uri("a")),  # new
        ]
        assert graph.update(extra) == 1


class TestPatternMatching:
    @pytest.mark.parametrize(
        "pattern,expected",
        [
            ((None, None, None), 5),
            (("a", None, None), 3),
            ((None, "knows", None), 3),
            ((None, None, "c"), 2),
            (("a", "knows", None), 2),
            (("a", None, "b"), 1),
            ((None, "knows", "c"), 2),
            (("a", "knows", "b"), 1),
            (("zz", None, None), 0),
        ],
    )
    def test_triples_counts(self, graph, pattern, expected):
        s, p, o = pattern
        subject = uri(s) if s else None
        predicate = uri(p) if p else None
        object = uri(o) if o else None
        assert len(list(graph.triples(subject, predicate, object))) == expected
        assert graph.count(subject, predicate, object) == expected

    def test_contains(self, graph):
        assert (uri("a"), uri("knows"), uri("b")) in graph
        assert (uri("a"), uri("knows"), uri("z")) not in graph
        assert "not a triple" not in graph

    def test_match_with_triple_pattern(self, graph):
        pattern = TriplePattern(None, uri("name"), None)
        found = list(graph.match(pattern))
        assert len(found) == 2
        assert all(pattern.matches(t) for t in found)

    def test_iteration_yields_all(self, graph):
        assert len(list(graph)) == 5

    def test_all_matches_consistent_with_pattern_filter(self, graph):
        everything = list(graph.triples())
        for s, p, o in [
            (uri("a"), None, None),
            (None, uri("knows"), None),
            (None, None, Literal("Alice")),
            (uri("a"), uri("knows"), None),
        ]:
            expected = {
                t
                for t in everything
                if TriplePattern(s, p, o).matches(t)
            }
            assert set(graph.triples(s, p, o)) == expected


class TestAccessors:
    def test_subjects(self, graph):
        assert set(graph.subjects(uri("knows"), uri("c"))) == {uri("a"), uri("b")}
        assert set(graph.subjects(predicate=uri("name"))) == {uri("a"), uri("c")}

    def test_predicates(self, graph):
        assert set(graph.predicates(subject=uri("a"))) == {uri("knows"), uri("name")}
        assert set(graph.predicates(uri("a"), uri("b"))) == {uri("knows")}
        assert set(graph.predicates()) == {uri("knows"), uri("name")}

    def test_objects(self, graph):
        assert set(graph.objects(uri("a"), uri("knows"))) == {uri("b"), uri("c")}
        assert Literal("Alice") in set(graph.objects(subject=uri("a")))

    def test_value(self, graph):
        assert graph.value(uri("a"), uri("name"), None) == Literal("Alice")
        assert graph.value(None, uri("name"), Literal("Alice")) == uri("a")
        assert graph.value(uri("zz"), uri("name"), None) is None

    def test_value_requires_exactly_one_wildcard(self, graph):
        with pytest.raises(ValueError):
            graph.value(uri("a"), None, None)
        with pytest.raises(ValueError):
            graph.value(uri("a"), uri("name"), Literal("Alice"))

    def test_uris_and_literals(self, graph):
        uris = graph.uris()
        assert uri("a") in uris and uri("knows") in uris
        assert graph.literals() == {Literal("Alice"), Literal("Carol")}


class TestWindows:
    def test_windows_partition_the_graph(self, graph):
        windows = list(graph.windows(2))
        assert sum(len(w) for w in windows) == len(graph)
        union = set()
        for window in windows:
            window_set = set(window)
            assert not (union & window_set), "windows must be disjoint"
            union |= window_set
        assert union == set(graph)

    def test_window_sizes(self, graph):
        windows = list(graph.windows(2))
        assert [len(w) for w in windows] == [2, 2, 1]

    def test_window_size_must_be_positive(self, graph):
        with pytest.raises(ValueError):
            list(graph.windows(0))

    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.add(uri("x"), uri("knows"), uri("y"))
        assert len(clone) == len(graph) + 1
