"""Unit tests for Triple and TriplePattern."""

import pytest

from repro.rdf import Literal, Triple, TriplePattern, URI

S = URI("http://ex/s")
P = URI("http://ex/p")
O = URI("http://ex/o")


class TestTriple:
    def test_namedtuple_fields(self):
        triple = Triple(S, P, O)
        assert triple.subject is S
        assert triple.predicate is P
        assert triple.object is O
        assert tuple(triple) == (S, P, O)

    def test_n3(self):
        assert Triple(S, P, Literal("x")).n3() == '<http://ex/s> <http://ex/p> "x" .'

    def test_create_validates_positions(self):
        with pytest.raises(TypeError):
            Triple.create(Literal("bad"), P, O)
        with pytest.raises(TypeError):
            Triple.create(S, Literal("bad"), O)
        with pytest.raises(TypeError):
            Triple.create(S, P, object())
        assert Triple.create(S, P, O) == Triple(S, P, O)

    def test_equality_and_hash(self):
        assert Triple(S, P, O) == Triple(S, P, O)
        assert hash(Triple(S, P, O)) == hash(Triple(S, P, O))
        assert Triple(S, P, O) != Triple(O, P, S)


class TestTriplePattern:
    def test_full_wildcard_matches_anything(self):
        pattern = TriplePattern(None, None, None)
        assert pattern.matches(Triple(S, P, O))
        assert pattern.bound_positions == 0

    def test_partial_patterns(self):
        pattern = TriplePattern(S, None, None)
        assert pattern.matches(Triple(S, P, O))
        assert not pattern.matches(Triple(O, P, S))
        assert pattern.bound_positions == 1

    def test_fully_bound(self):
        pattern = TriplePattern(S, P, O)
        assert pattern.bound_positions == 3
        assert pattern.matches(Triple(S, P, O))
        assert not pattern.matches(Triple(S, P, Literal("x")))

    def test_str_rendering(self):
        pattern = TriplePattern(S, None, None)
        text = str(pattern)
        assert "<http://ex/s>" in text and "?" in text
