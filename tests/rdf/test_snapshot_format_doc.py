"""docs/SNAPSHOT_FORMAT.md is a contract: its worked hex example must
be a real, openable snapshot, byte-identical to what the builder emits
for the example graph today."""

import pathlib
import re
import struct

from repro.rdf import BNode, Graph, Literal, URI
from repro.rdf.snapshot import (
    FORMAT_VERSION,
    HEADER_SIZE,
    MAGIC,
    SnapshotGraph,
    build_snapshot_bytes,
)

DOC = (
    pathlib.Path(__file__).resolve().parents[2] / "docs" / "SNAPSHOT_FORMAT.md"
)

_DUMP_LINE = re.compile(
    r"^([0-9a-f]{8})  ((?:[0-9a-f]{2} ?)+?) +\|.*\|$"
)


def example_graph() -> Graph:
    # The exact insertion order the spec's worked example prescribes.
    graph = Graph()
    graph.add(URI("e:s"), URI("e:p"), URI("e:o"))
    graph.add(URI("e:s"), URI("e:p"), Literal("v"))
    graph.add(BNode("b"), URI("e:p"), URI("e:o"))
    return graph


def doc_example_bytes() -> bytes:
    """The worked example, parsed out of the spec's hexdump block."""
    text = DOC.read_text(encoding="utf-8")
    match = re.search(r"```hexdump\n(.*?)```", text, re.DOTALL)
    assert match, "no ```hexdump block in docs/SNAPSHOT_FORMAT.md"
    data = bytearray()
    for line in match.group(1).splitlines():
        parsed = _DUMP_LINE.match(line.strip())
        assert parsed, f"unparseable dump line: {line!r}"
        offset = int(parsed.group(1), 16)
        assert offset == len(data), f"dump offset gap at {line!r}"
        data += bytes.fromhex(parsed.group(2).replace(" ", ""))
    return bytes(data)


def test_doc_exists():
    assert DOC.is_file()


def test_example_bytes_match_a_fresh_build():
    assert doc_example_bytes() == build_snapshot_bytes(example_graph())


def test_example_bytes_open_as_a_valid_snapshot():
    snap = SnapshotGraph.from_bytes(doc_example_bytes())
    graph = example_graph()
    assert len(snap) == 3
    assert list(snap.triples()) == list(graph.triples())
    assert snap.dictionary.size_by_kind() == {
        "uri": 3, "bnode": 1, "literal": 1,
    }
    stats = snap.statistics()
    assert stats.total_triples == 3
    assert stats.distinct_subjects == 2
    assert stats.distinct_objects == 2
    assert stats.predicate_triples == {URI("e:p"): 3}
    assert stats.class_instances == {}


def test_header_fields_match_the_spec_tables():
    data = doc_example_bytes()
    (
        magic,
        version,
        flags,
        payload_len,
        _checksum,
        reserved,
        triple_count,
        n_uri,
        n_bnode,
        n_literal,
    ) = struct.unpack_from("<8sIIQIIQQQQ", data, 0)
    assert magic == MAGIC == b"ELSNAP01"
    assert version == FORMAT_VERSION == 1
    assert flags == 0 and reserved == 0
    assert HEADER_SIZE + payload_len == len(data) == 696
    assert (triple_count, n_uri, n_bnode, n_literal) == (3, 3, 1, 1)


def test_sections_are_aligned_and_ordered_as_specified():
    data = doc_example_bytes()
    previous_end = HEADER_SIZE + 13 * 16
    for index in range(13):
        offset, length = struct.unpack_from("<QQ", data, HEADER_SIZE + 16 * index)
        assert offset % 8 == 0
        assert offset >= previous_end
        assert offset + length <= len(data)
        previous_end = offset + length
    # The spec's guided read: uri_heap holds the three records back to
    # back, and the literal record is flags + aux_len + lexical.
    uri_off, uri_len = struct.unpack_from("<QQ", data, HEADER_SIZE + 16 * 1)
    assert data[uri_off : uri_off + uri_len] == b"e:se:pe:o"
    lit_off, lit_len = struct.unpack_from("<QQ", data, HEADER_SIZE + 16 * 7)
    assert data[lit_off : lit_off + lit_len] == b"\x00\x00\x00\x00\x00v"
