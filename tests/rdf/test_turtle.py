"""Unit tests for the Turtle parser and serialiser."""

import pytest

from repro.rdf import (
    BNode,
    Graph,
    Literal,
    RDF,
    TurtleError,
    URI,
    parse_turtle,
    serialize_turtle,
)

EX = "http://example.org/"


class TestParser:
    def test_prefix_and_qname(self):
        g = parse_turtle("@prefix ex: <http://example.org/> .\nex:a ex:p ex:b .")
        assert (URI(EX + "a"), URI(EX + "p"), URI(EX + "b")) in g

    def test_sparql_style_prefix(self):
        g = parse_turtle("PREFIX ex: <http://example.org/>\nex:a ex:p ex:b .")
        assert len(g) == 1

    def test_a_shorthand(self):
        g = parse_turtle("@prefix ex: <http://example.org/> .\nex:a a ex:C .")
        triple = next(iter(g))
        assert triple.predicate == RDF.term("type")

    def test_semicolon_and_comma(self):
        g = parse_turtle(
            "@prefix ex: <http://example.org/> .\n"
            "ex:a ex:p ex:b, ex:c ; ex:q ex:d ."
        )
        assert len(g) == 3

    def test_trailing_semicolon(self):
        g = parse_turtle(
            "@prefix ex: <http://example.org/> .\nex:a ex:p ex:b ; ."
        )
        assert len(g) == 1

    def test_literals(self):
        g = parse_turtle(
            '@prefix ex: <http://example.org/> .\n'
            'ex:a ex:s "text" ; ex:l "hi"@en ; ex:i 42 ; ex:d 3.14 ;'
            ' ex:e 1e3 ; ex:t true ; ex:f false .'
        )
        objects = {t.object for t in g}
        assert Literal("text") in objects
        assert Literal("hi", language="en") in objects
        assert any(
            isinstance(o, Literal) and o.lexical == "42" and o.is_numeric
            for o in objects
        )
        assert any(isinstance(o, Literal) and o.lexical == "true" for o in objects)

    def test_negative_number(self):
        g = parse_turtle("@prefix ex: <http://ex/> .\nex:a ex:y -428 .")
        (triple,) = list(g)
        assert triple.object.lexical == "-428"

    def test_typed_literal_with_qname_datatype(self):
        g = parse_turtle(
            "@prefix ex: <http://ex/> .\n"
            "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
            'ex:a ex:p "5"^^xsd:integer .'
        )
        (triple,) = list(g)
        assert triple.object.datatype.endswith("#integer")

    def test_long_string(self):
        g = parse_turtle(
            '@prefix ex: <http://ex/> .\nex:a ex:p """multi\nline""" .'
        )
        (triple,) = list(g)
        assert triple.object.lexical == "multi\nline"

    def test_bnode_label(self):
        g = parse_turtle("@prefix ex: <http://ex/> .\n_:n ex:p ex:b .")
        (triple,) = list(g)
        assert triple.subject == BNode("n")

    def test_anonymous_bnode_with_properties(self):
        g = parse_turtle(
            "@prefix ex: <http://ex/> .\nex:a ex:p [ ex:q ex:b ] ."
        )
        assert len(g) == 2

    def test_comments_ignored(self):
        g = parse_turtle(
            "# top comment\n@prefix ex: <http://ex/> .\n"
            "ex:a ex:p ex:b . # trailing\n"
        )
        assert len(g) == 1

    def test_base_resolution(self):
        g = parse_turtle("@base <http://ex/> .\n<a> <p> <b> .")
        (triple,) = list(g)
        assert triple.subject == URI("http://ex/a")

    def test_unknown_prefix_raises(self):
        with pytest.raises(TurtleError):
            parse_turtle("ex:a ex:p ex:b .")

    def test_collections_unsupported_with_clear_error(self):
        with pytest.raises(TurtleError) as excinfo:
            parse_turtle("@prefix ex: <http://ex/> .\nex:a ex:p (1 2) .")
        assert "collection" in str(excinfo.value).lower()

    def test_error_reports_location(self):
        with pytest.raises(TurtleError) as excinfo:
            parse_turtle("@prefix ex: <http://ex/> .\nex:a ex:p @@ .")
        assert "line 2" in str(excinfo.value)


class TestSerialiser:
    def test_round_trip(self, philosophy_graph):
        text = serialize_turtle(philosophy_graph)
        reparsed = parse_turtle(text)
        assert set(reparsed) == set(philosophy_graph)

    def test_groups_by_subject(self, philosophy_graph):
        text = serialize_turtle(philosophy_graph)
        # The subject starts exactly one statement block (other mentions
        # are in object position, indented).
        starts = [
            line for line in text.splitlines() if line.startswith("dbr:Plato ")
        ]
        assert len(starts) == 1

    def test_uses_a_for_rdf_type(self, philosophy_graph):
        assert " a " in serialize_turtle(philosophy_graph)

    def test_deterministic(self, philosophy_graph):
        assert serialize_turtle(philosophy_graph) == serialize_turtle(
            philosophy_graph.copy()
        )

    def test_only_used_prefixes_declared(self):
        g = parse_turtle("@prefix ex: <http://ex/> .\nex:a ex:p ex:b .")
        text = serialize_turtle(g)
        assert "@prefix foaf:" not in text
