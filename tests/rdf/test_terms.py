"""Unit tests for the RDF term model."""

import pytest

from repro.rdf import BNode, Literal, URI
from repro.rdf.terms import XSD_BOOLEAN, XSD_DOUBLE, XSD_INTEGER, XSD_STRING


class TestURI:
    def test_construction_and_value(self):
        uri = URI("http://example.org/Person")
        assert uri.value == "http://example.org/Person"
        assert str(uri) == "http://example.org/Person"

    def test_equality_and_hash(self):
        assert URI("http://a") == URI("http://a")
        assert URI("http://a") != URI("http://b")
        assert hash(URI("http://a")) == hash(URI("http://a"))
        assert len({URI("http://a"), URI("http://a")}) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            URI("")

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            URI(42)  # type: ignore[arg-type]

    @pytest.mark.parametrize("bad", ["http://a b", "http://a<b", "http://a\nb"])
    def test_rejects_invalid_characters(self, bad):
        with pytest.raises(ValueError):
            URI(bad)

    def test_immutable(self):
        uri = URI("http://a")
        with pytest.raises(AttributeError):
            uri.value = "http://b"  # type: ignore[misc]

    def test_n3(self):
        assert URI("http://a").n3() == "<http://a>"

    @pytest.mark.parametrize(
        "value,expected",
        [
            ("http://dbpedia.org/ontology/Person", "Person"),
            ("http://www.w3.org/2002/07/owl#Thing", "Thing"),
            ("urn:isbn:123", "123"),
        ],
    )
    def test_local_name(self, value, expected):
        assert URI(value).local_name == expected

    def test_namespace(self):
        assert URI("http://x.org/ns#A").namespace == "http://x.org/ns#"
        assert URI("http://x.org/ns/A").namespace == "http://x.org/ns/"

    def test_ordering_before_literals(self):
        assert URI("http://z") < Literal("a")


class TestBNode:
    def test_explicit_id(self):
        node = BNode("b1")
        assert node.id == "b1"
        assert node.n3() == "_:b1"

    def test_fresh_ids_are_unique(self):
        assert BNode().id != BNode().id

    def test_equality(self):
        assert BNode("x") == BNode("x")
        assert BNode("x") != BNode("y")

    def test_rejects_empty_id(self):
        with pytest.raises(ValueError):
            BNode("")

    def test_orders_between_uris_and_literals(self):
        assert URI("http://a") < BNode("a") < Literal("a")


class TestLiteral:
    def test_plain_string(self):
        lit = Literal("hello")
        assert lit.lexical == "hello"
        assert lit.datatype is None
        assert lit.language is None

    def test_language_tag_lowercased(self):
        lit = Literal("Hallo", language="DE")
        assert lit.language == "de"
        assert lit.n3() == '"Hallo"@de'

    def test_rejects_bad_language(self):
        with pytest.raises(ValueError):
            Literal("x", language="not a tag!")

    def test_rejects_language_plus_datatype(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=XSD_STRING, language="en")

    def test_from_int(self):
        lit = Literal(42)
        assert lit.lexical == "42"
        assert lit.datatype == XSD_INTEGER
        assert lit.is_numeric
        assert lit.to_python() == 42

    def test_from_float(self):
        lit = Literal(2.5)
        assert lit.datatype == XSD_DOUBLE
        assert lit.to_python() == 2.5

    def test_from_bool(self):
        assert Literal(True).lexical == "true"
        assert Literal(False).datatype == XSD_BOOLEAN
        assert Literal(True).to_python() is True

    def test_rejects_unsupported_type(self):
        with pytest.raises(TypeError):
            Literal([1, 2])  # type: ignore[arg-type]

    def test_n3_escaping(self):
        lit = Literal('say "hi"\nplease\t!')
        assert lit.n3() == '"say \\"hi\\"\\nplease\\t!"'

    def test_n3_with_datatype(self):
        assert Literal("5", datatype=XSD_INTEGER).n3().endswith("#integer>")

    def test_xsd_string_datatype_suppressed_in_n3(self):
        assert Literal("a", datatype=XSD_STRING).n3() == '"a"'

    def test_equality_is_exact(self):
        assert Literal("5", datatype=XSD_INTEGER) != Literal("5")
        assert Literal("a", language="en") != Literal("a")
        assert Literal("a") == Literal("a")

    def test_datatype_uri_accepted(self):
        from repro.rdf import URI as UriTerm

        lit = Literal("5", datatype=UriTerm(XSD_INTEGER))
        assert lit.datatype == XSD_INTEGER

    def test_to_python_bad_lexical_falls_back(self):
        assert Literal("abc", datatype=XSD_INTEGER).to_python() == "abc"
