"""Unit tests for namespaces and prefix management."""

import pytest

from repro.rdf import (
    DBO,
    Namespace,
    NamespaceManager,
    RDF,
    URI,
    default_namespace_manager,
)


class TestNamespace:
    def test_attribute_access(self):
        ns = Namespace("http://example.org/")
        assert ns.Person == URI("http://example.org/Person")

    def test_item_access(self):
        ns = Namespace("http://example.org/")
        assert ns["with-dash"] == URI("http://example.org/with-dash")

    def test_term_method(self):
        ns = Namespace("http://example.org/")
        assert ns.term("base") == URI("http://example.org/base")

    def test_contains(self):
        ns = Namespace("http://example.org/")
        assert URI("http://example.org/X") in ns
        assert "http://example.org/X" in ns
        assert URI("http://other.org/X") not in ns

    def test_rejects_empty_base(self):
        with pytest.raises(ValueError):
            Namespace("")

    def test_equality(self):
        assert Namespace("http://a/") == Namespace("http://a/")
        assert Namespace("http://a/") != Namespace("http://b/")

    def test_dunder_names_raise(self):
        ns = Namespace("http://example.org/")
        with pytest.raises(AttributeError):
            ns._private


class TestNamespaceManager:
    def test_bind_and_expand(self):
        manager = NamespaceManager()
        manager.bind("ex", "http://example.org/")
        assert manager.expand("ex:Person") == URI("http://example.org/Person")

    def test_expand_unknown_prefix(self):
        with pytest.raises(KeyError):
            NamespaceManager().expand("nope:X")

    def test_expand_requires_colon(self):
        with pytest.raises(ValueError):
            NamespaceManager().expand("noprefix")

    def test_qname_round_trip(self):
        manager = default_namespace_manager()
        uri = DBO.term("Philosopher")
        qname = manager.qname(uri)
        assert qname == "dbo:Philosopher"
        assert manager.expand(qname) == uri

    def test_qname_unknown_namespace(self):
        manager = NamespaceManager()
        assert manager.qname(URI("http://unknown.org/X")) is None

    def test_qname_or_n3_falls_back(self):
        manager = NamespaceManager()
        assert manager.qname_or_n3(URI("http://unknown.org/X")) == "<http://unknown.org/X>"

    def test_qname_prefers_longest_namespace(self):
        manager = NamespaceManager(
            {"short": "http://a.org/", "long": "http://a.org/sub/"}
        )
        assert manager.qname(URI("http://a.org/sub/X")) == "long:X"

    def test_qname_skips_non_local_names(self):
        manager = NamespaceManager({"ex": "http://a.org/"})
        # A slash inside the would-be local name is not a valid qname.
        assert manager.qname(URI("http://a.org/a/b")) is None

    def test_rebind_replaces(self):
        manager = NamespaceManager()
        manager.bind("ex", "http://a.org/")
        manager.bind("ex", "http://b.org/")
        assert manager.namespace("ex") == "http://b.org/"

    def test_rebind_conflict_raises_when_replace_false(self):
        manager = NamespaceManager()
        manager.bind("ex", "http://a.org/")
        with pytest.raises(ValueError):
            manager.bind("ex", "http://b.org/", replace=False)

    def test_iteration_is_sorted(self):
        manager = NamespaceManager({"b": "http://b/", "a": "http://a/"})
        assert [prefix for prefix, _ in manager] == ["a", "b"]

    def test_default_manager_has_standard_bindings(self):
        manager = default_namespace_manager()
        assert "rdf" in manager
        assert manager.namespace("rdf") == RDF.base
        assert len(manager) >= 8

    def test_copy_is_independent(self):
        manager = NamespaceManager({"a": "http://a/"})
        clone = manager.copy()
        clone.bind("b", "http://b/")
        assert "b" not in manager
