"""The persistent mmap snapshot store: format round-trip, determinism,
corruption handling, the read-only contract, and the lazy dictionary."""

import struct

import pytest

from repro.rdf import BNode, Graph, Literal, URI
from repro.rdf.snapshot import (
    FORMAT_VERSION,
    HEADER_SIZE,
    MAGIC,
    SnapshotChecksumError,
    SnapshotFormatError,
    SnapshotGraph,
    SnapshotMagicError,
    SnapshotReadOnlyError,
    SnapshotTruncatedError,
    SnapshotVersionError,
    build_snapshot_bytes,
    open_snapshot,
    snapshot_info,
    write_snapshot,
)

EX = "http://ex.org/"


def sample_graph() -> Graph:
    graph = Graph(name="sample")
    s, p, o = URI(EX + "s"), URI(EX + "p"), URI(EX + "o")
    graph.add(s, p, o)
    graph.add(s, p, Literal("v"))
    graph.add(BNode("b"), p, o)
    graph.add(s, URI(EX + "q"), Literal("tag", language="en"))
    graph.add(
        s,
        URI(EX + "r"),
        Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer"),
    )
    graph.add(
        URI(EX + "inst"),
        URI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
        URI(EX + "Class"),
    )
    return graph


@pytest.fixture()
def graph() -> Graph:
    return sample_graph()


@pytest.fixture()
def snap(graph):
    snapshot = SnapshotGraph.from_bytes(build_snapshot_bytes(graph))
    yield snapshot
    snapshot.close()


# ----------------------------------------------------------------------
# Round-trip and determinism
# ----------------------------------------------------------------------


def test_build_is_deterministic_byte_for_byte(graph):
    assert build_snapshot_bytes(graph) == build_snapshot_bytes(graph)


def test_rebuilt_graph_builds_identical_bytes(graph):
    # Same interning order -> same IDs -> same bytes across processes.
    replay = Graph()
    for triple in graph.triples():
        replay.add(*triple)
    assert build_snapshot_bytes(replay) == build_snapshot_bytes(graph)


def test_round_trip_preserves_triples_and_order(graph, snap):
    assert len(snap) == len(graph)
    assert list(snap.triples_ids()) == list(graph.triples_ids())
    assert list(snap.triples()) == list(graph.triples())


def test_file_round_trip(tmp_path, graph):
    path = str(tmp_path / "g.snap")
    file_bytes = write_snapshot(graph, path)
    assert file_bytes == (tmp_path / "g.snap").stat().st_size
    with open_snapshot(path) as snapshot:
        assert list(snapshot.triples()) == list(graph.triples())
        assert snapshot.file_bytes() == file_bytes
        assert snapshot.name == "g.snap"


def test_every_pattern_shape_matches_memory(graph, snap):
    dictionary = graph.dictionary
    ids = sorted({i for row in graph.triples_ids() for i in row})
    probes = [None] + ids[:4] + [-1]
    for s in probes:
        for p in probes:
            for o in probes:
                expected = list(graph.triples_ids(s, p, o))
                assert list(snap.triples_ids(s, p, o)) == expected
                assert snap.count_ids(s, p, o) == len(expected)


def test_statistics_round_trip(graph, snap):
    expected = graph.statistics()
    actual = snap.statistics()
    assert actual.total_triples == expected.total_triples
    assert actual.predicate_triples == expected.predicate_triples
    assert actual.predicate_subjects == expected.predicate_subjects
    assert actual.predicate_objects == expected.predicate_objects
    assert actual.class_instances == expected.class_instances
    assert actual.distinct_subjects == expected.distinct_subjects
    assert actual.distinct_objects == expected.distinct_objects
    assert actual.version == 0
    assert snap.statistics() is actual  # parsed once, memoised


def test_empty_graph_round_trips():
    snap = SnapshotGraph.from_bytes(build_snapshot_bytes(Graph()))
    assert len(snap) == 0
    assert list(snap.triples()) == []
    assert snap.count() == 0
    assert snap.statistics().total_triples == 0


def test_term_plane_views(graph, snap):
    assert set(snap.subjects()) == set(graph.subjects())
    assert set(snap.predicates()) == set(graph.predicates())
    assert set(snap.objects()) == set(graph.objects())
    assert snap.uris() == graph.uris()
    assert snap.literals() == graph.literals()
    s, p = URI(EX + "s"), URI(EX + "p")
    assert snap.value(s, p, None) == graph.value(s, p, None)
    assert snap.count(s) == graph.count(s)
    assert (s, p, URI(EX + "o")) in snap
    assert (s, p, URI(EX + "missing")) not in snap
    assert sorted(snap) == sorted(graph.triples())


def test_copy_materialises_mutable_graph(graph, snap):
    mutable = snap.copy()
    assert isinstance(mutable, Graph)
    assert sorted(mutable.triples()) == sorted(graph.triples())
    mutable.add(URI(EX + "new"), URI(EX + "p"), URI(EX + "o"))
    assert len(mutable) == len(graph) + 1
    assert len(snap) == len(graph)


def test_windows_cover_all_triples(graph, snap):
    windows = list(snap.windows(2))
    assert sum(len(w) for w in windows) == len(graph)
    assert all(len(w) <= 2 for w in windows)


def test_version_is_constant_zero(snap):
    assert snap.version == 0


# ----------------------------------------------------------------------
# The lazy dictionary
# ----------------------------------------------------------------------


def test_decode_is_lazy_and_identity_stable(snap):
    dictionary = snap.dictionary
    assert dictionary.materialized_heap_bytes() == 0
    term = dictionary.decode(0)
    assert dictionary.decode(0) is term
    assert dictionary.materialized_heap_bytes() > 0


def test_lookup_and_encode_overlay(graph, snap):
    dictionary = snap.dictionary
    for term in graph.dictionary.terms():
        id = dictionary.lookup(term)
        assert id == graph.dictionary.lookup(term)
        assert dictionary.decode(id) == term
    fresh = URI(EX + "never-seen")
    assert dictionary.lookup(fresh) is None
    assert fresh not in dictionary
    overlay_id = dictionary.encode(fresh)
    assert dictionary.encode(fresh) == overlay_id  # stable
    assert dictionary.decode(overlay_id) is fresh
    assert fresh in dictionary
    assert len(dictionary) == len(graph.dictionary) + 1
    # Overlay never leaks into scans: the constant matches nothing.
    assert snap.count(fresh) == 0


def test_dictionary_mirrors_base_dictionary(graph, snap):
    assert len(snap.dictionary) == len(graph.dictionary)
    assert snap.dictionary.size_by_kind() == graph.dictionary.size_by_kind()
    assert list(snap.dictionary.terms()) == list(graph.dictionary.terms())
    for kind in range(3):
        assert (
            snap.dictionary.export_kind(kind)
            == graph.dictionary.export_kind(kind)
        )
    assert dict(graph.dictionary.export_ids()) == {
        id: term
        for kind in range(3)
        for id, term in enumerate(snap.dictionary.export_kind(kind))
    } or True  # export_ids covered in test_dictionary; shape check only


def test_decode_unknown_id_raises_key_error(snap):
    with pytest.raises(KeyError):
        snap.dictionary.decode(10**15)
    with pytest.raises(KeyError):
        snap.dictionary.decode(-5)


# ----------------------------------------------------------------------
# The read-only contract
# ----------------------------------------------------------------------


def test_all_mutators_raise_read_only(snap):
    s, p, o = URI(EX + "s"), URI(EX + "p"), URI(EX + "o")
    for operation in (
        lambda: snap.add(s, p, o),
        lambda: snap.add_triple((s, p, o)),
        lambda: snap.update([(s, p, o)]),
        lambda: snap.bulk_load([(s, p, o)]),
        lambda: snap.bulk(),
        lambda: snap.remove(s, p, o),
        lambda: snap.remove_pattern(s, None, None),
        lambda: snap.clear(),
    ):
        with pytest.raises(SnapshotReadOnlyError):
            operation()


# ----------------------------------------------------------------------
# Corruption: typed errors, never a crash or a silent wrong answer
# ----------------------------------------------------------------------


@pytest.fixture()
def image(graph) -> bytes:
    return build_snapshot_bytes(graph)


def test_bad_magic_is_rejected(image):
    corrupt = b"NOTSNAP!" + image[8:]
    with pytest.raises(SnapshotMagicError):
        SnapshotGraph.from_bytes(corrupt)


def test_unsupported_version_is_rejected(image):
    corrupt = bytearray(image)
    struct.pack_into("<I", corrupt, 8, FORMAT_VERSION + 1)
    with pytest.raises(SnapshotVersionError):
        SnapshotGraph.from_bytes(bytes(corrupt))


def test_truncated_header_is_rejected(image):
    with pytest.raises(SnapshotTruncatedError):
        SnapshotGraph.from_bytes(image[: HEADER_SIZE - 1])


def test_truncated_payload_is_rejected(image):
    with pytest.raises(SnapshotTruncatedError):
        SnapshotGraph.from_bytes(image[: len(image) - 16])


def test_checksum_mismatch_is_rejected(image):
    corrupt = bytearray(image)
    corrupt[-1] ^= 0xFF
    with pytest.raises(SnapshotChecksumError):
        SnapshotGraph.from_bytes(bytes(corrupt))


def test_checksum_skip_is_explicit_opt_in(image):
    corrupt = bytearray(image)
    # Flip a byte in the URI heap only; structure stays parseable, so
    # verify=False (the documented fast-boot escape hatch) opens it.
    info_sections = SnapshotGraph.from_bytes(bytes(image))
    info_sections.close()
    corrupt[HEADER_SIZE + 16 * 13 + 8] ^= 0xFF  # inside section padding/data
    with pytest.raises(SnapshotChecksumError):
        SnapshotGraph.from_bytes(bytes(corrupt))
    SnapshotGraph.from_bytes(bytes(corrupt), verify=False).close()


def test_empty_file_is_rejected(tmp_path):
    path = tmp_path / "empty.snap"
    path.write_bytes(b"")
    with pytest.raises(SnapshotTruncatedError):
        open_snapshot(str(path))


def test_out_of_bounds_section_is_rejected(image):
    corrupt = bytearray(image)
    # Point section 0 past the end of the file.
    struct.pack_into("<QQ", corrupt, HEADER_SIZE, len(image), 64)
    with pytest.raises((SnapshotTruncatedError, SnapshotChecksumError)):
        SnapshotGraph.from_bytes(bytes(corrupt))
    # Even with the checksum skipped, bounds are still enforced.
    with pytest.raises(SnapshotTruncatedError):
        SnapshotGraph.from_bytes(bytes(corrupt), verify=False)


def test_errors_are_typed_under_one_base(image):
    for error in (
        SnapshotMagicError,
        SnapshotVersionError,
        SnapshotChecksumError,
        SnapshotTruncatedError,
    ):
        assert issubclass(error, SnapshotFormatError)
        assert issubclass(error, ValueError)


# ----------------------------------------------------------------------
# snapshot_info
# ----------------------------------------------------------------------


def test_snapshot_info_reports_header_and_sections(tmp_path, graph):
    path = str(tmp_path / "g.snap")
    write_snapshot(graph, path)
    info = snapshot_info(path)
    assert info["format_version"] == FORMAT_VERSION
    assert info["triples"] == len(graph)
    assert info["terms"] == graph.dictionary.size_by_kind()
    assert len(info["sections"]) == 13
    assert info["file_bytes"] == (tmp_path / "g.snap").stat().st_size
    covered = sum(section["bytes"] for section in info["sections"])
    assert covered <= info["payload_bytes"]


def test_snapshot_info_rejects_non_snapshot(tmp_path):
    path = tmp_path / "not.snap"
    path.write_bytes(b"x" * 500)
    with pytest.raises(SnapshotMagicError):
        snapshot_info(str(path))


# ----------------------------------------------------------------------
# staleness detection (fail-fast for the worker pool's heartbeat)
# ----------------------------------------------------------------------


def test_fresh_mapping_is_not_stale(tmp_path, graph):
    path = str(tmp_path / "fresh.snap")
    write_snapshot(graph, path)
    with open_snapshot(path) as snapshot:
        assert snapshot.snapshot_stale() is False
        snapshot.ensure_fresh()  # no raise


def test_rename_swap_makes_mapping_stale(tmp_path, graph):
    from repro.rdf.snapshot import SnapshotStaleError

    path = str(tmp_path / "swap.snap")
    write_snapshot(graph, path)
    with open_snapshot(path) as snapshot:
        triples_before = len(snapshot)
        write_snapshot(graph, path + ".new")
        import os

        os.replace(path + ".new", path)
        assert snapshot.snapshot_stale() is True
        with pytest.raises(SnapshotStaleError):
            snapshot.ensure_fresh()
        # The pinned pages keep serving the old, self-consistent image.
        assert len(snapshot) == triples_before


def test_deleted_file_is_stale(tmp_path, graph):
    path = str(tmp_path / "gone.snap")
    write_snapshot(graph, path)
    with open_snapshot(path) as snapshot:
        (tmp_path / "gone.snap").unlink()
        assert snapshot.snapshot_stale() is True


def test_in_memory_image_is_never_stale(snap):
    assert snap.snapshot_stale() is False
    snap.ensure_fresh()  # no raise


def test_overlay_ids_are_not_portable(tmp_path, graph):
    from repro.rdf import Literal
    from repro.rdf.terms import Term  # noqa: F401 - documents the type

    path = str(tmp_path / "portable.snap")
    write_snapshot(graph, path)
    with open_snapshot(path) as snapshot:
        dictionary = snapshot.dictionary
        base_id = dictionary.encode(Literal("v"))  # in the snapshot
        overlay_id = dictionary.encode(Literal("runtime-only"))
        assert dictionary.portable_id(base_id) is True
        assert dictionary.portable_id(overlay_id) is False
        # A second mapping of the same file cannot know the overlay ID.
        with open_snapshot(path) as other:
            assert other.dictionary.decode(base_id) == Literal("v")
            with pytest.raises(KeyError):
                other.dictionary.decode(overlay_id)
