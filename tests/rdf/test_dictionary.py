"""The term dictionary and the encoded (ID-keyed) graph store."""

import pytest

from repro.rdf import (
    BNode,
    Graph,
    KIND_STRIDE,
    Literal,
    TermDictionary,
    Triple,
    URI,
    kind_name,
    kind_of_id,
)

EX = "http://ex.org/"


def _uri(name: str) -> URI:
    return URI(EX + name)


class TestTermDictionary:
    def test_encode_is_stable_and_decode_returns_identical_object(self):
        d = TermDictionary()
        term = _uri("a")
        id = d.encode(term)
        assert d.encode(term) == id
        assert d.encode(URI(EX + "a")) == id  # equal term, same ID
        assert d.decode(id) is term  # materialization allocates nothing

    def test_per_kind_id_ranges(self):
        d = TermDictionary()
        u = d.encode(_uri("u"))
        b = d.encode(BNode("b"))
        l = d.encode(Literal("l"))
        assert 0 <= u < KIND_STRIDE
        assert KIND_STRIDE <= b < 2 * KIND_STRIDE
        assert 2 * KIND_STRIDE <= l < 3 * KIND_STRIDE
        # Integer order respects the cross-kind term order.
        assert u < b < l
        assert (kind_of_id(u), kind_of_id(b), kind_of_id(l)) == (0, 1, 2)
        assert kind_name(u) == "uri"
        assert kind_name(b) == "bnode"
        assert kind_name(l) == "literal"

    def test_lookup_does_not_intern(self):
        d = TermDictionary()
        assert d.lookup(_uri("never")) is None
        assert len(d) == 0
        id = d.encode(_uri("seen"))
        assert d.lookup(_uri("seen")) == id

    def test_decode_unknown_id_raises(self):
        d = TermDictionary()
        with pytest.raises(KeyError):
            d.decode(123)

    def test_size_by_kind_and_terms_iteration(self):
        d = TermDictionary()
        d.encode(_uri("u1"))
        d.encode(_uri("u2"))
        d.encode(Literal("x"))
        assert d.size_by_kind() == {"uri": 2, "bnode": 0, "literal": 1}
        assert len(list(d.terms())) == 3
        assert _uri("u1") in d
        assert Literal("y") not in d


class TestEncodedGraph:
    def test_triples_ids_decode_matches_triples(self):
        g = Graph()
        g.add(_uri("s"), _uri("p"), Literal("v"))
        g.add(_uri("s"), _uri("p"), _uri("o"))
        g.add(_uri("t"), _uri("q"), _uri("s"))
        ids = list(g.triples_ids())
        decoded = [Triple(*g.dictionary.decode_triple(t)) for t in ids]
        assert decoded == list(g.triples())
        assert len(ids) == len(g) == 3

    def test_unknown_pattern_terms_match_nothing(self):
        g = Graph()
        g.add(_uri("s"), _uri("p"), _uri("o"))
        assert list(g.triples(_uri("absent"), None, None)) == []
        assert g.count(None, _uri("absent"), None) == 0
        assert (_uri("s"), _uri("p"), _uri("absent")) not in g
        assert (_uri("s"), _uri("p"), _uri("o")) in g

    def test_remove_keeps_dictionary_ids_stable(self):
        g = Graph()
        g.add(_uri("s"), _uri("p"), _uri("o"))
        id_before = g.dictionary.lookup(_uri("s"))
        assert g.remove(_uri("s"), _uri("p"), _uri("o"))
        assert len(g) == 0
        assert g.dictionary.lookup(_uri("s")) == id_before
        # Re-adding reuses the interned IDs.
        g.add(_uri("s"), _uri("p"), _uri("o"))
        assert g.dictionary.lookup(_uri("s")) == id_before

    def test_iteration_order_is_deterministic_id_order(self):
        triples = [
            (_uri(f"s{i}"), _uri(f"p{i % 3}"), Literal(i)) for i in range(20)
        ]
        g1 = Graph()
        g2 = Graph()
        for s, p, o in triples:
            g1.add(s, p, o)
            g2.add(s, p, o)
        assert list(g1.triples()) == list(g2.triples())


class TestBulkLoad:
    def test_bulk_load_counts_and_dedupes(self):
        g = Graph()
        g.add(_uri("s"), _uri("p"), _uri("o"))
        added = g.bulk_load(
            [
                (_uri("s"), _uri("p"), _uri("o")),  # duplicate of existing
                (_uri("s"), _uri("p"), _uri("o2")),
                (_uri("s"), _uri("p"), _uri("o2")),  # duplicate within batch
                (_uri("t"), _uri("q"), Literal("x")),
            ]
        )
        assert added == 2
        assert len(g) == 3

    def test_bulk_load_bumps_version_once(self):
        g = Graph()
        before = g.version
        g.bulk_load(
            [(_uri(f"s{i}"), _uri("p"), Literal(i)) for i in range(50)]
        )
        assert g.version == before + 1

    def test_bulk_load_matches_incremental_adds(self):
        triples = [
            (_uri(f"s{i % 7}"), _uri(f"p{i % 3}"), Literal(i % 5))
            for i in range(40)
        ]
        bulk = Graph()
        bulk.bulk_load(triples)
        incremental = Graph()
        for s, p, o in triples:
            incremental.add(s, p, o)
        assert len(bulk) == len(incremental)
        assert list(bulk.triples()) == list(incremental.triples())
        assert bulk.count(None, _uri("p0"), None) == incremental.count(
            None, _uri("p0"), None
        )

    def test_bulk_context_coalesces_version_bumps(self):
        g = Graph()
        before = g.version
        with g.bulk():
            for i in range(10):
                g.add(_uri(f"s{i}"), _uri("p"), Literal(i))
            # Reads inside the block see the data immediately.
            assert len(g) == 10
            assert g.version == before
        assert g.version == before + 1

    def test_nested_bulk_bumps_only_at_outermost_exit(self):
        g = Graph()
        before = g.version
        with g.bulk():
            g.add(_uri("a"), _uri("p"), Literal(1))
            with g.bulk():
                g.add(_uri("b"), _uri("p"), Literal(2))
            assert g.version == before
        assert g.version == before + 1

    def test_bulk_without_changes_does_not_bump(self):
        g = Graph()
        before = g.version
        with g.bulk():
            pass
        assert g.version == before

    def test_update_delegates_to_bulk_load(self):
        g = Graph()
        before = g.version
        count = g.update(
            Triple(_uri(f"s{i}"), _uri("p"), Literal(i)) for i in range(5)
        )
        assert count == 5
        assert g.version == before + 1


class TestStableExportOrder:
    """The export surface snapshot builds serialise through: position i
    of export_kind(k) must be the term whose ID is k*STRIDE + i, and
    the order must never change across repeated exports."""

    def _populated(self) -> TermDictionary:
        d = TermDictionary()
        for term in (
            _uri("z"), _uri("a"), BNode("b2"), Literal("v"),
            _uri("m"), BNode("b1"), Literal("w", language="en"),
        ):
            d.encode(term)
        return d

    def test_export_kind_positions_encode_ids(self):
        d = self._populated()
        for kind in range(3):
            for offset, term in enumerate(d.export_kind(kind)):
                assert d.lookup(term) == kind * KIND_STRIDE + offset

    def test_export_is_interning_order_not_sorted_order(self):
        d = self._populated()
        assert d.export_kind(0) == (_uri("z"), _uri("a"), _uri("m"))

    def test_repeated_exports_are_identical(self):
        d = self._populated()
        first = [d.export_kind(kind) for kind in range(3)]
        list(d.terms())  # reads must not perturb the order
        d.encode(_uri("z"))  # re-encoding an interned term is a no-op
        assert [d.export_kind(kind) for kind in range(3)] == first

    def test_export_ids_is_ascending_and_complete(self):
        d = self._populated()
        pairs = list(d.export_ids())
        ids = [id for id, _ in pairs]
        assert ids == sorted(ids)
        assert len(pairs) == len(d)
        assert all(d.decode(id) is term for id, term in pairs)

    def test_append_only_growth_preserves_prefix(self):
        d = self._populated()
        before = d.export_kind(0)
        d.encode(_uri("fresh"))
        after = d.export_kind(0)
        assert after[: len(before)] == before
        assert after[-1] == _uri("fresh")

    def test_snapshot_builds_are_deterministic_across_replays(self):
        # The end-to-end property the export order exists for.
        from repro.rdf.snapshot import build_snapshot_bytes

        def build():
            g = Graph()
            g.add(_uri("s"), _uri("p"), Literal("v"))
            g.add(BNode("b"), _uri("p"), _uri("s"))
            return build_snapshot_bytes(g)

        assert build() == build()


class TestSortKeyCache:
    def test_sort_key_is_computed_once(self):
        for term in (_uri("x"), BNode("b"), Literal("v", language="en")):
            first = term.sort_key()
            assert term.sort_key() is first  # memoised, not re-allocated

    def test_cached_keys_still_order_correctly(self):
        u, b, l = _uri("a"), BNode("a"), Literal("a")
        assert u < b < l
        assert sorted([l, b, u]) == [u, b, l]
