"""Unit tests for N-Triples parsing and serialisation."""

import pytest

from repro.rdf import (
    BNode,
    Graph,
    Literal,
    NTriplesError,
    Triple,
    URI,
    dump_ntriples,
    load_ntriples,
    parse_ntriples,
    parse_ntriples_line,
    serialize_ntriples,
)


class TestParseLine:
    def test_simple_triple(self):
        t = parse_ntriples_line("<http://a> <http://p> <http://b> .")
        assert t == Triple(URI("http://a"), URI("http://p"), URI("http://b"))

    def test_plain_literal(self):
        t = parse_ntriples_line('<http://a> <http://p> "hello" .')
        assert t.object == Literal("hello")

    def test_language_literal(self):
        t = parse_ntriples_line('<http://a> <http://p> "hi"@en .')
        assert t.object == Literal("hi", language="en")

    def test_typed_literal(self):
        t = parse_ntriples_line(
            '<http://a> <http://p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        )
        assert t.object.datatype.endswith("integer")

    def test_bnode_subject_and_object(self):
        t = parse_ntriples_line("_:x <http://p> _:y .")
        assert t.subject == BNode("x")
        assert t.object == BNode("y")

    def test_escapes(self):
        t = parse_ntriples_line('<http://a> <http://p> "line\\nbreak \\"q\\"" .')
        assert t.object.lexical == 'line\nbreak "q"'

    def test_unicode_escape(self):
        t = parse_ntriples_line('<http://a> <http://p> "\\u00e9" .')
        assert t.object.lexical == "é"

    def test_blank_and_comment_lines(self):
        assert parse_ntriples_line("") is None
        assert parse_ntriples_line("   # a comment") is None

    def test_trailing_comment_allowed(self):
        t = parse_ntriples_line("<http://a> <http://p> <http://b> . # note")
        assert t is not None

    @pytest.mark.parametrize(
        "bad",
        [
            "<http://a> <http://p> <http://b>",       # missing dot
            "<http://a> <http://p> .",                # missing object
            '"lit" <http://p> <http://b> .',          # literal subject
            "<http://a> <http://p <http://b> .",      # unterminated URI
            '<http://a> <http://p> "unterminated .',  # unterminated literal
            "<http://a> <http://p> <http://b> . junk",
        ],
    )
    def test_malformed_lines_raise(self, bad):
        with pytest.raises(NTriplesError):
            parse_ntriples_line(bad)

    def test_error_carries_line_number(self):
        with pytest.raises(NTriplesError) as excinfo:
            list(parse_ntriples("<http://a> <http://p> <http://b> .\nbad line\n"))
        assert "line 2" in str(excinfo.value)


class TestRoundTrip:
    def test_serialize_parse_round_trip(self, philosophy_graph):
        text = serialize_ntriples(philosophy_graph, sort=True)
        reparsed = Graph(parse_ntriples(text))
        assert set(reparsed) == set(philosophy_graph)

    def test_sorted_output_is_deterministic(self, philosophy_graph):
        a = serialize_ntriples(philosophy_graph, sort=True)
        b = serialize_ntriples(philosophy_graph.copy(), sort=True)
        assert a == b

    def test_file_round_trip(self, tmp_path, philosophy_graph):
        path = str(tmp_path / "dump.nt")
        count = dump_ntriples(philosophy_graph, path)
        assert count == len(philosophy_graph)
        loaded = load_ntriples(path)
        assert set(loaded) == set(philosophy_graph)

    def test_special_characters_survive(self):
        g = Graph()
        g.add(
            URI("http://a"),
            URI("http://p"),
            Literal('tab\t "quote" \\ newline\n end'),
        )
        reparsed = Graph(parse_ntriples(serialize_ntriples(g)))
        assert set(reparsed) == set(g)
