"""Property tests for the suspendable executor: paging a query through
continuation tokens — suspending at random page sizes, serialising the
token at every boundary — must reproduce the one-shot answer exactly
(rows, order, and work counters) on random graphs and random queries."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import Graph, URI
from repro.sparql.ast import TriplePatternNode, Var
from repro.sparql.executor import (
    decode_continuation,
    encode_continuation,
    restore_plan,
    run_quantum,
    run_to_completion,
)
from repro.sparql.planner import build_physical_plan

_VARS = [Var("a"), Var("b"), Var("c")]
_TERMS = [URI(f"http://ex.org/t{i}") for i in range(4)]
_PREDS = [URI(f"http://ex.org/p{i}") for i in range(3)]

_MODIFIERS = ["", " ORDER BY ?a", " LIMIT 7", " ORDER BY DESC(?a) LIMIT 5"]


@st.composite
def dense_graphs(draw) -> Graph:
    """Small graphs over a tiny vocabulary so joins actually match."""
    graph = Graph()
    count = draw(st.integers(1, 25))
    for _ in range(count):
        graph.add(
            draw(st.sampled_from(_TERMS)),
            draw(st.sampled_from(_PREDS)),
            draw(st.sampled_from(_TERMS)),
        )
    return graph


@st.composite
def triple_patterns(draw) -> TriplePatternNode:
    def position(pool):
        if draw(st.booleans()):
            return draw(st.sampled_from(_VARS))
        return draw(st.sampled_from(pool))

    return TriplePatternNode(
        subject=position(_TERMS),
        predicate=position(_PREDS),
        object=position(_TERMS),
    )


def _pattern_text(pattern: TriplePatternNode) -> str:
    def show(term):
        return str(term) if isinstance(term, Var) else term.n3()

    return (
        f"{show(pattern.subject)} {show(pattern.predicate)} "
        f"{show(pattern.object)} ."
    )


@st.composite
def select_queries(draw) -> str:
    patterns = draw(st.lists(triple_patterns(), min_size=1, max_size=3))
    names = []
    for pattern in patterns:
        for term in pattern:
            if isinstance(term, Var) and term.name not in names:
                names.append(term.name)
    if not names:
        names = ["a"]
        patterns.append(
            TriplePatternNode(Var("a"), _PREDS[0], Var("a"))
        )
    modifier = draw(st.sampled_from(_MODIFIERS))
    if "?a" in modifier and "a" not in names:
        modifier = modifier.replace("?a", "?" + names[0])
    return (
        f"SELECT {' '.join('?' + n for n in names)} WHERE {{ "
        + " ".join(_pattern_text(p) for p in patterns)
        + " }"
        + modifier
    )


def _canonical(rows):
    return [
        tuple(sorted((name, value.n3()) for name, value in row.items()))
        for row in rows
    ]


@given(
    dense_graphs(),
    select_queries(),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=80, deadline=None)
def test_paged_run_equals_one_shot(graph, query, page_size):
    expected_plan = build_physical_plan(graph, query)
    expected = run_to_completion(expected_plan)

    factory = build_physical_plan(graph, query).factory
    plan = factory.instantiate(graph)
    rows = []
    scans = 0
    bindings = 0
    for _ in range(10_000):
        page = run_quantum(plan, page_size=page_size)
        rows.extend(page.rows)
        scans += page.stats.pattern_scans
        bindings += page.stats.intermediate_bindings
        assert len(page.rows) <= page_size
        if page.complete:
            break
        # Serialise the continuation at every suspension point and
        # restore into a brand-new operator tree, as a client would.
        token = encode_continuation(plan, graph, query)
        plan = restore_plan(factory, graph, decode_continuation(token))
    else:  # pragma: no cover - guards against a non-terminating loop
        raise AssertionError("paged execution did not terminate")

    assert _canonical(rows) == _canonical(expected.rows)  # order too
    assert scans == expected_plan.stats.pattern_scans
    assert bindings == expected_plan.stats.intermediate_bindings


@given(
    dense_graphs(),
    select_queries(),
    st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_varying_page_sizes_between_resumes(graph, query, sizes):
    """The page size may change between resumes (a client is free to
    ask for a different screenful each time)."""
    expected = run_to_completion(build_physical_plan(graph, query))

    factory = build_physical_plan(graph, query).factory
    plan = factory.instantiate(graph)
    rows = []
    step = 0
    for _ in range(10_000):
        page = run_quantum(plan, page_size=sizes[step % len(sizes)])
        step += 1
        rows.extend(page.rows)
        if page.complete:
            break
        token = encode_continuation(plan, graph, query)
        plan = restore_plan(factory, graph, decode_continuation(token))
    else:  # pragma: no cover
        raise AssertionError("paged execution did not terminate")

    assert _canonical(rows) == _canonical(expected.rows)
