"""Snapshot (mmap) execution ≡ in-memory encoded execution.

PR 6 puts a read-only, binary-searched :class:`SnapshotGraph` under the
physical operators.  These properties pin the storage-backend seam
down: on random graphs and random queries, executing over a snapshot
image must produce exactly the rows, the order, and the statistics of
the in-memory dictionary-encoded store — one-shot and when execution is
suspended at random points and resumed from serialised continuation
tokens minted against the snapshot.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import BNode, Graph, Literal, URI
from repro.rdf.snapshot import SnapshotGraph, build_snapshot_bytes
from repro.sparql.algebra import translate_query
from repro.sparql.evaluator import Evaluator
from repro.sparql.executor import (
    decode_continuation,
    encode_continuation,
    restore_plan,
    run_quantum,
    run_to_completion,
)
from repro.sparql.optimizer import optimize
from repro.sparql.parser import parse_query
from repro.sparql.planner import PhysicalPlanFactory

EX = "http://ex.org/"

_SUBJECTS = [URI(EX + f"s{i}") for i in range(4)] + [BNode("b0"), BNode("b1")]
_PREDS = [URI(EX + f"p{i}") for i in range(3)]
_OBJECTS = (
    _SUBJECTS[:3]
    + [URI(EX + "o0")]
    + [Literal(i) for i in range(3)]
    + [Literal("tag", language="en"), Literal("plain")]
)
# Constants that may appear in query text (BNodes cannot).
_URI_SUBJECTS = [term for term in _SUBJECTS if isinstance(term, URI)]


@st.composite
def dense_graphs(draw) -> Graph:
    """Small graphs over a tiny vocabulary so joins actually match."""
    graph = Graph()
    for _ in range(draw(st.integers(1, 30))):
        graph.add(
            draw(st.sampled_from(_SUBJECTS)),
            draw(st.sampled_from(_PREDS)),
            draw(st.sampled_from(_OBJECTS)),
        )
    return graph


@st.composite
def queries(draw) -> str:
    count = draw(st.integers(1, 3))
    patterns = []
    names: list = []

    def var(name):
        if name not in names:
            names.append(name)
        return f"?{name}"

    for index in range(count):
        subject = (
            var(draw(st.sampled_from("ab")))
            if index == 0 or draw(st.booleans())
            else draw(st.sampled_from(_URI_SUBJECTS)).n3()
        )
        predicate = draw(st.sampled_from(_PREDS)).n3()
        object = (
            var(draw(st.sampled_from("bc")))
            if draw(st.booleans())
            else draw(st.sampled_from(_OBJECTS)).n3()
        )
        patterns.append(f"{subject} {predicate} {object} .")
    body = " ".join(patterns)
    if draw(st.booleans()):
        body += f" FILTER(?{names[0]} != <{EX}s0>)"
    form = draw(st.sampled_from(["plain", "plain", "distinct", "count"]))
    if form == "count":
        return (
            f"SELECT ?{names[0]} (COUNT(?{names[0]}) AS ?n) "
            f"WHERE {{ {body} }} GROUP BY ?{names[0]}"
        )
    head = "DISTINCT " if form == "distinct" else ""
    modifier = draw(
        st.sampled_from(
            [
                "",
                f" ORDER BY ?{names[0]}",
                " LIMIT 5",
                f" ORDER BY DESC(?{names[0]}) LIMIT 4",
            ]
        )
    )
    return (
        f"SELECT {head}{' '.join('?' + name for name in names)} "
        f"WHERE {{ {body} }}{modifier}"
    )


def _snapshot_of(graph) -> SnapshotGraph:
    return SnapshotGraph.from_bytes(build_snapshot_bytes(graph))


def _compile(store, text):
    query = parse_query(text)
    algebra, _ = optimize(translate_query(query), graph=store)
    return query, algebra


@given(dense_graphs(), st.integers(0, 2**32))
@settings(max_examples=60, deadline=None)
def test_snapshot_scans_match_memory_scans(graph, seed):
    """Every ``triples_ids`` / ``count_ids`` shape enumerates the same
    rows in the same (sorted ID) order on both stores."""
    snap = _snapshot_of(graph)
    rows = list(graph.triples_ids())
    assert list(snap.triples_ids()) == rows
    # Probe every binding shape with IDs drawn from the graph (plus the
    # -1 unknown-constant sentinel, which must yield nothing).
    import random

    rng = random.Random(seed)
    sample = rows[rng.randrange(len(rows))]
    candidates = [sample[0], sample[1], sample[2], -1]
    for s in (None, rng.choice(candidates)):
        for p in (None, rng.choice(candidates)):
            for o in (None, rng.choice(candidates)):
                expected = list(graph.triples_ids(s, p, o))
                assert list(snap.triples_ids(s, p, o)) == expected
                assert snap.count_ids(s, p, o) == len(expected)


@given(dense_graphs())
@settings(max_examples=40, deadline=None)
def test_snapshot_statistics_match_memory_statistics(graph):
    """The stored statistics section reproduces the in-memory summary
    field for field (the version differs by design: snapshots are 0)."""
    snap = _snapshot_of(graph)
    expected = graph.statistics()
    actual = snap.statistics()
    assert actual.total_triples == expected.total_triples
    assert actual.predicate_triples == expected.predicate_triples
    assert actual.predicate_subjects == expected.predicate_subjects
    assert actual.predicate_objects == expected.predicate_objects
    assert actual.class_instances == expected.class_instances
    assert actual.distinct_subjects == expected.distinct_subjects
    assert actual.distinct_objects == expected.distinct_objects
    assert actual.version == 0


@given(dense_graphs(), queries())
@settings(max_examples=60, deadline=None)
def test_snapshot_execution_matches_memory_execution(graph, text):
    """One-shot: identical rows and order through the physical engine,
    and identical to the term-space recursive evaluator."""
    snap = _snapshot_of(graph)
    query, algebra = _compile(graph, text)
    expected = Evaluator(graph).run_translated(query, algebra)

    snap_query, snap_algebra = _compile(snap, text)
    plan = PhysicalPlanFactory(snap_query, snap_algebra).instantiate(snap)
    actual = run_to_completion(plan)

    assert actual.vars == expected.vars
    assert actual.rows == expected.rows  # values AND order


@given(dense_graphs(), queries(), st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_suspended_snapshot_execution_matches_memory_execution(
    graph, text, page_size
):
    """Random suspension points: paging over the snapshot through
    serialised continuation tokens reproduces the in-memory answer."""
    snap = _snapshot_of(graph)
    query, algebra = _compile(graph, text)
    expected = Evaluator(graph).run_translated(query, algebra)

    snap_query, snap_algebra = _compile(snap, text)
    factory = PhysicalPlanFactory(snap_query, snap_algebra)
    plan = factory.instantiate(snap)
    rows = []
    for _ in range(10_000):
        page = run_quantum(plan, page_size=page_size)
        rows.extend(page.rows)
        if page.complete:
            break
        token = encode_continuation(plan, snap, text)
        plan = restore_plan(factory, snap, decode_continuation(token))
    else:  # pragma: no cover - guards against a non-terminating loop
        raise AssertionError("paged execution did not terminate")

    assert rows == expected.rows
