"""Differential property tests: the SPARQL engine vs the naive oracle on
random graphs and random queries."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import Graph, URI
from repro.sparql import evaluate
from repro.sparql.ast import TriplePatternNode, Var

from .naive_sparql import (
    canonical,
    naive_bgp,
    naive_distinct,
    naive_optional,
    naive_project,
    naive_union,
)
from .strategies import graphs

_VARS = [Var("a"), Var("b"), Var("c"), Var("d")]
_TERMS = [URI(f"http://ex.org/t{i}") for i in range(4)]
_PREDS = [URI(f"http://ex.org/p{i}") for i in range(3)]


@st.composite
def dense_graphs(draw) -> Graph:
    """Small graphs over a tiny vocabulary so joins actually match."""
    graph = Graph()
    count = draw(st.integers(1, 20))
    for _ in range(count):
        graph.add(
            draw(st.sampled_from(_TERMS)),
            draw(st.sampled_from(_PREDS)),
            draw(st.sampled_from(_TERMS)),
        )
    return graph


@st.composite
def triple_patterns(draw) -> TriplePatternNode:
    def position(pool):
        if draw(st.booleans()):
            return draw(st.sampled_from(_VARS))
        return draw(st.sampled_from(pool))

    return TriplePatternNode(
        subject=position(_TERMS),
        predicate=position(_PREDS),
        object=position(_TERMS),
    )


def _pattern_text(pattern: TriplePatternNode) -> str:
    def show(term):
        return str(term) if isinstance(term, Var) else term.n3()

    return f"{show(pattern.subject)} {show(pattern.predicate)} {show(pattern.object)} ."


def _vars_of(patterns) -> list:
    names = []
    for pattern in patterns:
        for term in pattern:
            if isinstance(term, Var) and term.name not in names:
                names.append(term.name)
    return names


class TestBGPDifferential:
    @given(dense_graphs(), st.lists(triple_patterns(), min_size=1, max_size=3))
    @settings(max_examples=120, deadline=None)
    def test_bgp_matches_oracle(self, graph, patterns):
        names = _vars_of(patterns)
        if not names:
            return  # fully ground patterns -> ASK territory, below
        query = (
            f"SELECT {' '.join('?' + n for n in names)} WHERE {{ "
            + " ".join(_pattern_text(p) for p in patterns)
            + " }"
        )
        via_engine = evaluate(graph, query)
        oracle = naive_project(naive_bgp(graph, patterns), names)
        assert canonical(list(via_engine.rows)) == canonical(oracle)

    @given(dense_graphs(), st.lists(triple_patterns(), min_size=1, max_size=2))
    @settings(max_examples=60, deadline=None)
    def test_ask_matches_oracle(self, graph, patterns):
        query = "ASK { " + " ".join(_pattern_text(p) for p in patterns) + " }"
        assert evaluate(graph, query).value == bool(naive_bgp(graph, patterns))

    @given(dense_graphs(), st.lists(triple_patterns(), min_size=1, max_size=2))
    @settings(max_examples=60, deadline=None)
    def test_distinct_matches_oracle(self, graph, patterns):
        names = _vars_of(patterns)
        if not names:
            return
        query = (
            f"SELECT DISTINCT {' '.join('?' + n for n in names)} WHERE {{ "
            + " ".join(_pattern_text(p) for p in patterns)
            + " }"
        )
        via_engine = evaluate(graph, query)
        oracle = naive_distinct(naive_project(naive_bgp(graph, patterns), names))
        assert canonical(list(via_engine.rows)) == canonical(oracle)

    @given(dense_graphs(), triple_patterns(), triple_patterns())
    @settings(max_examples=80, deadline=None)
    def test_union_matches_oracle(self, graph, left, right):
        names = _vars_of([left, right])
        if not names:
            return
        query = (
            f"SELECT {' '.join('?' + n for n in names)} WHERE {{ "
            f"{{ {_pattern_text(left)} }} UNION {{ {_pattern_text(right)} }} }}"
        )
        via_engine = evaluate(graph, query)
        oracle = naive_project(
            naive_union(graph, [[left], [right]]), names
        )
        assert canonical(list(via_engine.rows)) == canonical(oracle)

    @given(dense_graphs(), triple_patterns(), triple_patterns())
    @settings(max_examples=80, deadline=None)
    def test_optional_matches_oracle(self, graph, required, optional):
        names = _vars_of([required, optional])
        if not _vars_of([required]):
            return
        query = (
            f"SELECT {' '.join('?' + n for n in names)} WHERE {{ "
            f"{_pattern_text(required)} OPTIONAL {{ {_pattern_text(optional)} }} }}"
        )
        via_engine = evaluate(graph, query)
        oracle = naive_project(
            naive_optional(graph, [required], [optional]), names
        )
        assert canonical(list(via_engine.rows)) == canonical(oracle)


class TestModifierLaws:
    """Algebraic laws that must hold for any query over any graph."""

    @given(dense_graphs(), st.lists(triple_patterns(), min_size=1, max_size=2))
    @settings(max_examples=60, deadline=None)
    def test_distinct_idempotent(self, graph, patterns):
        names = _vars_of(patterns)
        if not names:
            return
        body = " ".join(_pattern_text(p) for p in patterns)
        head = " ".join("?" + n for n in names)
        once = evaluate(graph, f"SELECT DISTINCT {head} WHERE {{ {body} }}")
        rows = canonical(list(once.rows))
        assert len(rows) == len(set(rows))

    @given(
        dense_graphs(),
        st.lists(triple_patterns(), min_size=1, max_size=2),
        st.integers(0, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_limit_is_prefix_of_ordered(self, graph, patterns, limit):
        names = _vars_of(patterns)
        if not names:
            return
        body = " ".join(_pattern_text(p) for p in patterns)
        head = " ".join("?" + n for n in names)
        order = " ".join("?" + n for n in names)
        full = evaluate(
            graph, f"SELECT {head} WHERE {{ {body} }} ORDER BY {order}"
        )
        page = evaluate(
            graph,
            f"SELECT {head} WHERE {{ {body} }} ORDER BY {order} LIMIT {limit}",
        )
        assert len(page.rows) == min(limit, len(full.rows))
        assert page.rows == full.rows[:limit]

    @given(dense_graphs(), st.lists(triple_patterns(), min_size=1, max_size=2))
    @settings(max_examples=60, deadline=None)
    def test_count_star_equals_row_count(self, graph, patterns):
        body = " ".join(_pattern_text(p) for p in patterns)
        names = _vars_of(patterns)
        if not names:
            return
        head = " ".join("?" + n for n in names)
        rows = evaluate(graph, f"SELECT {head} WHERE {{ {body} }}")
        counted = evaluate(
            graph, f"SELECT (COUNT(*) AS ?n) WHERE {{ {body} }}"
        )
        assert int(counted.scalar().lexical) == len(rows.rows)
