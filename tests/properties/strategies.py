"""Shared hypothesis strategies for RDF terms, triples, and graphs."""

from __future__ import annotations

import string

from hypothesis import strategies as st

from repro.rdf import BNode, Graph, Literal, Triple, URI

_SAFE_URI_CHARS = string.ascii_letters + string.digits + "_-.~"
_LABELS = st.text(
    alphabet=string.ascii_letters + string.digits + "_-.",
    min_size=1,
    max_size=12,
).filter(lambda s: not s.startswith(".") and not s.startswith("-"))


@st.composite
def uris(draw) -> URI:
    local = draw(
        st.text(alphabet=_SAFE_URI_CHARS, min_size=1, max_size=16)
    )
    namespace = draw(st.sampled_from(["http://ex.org/", "http://ex.org/ns#"]))
    return URI(namespace + local)


@st.composite
def bnodes(draw) -> BNode:
    return BNode(draw(_LABELS))


@st.composite
def plain_literals(draw) -> Literal:
    return Literal(draw(st.text(max_size=24)))


@st.composite
def language_literals(draw) -> Literal:
    text = draw(st.text(max_size=16))
    tag = draw(st.sampled_from(["en", "de", "fr", "en-GB", "zh-Hans"]))
    return Literal(text, language=tag)


@st.composite
def numeric_literals(draw) -> Literal:
    kind = draw(st.sampled_from(["int", "float"]))
    if kind == "int":
        return Literal(draw(st.integers(min_value=-10**9, max_value=10**9)))
    value = draw(
        st.floats(
            allow_nan=False,
            allow_infinity=False,
            min_value=-1e9,
            max_value=1e9,
        )
    )
    return Literal(value)


def literals() -> st.SearchStrategy[Literal]:
    return st.one_of(
        plain_literals(), language_literals(), numeric_literals()
    )


def subjects():
    return st.one_of(uris(), bnodes())


def rdf_objects():
    return st.one_of(uris(), bnodes(), literals())


@st.composite
def triples(draw) -> Triple:
    return Triple(draw(subjects()), draw(uris()), draw(rdf_objects()))


@st.composite
def graphs(draw, max_size: int = 40) -> Graph:
    return Graph(draw(st.lists(triples(), max_size=max_size)))
