"""Optimizer equivalence: the rewritten plan must return the same
solution multiset as the direct translation, for every query over every
graph.

Each test generates a random graph plus a random query of one shape
(filters, OPTIONAL, UNION, aggregates, ORDER BY/LIMIT), evaluates both
the raw and the optimized algebra, and compares canonical multisets —
or exact row lists where the query fixes a total order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import Graph, URI
from repro.sparql.algebra import translate_query
from repro.sparql.ast import TriplePatternNode, Var
from repro.sparql.evaluator import Evaluator
from repro.sparql.optimizer import PASS_NAMES, optimize
from repro.sparql.parser import parse_query

from .naive_sparql import canonical
from .test_sparql_differential import (
    _pattern_text,
    _vars_of,
    dense_graphs,
    triple_patterns,
)

_TERMS = [URI(f"http://ex.org/t{i}") for i in range(4)]


def _run_both(graph: Graph, query_text: str, passes=None):
    parsed = parse_query(query_text)
    raw = translate_query(parsed)
    optimized, _ = optimize(raw, graph=graph, passes=passes)
    before = Evaluator(graph).run_translated(parsed, raw)
    after = Evaluator(graph).run_translated(parsed, optimized)
    return before, after


def _assert_same_multiset(graph: Graph, query_text: str, passes=None) -> None:
    before, after = _run_both(graph, query_text, passes)
    assert canonical(list(after.rows)) == canonical(list(before.rows)), query_text


@st.composite
def filter_conditions(draw, names):
    """A random filter over (a subset of) the pattern variables."""
    name = draw(st.sampled_from(names))
    kind = draw(
        st.sampled_from(["eq_const", "neq_var", "bound", "true", "false", "mixed"])
    )
    term = draw(st.sampled_from(_TERMS)).n3()
    if kind == "eq_const":
        return f"?{name} = {term}"
    if kind == "neq_var":
        other = draw(st.sampled_from(names))
        return f"?{name} != ?{other}"
    if kind == "bound":
        return f"BOUND(?{name})"
    if kind == "true":
        return "1 = 1"
    if kind == "false":
        return "1 = 2"
    other = draw(st.sampled_from(names))
    return f"?{name} = {term} && ?{other} != {term}"


class TestOptimizerEquivalence:
    @given(dense_graphs(), st.lists(triple_patterns(), min_size=1, max_size=3), st.data())
    @settings(max_examples=120, deadline=None)
    def test_bgp_with_filter(self, graph, patterns, data):
        names = _vars_of(patterns)
        if not names:
            return
        condition = data.draw(filter_conditions(names))
        query = (
            f"SELECT {' '.join('?' + n for n in names)} WHERE {{ "
            + " ".join(_pattern_text(p) for p in patterns)
            + f" FILTER({condition}) }}"
        )
        _assert_same_multiset(graph, query)

    @given(dense_graphs(), triple_patterns(), triple_patterns(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_optional_with_filter(self, graph, required, optional, data):
        required_names = _vars_of([required])
        if not required_names:
            return
        names = _vars_of([required, optional])
        condition = data.draw(filter_conditions(required_names))
        query = (
            f"SELECT {' '.join('?' + n for n in names)} WHERE {{ "
            f"{_pattern_text(required)} "
            f"OPTIONAL {{ {_pattern_text(optional)} }} "
            f"FILTER({condition}) }}"
        )
        _assert_same_multiset(graph, query)

    @given(dense_graphs(), triple_patterns(), triple_patterns(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_union_with_filter(self, graph, left, right, data):
        names = _vars_of([left, right])
        if not names:
            return
        condition = data.draw(filter_conditions(names))
        query = (
            f"SELECT {' '.join('?' + n for n in names)} WHERE {{ "
            f"{{ {_pattern_text(left)} }} UNION {{ {_pattern_text(right)} }} "
            f"FILTER({condition}) }}"
        )
        _assert_same_multiset(graph, query)

    @given(dense_graphs(), st.lists(triple_patterns(), min_size=1, max_size=2), st.data())
    @settings(max_examples=100, deadline=None)
    def test_aggregates(self, graph, patterns, data):
        names = _vars_of(patterns)
        if len(names) < 2:
            return
        key, value = names[0], names[1]
        aggregate = data.draw(st.sampled_from(["COUNT", "MIN", "MAX", "SAMPLE"]))
        argument = "*" if aggregate == "COUNT" else f"?{value}"
        query = (
            f"SELECT ?{key} ({aggregate}({argument}) AS ?agg) WHERE {{ "
            + " ".join(_pattern_text(p) for p in patterns)
            + f" }} GROUP BY ?{key}"
        )
        _assert_same_multiset(graph, query)

    @given(
        dense_graphs(),
        st.lists(triple_patterns(), min_size=1, max_size=3),
        st.integers(0, 8),
        st.integers(0, 3),
        st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_order_by_limit_exact(self, graph, patterns, limit, offset, descending):
        """Total order (all variables as keys) -> exact row-list equality.

        This is the top-k fusion path: the bounded heap must reproduce
        the stable full sort bit for bit, including OFFSET handling.
        """
        names = _vars_of(patterns)
        if not names:
            return
        head = " ".join("?" + n for n in names)
        direction = "DESC" if descending else "ASC"
        order = " ".join(f"{direction}(?{n})" for n in names)
        query = (
            f"SELECT {head} WHERE {{ "
            + " ".join(_pattern_text(p) for p in patterns)
            + f" }} ORDER BY {order} LIMIT {limit} OFFSET {offset}"
        )
        before, after = _run_both(graph, query)
        assert after.rows == before.rows, query

    @given(dense_graphs(), st.lists(triple_patterns(), min_size=1, max_size=2))
    @settings(max_examples=60, deadline=None)
    def test_distinct_order_limit(self, graph, patterns):
        """DISTINCT between LIMIT and ORDER BY must block top-k fusion."""
        names = _vars_of(patterns)
        if not names:
            return
        head = " ".join("?" + n for n in names)
        order = " ".join("?" + n for n in names)
        query = (
            f"SELECT DISTINCT {head} WHERE {{ "
            + " ".join(_pattern_text(p) for p in patterns)
            + f" }} ORDER BY {order} LIMIT 3"
        )
        before, after = _run_both(graph, query)
        assert after.rows == before.rows, query

    @given(
        dense_graphs(),
        st.lists(triple_patterns(), min_size=1, max_size=3),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_each_pass_alone(self, graph, patterns, data):
        """Every pass must preserve semantics in isolation, not just the
        full pipeline."""
        names = _vars_of(patterns)
        if not names:
            return
        condition = data.draw(filter_conditions(names))
        pass_name = data.draw(st.sampled_from(list(PASS_NAMES)))
        query = (
            f"SELECT {' '.join('?' + n for n in names)} WHERE {{ "
            + " ".join(_pattern_text(p) for p in patterns)
            + f" FILTER({condition}) }}"
        )
        _assert_same_multiset(graph, query, passes=[pass_name])
