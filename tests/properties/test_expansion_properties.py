"""Property-based tests for the formal model invariants (Section 2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Bar,
    BarChart,
    BarType,
    Direction,
    object_expansion,
    property_expansion,
    root_bar,
    subclass_expansion,
)
from repro.rdf import Graph, RDF, RDFS, Triple, URI

_RDF_TYPE = RDF.term("type")
_SUBCLASS = RDFS.term("subClassOf")

_CLASSES = [URI(f"http://ex/C{i}") for i in range(5)]
_PROPS = [URI(f"http://ex/p{i}") for i in range(4)]
_NODES = [URI(f"http://ex/n{i}") for i in range(12)]


@st.composite
def ontology_graphs(draw) -> Graph:
    """Random small graphs with a class hierarchy and typed nodes."""
    graph = Graph()
    # Random tree-ish hierarchy over the classes.
    for index, cls in enumerate(_CLASSES[1:], start=1):
        parent = _CLASSES[draw(st.integers(0, index - 1))]
        graph.add(cls, _SUBCLASS, parent)
    # Random typing.
    for node in _NODES:
        for cls in draw(st.sets(st.sampled_from(_CLASSES), max_size=3)):
            graph.add(node, _RDF_TYPE, cls)
    # Random edges.
    edge_count = draw(st.integers(0, 25))
    for _ in range(edge_count):
        s = draw(st.sampled_from(_NODES))
        p = draw(st.sampled_from(_PROPS))
        o = draw(st.sampled_from(_NODES))
        graph.add(s, p, o)
    return graph


@st.composite
def class_bars(draw, graph: Graph) -> Bar:
    cls = draw(st.sampled_from(_CLASSES))
    members = frozenset(graph.subjects(_RDF_TYPE, cls))
    # Possibly narrow the set (bars need not hold all instances).
    if members and draw(st.booleans()):
        members = frozenset(
            draw(st.sets(st.sampled_from(sorted(members, key=str)), max_size=len(members)))
        )
    return Bar(label=cls, type=BarType.CLASS, uris=members)


class TestSubclassExpansionInvariants:
    @given(st.data())
    @settings(max_examples=60)
    def test_bars_subset_of_input(self, data):
        graph = data.draw(ontology_graphs())
        bar = data.draw(class_bars(graph))
        chart = subclass_expansion(graph, bar)
        for sub_bar in chart:
            assert sub_bar.uris <= bar.uris

    @given(st.data())
    @settings(max_examples=60)
    def test_labels_are_exactly_declared_subclasses(self, data):
        graph = data.draw(ontology_graphs())
        bar = data.draw(class_bars(graph))
        chart = subclass_expansion(graph, bar)
        declared = set(graph.subjects(_SUBCLASS, bar.label))
        assert set(chart.labels()) == declared

    @given(st.data())
    @settings(max_examples=60)
    def test_membership_definition(self, data):
        graph = data.draw(ontology_graphs())
        bar = data.draw(class_bars(graph))
        chart = subclass_expansion(graph, bar)
        for sub_bar in chart:
            for member in sub_bar.uris:
                assert (member, _RDF_TYPE, sub_bar.label) in graph


class TestPropertyExpansionInvariants:
    @given(st.data())
    @settings(max_examples=60)
    def test_union_of_bars_covers_featuring_members(self, data):
        graph = data.draw(ontology_graphs())
        bar = data.draw(class_bars(graph))
        chart = property_expansion(graph, bar)
        union = set()
        for prop_bar in chart:
            union |= prop_bar.uris
        featuring = {
            member
            for member in bar.uris
            if any(True for _ in graph.triples(member, None, None))
        }
        assert union == featuring

    @given(st.data())
    @settings(max_examples=60)
    def test_coverage_bounds_and_consistency(self, data):
        graph = data.draw(ontology_graphs())
        bar = data.draw(class_bars(graph))
        chart = property_expansion(graph, bar)
        for prop_bar in chart:
            assert 0.0 < prop_bar.coverage <= 1.0
            assert prop_bar.coverage == len(prop_bar.uris) / max(1, bar.size)

    @given(st.data())
    @settings(max_examples=40)
    def test_incoming_outgoing_duality(self, data):
        """s in outgoing-B[p] of S  <=>  some (s, p, o); and the incoming
        chart of the *whole node set* mirrors edges reversed."""
        graph = data.draw(ontology_graphs())
        everything = Bar(
            label=URI("http://ex/All"),
            type=BarType.CLASS,
            uris=frozenset(n for n in _NODES),
        )
        outgoing = property_expansion(graph, everything, Direction.OUTGOING)
        incoming = property_expansion(graph, everything, Direction.INCOMING)
        for prop in _PROPS:
            out_members = outgoing[prop].uris if prop in outgoing else frozenset()
            in_members = incoming[prop].uris if prop in incoming else frozenset()
            assert out_members == {
                t.subject for t in graph.triples(None, prop, None)
            } & everything.uris
            assert in_members == {
                t.object for t in graph.triples(None, prop, None)
            } & everything.uris


class TestObjectExpansionInvariants:
    @given(st.data())
    @settings(max_examples=60)
    def test_objects_connected_and_typed(self, data):
        graph = data.draw(ontology_graphs())
        bar = data.draw(class_bars(graph))
        chart = property_expansion(graph, bar)
        for prop_bar in list(chart)[:2]:
            object_chart = object_expansion(graph, prop_bar)
            connected = set()
            for member in prop_bar.uris:
                connected |= set(graph.objects(member, prop_bar.label))
            for type_bar in object_chart:
                for node in type_bar.uris:
                    assert node in connected
                    assert (node, _RDF_TYPE, type_bar.label) in graph


class TestChartInvariants:
    @given(st.data())
    @settings(max_examples=40)
    def test_sorted_by_decreasing_support(self, data):
        graph = data.draw(ontology_graphs())
        bar = data.draw(class_bars(graph))
        for chart in (
            subclass_expansion(graph, bar),
            property_expansion(graph, bar),
        ):
            sizes = [b.size for b in chart.sorted_bars()]
            assert sizes == sorted(sizes, reverse=True)

    @given(st.data(), st.floats(min_value=0, max_value=1))
    @settings(max_examples=40)
    def test_threshold_monotone(self, data, threshold):
        graph = data.draw(ontology_graphs())
        bar = data.draw(class_bars(graph))
        chart = property_expansion(graph, bar)
        kept = chart.above_coverage(threshold)
        assert len(kept) <= len(chart)
        stricter = chart.above_coverage(min(1.0, threshold + 0.2))
        assert len(stricter) <= len(kept)

    @given(st.data())
    @settings(max_examples=40)
    def test_filter_bars_shrink(self, data):
        graph = data.draw(ontology_graphs())
        bar = data.draw(class_bars(graph))
        chart = subclass_expansion(graph, bar)
        filtered = chart.filter_bars(lambda u: u.value.endswith(("1", "3", "5")))
        for label in filtered.labels():
            assert filtered[label].size <= chart[label].size
            assert filtered[label].uris <= chart[label].uris
