"""Differential tests for property-path closures against networkx
reachability on random edge sets, plus parser robustness fuzzing."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import Graph, URI
from repro.sparql import SparqlError, evaluate, parse_query
from repro.sparql.ast import InversePath, RepeatPath, SequencePath
from repro.sparql.errors import SparqlSyntaxError
from repro.sparql.paths import eval_path

_NODES = [URI(f"http://ex/n{i}") for i in range(8)]
_EDGE = URI("http://ex/edge")
_OTHER = URI("http://ex/other")


@st.composite
def edge_graphs(draw):
    """A random digraph over 8 nodes, as RDF triples + a networkx copy."""
    graph = Graph()
    digraph = nx.DiGraph()
    digraph.add_nodes_from(range(len(_NODES)))
    count = draw(st.integers(0, 20))
    for _ in range(count):
        a = draw(st.integers(0, len(_NODES) - 1))
        b = draw(st.integers(0, len(_NODES) - 1))
        graph.add(_NODES[a], _EDGE, _NODES[b])
        digraph.add_edge(a, b)
    return graph, digraph


class TestClosureVsNetworkx:
    @given(edge_graphs(), st.integers(0, 7))
    @settings(max_examples=100, deadline=None)
    def test_plus_closure_equals_descendants(self, data, start):
        graph, digraph = data
        path = RepeatPath(_EDGE, min_hops=1)
        reached = {
            target for (_s, target) in eval_path(graph, _NODES[start], path, None)
        }
        expected = {_NODES[i] for i in nx.descendants(digraph, start)}
        # nx.descendants excludes the start node even on cycles through it;
        # SPARQL p+ includes it when reachable in >= 1 hop.
        if digraph.has_edge(start, start) or any(
            digraph.has_edge(other, start)
            for other in nx.descendants(digraph, start)
        ):
            expected.add(_NODES[start])
        assert reached == expected

    @given(edge_graphs(), st.integers(0, 7))
    @settings(max_examples=100, deadline=None)
    def test_star_closure_adds_zero_hop(self, data, start):
        graph, digraph = data
        plus = {
            target
            for (_s, target) in eval_path(
                graph, _NODES[start], RepeatPath(_EDGE, min_hops=1), None
            )
        }
        star = {
            target
            for (_s, target) in eval_path(
                graph, _NODES[start], RepeatPath(_EDGE, min_hops=0), None
            )
        }
        assert star == plus | {_NODES[start]}

    @given(edge_graphs(), st.integers(0, 7))
    @settings(max_examples=60, deadline=None)
    def test_backward_closure_equals_ancestors(self, data, end):
        graph, digraph = data
        path = RepeatPath(_EDGE, min_hops=1)
        sources = {
            source for (source, _o) in eval_path(graph, None, path, _NODES[end])
        }
        expected = {_NODES[i] for i in nx.ancestors(digraph, end)}
        if digraph.has_edge(end, end) or any(
            digraph.has_edge(end, other) for other in nx.ancestors(digraph, end)
        ):
            expected.add(_NODES[end])
        assert sources == expected

    @given(edge_graphs(), st.integers(0, 7))
    @settings(max_examples=60, deadline=None)
    def test_inverse_closure_swaps_directions(self, data, start):
        graph, _digraph = data
        forward = {
            target
            for (_s, target) in eval_path(
                graph, _NODES[start], RepeatPath(_EDGE, min_hops=1), None
            )
        }
        backward = {
            target
            for (_s, target) in eval_path(
                graph,
                _NODES[start],
                RepeatPath(InversePath(_EDGE), min_hops=1),
                None,
            )
        }
        expected_backward = {
            source
            for (source, _o) in eval_path(
                graph, None, RepeatPath(_EDGE, min_hops=1), _NODES[start]
            )
        }
        assert backward == expected_backward
        del forward  # direction independence asserted via expected set

    @given(edge_graphs(), st.integers(0, 7))
    @settings(max_examples=60, deadline=None)
    def test_two_hop_sequence(self, data, start):
        graph, digraph = data
        two_hop = {
            target
            for (_s, target) in eval_path(
                graph, _NODES[start], SequencePath((_EDGE, _EDGE)), None
            )
        }
        expected = set()
        for mid in digraph.successors(start):
            for end in digraph.successors(mid):
                expected.add(_NODES[end])
        assert two_hop == expected


class TestParserRobustness:
    """The parser may reject input, but must never crash with anything
    other than a SPARQL syntax error."""

    @given(st.text(max_size=120))
    @settings(max_examples=300, deadline=None)
    def test_random_text_never_crashes(self, text):
        try:
            parse_query(text)
        except SparqlSyntaxError:
            pass

    @given(
        st.lists(
            st.sampled_from(
                [
                    "SELECT", "WHERE", "{", "}", "(", ")", "?s", "?p", "?o",
                    "FILTER", "OPTIONAL", "UNION", ".", ";", ",", "*", "+",
                    "a", "<http://x>", '"lit"', "5", "GROUP", "BY", "ORDER",
                    "LIMIT", "COUNT", "AS", "ASK", "CONSTRUCT", "/", "|", "^",
                ]
            ),
            max_size=25,
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_token_soup_never_crashes(self, tokens):
        try:
            parse_query(" ".join(tokens))
        except SparqlSyntaxError:
            pass

    @given(st.text(max_size=80))
    @settings(max_examples=150, deadline=None)
    def test_evaluate_random_text_raises_sparql_errors_only(self, text):
        graph = Graph()
        try:
            evaluate(graph, text)
        except SparqlError:
            pass
