"""Encoded (ID-space) execution ≡ term-object execution.

PR 5 moved the physical operators onto dictionary-encoded integer
bindings with late materialization at the plan root.  These properties
pin the equivalence down: on random graphs and random queries, the
physical engine (encoded) must produce exactly the rows, the order, and
the ``EvalStats`` of the recursive evaluator (term space) — including
when execution is suspended at random points via ``run_quantum`` and
restored from a serialised continuation token."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import Graph, Literal, URI
from repro.sparql.algebra import translate_query
from repro.sparql.evaluator import Evaluator
from repro.sparql.executor import (
    decode_continuation,
    encode_continuation,
    restore_plan,
    run_quantum,
    run_to_completion,
)
from repro.sparql.optimizer import optimize
from repro.sparql.parser import parse_query
from repro.sparql.planner import PhysicalPlanFactory

EX = "http://ex.org/"

_SUBJECTS = [URI(EX + f"s{i}") for i in range(5)]
_PREDS = [URI(EX + f"p{i}") for i in range(3)]
_OBJECTS = _SUBJECTS[:3] + [URI(EX + "o0"), URI(EX + "o1")] + [
    Literal(i) for i in range(4)
]


@st.composite
def dense_graphs(draw) -> Graph:
    """Small graphs over a tiny vocabulary so joins actually match."""
    graph = Graph()
    for _ in range(draw(st.integers(1, 30))):
        graph.add(
            draw(st.sampled_from(_SUBJECTS)),
            draw(st.sampled_from(_PREDS)),
            draw(st.sampled_from(_OBJECTS)),
        )
    return graph


@st.composite
def queries(draw) -> str:
    count = draw(st.integers(1, 3))
    patterns = []
    names: list = []

    def var(name):
        if name not in names:
            names.append(name)
        return f"?{name}"

    for index in range(count):
        subject = (
            var(draw(st.sampled_from("ab")))
            if index == 0 or draw(st.booleans())
            else draw(st.sampled_from(_SUBJECTS)).n3()
        )
        predicate = draw(st.sampled_from(_PREDS)).n3()
        object = (
            var(draw(st.sampled_from("bc")))
            if draw(st.booleans())
            else draw(st.sampled_from(_OBJECTS)).n3()
        )
        patterns.append(f"{subject} {predicate} {object} .")
    body = " ".join(patterns)
    if draw(st.booleans()):
        body += f" FILTER(?{names[0]} != <{EX}s0>)"
    form = draw(st.sampled_from(["plain", "plain", "distinct", "count"]))
    if form == "count":
        return (
            f"SELECT ?{names[0]} (COUNT(?{names[0]}) AS ?n) "
            f"WHERE {{ {body} }} GROUP BY ?{names[0]}"
        )
    head = "DISTINCT " if form == "distinct" else ""
    modifier = draw(
        st.sampled_from(
            [
                "",
                f" ORDER BY ?{names[0]}",
                " LIMIT 5",
                f" ORDER BY DESC(?{names[0]}) LIMIT 4",
            ]
        )
    )
    return (
        f"SELECT {head}{' '.join('?' + name for name in names)} "
        f"WHERE {{ {body} }}{modifier}"
    )


def _compile(graph, text):
    query = parse_query(text)
    algebra, _ = optimize(translate_query(query), graph=graph)
    return query, algebra


def _stats_tuple(stats):
    return (
        stats.intermediate_bindings,
        stats.pattern_scans,
        stats.groups,
        stats.results,
    )


@given(dense_graphs(), queries())
@settings(max_examples=80, deadline=None)
def test_encoded_execution_matches_term_execution(graph, text):
    """One-shot: identical rows, order, and work counters."""
    query, algebra = _compile(graph, text)
    evaluator = Evaluator(graph)
    expected = evaluator.run_translated(query, algebra)

    plan = PhysicalPlanFactory(query, algebra).instantiate(graph)
    actual = run_to_completion(plan)

    assert actual.vars == expected.vars
    assert actual.rows == expected.rows  # values AND order
    assert _stats_tuple(plan.stats) == _stats_tuple(evaluator.stats)


@given(dense_graphs(), queries(), st.integers(min_value=1, max_value=5))
@settings(max_examples=50, deadline=None)
def test_suspended_encoded_execution_matches_term_execution(
    graph, text, page_size
):
    """Random suspension points: paging the encoded plan through
    serialised continuation tokens reproduces the term-space answer."""
    query, algebra = _compile(graph, text)
    evaluator = Evaluator(graph)
    expected = evaluator.run_translated(query, algebra)

    factory = PhysicalPlanFactory(query, algebra)
    plan = factory.instantiate(graph)
    rows = []
    bindings = 0
    scans = 0
    for _ in range(10_000):
        page = run_quantum(plan, page_size=page_size)
        rows.extend(page.rows)
        bindings += page.stats.intermediate_bindings
        scans += page.stats.pattern_scans
        if page.complete:
            break
        token = encode_continuation(plan, graph, text)
        plan = restore_plan(factory, graph, decode_continuation(token))
    else:  # pragma: no cover - guards against a non-terminating loop
        raise AssertionError("paged execution did not terminate")

    assert rows == expected.rows
    assert bindings == evaluator.stats.intermediate_bindings
    assert scans == evaluator.stats.pattern_scans
