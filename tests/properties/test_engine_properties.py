"""Property-based tests: the SPARQL path (engine) agrees with the
reference expansions on randomly generated ontologies, and incremental
evaluation converges to one-shot results."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Bar,
    BarType,
    ChartEngine,
    Direction,
    MemberPattern,
    property_expansion,
    root_bar,
    subclass_expansion,
)
from repro.endpoint import LocalEndpoint
from repro.perf import (
    HeavyQueryStore,
    IncrementalConfig,
    IncrementalEvaluator,
    SpecializedIndexes,
)
from repro.rdf import Graph
from repro.sparql import evaluate

from .test_expansion_properties import _CLASSES, _RDF_TYPE, ontology_graphs


def heights(chart):
    return {bar.label: bar.size for bar in chart}


class TestEngineAgreesOnRandomGraphs:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_subclass_charts(self, data):
        graph = data.draw(ontology_graphs())
        cls = data.draw(st.sampled_from(_CLASSES))
        engine = ChartEngine(LocalEndpoint(graph), cls)
        reference = subclass_expansion(graph, root_bar(graph, cls))
        assert heights(engine.initial_chart()) == heights(reference)

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_charts(self, data):
        graph = data.draw(ontology_graphs())
        cls = data.draw(st.sampled_from(_CLASSES))
        direction = data.draw(
            st.sampled_from([Direction.OUTGOING, Direction.INCOMING])
        )
        engine = ChartEngine(LocalEndpoint(graph), cls)
        reference_bar = root_bar(graph, cls)
        engine_bar = Bar(
            label=cls,
            type=BarType.CLASS,
            count=reference_bar.size,
            pattern=MemberPattern.of_type(cls),
        )
        assert heights(engine.property_chart(engine_bar, direction)) == heights(
            property_expansion(graph, reference_bar, direction)
        )

    @given(st.data())
    @settings(max_examples=20, deadline=None)
    def test_decomposer_index_agrees(self, data):
        graph = data.draw(ontology_graphs())
        cls = data.draw(st.sampled_from(_CLASSES))
        direction = data.draw(
            st.sampled_from([Direction.OUTGOING, Direction.INCOMING])
        )
        indexes = SpecializedIndexes(graph)
        rows = indexes.property_expansion([cls], direction)
        reference = property_expansion(
            graph, root_bar(graph, cls), direction
        )
        if not list(graph.subjects(_RDF_TYPE, cls)):
            # Class without instances: index knows nothing about it.
            assert rows is None or rows == []
            return
        assert {row.prop: row.subject_count for row in rows} == {
            bar.label: bar.size for bar in reference
        }


class TestIncrementalConvergence:
    QUERY = (
        "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
        "SELECT ?t (COUNT(?s) AS ?n) WHERE { ?s rdf:type ?t } GROUP BY ?t"
    )

    @given(st.data(), st.integers(min_value=1, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_any_window_size_converges(self, data, window):
        graph = data.draw(ontology_graphs())
        if len(graph) == 0:
            return
        one_shot = evaluate(graph, self.QUERY)
        final = IncrementalEvaluator(
            graph, IncrementalConfig(window_size=window)
        ).run_to_completion(self.QUERY)
        def as_map(result):
            return {
                row["t"]: int(row["n"].lexical) for row in result.rows
            }
        assert as_map(final.result) == as_map(one_shot)
        assert final.complete


class TestHvsProperties:
    @given(
        st.lists(
            st.tuples(
                st.text(min_size=1, max_size=30),
                st.floats(min_value=0, max_value=10_000),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_only_heavy_queries_ever_cached(self, workload):
        from repro.sparql.results import AskResult

        hvs = HeavyQueryStore(threshold_ms=1000)
        for query, runtime in workload:
            hvs.record(query, AskResult(True), runtime, dataset_version=1)
        for entry in hvs.entries().values():
            assert entry.original_runtime_ms > 1000

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_version_changes_always_clear(self, versions):
        from repro.sparql.results import AskResult

        hvs = HeavyQueryStore()
        previous = None
        for version in versions:
            hvs.record(f"q{version}", AskResult(True), 5000, version)
            if previous is not None and previous != version:
                # After a version change only the new entry may live.
                assert len(hvs) == 1
            previous = version
