"""Property-based tests for the RDF substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import Graph, parse_ntriples, parse_turtle, serialize_ntriples, serialize_turtle

from .strategies import graphs, rdf_objects, subjects, triples, uris


class TestGraphInvariants:
    @given(graphs())
    def test_size_equals_iterated_triples(self, graph):
        assert len(graph) == sum(1 for _ in graph)

    @given(graphs(), triples())
    def test_add_then_contains(self, graph, triple):
        graph.add_triple(triple)
        assert tuple(triple) in graph
        assert triple in set(graph.triples())

    @given(graphs(), triples())
    def test_add_remove_restores(self, graph, triple):
        was_present = tuple(triple) in graph
        graph.add_triple(triple)
        if not was_present:
            graph.remove(*triple)
        assert (tuple(triple) in graph) == was_present

    @given(graphs())
    def test_indexes_consistent(self, graph):
        """All three indexes answer single-position queries identically
        to a full scan."""
        everything = list(graph.triples())
        for triple in everything[:10]:
            assert triple.subject in set(graph.subjects(triple.predicate, triple.object))
            assert triple.predicate in set(
                graph.predicates(triple.subject, triple.object)
            )
            assert triple.object in set(
                graph.objects(triple.subject, triple.predicate)
            )

    @given(graphs(), subjects(), uris(), rdf_objects())
    def test_count_matches_materialised(self, graph, s, p, o):
        for pattern in [(s, None, None), (None, p, None), (None, None, o), (s, p, None)]:
            assert graph.count(*pattern) == len(list(graph.triples(*pattern)))

    @given(graphs(), st.integers(min_value=1, max_value=10))
    def test_windows_partition(self, graph, size):
        windows = list(graph.windows(size))
        combined = Graph()
        for window in windows:
            for triple in window:
                assert combined.add_triple(triple), "duplicate across windows"
        assert set(combined) == set(graph)

    @given(graphs())
    def test_version_monotone_under_mutation(self, graph):
        versions = [graph.version]
        for triple in list(graph.triples())[:5]:
            graph.remove(*triple)
            versions.append(graph.version)
        assert versions == sorted(versions)
        assert len(set(versions)) == len(versions)


class TestSerialisationRoundTrips:
    @given(graphs())
    @settings(max_examples=50)
    def test_ntriples_round_trip(self, graph):
        text = serialize_ntriples(graph, sort=True)
        assert set(Graph(parse_ntriples(text))) == set(graph)

    @given(graphs(max_size=20))
    @settings(max_examples=50)
    def test_turtle_round_trip(self, graph):
        text = serialize_turtle(graph)
        assert set(parse_turtle(text)) == set(graph)

    @given(graphs())
    @settings(max_examples=25)
    def test_ntriples_deterministic(self, graph):
        assert serialize_ntriples(graph, sort=True) == serialize_ntriples(
            graph.copy(), sort=True
        )


class TestTermOrdering:
    @given(st.lists(rdf_objects(), min_size=2, max_size=20))
    def test_sort_key_total_order(self, terms):
        keys = [t.sort_key() for t in terms]
        ordered = sorted(terms)
        assert [t.sort_key() for t in ordered] == sorted(keys)

    @given(rdf_objects(), rdf_objects())
    def test_equality_consistent_with_hash(self, a, b):
        if a == b:
            assert hash(a) == hash(b)

    @given(rdf_objects())
    def test_n3_round_trips_as_object(self, term):
        from repro.rdf import URI, parse_ntriples_line

        line = f"<http://s> <http://p> {term.n3()} ."
        triple = parse_ntriples_line(line)
        assert triple.object == term
