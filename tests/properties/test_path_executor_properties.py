"""Property tests for preemptable property paths (PR 8): paging a path
query through continuation tokens — suspending at random page sizes and
serialising the token at every boundary — must reproduce the one-shot
answer exactly (rows, order, and work counters); and because traversal
state is explicit and emission is in canonical sorted-ID order, a token
saved against one mmap of a snapshot must resume *byte-identically*
against another mmap of the same snapshot (the PR 7 worker fleet), and
against a completely fresh process."""

import json
import os
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import Graph, URI
from repro.rdf.snapshot import SnapshotGraph, build_snapshot_bytes
from repro.sparql.executor import (
    decode_continuation,
    encode_continuation,
    restore_plan,
    run_quantum,
    run_to_completion,
)
from repro.sparql.planner import build_physical_plan

_TERMS = [URI(f"http://ex.org/t{i}") for i in range(5)]
_P = "<http://ex.org/p>"
_Q = "<http://ex.org/q>"

#: Path shapes covering every lowered primitive: closures from each
#: endpoint shape, inverse, sequence, alternative, and a join with a
#: flat pattern (path scan mid-pipeline).
_PATH_QUERIES = [
    f"SELECT ?a ?b WHERE {{ ?a {_P}* ?b }}",
    f"SELECT ?a ?b WHERE {{ ?a {_P}+ ?b }}",
    f"SELECT ?a ?b WHERE {{ ?a {_P}? ?b }}",
    f"SELECT ?b WHERE {{ <http://ex.org/t0> {_P}* ?b }}",
    f"SELECT ?a WHERE {{ ?a {_P}+ <http://ex.org/t1> }}",
    f"SELECT ?a ?b WHERE {{ ?a ^{_P} ?b }}",
    f"SELECT ?a ?b WHERE {{ ?a {_P}/{_Q} ?b }}",
    f"SELECT ?a ?b WHERE {{ ?a ({_P}|{_Q})+ ?b }}",
    f"SELECT ?a ?b WHERE {{ ?a {_P}/{_Q}* ?b }}",
    f"SELECT ?a ?b WHERE {{ ?a (^{_P}|{_Q})* ?b }}",
    f"SELECT ?a ?b ?c WHERE {{ ?a {_P}* ?b . ?b {_Q} ?c . }}",
    f"SELECT ?a ?b WHERE {{ ?a {_P}* ?b }} ORDER BY ?a LIMIT 9",
]


@st.composite
def path_graphs(draw) -> Graph:
    """Small dense graphs: cycles and diamonds happen constantly."""
    graph = Graph()
    preds = [URI("http://ex.org/p"), URI("http://ex.org/q")]
    count = draw(st.integers(1, 20))
    with graph.bulk():
        for _ in range(count):
            graph.add(
                draw(st.sampled_from(_TERMS)),
                draw(st.sampled_from(preds)),
                draw(st.sampled_from(_TERMS)),
            )
    return graph


def _canonical(rows):
    return [
        tuple(sorted((name, value.n3()) for name, value in row.items()))
        for row in rows
    ]


@given(
    path_graphs(),
    st.sampled_from(_PATH_QUERIES),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=80, deadline=None)
def test_paged_path_query_equals_one_shot(graph, query, page_size):
    expected_plan = build_physical_plan(graph, query)
    expected = run_to_completion(expected_plan)

    factory = build_physical_plan(graph, query).factory
    plan = factory.instantiate(graph)
    rows = []
    scans = 0
    bindings = 0
    for _ in range(10_000):
        page = run_quantum(plan, page_size=page_size)
        rows.extend(page.rows)
        scans += page.stats.pattern_scans
        bindings += page.stats.intermediate_bindings
        assert len(page.rows) <= page_size
        if page.complete:
            break
        token = encode_continuation(plan, graph, query)
        plan = restore_plan(factory, graph, decode_continuation(token))
    else:  # pragma: no cover
        raise AssertionError("paged execution did not terminate")

    assert _canonical(rows) == _canonical(expected.rows)  # order too
    assert scans == expected_plan.stats.pattern_scans
    assert bindings == expected_plan.stats.intermediate_bindings


@given(
    path_graphs(),
    st.sampled_from(_PATH_QUERIES),
    st.integers(min_value=1, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_path_tokens_transfer_between_snapshot_mmaps(graph, query, page_size):
    """Alternate every page between two independent opens of the same
    snapshot — the worker-fleet shape — and check rows, order, and that
    the token each side would save at the same suspension point is
    byte-identical."""
    data = build_snapshot_bytes(graph)
    workers = [
        SnapshotGraph.from_bytes(data, verify=False),
        SnapshotGraph.from_bytes(data, verify=False),
    ]
    expected = run_to_completion(build_physical_plan(workers[0], query))

    factories = [build_physical_plan(w, query).factory for w in workers]
    active = 0
    plan = factories[0].instantiate(workers[0])
    rows = []
    for _ in range(10_000):
        page = run_quantum(plan, page_size=page_size)
        rows.extend(page.rows)
        if page.complete:
            break
        token = encode_continuation(plan, workers[active], query)
        # The other worker must re-mint the identical token after a
        # state-preserving load (byte-portability acceptance check).
        other = 1 - active
        mirrored = restore_plan(
            factories[other], workers[other], decode_continuation(token)
        )
        assert encode_continuation(mirrored, workers[other], query) == token
        active = other
        plan = mirrored
    else:  # pragma: no cover
        raise AssertionError("paged execution did not terminate")

    assert _canonical(rows) == _canonical(expected.rows)


_SUBPROCESS_SCRIPT = """
import json, sys
from repro.rdf import Graph, URI
from repro.sparql.executor import decode_continuation, restore_plan, run_quantum
from repro.sparql.planner import build_physical_plan

spec = json.loads(sys.stdin.read())
graph = Graph()
with graph.bulk():
    for s, p, o in spec["triples"]:
        graph.add(URI(s), URI(p), URI(o))
plan = restore_plan(
    build_physical_plan(graph, spec["query"]).factory,
    graph,
    decode_continuation(spec["token"]),
)
rows = []
for _ in range(10_000):
    page = run_quantum(plan, page_size=spec["page_size"])
    rows.extend(page.rows)
    if page.complete:
        break
print(json.dumps([
    sorted((name, value.n3()) for name, value in row.items()) for row in rows
]))
"""


def test_path_token_replayed_in_fresh_process_yields_identical_rows():
    """Regression for the pre-PR 8 hazard: `path_hop` iterated unordered
    sets, so a token resumed under a different PYTHONHASHSEED could
    replay the remaining traversal in a different order.  The same graph
    + query + token must now finish identically in a fresh interpreter."""
    triples = []
    for a, b in [("A", "B"), ("B", "C"), ("C", "A"), ("C", "D"), ("B", "E")]:
        triples.append(
            (f"http://ex.org/{a}", "http://ex.org/p", f"http://ex.org/{b}")
        )
    graph = Graph()
    with graph.bulk():
        for s, p, o in triples:
            graph.add(URI(s), URI(p), URI(o))
    query = "SELECT ?a ?b WHERE { ?a <http://ex.org/p>* ?b }"
    page_size = 3

    plan = build_physical_plan(graph, query)
    first = run_quantum(plan, page_size=page_size)
    assert not first.complete
    token = encode_continuation(plan, graph, query)

    # Reference: finish in this process.
    rest = []
    factory = build_physical_plan(graph, query).factory
    resumed = restore_plan(factory, graph, decode_continuation(token))
    for _ in range(10_000):
        page = run_quantum(resumed, page_size=page_size)
        rest.extend(page.rows)
        if page.complete:
            break

    # Replay: finish in a fresh interpreter (fresh hash seed).
    env = dict(os.environ)
    env.pop("PYTHONHASHSEED", None)  # randomized per process
    spec = json.dumps(
        {
            "triples": triples,
            "query": query,
            "token": token,
            "page_size": page_size,
        }
    )
    result = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT],
        input=spec,
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    replayed = json.loads(result.stdout)
    expected = [
        sorted((name, value.n3()) for name, value in row.items())
        for row in rest
    ]
    assert [[tuple(item) for item in row] for row in replayed] == [
        [tuple(item) for item in row] for row in expected
    ]
