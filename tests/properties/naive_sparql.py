"""A deliberately naive SPARQL evaluator used as a differential-testing
oracle.

Evaluates basic graph patterns by exhaustive scan over all triples with
no indexes, no join ordering, and no hashing; solution modifiers by
materialise-then-transform.  Slow but obviously correct — the engine is
compared against it on random graphs and random queries.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Sequence

from repro.rdf import Graph, Term
from repro.sparql.ast import TriplePatternNode, Var
from repro.sparql.errors import ExpressionError
from repro.sparql.functions import (
    effective_boolean_value,
    evaluate_expression,
    term_order_key,
)

Binding = Dict[str, Term]


def _match_triple(pattern: TriplePatternNode, triple, binding: Binding) -> Optional[Binding]:
    out = dict(binding)
    for term, value in zip(pattern, triple):
        if isinstance(term, Var):
            bound = out.get(term.name)
            if bound is None:
                out[term.name] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return out


def naive_bgp(graph: Graph, patterns: Sequence[TriplePatternNode]) -> List[Binding]:
    """All solutions of a BGP by exhaustive enumeration."""
    triples = list(graph.triples())
    solutions: List[Binding] = [{}]
    for pattern in patterns:
        next_solutions: List[Binding] = []
        for binding in solutions:
            for triple in triples:
                extended = _match_triple(pattern, triple, binding)
                if extended is not None:
                    next_solutions.append(extended)
        solutions = next_solutions
    return solutions


def naive_filter(solutions: List[Binding], expression) -> List[Binding]:
    kept = []
    for binding in solutions:
        try:
            if effective_boolean_value(evaluate_expression(expression, binding)):
                kept.append(binding)
        except ExpressionError:
            continue
    return kept


def naive_project(solutions: List[Binding], names: Sequence[str]) -> List[Binding]:
    return [
        {name: binding[name] for name in names if name in binding}
        for binding in solutions
    ]


def naive_distinct(solutions: List[Binding]) -> List[Binding]:
    seen = set()
    out = []
    for binding in solutions:
        key = tuple(sorted(binding.items()))
        if key not in seen:
            seen.add(key)
            out.append(binding)
    return out


def naive_order(solutions: List[Binding], names: Sequence[str]) -> List[Binding]:
    return sorted(
        solutions,
        key=lambda binding: [term_order_key(binding.get(n)) for n in names],
    )


def naive_union(graph: Graph, branches) -> List[Binding]:
    out: List[Binding] = []
    for patterns in branches:
        out.extend(naive_bgp(graph, patterns))
    return out


def naive_optional(
    graph: Graph,
    required: Sequence[TriplePatternNode],
    optional: Sequence[TriplePatternNode],
) -> List[Binding]:
    """LeftJoin of two BGPs, naively."""
    left = naive_bgp(graph, required)
    out: List[Binding] = []
    for binding in left:
        extensions = []
        for candidate in naive_bgp(graph, optional):
            merged = dict(binding)
            compatible = True
            for name, value in candidate.items():
                bound = merged.get(name)
                if bound is None:
                    merged[name] = value
                elif bound != value:
                    compatible = False
                    break
            if compatible:
                extensions.append(merged)
        out.extend(extensions if extensions else [dict(binding)])
    return out


def canonical(solutions: List[Binding]) -> List[tuple]:
    """Order-independent canonical form for comparisons."""
    return sorted(
        tuple(sorted((name, term.n3()) for name, term in binding.items()))
        for binding in solutions
    )
