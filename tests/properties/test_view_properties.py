"""Property-based tests for PR 9: materialized chart views and the
incremental aggregate-merge fixes.

Two invariants:

* **Delta ≡ rebuild** — after any random sequence of ``add``/``remove``
  mutations, a listener-tracked :class:`MaterializedViews` holds exactly
  the tables a from-scratch rebuild over the final graph would build.
* **Merged ≡ one-shot** — incremental evaluation of SUM/MIN/MAX over
  ``xsd:decimal``/``xsd:double`` literals converges to the one-shot
  engine answer at every window size, under both windowing policies.
  Literal values are binary-exact multiples of 0.25 so float summation
  is order-independent and the comparison is exact, not approximate.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Direction
from repro.perf import IncrementalConfig, IncrementalEvaluator, MaterializedViews
from repro.rdf import Graph, Literal, RDF, RDFS, URI
from repro.sparql import evaluate

_RDF_TYPE = RDF.term("type")
_SUBCLASS = RDFS.term("subClassOf")

_CLASSES = [URI(f"http://ex/C{i}") for i in range(4)]
_PROPS = [URI(f"http://ex/p{i}") for i in range(3)]
_NODES = [URI(f"http://ex/n{i}") for i in range(8)]

_XSD_DECIMAL = "http://www.w3.org/2001/XMLSchema#decimal"
_XSD_DOUBLE = "http://www.w3.org/2001/XMLSchema#double"


# ----------------------------------------------------------------------
# Delta maintenance ≡ from-scratch rebuild
# ----------------------------------------------------------------------


@st.composite
def random_triples(draw):
    """A random triple in the small class/property/node universe."""
    kind = draw(st.sampled_from(["type", "subclass", "edge"]))
    if kind == "type":
        return (
            draw(st.sampled_from(_NODES)),
            _RDF_TYPE,
            draw(st.sampled_from(_CLASSES)),
        )
    if kind == "subclass":
        return (
            draw(st.sampled_from(_CLASSES)),
            _SUBCLASS,
            draw(st.sampled_from(_CLASSES)),
        )
    return (
        draw(st.sampled_from(_NODES)),
        draw(st.sampled_from(_PROPS)),
        draw(st.sampled_from(_NODES)),
    )


@st.composite
def mutation_scripts(draw):
    """A base graph plus a mixed add/remove mutation sequence."""
    base = draw(st.lists(random_triples(), max_size=20))
    script = draw(
        st.lists(
            st.tuples(st.sampled_from(["add", "remove"]), random_triples()),
            max_size=25,
        )
    )
    return base, script


class TestDeltaEqualsRebuild:
    @settings(max_examples=60, deadline=None)
    @given(mutation_scripts())
    def test_tracked_views_match_fresh_rebuild(self, case):
        base, script = case
        graph = Graph()
        for s, p, o in base:
            graph.add(s, p, o)
        views = MaterializedViews(graph)
        for op, (s, p, o) in script:
            if op == "add":
                graph.add(s, p, o)
            else:
                graph.remove(s, p, o)
        assert views.is_fresh
        rebuilt = MaterializedViews(graph, track=False)
        assert views.table_state() == rebuilt.table_state()

    @settings(max_examples=30, deadline=None)
    @given(mutation_scripts())
    def test_tracked_views_answer_like_rebuild(self, case):
        base, script = case
        graph = Graph()
        for s, p, o in base:
            graph.add(s, p, o)
        views = MaterializedViews(graph)
        for op, (s, p, o) in script:
            if op == "add":
                graph.add(s, p, o)
            else:
                graph.remove(s, p, o)
        rebuilt = MaterializedViews(graph, track=False)
        for cls in _CLASSES:
            assert views.instance_count(cls) == rebuilt.instance_count(cls)
            for direction in (Direction.OUTGOING, Direction.INCOMING):
                assert views.property_expansion(
                    [cls], direction
                ) == rebuilt.property_expansion([cls], direction)


# ----------------------------------------------------------------------
# Incremental merge ≡ one-shot over non-integer numerics
# ----------------------------------------------------------------------

_VALUE_PROP = "http://ex/value"

_SUM_QUERY = f"SELECT (SUM(?v) AS ?total) WHERE {{ ?s <{_VALUE_PROP}> ?v }}"
_MINMAX_QUERY = (
    f"SELECT (MIN(?v) AS ?lo) (MAX(?v) AS ?hi)"
    f" WHERE {{ ?s <{_VALUE_PROP}> ?v }}"
)
_GROUPED_SUM = (
    f"SELECT ?s (SUM(?v) AS ?total)"
    f" WHERE {{ ?s <{_VALUE_PROP}> ?v }} GROUP BY ?s"
)


@st.composite
def numeric_value_graphs(draw):
    """A graph of subject→value edges with exact decimal/double literals.

    Values are multiples of 0.25 in a small range: every partial sum is
    exactly representable in binary floating point, so the incremental
    merge and the one-shot engine must agree bit-for-bit.
    """
    count = draw(st.integers(min_value=1, max_value=14))
    graph = Graph()
    for index in range(count):
        subject = URI(f"http://ex/s{draw(st.integers(0, 4))}")
        quarters = draw(st.integers(min_value=-200, max_value=200))
        value = quarters / 4.0
        datatype = draw(st.sampled_from([_XSD_DECIMAL, _XSD_DOUBLE]))
        if datatype == _XSD_DOUBLE:
            lexical = repr(value)
        else:
            lexical = f"{value:.2f}"
        graph.add(
            URI(f"http://ex/s{index}_{subject.value.rsplit('/', 1)[-1]}"),
            URI(_VALUE_PROP),
            Literal(lexical, datatype=datatype),
        )
    return graph


def _term_key(term):
    # Aggregate columns compare by numeric identity with the datatype
    # included (widening must match the engine); group keys are URIs.
    if isinstance(term, Literal):
        return (term.datatype, float(term.lexical))
    return term.n3()


def _normalized(rows):
    """Rows keyed for order-independent comparison."""
    return sorted(
        tuple(sorted((name, _term_key(term)) for name, term in row.items()))
        for row in rows
    )


class TestIncrementalMergeEqualsOneShot:
    @settings(max_examples=40, deadline=None)
    @given(
        numeric_value_graphs(),
        st.integers(min_value=1, max_value=6),
        st.booleans(),
        st.sampled_from([_SUM_QUERY, _MINMAX_QUERY, _GROUPED_SUM]),
    )
    def test_final_merge_matches_engine(
        self, graph, window_size, by_subject, query
    ):
        evaluator = IncrementalEvaluator(
            graph,
            IncrementalConfig(window_size=window_size, by_subject=by_subject),
        )
        final = evaluator.run_to_completion(query)
        assert final.complete
        assert _normalized(final.result.rows) == _normalized(
            evaluate(graph, query).rows
        )
