"""A simulated clock.

All latencies in the reproduction are *simulated milliseconds* computed by
the cost model (:mod:`repro.endpoint.cost`) from evaluation work counters,
not wall-clock time: the paper's Fig. 4 numbers (454 s, 124 s, 1.5 s,
80 ms) come from a billion-triple testbed we cannot host, so we recreate
the *shape* on a virtual time axis.  Components advance a shared
:class:`SimClock`; nothing ever sleeps.
"""

from __future__ import annotations

import threading

__all__ = ["SimClock"]


class SimClock:
    """A monotonically advancing virtual clock (milliseconds).

    Advancing is a read-modify-write, so it is guarded by a lock:
    concurrent sessions sharing one clock (the serving frontend drives
    many at once) must never lose time to an interleaved update.
    """

    __slots__ = ("_now_ms", "_lock")

    def __init__(self, start_ms: float = 0.0):
        if start_ms < 0:
            raise ValueError("clock cannot start before zero")
        self._now_ms = float(start_ms)
        self._lock = threading.Lock()

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_ms

    def advance(self, delta_ms: float) -> float:
        """Advance the clock by ``delta_ms``; returns the new time."""
        if delta_ms < 0:
            raise ValueError("cannot advance the clock backwards")
        with self._lock:
            self._now_ms += delta_ms
            return self._now_ms

    def wait_until(self, target_ms: float) -> float:
        """Advance to ``target_ms`` if it lies in the future.

        A no-op when the clock has already passed the target (another
        session may have carried time forward); returns the new time.
        """
        with self._lock:
            if target_ms > self._now_ms:
                self._now_ms = float(target_ms)
            return self._now_ms

    def measure(self) -> "_Span":
        """Context manager measuring virtual time spent inside the block."""
        return _Span(self)

    def __repr__(self) -> str:
        return f"SimClock({self._now_ms:.3f} ms)"


class _Span:
    """Records the virtual-time delta across a ``with`` block."""

    __slots__ = ("_clock", "_start", "elapsed_ms")

    def __init__(self, clock: SimClock):
        self._clock = clock
        self._start = 0.0
        self.elapsed_ms = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._clock.now_ms
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed_ms = self._clock.now_ms - self._start
