"""The local endpoint: the SPARQL engine over an in-process graph.

This is eLinda's own endpoint in *local mode* — the mirror of the
knowledge base held next to the application (paper, Section 4: "Our
eLinda endpoint contains mirrors of the common knowledge bases").
"""

from __future__ import annotations

from typing import Optional

from ..obs.tracing import EvalProbe
from ..rdf.graph import Graph
from ..sparql.evaluator import Evaluator
from ..sparql.parser import parse_query
from .base import Endpoint, EndpointResponse, observe_response
from .clock import SimClock
from .cost import LOCAL_PROFILE, CostModel

__all__ = ["LocalEndpoint"]


class LocalEndpoint(Endpoint):
    """Executes queries directly against a :class:`Graph`.

    With ``trace=True`` every query runs under an
    :class:`~repro.obs.tracing.EvalProbe` and the response (and the
    query log) carries per-operator row/time aggregates — the input of
    :meth:`repro.explorer.monitor.QueryMonitor.by_operator`.  Tracing
    adds real (not simulated) overhead per binding, so it is off by
    default.
    """

    def __init__(
        self,
        graph: Graph,
        clock: Optional[SimClock] = None,
        cost_model: CostModel = LOCAL_PROFILE,
        trace: bool = False,
    ):
        super().__init__()
        self.graph = graph
        self.clock = clock or SimClock()
        self.cost_model = cost_model
        self.trace = trace

    @property
    def dataset_version(self) -> int:
        return self.graph.version

    def query(self, query_text: str) -> EndpointResponse:
        parsed = parse_query(query_text)
        probe = EvalProbe() if self.trace else None
        evaluator = Evaluator(self.graph, probe=probe)
        result = evaluator.run(parsed)
        stats = evaluator.stats
        result_rows = len(result.rows) if hasattr(result, "rows") else 1
        elapsed = self.cost_model.simulate_ms(
            intermediate_bindings=stats.intermediate_bindings,
            pattern_scans=stats.pattern_scans,
            result_rows=result_rows,
        )
        self.clock.advance(elapsed)
        response = EndpointResponse(
            result=result,
            elapsed_ms=elapsed,
            source=self.cost_model.name,
            query_text=query_text,
            stats=stats,
            trace=probe.summaries() if probe is not None else None,
        )
        observe_response(response)
        self._log(response)
        return response
