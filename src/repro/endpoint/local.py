"""The local endpoint: the SPARQL engine over an in-process graph.

This is eLinda's own endpoint in *local mode* — the mirror of the
knowledge base held next to the application (paper, Section 4: "Our
eLinda endpoint contains mirrors of the common knowledge bases").

Every query runs through the engine's front half — parse, translate,
optimize (:mod:`repro.sparql.optimizer`) — which is memoised in a
version-aware :class:`~repro.perf.plancache.PlanCache`, so repeated
exploration queries skip straight to execution until the graph changes.

Paged requests execute on the physical engine, which works in the
store's ID space end to end (see :mod:`repro.rdf.dictionary`); result
rows cross the late-materialization boundary at the plan root, so the
``page.rows`` this endpoint serialises are ordinary interned terms and
the SPARQL-JSON on the wire is byte-identical to one-shot evaluation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Union

from ..obs.tracing import EvalProbe
from ..rdf.graph import Graph
from ..sparql.evaluator import Evaluator
from .base import Endpoint, EndpointResponse, observe_response
from .clock import SimClock
from .cost import LOCAL_PROFILE, CostModel

__all__ = ["LocalEndpoint"]


class LocalEndpoint(Endpoint):
    """Executes queries directly against a :class:`Graph`.

    With ``trace=True`` every query runs under an
    :class:`~repro.obs.tracing.EvalProbe` and the response (and the
    query log) carries per-operator row/time aggregates — the input of
    :meth:`repro.explorer.monitor.QueryMonitor.by_operator`.  Tracing
    adds real (not simulated) overhead per binding, so it is off by
    default.

    ``optimize`` toggles the algebra rewrite pipeline; ``plan_cache``
    is ``True`` for a private cache (the default), ``False``/``None``
    to re-plan every request, or a shared
    :class:`~repro.perf.plancache.PlanCache` instance.
    """

    def __init__(
        self,
        graph: Graph,
        clock: Optional[SimClock] = None,
        cost_model: CostModel = LOCAL_PROFILE,
        trace: bool = False,
        optimize: bool = True,
        plan_cache: Union["PlanCache", bool, None] = True,
    ):
        super().__init__()
        self.graph = graph
        self.clock = clock or SimClock()
        self.cost_model = cost_model
        self.trace = trace
        self.optimize = optimize
        if plan_cache is True:
            # Function-level import: repro.perf pulls in the decomposer,
            # which imports this package's base module.
            from ..perf.plancache import PlanCache

            plan_cache = PlanCache()
        # Note: an empty PlanCache is falsy (len == 0), so test against
        # the sentinel values rather than truthiness.
        self.plan_cache = None if plan_cache is False or plan_cache is None else plan_cache
        # Live suspended plans, keyed by the exact token we minted for
        # them: the common resume (next page of a query this endpoint
        # itself suspended) skips decode + operator-tree restore and
        # continues the live plan.  Decoding the token must produce the
        # same state, so this is purely a fast path; any token not in
        # the cache — minted by another process, or evicted — takes the
        # decode path.  Keyed per (token, graph version): a mutation
        # invalidates the live plan exactly like it expires the token.
        self._resume_cache: "OrderedDict[tuple, object]" = OrderedDict()
        self._resume_cache_size = 8

    @property
    def dataset_version(self) -> int:
        return self.graph.version

    def plan(self, query_text: str):
        """The (cached) :class:`~repro.perf.plancache.CachedPlan`."""
        if self.plan_cache is not None:
            return self.plan_cache.get(
                query_text,
                graph=self.graph if self.optimize else None,
                optimize=self.optimize,
            )
        from ..perf.plancache import build_plan

        return build_plan(
            query_text,
            graph=self.graph if self.optimize else None,
            optimize=self.optimize,
        )

    def query(
        self,
        query_text: Optional[str] = None,
        *,
        quantum_ms: Optional[float] = None,
        page_size: Optional[int] = None,
        continuation: Optional[str] = None,
    ) -> EndpointResponse:
        if (
            quantum_ms is not None
            or page_size is not None
            or continuation is not None
        ):
            return self._query_paged(
                query_text,
                quantum_ms=quantum_ms,
                page_size=page_size,
                continuation=continuation,
            )
        if query_text is None:
            raise TypeError("query_text is required without a continuation")
        plan = self.plan(query_text)
        probe = EvalProbe() if self.trace else None
        evaluator = Evaluator(self.graph, probe=probe)
        if plan.algebra is not None:
            result = evaluator.run_translated(plan.query, plan.algebra)
        else:
            result = evaluator.run(plan.query)
        stats = evaluator.stats
        result_rows = len(result.rows) if hasattr(result, "rows") else 1
        elapsed = self.cost_model.simulate_ms(
            intermediate_bindings=stats.intermediate_bindings,
            pattern_scans=stats.pattern_scans,
            result_rows=result_rows,
        )
        self.clock.advance(elapsed)
        response = EndpointResponse(
            result=result,
            elapsed_ms=elapsed,
            source=self.cost_model.name,
            query_text=query_text,
            stats=stats,
            trace=probe.summaries() if probe is not None else None,
        )
        observe_response(response)
        self._log(response)
        return response

    def _query_paged(
        self,
        query_text: Optional[str],
        quantum_ms: Optional[float],
        page_size: Optional[int],
        continuation: Optional[str],
    ) -> EndpointResponse:
        """One time-sliced page of a SELECT query.

        Fresh requests compile through the plan cache (the physical
        factory is cached alongside the algebra) and start a new
        execution; requests with a ``continuation`` restore the
        suspended operator tree and keep going.  Each page is charged
        simulated latency for *its own* work only — the responsiveness
        contract the paper's incremental evaluation argues for.
        """
        from ..perf.hvs import normalize_query
        from ..sparql import executor as sparql_executor
        from ..sparql.results import SelectResult

        plan = None
        if continuation is not None:
            live = self._resume_cache.pop(
                (continuation, self.graph.version), None
            )
            if live is not None:
                # Fast path: this endpoint suspended that exact plan and
                # the graph has not changed — continue the live operator
                # tree instead of decoding and restoring the token.
                # Still a token-driven resume as far as the serving
                # metrics are concerned.
                sparql_executor._RESUMES_TOTAL.inc()
                plan, live_query = live
                if query_text is not None and normalize_query(
                    query_text
                ) != normalize_query(live_query):
                    raise sparql_executor.MalformedTokenError(
                        "continuation token belongs to a different query"
                    )
                query_text = live_query
            else:
                blob = sparql_executor.decode_continuation(continuation)
                if query_text is not None and normalize_query(
                    query_text
                ) != normalize_query(blob["query"]):
                    raise sparql_executor.MalformedTokenError(
                        "continuation token belongs to a different query"
                    )
                query_text = blob["query"]
        elif query_text is None:
            raise TypeError("query_text is required without a continuation")
        if plan is None:
            cached = self.plan(query_text)
            factory = cached.physical_factory()
            if factory.is_ask:
                # ASK short-circuits on its first solution; it never
                # pages and never mints tokens.
                if continuation is not None:
                    raise sparql_executor.MalformedTokenError(
                        "ASK queries do not issue continuation tokens"
                    )
                return self.query(query_text)
            if continuation is not None:
                plan = sparql_executor.restore_plan(
                    factory, self.graph, blob
                )
            else:
                plan = factory.instantiate(self.graph)
        page = sparql_executor.run_quantum(
            plan, quantum_ms=quantum_ms, page_size=page_size
        )
        token = (
            None
            if page.complete
            else sparql_executor.encode_continuation(
                plan, self.graph, query_text
            )
        )
        if token is not None:
            self._resume_cache[(token, self.graph.version)] = (
                plan, query_text,
            )
            while len(self._resume_cache) > self._resume_cache_size:
                self._resume_cache.popitem(last=False)
        elapsed = self.cost_model.simulate_ms(
            intermediate_bindings=page.stats.intermediate_bindings,
            pattern_scans=page.stats.pattern_scans,
            result_rows=len(page.rows),
        )
        self.clock.advance(elapsed)
        response = EndpointResponse(
            result=SelectResult(page.variables, page.rows, stats=page.stats),
            elapsed_ms=elapsed,
            source=self.cost_model.name,
            query_text=query_text,
            stats=page.stats,
            continuation=token,
            complete=page.complete,
        )
        observe_response(response)
        self._log(response)
        return response

    def query_all_pages(
        self,
        query_text: str,
        quantum_ms: Optional[float] = None,
        page_size: Optional[int] = None,
    ):
        """Page through a SELECT to completion; yields each response.

        Convenience wrapper over the token loop (the explorer's chart
        session uses it to fetch bar charts incrementally)."""
        response = self.query(
            query_text, quantum_ms=quantum_ms, page_size=page_size
        )
        yield response
        while not response.complete:
            response = self.query(
                query_text,
                quantum_ms=quantum_ms,
                page_size=page_size,
                continuation=response.continuation,
            )
            yield response
