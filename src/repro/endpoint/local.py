"""The local endpoint: the SPARQL engine over an in-process graph.

This is eLinda's own endpoint in *local mode* — the mirror of the
knowledge base held next to the application (paper, Section 4: "Our
eLinda endpoint contains mirrors of the common knowledge bases").

Every query runs through the engine's front half — parse, translate,
optimize (:mod:`repro.sparql.optimizer`) — which is memoised in a
version-aware :class:`~repro.perf.plancache.PlanCache`, so repeated
exploration queries skip straight to execution until the graph changes.
"""

from __future__ import annotations

from typing import Optional, Union

from ..obs.tracing import EvalProbe
from ..rdf.graph import Graph
from ..sparql.evaluator import Evaluator
from .base import Endpoint, EndpointResponse, observe_response
from .clock import SimClock
from .cost import LOCAL_PROFILE, CostModel

__all__ = ["LocalEndpoint"]


class LocalEndpoint(Endpoint):
    """Executes queries directly against a :class:`Graph`.

    With ``trace=True`` every query runs under an
    :class:`~repro.obs.tracing.EvalProbe` and the response (and the
    query log) carries per-operator row/time aggregates — the input of
    :meth:`repro.explorer.monitor.QueryMonitor.by_operator`.  Tracing
    adds real (not simulated) overhead per binding, so it is off by
    default.

    ``optimize`` toggles the algebra rewrite pipeline; ``plan_cache``
    is ``True`` for a private cache (the default), ``False``/``None``
    to re-plan every request, or a shared
    :class:`~repro.perf.plancache.PlanCache` instance.
    """

    def __init__(
        self,
        graph: Graph,
        clock: Optional[SimClock] = None,
        cost_model: CostModel = LOCAL_PROFILE,
        trace: bool = False,
        optimize: bool = True,
        plan_cache: Union["PlanCache", bool, None] = True,
    ):
        super().__init__()
        self.graph = graph
        self.clock = clock or SimClock()
        self.cost_model = cost_model
        self.trace = trace
        self.optimize = optimize
        if plan_cache is True:
            # Function-level import: repro.perf pulls in the decomposer,
            # which imports this package's base module.
            from ..perf.plancache import PlanCache

            plan_cache = PlanCache()
        # Note: an empty PlanCache is falsy (len == 0), so test against
        # the sentinel values rather than truthiness.
        self.plan_cache = None if plan_cache is False or plan_cache is None else plan_cache

    @property
    def dataset_version(self) -> int:
        return self.graph.version

    def plan(self, query_text: str):
        """The (cached) :class:`~repro.perf.plancache.CachedPlan`."""
        if self.plan_cache is not None:
            return self.plan_cache.get(
                query_text,
                graph=self.graph if self.optimize else None,
                optimize=self.optimize,
            )
        from ..perf.plancache import build_plan

        return build_plan(
            query_text,
            graph=self.graph if self.optimize else None,
            optimize=self.optimize,
        )

    def query(self, query_text: str) -> EndpointResponse:
        plan = self.plan(query_text)
        probe = EvalProbe() if self.trace else None
        evaluator = Evaluator(self.graph, probe=probe)
        if plan.algebra is not None:
            result = evaluator.run_translated(plan.query, plan.algebra)
        else:
            result = evaluator.run(plan.query)
        stats = evaluator.stats
        result_rows = len(result.rows) if hasattr(result, "rows") else 1
        elapsed = self.cost_model.simulate_ms(
            intermediate_bindings=stats.intermediate_bindings,
            pattern_scans=stats.pattern_scans,
            result_rows=result_rows,
        )
        self.clock.advance(elapsed)
        response = EndpointResponse(
            result=result,
            elapsed_ms=elapsed,
            source=self.cost_model.name,
            query_text=query_text,
            stats=stats,
            trace=probe.summaries() if probe is not None else None,
        )
        observe_response(response)
        self._log(response)
        return response
