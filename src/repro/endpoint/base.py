"""Endpoint abstraction: anything that answers SPARQL queries.

The explorer (:mod:`repro.core`, :mod:`repro.explorer`) only ever talks to
an :class:`Endpoint`; whether that is the local engine, a simulated remote
Virtuoso, or the full performance router (:mod:`repro.perf.router`) is a
configuration choice — exactly the architecture of the paper's Fig. 3.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..obs.metrics import REGISTRY
from ..obs.tracing import OperatorSummary
from ..sparql.evaluator import EvalStats
from ..sparql.results import AskResult, SelectResult

__all__ = [
    "Endpoint",
    "EndpointResponse",
    "QueryLogEntry",
    "observe_response",
]

Result = Union[SelectResult, AskResult]

_ENDPOINT_QUERIES_TOTAL = REGISTRY.counter(
    "repro_endpoint_queries_total",
    "Answered queries by answer source",
    labelnames=("source",),
)
_ENDPOINT_SIMULATED_MS_TOTAL = REGISTRY.counter(
    "repro_endpoint_simulated_ms_total",
    "Total simulated latency charged, by answer source",
    labelnames=("source",),
)
_ENDPOINT_LATENCY_MS = REGISTRY.histogram(
    "repro_endpoint_latency_ms",
    "Simulated per-query latency distribution by answer source",
    labelnames=("source",),
)


def observe_response(response: "EndpointResponse") -> None:
    """Emit one answered query into the metrics registry.

    Called at every site that *produces* a response (local engine,
    remote client, HVS hit, decomposer rewrite) rather than in
    :meth:`Endpoint._log`, because the router re-logs backend responses
    and would double-count them.
    """
    _ENDPOINT_QUERIES_TOTAL.labels(source=response.source).inc()
    _ENDPOINT_SIMULATED_MS_TOTAL.labels(source=response.source).inc(
        response.elapsed_ms
    )
    _ENDPOINT_LATENCY_MS.labels(source=response.source).observe(
        response.elapsed_ms
    )


@dataclass
class EndpointResponse:
    """One answered query: the result plus provenance and latency."""

    result: Result
    elapsed_ms: float
    source: str
    query_text: str
    stats: Optional[EvalStats] = None
    #: Per-operator aggregates when the endpoint ran with tracing on.
    trace: Optional[Tuple[OperatorSummary, ...]] = None
    #: Opaque resume token when the query was suspended mid-execution
    #: (time-sliced/paginated path); None for complete answers.
    continuation: Optional[str] = None
    #: False when ``result`` holds only one page of a larger answer.
    complete: bool = True

    @property
    def rows(self):
        if isinstance(self.result, SelectResult):
            return self.result.rows
        raise TypeError("ASK responses have no rows")


@dataclass
class QueryLogEntry:
    """A line of the endpoint's query log."""

    query_text: str
    elapsed_ms: float
    source: str
    result_rows: int
    #: Copied from the response's trace when tracing was enabled.
    operators: Optional[Tuple[OperatorSummary, ...]] = None


class Endpoint(ABC):
    """Abstract SPARQL endpoint."""

    def __init__(self) -> None:
        self.query_log: List[QueryLogEntry] = []

    @abstractmethod
    def query(self, query_text: str) -> EndpointResponse:
        """Execute ``query_text`` and return the response."""

    @property
    @abstractmethod
    def dataset_version(self) -> int:
        """Version counter of the underlying knowledge base (for caching)."""

    def select(self, query_text: str) -> SelectResult:
        """Execute a SELECT query and return its result."""
        result = self.query(query_text).result
        if not isinstance(result, SelectResult):
            raise TypeError("query did not produce a SELECT result")
        return result

    def ask(self, query_text: str) -> bool:
        """Execute an ASK query and return its boolean."""
        result = self.query(query_text).result
        if not isinstance(result, AskResult):
            raise TypeError("query did not produce an ASK result")
        return result.value

    def construct(self, query_text: str):
        """Execute a CONSTRUCT query and return the built graph."""
        from ..sparql.results import GraphResult

        result = self.query(query_text).result
        if not isinstance(result, GraphResult):
            raise TypeError("query did not produce a CONSTRUCT result")
        return result.graph

    def _log(self, response: EndpointResponse) -> None:
        rows = (
            len(response.result.rows)
            if isinstance(response.result, SelectResult)
            else 1
        )
        self.query_log.append(
            QueryLogEntry(
                query_text=response.query_text,
                elapsed_ms=response.elapsed_ms,
                source=response.source,
                result_rows=rows,
                operators=response.trace,
            )
        )
