"""Fault injection for the simulated HTTP wire.

Real serving stacks see two failure shapes the reproduction must be
able to dial in: *transient errors* (the backend drops a request — a
timeout, a 503, a reset connection) and *slow responses* (the request
succeeds but pays a latency tail).  :class:`FaultInjector` rolls an
independent, seeded die per request so every run is reproducible; the
:class:`~repro.endpoint.virtuoso.SimulatedVirtuosoServer` consults it
before dispatching each request.

Faults are injected *on the wire*, not in the engine: a transiently
failed request never touches the graph, and a slow response carries a
correct answer — exactly the failure model the serving layer's retry
and circuit-breaker logic (:mod:`repro.serve`) is built against.
"""

from __future__ import annotations

import random
from typing import Optional

from ..obs.metrics import REGISTRY

__all__ = ["FaultInjector", "TRANSIENT", "SLOW"]

_FAULTS_INJECTED_TOTAL = REGISTRY.counter(
    "repro_wire_faults_injected_total",
    "Faults injected into the simulated wire, by kind",
    labelnames=("kind",),
)
_INJECTED_TRANSIENT = _FAULTS_INJECTED_TOTAL.labels(kind="transient")
_INJECTED_SLOW = _FAULTS_INJECTED_TOTAL.labels(kind="slow")

#: Fault kinds returned by :meth:`FaultInjector.roll`.
TRANSIENT = "transient"
SLOW = "slow"


class FaultInjector:
    """Seeded per-request fault roller for the simulated wire.

    ``transient_rate`` is the probability a request fails outright with
    a retryable 503; ``slow_rate`` the probability a (successful)
    response is delayed by ``slow_penalty_ms`` of extra simulated
    latency.  The two rolls are independent; a transient fault wins.
    """

    def __init__(
        self,
        transient_rate: float = 0.0,
        slow_rate: float = 0.0,
        slow_penalty_ms: float = 250.0,
        seed: int = 0,
    ):
        for name, rate in (("transient_rate", transient_rate), ("slow_rate", slow_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be a probability, got {rate!r}")
        if slow_penalty_ms < 0:
            raise ValueError("slow_penalty_ms cannot be negative")
        self.transient_rate = transient_rate
        self.slow_rate = slow_rate
        self.slow_penalty_ms = slow_penalty_ms
        self._rng = random.Random(seed)
        self.injected_transient = 0
        self.injected_slow = 0

    def roll(self) -> Optional[str]:
        """Fault for the next request: ``"transient"``, ``"slow"``, or None."""
        if self.transient_rate and self._rng.random() < self.transient_rate:
            self.injected_transient += 1
            _INJECTED_TRANSIENT.inc()
            return TRANSIENT
        if self.slow_rate and self._rng.random() < self.slow_rate:
            self.injected_slow += 1
            _INJECTED_SLOW.inc()
            return SLOW
        return None
