"""Endpoint layer: local engine, simulated remote Virtuoso, cost model.

Implements the boxes of the paper's Fig. 3 architecture that sit between
the explorer frontend and the RDF data, on a virtual time axis
(:class:`SimClock`).
"""

from .base import Endpoint, EndpointResponse, QueryLogEntry
from .clock import SimClock
from .cost import (
    CostModel,
    DECOMPOSER_PROFILE,
    HVS_PROFILE,
    LOCAL_PROFILE,
    REMOTE_VIRTUOSO_PROFILE,
    VIEWS_PROFILE,
)
from .faults import FaultInjector
from .local import LocalEndpoint
from .virtuoso import RemoteEndpoint, SimulatedVirtuosoServer
from .wire import (
    JSON_RESULTS_MIME,
    SparqlHttpRequest,
    SparqlHttpResponse,
    TransientWireError,
    decode_page,
    decode_response,
    encode_request,
)

__all__ = [
    "Endpoint",
    "EndpointResponse",
    "QueryLogEntry",
    "SimClock",
    "CostModel",
    "LOCAL_PROFILE",
    "REMOTE_VIRTUOSO_PROFILE",
    "DECOMPOSER_PROFILE",
    "HVS_PROFILE",
    "VIEWS_PROFILE",
    "LocalEndpoint",
    "SimulatedVirtuosoServer",
    "RemoteEndpoint",
    "SparqlHttpRequest",
    "SparqlHttpResponse",
    "JSON_RESULTS_MIME",
    "TransientWireError",
    "FaultInjector",
    "encode_request",
    "decode_response",
    "decode_page",
]
