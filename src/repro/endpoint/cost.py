"""Analytic cost model converting evaluation work into simulated latency.

The paper's evaluation (Section 4, Fig. 4) reports wall-clock runtimes on
a mirror of DBpedia (billions of triples) served by Virtuoso.  Our
substrate holds a laptop-scale synthetic graph, so raw wall-clock numbers
would be meaningless.  Instead, each endpoint charges virtual time:

    elapsed = network_latency
            + per_scan * pattern_scans
            + per_binding * intermediate_bindings * scale
            + per_result * result_rows
            + parse_overhead

``scale`` models the size ratio between the paper's DBpedia mirror and the
synthetic dataset: the heavy level-zero property expansion really does
produce "a complex join with hundreds of millions of tuples as an
intermediate result"; on our ~1e5-triple graph the same query shape
produces proportionally fewer, and ``scale`` restores the magnitude.

Calibration targets (Fig. 4): remote Virtuoso 454 s outgoing / 124 s
incoming; eLinda decomposer 1.5 s / 1.2 s; HVS hit ~80 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "CostModel",
    "LOCAL_PROFILE",
    "REMOTE_VIRTUOSO_PROFILE",
    "DECOMPOSER_PROFILE",
    "HVS_PROFILE",
    "VIEWS_PROFILE",
]


@dataclass(frozen=True)
class CostModel:
    """Latency coefficients for one store configuration.

    All coefficients are in milliseconds (per unit of the relevant
    counter).  ``scale`` is a dimensionless dataset-size multiplier
    applied to the per-binding term only — index lookups and result
    shipping do not blow up with dataset size the way intermediate joins
    do, which is exactly the asymmetry the eLinda decomposer exploits.
    """

    name: str
    network_latency_ms: float = 0.0
    parse_overhead_ms: float = 0.0
    per_scan_ms: float = 0.0
    per_binding_ms: float = 0.0
    per_result_ms: float = 0.0
    scale: float = 1.0

    def simulate_ms(
        self,
        intermediate_bindings: int,
        pattern_scans: int = 0,
        result_rows: int = 0,
    ) -> float:
        """Simulated latency for one query execution."""
        return (
            self.network_latency_ms
            + self.parse_overhead_ms
            + self.per_scan_ms * pattern_scans
            + self.per_binding_ms * intermediate_bindings * self.scale
            + self.per_result_ms * result_rows
        )

    def scaled(self, scale: float) -> "CostModel":
        """A copy with a different dataset-size multiplier."""
        return replace(self, scale=scale)


#: eLinda's own endpoint executing against its local mirror: no network
#: round-trip, but the same join blow-up on heavy queries.
LOCAL_PROFILE = CostModel(
    name="local",
    network_latency_ms=0.2,
    parse_overhead_ms=0.3,
    per_scan_ms=0.001,
    per_binding_ms=0.0015,
    per_result_ms=0.0005,
)

#: A remote Virtuoso endpoint reached over HTTP/JSON ("compatibility
#: mode"), as used for DBpedia/YAGO/LinkedGeoData.  The higher latency and
#: per-binding cost reproduce the paper's 454 s / 124 s level-zero
#: property-expansion runtimes once ``scale`` is set by the dataset
#: (see :func:`repro.datasets.dbpedia.recommended_scale`).
REMOTE_VIRTUOSO_PROFILE = CostModel(
    name="virtuoso",
    network_latency_ms=60.0,
    parse_overhead_ms=2.0,
    per_scan_ms=0.002,
    per_binding_ms=0.0015,
    per_result_ms=0.01,
)

#: The eLinda decomposer answering from specialised indexes: latency is
#: dominated by the subject-type index probe (``per_scan`` per member)
#: plus per-row result assembly — independent of the join blow-up, which
#: is what keeps both Fig. 4 decomposer bars near 1.5 s / 1.2 s.
DECOMPOSER_PROFILE = CostModel(
    name="decomposer",
    network_latency_ms=0.2,
    parse_overhead_ms=0.5,
    per_scan_ms=0.55,
    per_binding_ms=0.0,
    per_result_ms=0.25,
)

#: A materialized-view hit: the aggregates are already sitting in
#: delta-maintained count tables, so the only work is shape matching on
#: a cached AST plus per-bar row assembly — O(bars), no probes, cheaper
#: than an HVS hit's fixed key-value fetch.
VIEWS_PROFILE = CostModel(
    name="views",
    network_latency_ms=0.2,
    parse_overhead_ms=0.4,
    per_scan_ms=0.0,
    per_binding_ms=0.0,
    per_result_ms=0.05,
)

#: A heavy-query-store hit: one key-value fetch (fixed ~78 ms, matching
#: the paper's "around 80 milliseconds") plus negligible per-row cost.
HVS_PROFILE = CostModel(
    name="hvs",
    network_latency_ms=0.2,
    parse_overhead_ms=78.0,
    per_scan_ms=0.0,
    per_binding_ms=0.0,
    per_result_ms=0.001,
)
