"""Simulated HTTP/JSON SPARQL protocol.

The paper's *remote compatibility mode* talks to a Virtuoso server "via
its HTTP/JSON SPARQL interface" (Section 4, footnote 9).  We model that
wire exactly: requests and responses are plain strings; the client never
touches the server's graph object, so anything that works through this
layer would work against a real HTTP endpoint.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Optional

from ..obs.metrics import REGISTRY
from ..sparql.errors import SparqlError
from ..sparql.results import GraphResult, results_from_json, results_to_json

_WIRE_ENCODES_TOTAL = REGISTRY.counter(
    "repro_wire_encodes_total",
    "Result serialisations onto the simulated HTTP wire, by content type",
    labelnames=("content_type",),
)
_WIRE_ENCODE_WALL_MS_TOTAL = REGISTRY.counter(
    "repro_wire_encode_wall_ms_total",
    "Real wall time spent serialising results onto the wire (ms)",
)

__all__ = [
    "SparqlHttpRequest",
    "SparqlHttpResponse",
    "JSON_RESULTS_MIME",
    "NTRIPLES_MIME",
    "TRANSIENT_STATUSES",
    "TransientWireError",
    "encode_request",
    "decode_response",
    "decode_page",
]

JSON_RESULTS_MIME = "application/sparql-results+json"
NTRIPLES_MIME = "application/n-triples"

#: HTTP statuses a client may retry: the request never produced an
#: answer, so replaying it is safe.
TRANSIENT_STATUSES = (429, 502, 503, 504)


class TransientWireError(SparqlError):
    """A retryable wire failure (503-style): the request can be replayed.

    Distinct from plain :class:`SparqlError` so retry logic never
    replays requests that failed for a *semantic* reason (parse errors,
    bad continuation tokens)."""

    def __init__(self, message: str, status: int = 503):
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class SparqlHttpRequest:
    """A GET-style SPARQL protocol request.

    ``quantum_ms`` / ``page_size`` / ``continuation`` are the paging
    parameters of the time-sliced executor; they travel as the
    equivalent of URL query parameters.  A request with ``continuation``
    resumes a suspended execution (``query`` must repeat the original
    query text)."""

    endpoint_url: str
    query: str
    accept: str = JSON_RESULTS_MIME
    headers: Dict[str, str] = field(default_factory=dict)
    quantum_ms: Optional[float] = None
    page_size: Optional[int] = None
    continuation: Optional[str] = None

    @property
    def paged(self) -> bool:
        return (
            self.quantum_ms is not None
            or self.page_size is not None
            or self.continuation is not None
        )


@dataclass(frozen=True)
class SparqlHttpResponse:
    """An HTTP response carrying SPARQL-JSON or an error body."""

    status: int
    body: str
    content_type: str = JSON_RESULTS_MIME
    elapsed_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def encode_request(
    endpoint_url: str,
    query: str,
    quantum_ms: Optional[float] = None,
    page_size: Optional[int] = None,
    continuation: Optional[str] = None,
) -> SparqlHttpRequest:
    """Build the protocol request for a query (optionally paged)."""
    return SparqlHttpRequest(
        endpoint_url=endpoint_url,
        query=query,
        quantum_ms=quantum_ms,
        page_size=page_size,
        continuation=continuation,
    )


def encode_success(
    result,
    elapsed_ms: float,
    continuation: Optional[str] = None,
    complete: bool = True,
) -> SparqlHttpResponse:
    """Serialise a result into a 200 response.

    SELECT/ASK results travel as SPARQL-JSON; CONSTRUCT graphs as
    N-Triples with the matching content type.  A partial (paged) answer
    additionally carries ``"continuation"`` and ``"complete": false``
    at the top level of the JSON body — standard SPARQL-JSON consumers
    ignore the extra keys; paging clients read them via
    :func:`decode_page`.
    """
    started = perf_counter()
    if isinstance(result, GraphResult):
        body = result.to_ntriples()
        content_type = NTRIPLES_MIME
    else:
        body = results_to_json(result)
        content_type = JSON_RESULTS_MIME
        if continuation is not None or not complete:
            blob = json.loads(body)
            blob["continuation"] = continuation
            blob["complete"] = bool(complete)
            body = json.dumps(blob)
    _WIRE_ENCODES_TOTAL.labels(content_type=content_type).inc()
    _WIRE_ENCODE_WALL_MS_TOTAL.inc((perf_counter() - started) * 1000.0)
    return SparqlHttpResponse(
        status=200,
        body=body,
        content_type=content_type,
        elapsed_ms=elapsed_ms,
    )


def encode_error(error: Exception, elapsed_ms: float = 0.0) -> SparqlHttpResponse:
    """Serialise an engine error into a 400/500 response."""
    status = 400 if isinstance(error, SparqlError) else 500
    return SparqlHttpResponse(
        status=status,
        body=f"{type(error).__name__}: {error}",
        content_type="text/plain",
        elapsed_ms=elapsed_ms,
    )


def _raise_protocol_error(response: SparqlHttpResponse) -> None:
    """Surface a non-2xx response as the most specific client error.

    Transient statuses raise :class:`TransientWireError` (retryable);
    400 bodies carrying a continuation-token failure re-raise as the
    matching :class:`~repro.sparql.executor.ContinuationError` subclass
    so paging clients see the same error taxonomy locally and remotely;
    everything else is a plain :class:`SparqlError`.
    """
    if response.status in TRANSIENT_STATUSES:
        raise TransientWireError(
            f"endpoint returned {response.status}: {response.body}",
            status=response.status,
        )
    if response.status == 400:
        from ..sparql import executor as sparql_executor

        token_errors = {
            "MalformedTokenError": sparql_executor.MalformedTokenError,
            "TokenVersionError": sparql_executor.TokenVersionError,
            "ExpiredTokenError": sparql_executor.ExpiredTokenError,
        }
        name, _, detail = response.body.partition(": ")
        error_class = token_errors.get(name)
        if error_class is not None:
            raise error_class(detail or response.body)
    raise SparqlError(f"endpoint returned {response.status}: {response.body}")


def decode_response(response: SparqlHttpResponse):
    """Parse a response body back into a result object.

    Raises :class:`SparqlError` (or a more specific subclass — see
    :func:`_raise_protocol_error`) on non-2xx responses, mirroring what
    an HTTP client wrapper would do.
    """
    if not response.ok:
        _raise_protocol_error(response)
    if response.content_type == NTRIPLES_MIME:
        from ..rdf.graph import Graph
        from ..rdf.ntriples import parse_ntriples

        return GraphResult(Graph(parse_ntriples(response.body)))
    if response.content_type != JSON_RESULTS_MIME:
        raise SparqlError(f"unexpected content type: {response.content_type}")
    return results_from_json(response.body)


def decode_page(response: SparqlHttpResponse):
    """Parse a (possibly partial) JSON response into
    ``(result, continuation, complete)``.

    ``continuation`` is None and ``complete`` is True for ordinary
    one-shot answers, so this is a strict superset of
    :func:`decode_response` for SPARQL-JSON bodies.
    """
    result = decode_response(response)
    continuation = None
    complete = True
    if response.content_type == JSON_RESULTS_MIME:
        blob = json.loads(response.body)
        continuation = blob.get("continuation")
        complete = bool(blob.get("complete", True))
    return result, continuation, complete
