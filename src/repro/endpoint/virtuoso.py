"""Simulated remote Virtuoso endpoint and its HTTP/JSON client.

Two classes split server from client exactly as the paper's remote
compatibility mode does:

* :class:`SimulatedVirtuosoServer` owns a graph and answers
  :class:`repro.endpoint.wire.SparqlHttpRequest` objects with JSON
  bodies, charging remote-profile simulated latency.
* :class:`RemoteEndpoint` is the client: it only sees the endpoint URL
  and the JSON wire — "even if we have no access to the actual RDF graph
  and cannot execute any preprocessing" (Section 4).  It therefore cannot
  feed the decomposer's index builder, which is why incremental
  evaluation is the only acceleration available remotely.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..obs.metrics import REGISTRY
from ..rdf.graph import Graph
from ..sparql.evaluator import Evaluator
from .base import Endpoint, EndpointResponse, observe_response
from .clock import SimClock
from .cost import REMOTE_VIRTUOSO_PROFILE, CostModel
from .faults import SLOW, TRANSIENT, FaultInjector
from .wire import (
    SparqlHttpRequest,
    SparqlHttpResponse,
    decode_page,
    decode_response,
    encode_error,
    encode_request,
    encode_success,
)

__all__ = ["SimulatedVirtuosoServer", "RemoteEndpoint"]

_SERVER_REQUESTS_TOTAL = REGISTRY.counter(
    "repro_virtuoso_requests_total",
    "HTTP requests served by the simulated Virtuoso server, by outcome",
    labelnames=("status",),
)
_SERVER_OK = _SERVER_REQUESTS_TOTAL.labels(status="ok")
_SERVER_ERROR = _SERVER_REQUESTS_TOTAL.labels(status="error")


class SimulatedVirtuosoServer:
    """A SPARQL-over-HTTP server simulation around one graph."""

    def __init__(
        self,
        graph: Graph,
        url: str = "http://dbpedia.example.org/sparql",
        clock: Optional[SimClock] = None,
        cost_model: CostModel = REMOTE_VIRTUOSO_PROFILE,
        optimize: bool = True,
        faults: Optional[FaultInjector] = None,
    ):
        self.graph = graph
        self.url = url
        self.clock = clock or SimClock()
        self.cost_model = cost_model
        self.requests_served = 0
        self.optimize = optimize
        self.faults = faults
        # A real Virtuoso keeps its own server-side plan cache; so does
        # the simulation (function-level import: repro.perf imports the
        # decomposer, which imports this package's base module).
        from ..perf.plancache import PlanCache

        self.plan_cache = PlanCache()

    def handle(self, request: SparqlHttpRequest) -> SparqlHttpResponse:
        """Serve one protocol request, through the fault injector.

        An injected transient fault drops the request with a retryable
        503 before it touches the engine; an injected slow response
        serves the correct answer but charges an extra latency penalty.
        """
        if request.endpoint_url != self.url:
            _SERVER_ERROR.inc()
            return SparqlHttpResponse(
                status=404,
                body=f"no endpoint at {request.endpoint_url}",
                content_type="text/plain",
            )
        fault = self.faults.roll() if self.faults is not None else None
        if fault == TRANSIENT:
            _SERVER_ERROR.inc()
            elapsed = self.cost_model.network_latency_ms
            self.clock.advance(elapsed)
            return SparqlHttpResponse(
                status=503,
                body="transient backend fault (injected)",
                content_type="text/plain",
                elapsed_ms=elapsed,
            )
        response = self._dispatch(request)
        if fault == SLOW and response.ok:
            penalty = self.faults.slow_penalty_ms
            self.clock.advance(penalty)
            response = replace(
                response, elapsed_ms=response.elapsed_ms + penalty
            )
        return response

    def _dispatch(self, request: SparqlHttpRequest) -> SparqlHttpResponse:
        """Execute one (fault-free) protocol request against the engine."""
        self.requests_served += 1
        if request.paged:
            return self._handle_paged(request)
        try:
            plan = self.plan_cache.get(
                request.query,
                graph=self.graph if self.optimize else None,
                optimize=self.optimize,
            )
            evaluator = Evaluator(self.graph)
            if plan.algebra is not None:
                result = evaluator.run_translated(plan.query, plan.algebra)
            else:
                result = evaluator.run(plan.query)
        except Exception as error:  # engine errors -> HTTP error body
            _SERVER_ERROR.inc()
            elapsed = self.cost_model.network_latency_ms
            self.clock.advance(elapsed)
            return encode_error(error, elapsed_ms=elapsed)
        _SERVER_OK.inc()
        stats = evaluator.stats
        result_rows = len(result.rows) if hasattr(result, "rows") else 1
        elapsed = self.cost_model.simulate_ms(
            intermediate_bindings=stats.intermediate_bindings,
            pattern_scans=stats.pattern_scans,
            result_rows=result_rows,
        )
        self.clock.advance(elapsed)
        return encode_success(result, elapsed_ms=elapsed)

    def _handle_paged(self, request: SparqlHttpRequest) -> SparqlHttpResponse:
        """Serve one time-sliced page through the physical executor.

        Continuation-token failures (malformed, cross-version, expired)
        are :class:`~repro.sparql.errors.SparqlError` subclasses, so
        they travel to the client as clean 400 protocol errors instead
        of wrong answers."""
        from ..sparql import executor as sparql_executor
        from ..sparql.results import SelectResult

        try:
            blob = None
            if request.continuation is not None:
                blob = sparql_executor.decode_continuation(request.continuation)
            cached = self.plan_cache.get(
                request.query,
                graph=self.graph if self.optimize else None,
                optimize=self.optimize,
            )
            factory = cached.physical_factory()
            if factory.is_ask:
                if blob is not None:
                    raise sparql_executor.MalformedTokenError(
                        "ASK queries do not issue continuation tokens"
                    )
                return self._dispatch(
                    SparqlHttpRequest(
                        endpoint_url=request.endpoint_url, query=request.query
                    )
                )
            if blob is not None:
                plan = sparql_executor.restore_plan(factory, self.graph, blob)
            else:
                plan = factory.instantiate(self.graph)
            page = sparql_executor.run_quantum(
                plan,
                quantum_ms=request.quantum_ms,
                page_size=request.page_size,
            )
            token = (
                None
                if page.complete
                else sparql_executor.encode_continuation(
                    plan, self.graph, request.query
                )
            )
        except Exception as error:
            _SERVER_ERROR.inc()
            elapsed = self.cost_model.network_latency_ms
            self.clock.advance(elapsed)
            return encode_error(error, elapsed_ms=elapsed)
        _SERVER_OK.inc()
        elapsed = self.cost_model.simulate_ms(
            intermediate_bindings=page.stats.intermediate_bindings,
            pattern_scans=page.stats.pattern_scans,
            result_rows=len(page.rows),
        )
        self.clock.advance(elapsed)
        result = SelectResult(page.variables, page.rows)
        return encode_success(
            result,
            elapsed_ms=elapsed,
            continuation=token,
            complete=page.complete,
        )

    @property
    def dataset_version(self) -> int:
        return self.graph.version


class RemoteEndpoint(Endpoint):
    """HTTP/JSON client for a :class:`SimulatedVirtuosoServer`.

    The only coupling to the server is ``server.handle`` standing in for
    the network; every result passes through JSON serialisation.
    """

    def __init__(self, server: SimulatedVirtuosoServer, url: Optional[str] = None):
        super().__init__()
        self._server = server
        self.url = url or server.url

    @property
    def dataset_version(self) -> int:
        # A real remote endpoint exposes no version; the client assumes
        # the dataset is static between visits (as eLinda does for the
        # public DBpedia endpoint).
        return 0

    def query(
        self,
        query_text: str,
        *,
        quantum_ms: Optional[float] = None,
        page_size: Optional[int] = None,
        continuation: Optional[str] = None,
    ) -> EndpointResponse:
        request = encode_request(
            self.url,
            query_text,
            quantum_ms=quantum_ms,
            page_size=page_size,
            continuation=continuation,
        )
        http_response = self._server.handle(request)
        if request.paged:
            result, token, complete = decode_page(http_response)
        else:
            result = decode_response(http_response)
            token, complete = None, True
        response = EndpointResponse(
            result=result,
            elapsed_ms=http_response.elapsed_ms,
            source="virtuoso",
            query_text=query_text,
            stats=None,  # opaque remote server: no work counters leak out
            continuation=token,
            complete=complete,
        )
        observe_response(response)
        self._log(response)
        return response
