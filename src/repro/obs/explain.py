"""``EXPLAIN`` / ``EXPLAIN ANALYZE`` for the SPARQL engine.

``explain(graph, query)`` renders the algebra tree of a query with
per-operator *estimated* cardinalities (derived from the graph's index
statistics); ``explain(graph, query, analyze=True)`` additionally runs
the query with an :class:`repro.obs.tracing.EvalProbe` attached and
reports, per operator, the *actual* rows produced and wall time — the
measurement harness the perf layer (HVS, decomposer, incremental
evaluation) is judged against.

The estimates are deliberately simple (independence-assumption upper
bounds, the classic 1/3 filter selectivity): their job is to make
misestimates visible next to the measured rows, not to drive a planner.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..rdf.graph import Graph
from ..sparql.algebra import (
    Aggregation,
    AlgebraNode,
    Ask,
    BGP,
    Distinct,
    Extend,
    Filter,
    Join,
    LeftJoin,
    Minus,
    OrderBy,
    Project,
    Reduced,
    Slice,
    TopK,
    Unit,
    Union,
    ValuesTable,
    translate_query,
)
from ..sparql.ast import ConstructQuery, PathExpr, Query, TriplePatternNode, Var
from ..sparql.errors import SparqlEvalError
from ..sparql.evaluator import Evaluator
from ..sparql.parser import parse_query
from .tracing import (
    EvalProbe,
    operator_detail,
    operator_label,
    render_span_tree,
    spans_to_json_lines,
)

__all__ = [
    "PlanNode",
    "ExplainResult",
    "explain",
    "explain_physical",
    "estimate_cardinality",
]

#: Classic textbook selectivity guess for an opaque FILTER condition.
_FILTER_SELECTIVITY = 1.0 / 3.0


# ----------------------------------------------------------------------
# Cardinality estimation
# ----------------------------------------------------------------------


def _pattern_estimate(graph: Graph, pattern: TriplePatternNode) -> int:
    """Matches for one triple pattern, variables treated as wildcards."""
    if isinstance(pattern.predicate, PathExpr):
        # Walk the path algebra over the cached cardinality summary:
        # sequences chain fan-outs, alternatives add, closures inflate
        # the single-hop estimate by a saturating expansion factor.
        estimate = graph.statistics().path_cardinality(
            pattern.predicate,
            not isinstance(pattern.subject, Var),
            not isinstance(pattern.object, Var),
        )
        return max(1, int(estimate))
    subject = None if isinstance(pattern.subject, Var) else pattern.subject
    predicate = None if isinstance(pattern.predicate, Var) else pattern.predicate
    object = None if isinstance(pattern.object, Var) else pattern.object
    return graph.count(subject, predicate, object)


def estimate_cardinality(graph: Graph, node: AlgebraNode) -> int:
    """Estimated output rows of one operator (recursive, heuristic)."""
    if isinstance(node, Unit):
        return 1
    if isinstance(node, BGP):
        if not node.patterns:
            return 1
        estimate = 1
        for pattern in node.patterns:
            estimate *= max(1, _pattern_estimate(graph, pattern))
            # The index-nested-loop join binds variables left to right;
            # a bare product explodes, so damp each extra pattern.
            estimate = min(estimate, len(graph) * max(1, len(node.patterns)))
        for _ in node.filters:
            estimate = max(1, int(estimate * _FILTER_SELECTIVITY))
        return estimate
    if isinstance(node, Join):
        left = estimate_cardinality(graph, node.left)
        right = estimate_cardinality(graph, node.right)
        return max(left, right)
    if isinstance(node, LeftJoin):
        return estimate_cardinality(graph, node.left)
    if isinstance(node, Filter):
        inner = estimate_cardinality(graph, node.input)
        return max(1, int(inner * _FILTER_SELECTIVITY))
    if isinstance(node, Union):
        return sum(
            estimate_cardinality(graph, branch) for branch in node.branches
        )
    if isinstance(node, Minus):
        return estimate_cardinality(graph, node.left)
    if isinstance(node, Extend):
        return estimate_cardinality(graph, node.input)
    if isinstance(node, ValuesTable):
        return len(node.rows)
    if isinstance(node, Aggregation):
        inner = estimate_cardinality(graph, node.input)
        if not node.keys:
            return 1
        # Number of groups: sqrt damping of the input, a standard guess
        # in the absence of per-column distinct counts.
        return max(1, int(math.sqrt(inner)))
    if isinstance(node, (Project, Distinct, Reduced, OrderBy)):
        return estimate_cardinality(graph, node.input)
    if isinstance(node, Slice):
        inner = estimate_cardinality(graph, node.input)
        inner = max(0, inner - node.offset)
        if node.limit is not None:
            inner = min(inner, node.limit)
        return inner
    if isinstance(node, TopK):
        inner = estimate_cardinality(graph, node.input)
        return max(0, min(inner - node.offset, node.limit))
    if isinstance(node, Ask):
        return 1
    return 0


# ----------------------------------------------------------------------
# Plan tree
# ----------------------------------------------------------------------


@dataclass
class PlanNode:
    """One operator of an explained plan."""

    label: str
    detail: str
    estimated_rows: int
    children: List["PlanNode"] = field(default_factory=list)
    actual_rows: Optional[int] = None
    wall_ms: Optional[float] = None        # inclusive
    self_wall_ms: Optional[float] = None
    invocations: int = 0

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict:
        out: Dict = {
            "operator": self.label,
            "detail": self.detail,
            "estimated_rows": self.estimated_rows,
        }
        if self.actual_rows is not None:
            out.update(
                actual_rows=self.actual_rows,
                wall_ms=round(self.wall_ms or 0.0, 6),
                self_wall_ms=round(self.self_wall_ms or 0.0, 6),
                invocations=self.invocations,
            )
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


def _children_of(node: AlgebraNode) -> List[AlgebraNode]:
    if isinstance(node, (Join, LeftJoin, Minus)):
        return [node.left, node.right]
    if isinstance(node, Union):
        return list(node.branches)
    if isinstance(
        node,
        (
            Filter,
            Extend,
            Aggregation,
            Project,
            Distinct,
            Reduced,
            OrderBy,
            Slice,
            TopK,
            Ask,
        ),
    ):
        return [node.input]
    return []


def _build_plan(
    graph: Graph, node: AlgebraNode, index: Dict[int, PlanNode]
) -> PlanNode:
    plan = PlanNode(
        label=operator_label(node),
        detail=operator_detail(node),
        estimated_rows=estimate_cardinality(graph, node),
    )
    index[id(node)] = plan
    for child in _children_of(node):
        plan.children.append(_build_plan(graph, child, index))
    return plan


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


@dataclass
class ExplainResult:
    """The rendered plan plus (for ANALYZE) the run's artefacts.

    When the optimizer ran, ``plan`` describes the tree actually
    executed, ``pre_plan`` the direct translation it was rewritten from,
    and ``passes`` the optimizer's ``(pass, detail)`` annotations.
    """

    query_text: str
    plan: PlanNode
    analyzed: bool
    result: object = None          # SelectResult/AskResult when analyzed
    probe: Optional[EvalProbe] = None
    planning_note: str = ""
    pre_plan: Optional[PlanNode] = None
    passes: List = field(default_factory=list)

    @property
    def result_rows(self) -> Optional[int]:
        rows = getattr(self.result, "rows", None)
        return len(rows) if rows is not None else None

    def render(self) -> str:
        """The pg-style plan tree (estimated vs actual when analyzed)."""
        header = "EXPLAIN ANALYZE" if self.analyzed else "EXPLAIN"
        lines = [header, "=" * len(header)]

        def visit(plan: PlanNode, depth: int, executed: bool) -> None:
            indent = "  " * depth
            detail = f" ({plan.detail})" if plan.detail else ""
            cells = [f"est_rows={plan.estimated_rows}"]
            if self.analyzed and executed and plan.actual_rows is not None:
                cells.append(f"rows={plan.actual_rows}")
                cells.append(f"wall={plan.wall_ms:.3f}ms")
                cells.append(f"self={plan.self_wall_ms:.3f}ms")
                if plan.invocations > 1:
                    cells.append(f"loops={plan.invocations}")
            elif self.analyzed and executed:
                cells.append("(not executed)")
            lines.append(f"{indent}{plan.label}{detail}  " + "  ".join(cells))
            for child in plan.children:
                visit(child, depth + 1, executed)

        if self.pre_plan is not None:
            lines.append("-- plan before optimization --")
            visit(self.pre_plan, 0, executed=False)
            lines.append("-- plan after optimization --")
        visit(self.plan, 0, executed=True)
        if self.passes:
            lines.append("optimizer passes:")
            for pass_name, detail in self.passes:
                lines.append(f"  [{pass_name}] {detail}")
        elif self.pre_plan is not None:
            lines.append("optimizer passes: (no rewrites applied)")
        if self.analyzed and self.result_rows is not None:
            lines.append(f"result rows: {self.result_rows}")
        if self.planning_note:
            lines.append(self.planning_note)
        return "\n".join(lines)

    def render_spans(self) -> str:
        """The raw measured span tree (ANALYZE only)."""
        if self.probe is None:
            raise SparqlEvalError("spans require analyze=True")
        return render_span_tree(self.probe.roots)

    def to_json(self) -> str:
        """The plan tree as one JSON document."""
        document = {
            "query": self.query_text,
            "analyzed": self.analyzed,
            "result_rows": self.result_rows,
            "plan": self.plan.to_dict(),
        }
        if self.pre_plan is not None:
            document["pre_plan"] = self.pre_plan.to_dict()
            document["optimizer_passes"] = [
                {"pass": pass_name, "detail": detail}
                for pass_name, detail in self.passes
            ]
        return json.dumps(document, sort_keys=True, indent=2)

    def to_json_lines(self) -> str:
        """Measured spans as JSON lines (ANALYZE only)."""
        if self.probe is None:
            raise SparqlEvalError("span export requires analyze=True")
        return spans_to_json_lines(self.probe.roots)


def explain(
    graph: Graph,
    query_text: str,
    analyze: bool = False,
    optimize: bool = False,
) -> ExplainResult:
    """Explain (and optionally execute + measure) a query over ``graph``.

    With ``optimize=True`` the algebra is run through
    :func:`repro.sparql.optimizer.optimize` first; the result then shows
    the original and the rewritten plan side by side, with per-pass
    annotations, and ANALYZE executes the *optimized* tree.
    """
    query: Query = parse_query(query_text)
    if isinstance(query, ConstructQuery):
        raise SparqlEvalError("EXPLAIN supports SELECT and ASK queries only")
    algebra = translate_query(query)
    pre_plan: Optional[PlanNode] = None
    passes: List = []
    if optimize:
        from ..sparql.optimizer import optimize as run_optimizer

        pre_plan = _build_plan(graph, algebra, {})
        algebra, report = run_optimizer(algebra, graph=graph)
        passes = list(report.notes)
    index: Dict[int, PlanNode] = {}
    plan = _build_plan(graph, algebra, index)
    if not analyze:
        return ExplainResult(
            query_text=query_text,
            plan=plan,
            analyzed=False,
            pre_plan=pre_plan,
            passes=passes,
        )
    probe = EvalProbe()
    evaluator = Evaluator(graph, probe=probe)
    result = evaluator.run_translated(query, algebra)
    matched = 0
    for node_id, plan_node in index.items():
        span = probe.span_by_node.get(node_id)
        if span is None:
            continue
        matched += 1
        plan_node.actual_rows = span.rows
        plan_node.wall_ms = span.wall_ms
        plan_node.self_wall_ms = span.self_wall_ms
        plan_node.invocations = span.invocations
    note = ""
    if matched == 0:
        note = "note: no operators were executed"
    return ExplainResult(
        query_text=query_text,
        plan=plan,
        analyzed=True,
        result=result,
        probe=probe,
        planning_note=note,
        pre_plan=pre_plan,
        passes=passes,
    )


# ----------------------------------------------------------------------
# Physical plans
# ----------------------------------------------------------------------


def _physical_plan_node(graph: Graph, op, analyzed: bool) -> PlanNode:
    """Mirror one physical operator (and subtree) into a PlanNode."""
    estimated = (
        estimate_cardinality(graph, op.algebra) if op.algebra is not None else 0
    )
    node = PlanNode(
        label=op.label,
        detail=op.detail(),
        estimated_rows=estimated,
        children=[
            _physical_plan_node(graph, child, analyzed)
            for child in op.children()
        ],
    )
    if analyzed:
        child_wall = sum(child.wall_s for child in op.children())
        node.actual_rows = op.rows_produced
        node.wall_ms = op.wall_s * 1000.0
        node.self_wall_ms = max(0.0, op.wall_s - child_wall) * 1000.0
        node.invocations = op.calls
    return node


def explain_physical(
    graph: Graph,
    query_text: str,
    analyze: bool = False,
    optimize: bool = True,
    quantum_ms: Optional[float] = None,
    page_size: Optional[int] = None,
) -> ExplainResult:
    """Explain a query as the *physical* operator tree the time-sliced
    executor runs (:mod:`repro.sparql.physical`).

    Unlike :func:`explain`, ANALYZE here needs no probe: physical
    operators carry their own ``rows_produced`` / ``wall_s`` / ``calls``
    counters, read directly off the tree after execution.  With
    ``quantum_ms``/``page_size`` set, ANALYZE drives the plan page by
    page through :func:`repro.sparql.executor.run_quantum` and the
    planning note reports each suspension — what the paged endpoint
    path does per request.
    """
    from ..sparql import executor as sparql_executor
    from ..sparql.planner import build_physical_plan

    plan_obj = build_physical_plan(graph, query_text, optimize=optimize)
    if not analyze:
        return ExplainResult(
            query_text=query_text,
            plan=_physical_plan_node(graph, plan_obj.root, analyzed=False),
            analyzed=False,
            planning_note="physical plan (time-sliced executor)",
        )
    if plan_obj.factory.is_ask or (quantum_ms is None and page_size is None):
        result = sparql_executor.run_to_completion(plan_obj)
        note = "physical plan (time-sliced executor); ran in one quantum"
    else:
        pages = 0
        suspensions: List[str] = []
        rows: List = []
        while True:
            page = sparql_executor.run_quantum(
                plan_obj, quantum_ms=quantum_ms, page_size=page_size
            )
            pages += 1
            rows.extend(page.rows)
            if page.complete:
                break
            suspensions.append(page.reason)
        from ..sparql.results import SelectResult

        result = SelectResult(plan_obj.factory.variables, rows, stats=plan_obj.stats)
        note = (
            f"physical plan (time-sliced executor); {pages} page(s), "
            f"{len(suspensions)} suspension(s)"
            + (f" [{', '.join(suspensions)}]" if suspensions else "")
        )
    return ExplainResult(
        query_text=query_text,
        plan=_physical_plan_node(graph, plan_obj.root, analyzed=True),
        analyzed=True,
        result=result,
        planning_note=note,
    )
