"""Engine observability: metrics registry, per-operator tracing, EXPLAIN.

Three pieces, layered bottom-up:

* :mod:`repro.obs.metrics` — a dependency-free prometheus-style registry
  (:data:`REGISTRY`) that every engine layer emits counters, gauges, and
  histograms into; the metric-name catalogue is ``docs/OBSERVABILITY.md``.
* :mod:`repro.obs.tracing` — :class:`EvalProbe` wraps every evaluator
  operator in a measuring span; spans export as a tree or JSON lines.
* :mod:`repro.obs.explain` — ``EXPLAIN`` / ``EXPLAIN ANALYZE``: the
  algebra plan with estimated vs. actual per-operator cardinalities and
  wall time, surfaced by the ``repro explain`` CLI subcommand.

``explain`` is imported lazily (PEP 562) because it depends on the
evaluator, which itself emits metrics through this package.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    REGISTRY,
    get_registry,
)
from .tracing import (
    EvalProbe,
    OperatorSpan,
    OperatorSummary,
    render_span_tree,
    spans_to_json_lines,
)

__all__ = [
    "REGISTRY",
    "get_registry",
    "MetricsRegistry",
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "EvalProbe",
    "OperatorSpan",
    "OperatorSummary",
    "render_span_tree",
    "spans_to_json_lines",
    "ExplainResult",
    "PlanNode",
    "explain",
    "explain_physical",
    "estimate_cardinality",
]

_LAZY = {
    "ExplainResult",
    "PlanNode",
    "explain",
    "explain_physical",
    "estimate_cardinality",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(".explain", __name__)
        # Rebind all lazy names, including ``explain`` itself — the
        # submodule import binds the *module* over the package attribute,
        # and the function must win (use ``repro.obs.explain`` via
        # sys.modules / a from-import to reach the module).
        for attr in _LAZY:
            globals()[attr] = getattr(module, attr)
        return globals()[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
