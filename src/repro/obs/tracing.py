"""Per-operator tracing for the SPARQL evaluator.

:class:`EvalProbe` plugs into :class:`repro.sparql.evaluator.Evaluator`
(its ``probe`` argument): every algebra operator's iterator is wrapped in
a span that counts the rows it yields and the wall time spent pulling
them.  Spans form a tree mirroring the algebra tree — dynamically, so
operators materialised on the fly (``EXISTS`` sub-patterns, which the
evaluator re-translates per candidate row) attach under the operator
that triggered them, merged across invocations the way ``loops`` are in
PostgreSQL's ``EXPLAIN ANALYZE``.

Span wall times are *inclusive* (they contain child time); the renderer
derives self time by subtracting the children.  Spans export as JSON
lines (one object per span, parent-linked by id) and as an indented
tree — both surfaced by ``repro explain``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Tuple

from ..sparql.algebra import (
    Aggregation,
    AlgebraNode,
    Ask,
    BGP,
    Distinct,
    Extend,
    Filter,
    Join,
    LeftJoin,
    Minus,
    OrderBy,
    Project,
    Reduced,
    Slice,
    TopK,
    Unit,
    Union,
    ValuesTable,
)
from ..sparql.ast import Var

__all__ = [
    "OperatorSpan",
    "OperatorSummary",
    "EvalProbe",
    "operator_label",
    "operator_detail",
    "render_span_tree",
    "spans_to_json_lines",
]


# ----------------------------------------------------------------------
# Operator naming
# ----------------------------------------------------------------------


def _term_text(term) -> str:
    """Render an AST/RDF term the way it appears in a query."""
    if isinstance(term, Var):
        return f"?{term.name}"
    n3 = getattr(term, "n3", None)
    if callable(n3):
        return n3()
    return str(term)


def _pattern_text(pattern) -> str:
    return " ".join(
        _term_text(term)
        for term in (pattern.subject, pattern.predicate, pattern.object)
    )


def operator_label(node: AlgebraNode) -> str:
    """Short stable operator name (the metric/trace label)."""
    return type(node).__name__


def operator_detail(node: AlgebraNode, width: int = 60) -> str:
    """One-line operator description for the plan/trace rendering."""
    if isinstance(node, BGP):
        text = " . ".join(_pattern_text(pattern) for pattern in node.patterns)
        detail = f"{len(node.patterns)} patterns: {text}"
        if node.filters:
            detail += f" +{len(node.filters)} inline filters"
    elif isinstance(node, Union):
        detail = f"{len(node.branches)} branches"
    elif isinstance(node, Extend):
        detail = f"BIND ?{node.var.name}"
    elif isinstance(node, ValuesTable):
        variables = " ".join(f"?{var.name}" for var in node.variables)
        detail = f"{len(node.rows)} rows over {variables}"
    elif isinstance(node, Aggregation):
        keys = []
        for key in node.keys:
            var = getattr(key, "var", None)
            keys.append(f"?{var.name}" if var is not None else "<expr>")
        detail = f"group by {' '.join(keys)}" if keys else "implicit group"
    elif isinstance(node, Project):
        if node.variables is None:
            detail = "*"
        else:
            detail = " ".join(f"?{var.name}" for var in node.variables)
    elif isinstance(node, Slice):
        parts = []
        if node.offset:
            parts.append(f"offset {node.offset}")
        if node.limit is not None:
            parts.append(f"limit {node.limit}")
        detail = " ".join(parts)
    elif isinstance(node, OrderBy):
        detail = f"{len(node.conditions)} keys"
    elif isinstance(node, TopK):
        detail = f"{len(node.conditions)} keys, limit {node.limit}"
        if node.offset:
            detail += f", offset {node.offset}"
    elif isinstance(node, Filter):
        detail = "condition"
    else:
        detail = ""
    if len(detail) > width:
        detail = detail[: width - 3] + "..."
    return detail


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------


@dataclass
class OperatorSpan:
    """One operator's measured execution (possibly merged invocations)."""

    span_id: int
    label: str
    detail: str
    parent: Optional["OperatorSpan"] = None
    children: List["OperatorSpan"] = field(default_factory=list)
    rows: int = 0
    wall_s: float = 0.0  # inclusive: contains child time
    invocations: int = 1
    finished: bool = False

    @property
    def wall_ms(self) -> float:
        return self.wall_s * 1000.0

    @property
    def self_wall_ms(self) -> float:
        """Wall time minus the children's inclusive wall time."""
        child_ms = sum(child.wall_ms for child in self.children)
        return max(0.0, self.wall_ms - child_ms)

    def walk(self) -> Iterator["OperatorSpan"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict:
        """The span's JSON-line schema (see docs/OBSERVABILITY.md)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent.span_id if self.parent else None,
            "operator": self.label,
            "detail": self.detail,
            "rows": self.rows,
            "wall_ms": round(self.wall_ms, 6),
            "self_wall_ms": round(self.self_wall_ms, 6),
            "invocations": self.invocations,
            "finished": self.finished,
        }


@dataclass(frozen=True)
class OperatorSummary:
    """Flat per-operator aggregate attached to endpoint query logs."""

    operator: str
    rows: int
    wall_ms: float
    invocations: int


class EvalProbe:
    """Builds the span tree while the evaluator runs.

    Pass one instance as ``Evaluator(graph, probe=EvalProbe())``; after
    the query is consumed, ``roots`` holds the span forest (normally a
    single root mirroring the algebra tree).
    """

    def __init__(self) -> None:
        self.roots: List[OperatorSpan] = []
        self.span_by_node: Dict[int, OperatorSpan] = {}
        self._stack: List[OperatorSpan] = []
        self._serial = 0

    # -- evaluator hook -------------------------------------------------

    def wrap(self, node: AlgebraNode, iterator: Iterator) -> Iterator:
        """Wrap one operator's iterator in a measuring span."""
        span = self._span_for(node)
        return self._measure(span, iterator)

    def _span_for(self, node: AlgebraNode) -> OperatorSpan:
        existing = self.span_by_node.get(id(node))
        if existing is not None:
            # The same operator object evaluated again (e.g. a shared
            # subtree): accumulate into the same span.
            existing.invocations += 1
            return existing
        parent = self._stack[-1] if self._stack else None
        label = operator_label(node)
        detail = operator_detail(node)
        if parent is not None:
            # Structurally identical fresh trees (EXISTS re-translates its
            # pattern per candidate row) merge into one span per parent.
            for child in parent.children:
                if child.label == label and child.detail == detail:
                    child.invocations += 1
                    self.span_by_node[id(node)] = child
                    return child
        self._serial += 1
        span = OperatorSpan(
            span_id=self._serial, label=label, detail=detail, parent=parent
        )
        if parent is None:
            self.roots.append(span)
        else:
            parent.children.append(span)
        self.span_by_node[id(node)] = span
        return span

    def _measure(self, span: OperatorSpan, iterator: Iterator) -> Iterator:
        stack = self._stack
        while True:
            start = perf_counter()
            stack.append(span)
            try:
                try:
                    item = next(iterator)
                except StopIteration:
                    span.finished = True
                    return
            finally:
                stack.pop()
                span.wall_s += perf_counter() - start
            span.rows += 1
            yield item

    # -- aggregation ----------------------------------------------------

    def summaries(self) -> Tuple[OperatorSummary, ...]:
        """Per-operator flat aggregates (self time, merged by label)."""
        rows: Dict[str, List[float]] = {}
        for root in self.roots:
            for span in root.walk():
                slot = rows.setdefault(span.label, [0, 0.0, 0])
                slot[0] += span.rows
                slot[1] += span.self_wall_ms
                slot[2] += span.invocations
        return tuple(
            OperatorSummary(
                operator=label,
                rows=int(slot[0]),
                wall_ms=slot[1],
                invocations=int(slot[2]),
            )
            for label, slot in sorted(
                rows.items(), key=lambda item: -item[1][1]
            )
        )


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------


def render_span_tree(roots: List[OperatorSpan]) -> str:
    """Human-readable indented tree of measured spans."""
    lines: List[str] = []

    def visit(span: OperatorSpan, depth: int) -> None:
        indent = "  " * depth
        detail = f" ({span.detail})" if span.detail else ""
        loops = f" loops={span.invocations}" if span.invocations > 1 else ""
        lines.append(
            f"{indent}{span.label}{detail}  rows={span.rows}  "
            f"wall={span.wall_ms:.3f}ms self={span.self_wall_ms:.3f}ms{loops}"
        )
        for child in span.children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return "\n".join(lines)


def spans_to_json_lines(roots: List[OperatorSpan]) -> str:
    """One JSON object per span, pre-order, parent-linked by id."""
    lines = []
    for root in roots:
        for span in root.walk():
            lines.append(json.dumps(span.to_dict(), sort_keys=True))
    return "\n".join(lines)
