"""A process-wide metrics registry (prometheus-client style, zero deps).

Every layer of the query path emits counters, gauges, and histograms into
one :data:`REGISTRY` so that a single ``repro metrics`` call (or a test)
can see where work happened: index lookups in :mod:`repro.rdf.graph`,
bindings and join strategies in :mod:`repro.sparql.evaluator`, simulated
latency per source in :mod:`repro.endpoint`, and cache/rewrite decisions
in :mod:`repro.perf`.

The metric *names* are a stable public contract — the full catalogue
lives in ``docs/OBSERVABILITY.md`` and a test asserts the two stay in
sync.  Conventions follow Prometheus: ``*_total`` counters only go up,
gauges go both ways, histograms expose cumulative buckets plus ``_sum``
and ``_count``.

Instrumented hot paths pre-bind their label children once at import time
(e.g. ``_SPO = LOOKUPS.labels(index="spo")``) so the per-event cost is a
single integer addition.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "DEFAULT_LATENCY_BUCKETS_MS",
]


class MetricError(ValueError):
    """Invalid metric definition or use (bad name, labels, cardinality)."""


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets for simulated-latency metrics (milliseconds).
DEFAULT_LATENCY_BUCKETS_MS = (
    1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 30000.0, 120000.0,
)

#: Safety valve against unbounded label explosion (e.g. a label set keyed
#: on raw query text by mistake).  Exceeding it raises, loudly.
DEFAULT_MAX_LABEL_SETS = 1000


class _Metric:
    """Common machinery: name/label validation and child management."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
    ):
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name: {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name: {label!r}")
        if len(set(labelnames)) != len(labelnames):
            raise MetricError(f"duplicate label names: {labelnames!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.max_label_sets = max_label_sets
        self._children: Dict[Tuple[str, ...], "_Metric"] = {}
        self._lock = threading.Lock()

    # -- labelling ------------------------------------------------------

    def labels(self, **labelvalues: str) -> "_Metric":
        """The child series for one label-value combination."""
        if not self.labelnames:
            raise MetricError(f"{self.name} takes no labels")
        if set(labelvalues) != set(self.labelnames):
            raise MetricError(
                f"{self.name} requires labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if len(self._children) >= self.max_label_sets:
                        raise MetricError(
                            f"{self.name}: label cardinality limit "
                            f"({self.max_label_sets}) exceeded"
                        )
                    child = self._make_child()
                    self._children[key] = child
        return child

    def _make_child(self) -> "_Metric":
        return type(self)(self.name, self.help)

    def _check_unlabelled(self) -> None:
        if self.labelnames:
            raise MetricError(
                f"{self.name} has labels {self.labelnames}; "
                "call .labels(...) first"
            )

    # -- introspection --------------------------------------------------

    def samples(self) -> Iterator[Tuple[str, Dict[str, str], float]]:
        """Yield ``(sample_name, labels, value)`` rows."""
        if self.labelnames:
            for key, child in sorted(self._children.items()):
                labels = dict(zip(self.labelnames, key))
                for name, sub_labels, value in child.samples():
                    merged = dict(labels)
                    merged.update(sub_labels)
                    yield name, merged, value
        else:
            yield from self._own_samples()

    def _own_samples(self) -> Iterator[Tuple[str, Dict[str, str], float]]:
        raise NotImplementedError

    def reset(self) -> None:
        """Zero the metric and every label child, in place.

        Children are zeroed rather than dropped because instrumented
        modules pre-bind child objects at import time; dropping them
        would orphan those references and silently lose future counts.
        """
        for child in self._children.values():
            child.reset()
        self._reset_own()

    def _reset_own(self) -> None:
        pass

    # -- cross-process transfer -----------------------------------------

    def export_state(self) -> Dict:
        """A JSON-able snapshot of this metric's values (all children)."""
        return {
            "children": [
                [list(key), child.export_state()]
                for key, child in sorted(self._children.items())
            ],
            "own": self._export_own(),
        }

    def merge_state(self, state: Dict, previous: Optional[Dict] = None) -> None:
        """Fold another process's :meth:`export_state` into this metric.

        ``previous`` is the last snapshot already merged from the same
        source; only the delta since then is applied, so the caller can
        poll a live worker repeatedly without double counting.  Label
        children unseen in this process are created on demand.
        """
        prev_children: Dict[Tuple[str, ...], Dict] = {}
        if previous:
            prev_children = {
                tuple(key): child_state
                for key, child_state in previous.get("children", ())
            }
        for key_list, child_state in state.get("children", ()):
            key = tuple(key_list)
            child = self.labels(**dict(zip(self.labelnames, key)))
            child.merge_state(child_state, prev_children.get(key))
        self._merge_own(
            state.get("own"), previous.get("own") if previous else None
        )

    def _export_own(self):
        return None

    def _merge_own(self, own, previous_own) -> None:
        pass


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._check_unlabelled()
        if amount < 0:
            raise MetricError(f"{self.name}: counters cannot decrease")
        self._value += amount

    @property
    def value(self) -> float:
        self._check_unlabelled()
        return self._value

    def _own_samples(self):
        yield self.name, {}, self._value

    def _reset_own(self) -> None:
        self._value = 0.0

    def _export_own(self):
        return self._value

    def _merge_own(self, own, previous_own) -> None:
        if own is None:
            return
        delta = float(own) - float(previous_own or 0.0)
        if delta > 0:
            self._value += delta


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._check_unlabelled()
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._check_unlabelled()
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        self._check_unlabelled()
        return self._value

    def _own_samples(self):
        yield self.name, {}, self._value

    def _reset_own(self) -> None:
        self._value = 0.0

    def _export_own(self):
        return self._value

    def _merge_own(self, own, previous_own) -> None:
        # Gauges merge additively by delta: fleet gauges (active
        # sessions, queue depths) sum naturally; point-in-time gauges
        # drift toward the sum of sources, which the catalogue accepts
        # as the fleet-wide reading.
        if own is None:
            return
        self._value += float(own) - float(previous_own or 0.0)


class Histogram(_Metric):
    """Cumulative-bucket histogram with ``_sum`` and ``_count``."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
    ):
        super().__init__(name, help, labelnames, max_label_sets)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise MetricError(f"{name}: at least one bucket required")
        if len(set(bounds)) != len(bounds):
            raise MetricError(f"{name}: duplicate bucket bounds")
        self.buckets = bounds
        self._bucket_counts = [0] * len(bounds)
        self._sum = 0.0
        self._count = 0

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.help, buckets=self.buckets)

    def observe(self, value: float) -> None:
        self._check_unlabelled()
        value = float(value)
        self._sum += value
        self._count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self._bucket_counts[index] += 1

    @property
    def count(self) -> int:
        self._check_unlabelled()
        return self._count

    @property
    def sum(self) -> float:
        self._check_unlabelled()
        return self._sum

    def bucket_counts(self) -> Dict[float, int]:
        """Cumulative count per upper bound (plus ``+Inf`` = count)."""
        self._check_unlabelled()
        cumulative = dict(zip(self.buckets, self._bucket_counts))
        cumulative[float("inf")] = self._count
        return cumulative

    def _own_samples(self):
        for bound, cumulative in self.bucket_counts().items():
            label = "+Inf" if bound == float("inf") else _format_value(bound)
            yield f"{self.name}_bucket", {"le": label}, float(cumulative)
        yield f"{self.name}_sum", {}, self._sum
        yield f"{self.name}_count", {}, float(self._count)

    def _reset_own(self) -> None:
        self._bucket_counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0

    def _export_own(self):
        return {
            "buckets": list(self.buckets),
            "bucket_counts": list(self._bucket_counts),
            "sum": self._sum,
            "count": self._count,
        }

    def _merge_own(self, own, previous_own) -> None:
        if own is None:
            return
        if tuple(own.get("buckets", ())) != self.buckets:
            raise MetricError(
                f"{self.name}: cannot merge histogram with different buckets"
            )
        prev_counts = (
            previous_own.get("bucket_counts") if previous_own else None
        ) or [0] * len(self.buckets)
        for index, count in enumerate(own["bucket_counts"]):
            self._bucket_counts[index] += count - prev_counts[index]
        self._sum += own["sum"] - (previous_own["sum"] if previous_own else 0.0)
        self._count += own["count"] - (
            previous_own["count"] if previous_own else 0
        )


def _format_value(value: float) -> str:
    return f"{int(value)}" if float(value).is_integer() else repr(value)


class MetricsRegistry:
    """Holds every metric of the process; renders the exposition text."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # -- registration ---------------------------------------------------

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if (
                    type(existing) is not type(metric)
                    or existing.labelnames != metric.labelnames
                ):
                    raise MetricError(
                        f"metric {metric.name!r} already registered with a "
                        "different type or label set"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        """Register (or fetch the identically-shaped existing) counter."""
        metric = self._register(Counter(name, help, labelnames))
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        metric = self._register(Gauge(name, help, labelnames))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> Histogram:
        metric = self._register(Histogram(name, help, labelnames, buckets))
        assert isinstance(metric, Histogram)
        return metric

    # -- introspection --------------------------------------------------

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: object) -> bool:
        return name in self._metrics

    def collect(self) -> Iterator[_Metric]:
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def reset(self) -> None:
        """Zero every metric (keeps registrations); for tests and the
        CLI's ``metrics --exercise``."""
        for metric in self._metrics.values():
            metric.reset()

    # -- cross-process transfer -----------------------------------------

    def export_state(self) -> Dict[str, Dict]:
        """JSON-able snapshot of every metric, for shipping over a pipe.

        A pool worker calls this on its own registry and sends the
        result to the parent over the control pipe; the parent folds it
        in with :meth:`merge_exported` so ``repro metrics`` reports
        fleet-wide numbers.
        """
        return {
            name: metric.export_state()
            for name, metric in sorted(self._metrics.items())
        }

    def merge_exported(
        self,
        state: Dict[str, Dict],
        previous: Optional[Dict[str, Dict]] = None,
    ) -> None:
        """Fold a worker's :meth:`export_state` into this registry.

        ``previous`` must be the snapshot from the *same source* that
        was last merged (or ``None`` for its first report): counters
        and histograms apply only the delta since then, so repeated
        polls of a live worker never double count.  Metric names this
        process has not registered are skipped — the worker imports the
        same instrumented modules, so a missing name means a module the
        parent never loaded, not data loss that matters here.
        """
        previous = previous or {}
        for name, metric_state in state.items():
            metric = self._metrics.get(name)
            if metric is None:
                continue
            metric.merge_state(metric_state, previous.get(name))

    # -- rendering ------------------------------------------------------

    def render(self, include_empty: bool = True) -> str:
        """The Prometheus text exposition format."""
        lines: List[str] = []
        for metric in self.collect():
            samples = list(metric.samples())
            if not samples and not include_empty:
                continue
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample_name, labels, value in samples:
                if labels:
                    rendered = ",".join(
                        f'{key}="{_escape(str(val))}"'
                        for key, val in sorted(labels.items())
                    )
                    lines.append(
                        f"{sample_name}{{{rendered}}} {_format_value(value)}"
                    )
                else:
                    lines.append(f"{sample_name} {_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


#: The process-wide default registry every instrumented module writes to.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (one level of indirection for tests)."""
    return REGISTRY
