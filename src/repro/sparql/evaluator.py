"""Evaluation of algebra trees over an RDF graph.

The evaluator is a pull-based iterator pipeline over *solution mappings*
(dicts from variable name to term).  BGPs are evaluated with a greedy
selectivity-ordered index-nested-loop join; binary joins between algebra
subtrees use hash joins on the shared variables.

Every operator counts the solutions it produces into an
:class:`EvalStats`, which the simulated endpoint's cost model
(:mod:`repro.endpoint.cost`) converts into simulated latency — this is
how the reproduction makes the paper's "heavy queries" (Section 4,
Fig. 4) measurably heavy without a billion-triple store.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..obs.metrics import REGISTRY
from ..rdf.graph import Graph
from ..rdf.terms import Term
from .algebra import (
    Aggregation,
    AlgebraNode,
    Ask,
    BGP,
    Distinct,
    Extend,
    Filter,
    Join,
    LeftJoin,
    Minus,
    OrderBy,
    Project,
    Reduced,
    Slice,
    TopK,
    Unit,
    Union,
    ValuesTable,
    certain_variables,
    expression_variables,
    translate_query,
)
from .ast import (
    AggregateExpr,
    ConstructQuery,
    PathExpr,
    Projection,
    Query,
    SelectQuery,
    TriplePatternNode,
    Var,
    VarExpr,
)
from .errors import ExpressionError, SparqlEvalError
from .functions import (
    Binding,
    effective_boolean_value,
    evaluate_expression,
    term_order_key,
)
from .paths import eval_path
from .parser import parse_query
from .results import AskResult, GraphResult, SelectResult

__all__ = ["EvalStats", "Evaluator", "evaluate", "evaluate_algebra"]

_QUERIES_TOTAL = REGISTRY.counter(
    "repro_eval_queries_total", "Queries evaluated by the SPARQL engine"
)
_BINDINGS_TOTAL = REGISTRY.counter(
    "repro_eval_bindings_total",
    "Intermediate solution mappings produced by all operators",
)
_PATTERN_SCANS_TOTAL = REGISTRY.counter(
    "repro_eval_pattern_scans_total",
    "Triple-pattern scans issued against the graph indexes",
)
_RESULTS_TOTAL = REGISTRY.counter(
    "repro_eval_results_total", "Result rows returned to callers"
)
_JOIN_STRATEGY_TOTAL = REGISTRY.counter(
    "repro_eval_join_strategy_total",
    "Binary join executions by chosen strategy",
    labelnames=("strategy",),
)
_JOIN_HASH = _JOIN_STRATEGY_TOTAL.labels(strategy="hash")
_JOIN_PRODUCT = _JOIN_STRATEGY_TOTAL.labels(strategy="product")


@dataclass
class EvalStats:
    """Work counters collected during evaluation.

    ``intermediate_bindings`` is the total number of solution mappings
    produced by all operators — the proxy for the "hundreds of millions of
    tuples as an intermediate result" the paper attributes to the heavy
    property-expansion query (Section 4).
    """

    intermediate_bindings: int = 0
    pattern_scans: int = 0
    results: int = 0
    groups: int = 0

    def merge(self, other: "EvalStats") -> None:
        self.intermediate_bindings += other.intermediate_bindings
        self.pattern_scans += other.pattern_scans
        self.results += other.results
        self.groups += other.groups


def _compatible(left: Binding, right: Binding) -> bool:
    for name, value in right.items():
        bound = left.get(name)
        if bound is not None and bound != value:
            return False
    return True


def _merge(left: Binding, right: Binding) -> Binding:
    merged = dict(left)
    merged.update(right)
    return merged


def _binding_key(binding: Binding, names: Tuple[str, ...]) -> Tuple:
    return tuple(binding.get(name) for name in names)


def _chain_first(first: Binding, rest: Iterator[Binding]) -> Iterator[Binding]:
    """Re-attach a peeked first element in front of its iterator."""
    yield first
    yield from rest


# ----------------------------------------------------------------------
# BGP planning helpers
#
# Module-level so the physical planner (:mod:`repro.sparql.planner`)
# makes the identical ordering and filter-placement decisions — the
# two engines must execute the same plan for result and stats parity.
# ----------------------------------------------------------------------


def pattern_selectivity(pattern: TriplePatternNode, bound: set) -> Tuple[int, int]:
    """(negated bound positions, estimated scan size) — lower is better."""
    bound_positions = 0
    for term in pattern:
        if not isinstance(term, Var) or term.name in bound:
            bound_positions += 1
    return (-bound_positions, 0)


def order_patterns(
    patterns: Iterable[TriplePatternNode],
) -> List[TriplePatternNode]:
    """Greedy selectivity ordering of a BGP's triple patterns."""
    remaining = list(patterns)
    ordered: List[TriplePatternNode] = []
    bound: set = set()
    while remaining:
        remaining.sort(key=lambda p: pattern_selectivity(p, bound))
        chosen = remaining.pop(0)
        ordered.append(chosen)
        bound |= chosen.variables()
    return ordered


def assign_filter_slots(
    ordered: List[TriplePatternNode], filters
) -> List[List]:
    """Attach each pushed-in filter at the earliest join depth where all
    of its variables are bound, so failing candidates are discarded
    before the remaining patterns are expanded.  Slot 0 guards the
    initial (empty) binding; slot ``i + 1`` applies to rows produced by
    pattern ``i``."""
    filters_at: List[List] = [[] for _ in range(len(ordered) + 1)]
    if not filters:
        return filters_at
    bound_after: List[set] = []
    bound: set = set()
    for pattern in ordered:
        bound |= pattern.variables()
        bound_after.append(set(bound))
    for condition in filters:
        needed = expression_variables(condition)
        slot = len(ordered)
        for index, available in enumerate(bound_after):
            if needed <= available:
                slot = index + 1
                break
        if not needed:
            slot = 0
        filters_at[slot].append(condition)
    return filters_at


def result_variables(query: Query, algebra: AlgebraNode) -> List[str]:
    """The projection variable names of a SELECT, in output order.

    For ``SELECT *`` the variables mentioned in the pattern are
    collected in first-use order from the algebra tree.
    """
    assert isinstance(query, SelectQuery)
    if query.projections is not None:
        return [projection.var.name for projection in query.projections]
    ordered: List[str] = []

    def visit(node: AlgebraNode) -> None:
        if isinstance(node, BGP):
            for pattern in node.patterns:
                for term in pattern:
                    if isinstance(term, Var) and term.name not in ordered:
                        ordered.append(term.name)
        elif isinstance(node, (Join, LeftJoin, Minus)):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, (Filter, Distinct, Reduced, Slice, OrderBy, TopK)):
            visit(node.input)
        elif isinstance(node, Extend):
            visit(node.input)
            if node.var.name not in ordered:
                ordered.append(node.var.name)
        elif isinstance(node, Union):
            for branch in node.branches:
                visit(branch)
        elif isinstance(node, ValuesTable):
            for var in node.variables:
                if var.name not in ordered:
                    ordered.append(var.name)
        elif isinstance(node, Aggregation):
            for projection in node.projections:
                if projection.var.name not in ordered:
                    ordered.append(projection.var.name)
        elif isinstance(node, Project):
            if node.variables is None:
                visit(node.input)
            else:
                for var in node.variables:
                    if var.name not in ordered:
                        ordered.append(var.name)

    visit(algebra)
    return ordered


class Evaluator:
    """Evaluates algebra trees against one :class:`Graph`.

    ``probe`` is an optional tracing hook (duck-typed; see
    :class:`repro.obs.tracing.EvalProbe`): when set, every operator
    iterator produced by :meth:`_eval` is passed through
    ``probe.wrap(node, iterator)``, which is how ``EXPLAIN ANALYZE``
    measures per-operator cardinalities and wall time.
    """

    def __init__(self, graph: Graph, probe=None):
        self.graph = graph
        #: the graph's term dictionary; the physical layer (which uses an
        #: Evaluator as its shared runtime) encodes/decodes through it.
        self.dictionary = getattr(graph, "dictionary", None)
        self.stats = EvalStats()
        self.probe = probe

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, query: Query):
        """Evaluate a parsed query; returns a SelectResult, AskResult,
        or GraphResult (CONSTRUCT)."""
        if isinstance(query, ConstructQuery):
            return self._run_construct(query)
        return self.run_translated(query, translate_query(query))

    def run_translated(self, query: Query, algebra: AlgebraNode):
        """Evaluate a query whose algebra tree is already translated.

        Callers that need to hold on to the exact operator objects being
        executed (``EXPLAIN ANALYZE`` maps spans back to them) translate
        once and pass the tree in here.
        """
        snapshot = EvalStats()
        snapshot.merge(self.stats)
        try:
            if isinstance(algebra, Ask):
                for _ in self._eval(algebra.input):
                    return AskResult(True, stats=self.stats)
                return AskResult(False, stats=self.stats)
            variables = self._result_variables(query, algebra)
            rows = []
            for binding in self._eval(algebra):
                self.stats.results += 1
                rows.append(binding)
            return SelectResult(variables, rows, stats=self.stats)
        finally:
            self._flush_metrics(snapshot)

    def _result_variables(self, query: Query, algebra: AlgebraNode) -> List[str]:
        return result_variables(query, algebra)

    # ------------------------------------------------------------------
    # CONSTRUCT
    # ------------------------------------------------------------------

    def _flush_metrics(self, snapshot: EvalStats) -> None:
        """Emit this run's counter deltas into the process registry."""
        _QUERIES_TOTAL.inc()
        _BINDINGS_TOTAL.inc(
            self.stats.intermediate_bindings - snapshot.intermediate_bindings
        )
        _PATTERN_SCANS_TOTAL.inc(
            self.stats.pattern_scans - snapshot.pattern_scans
        )
        _RESULTS_TOTAL.inc(self.stats.results - snapshot.results)

    def _run_construct(self, query: ConstructQuery):
        from ..rdf.terms import BNode, URI
        from .algebra import translate_pattern

        snapshot = EvalStats()
        snapshot.merge(self.stats)
        solutions = self._eval(translate_pattern(query.where))
        # Apply OFFSET / LIMIT to the solution sequence per the spec.
        sliced: List[Binding] = []
        for index, binding in enumerate(solutions):
            if index < query.offset:
                continue
            if query.limit is not None and len(sliced) >= query.limit:
                break
            sliced.append(binding)
        constructed = Graph()
        bnode_serial = 0
        for binding in sliced:
            # Blank nodes in the template are freshened per solution.
            bnode_serial += 1
            fresh: Dict[str, BNode] = {}
            for pattern in query.template:
                terms = []
                valid = True
                for term in pattern:
                    if isinstance(term, Var):
                        value = binding.get(term.name)
                        if value is None:
                            valid = False
                            break
                        terms.append(value)
                    elif isinstance(term, BNode):
                        key = term.id
                        if key not in fresh:
                            fresh[key] = BNode(f"c{bnode_serial}_{key}")
                        terms.append(fresh[key])
                    else:
                        terms.append(term)
                if not valid:
                    continue
                subject, predicate, object = terms
                if not isinstance(subject, (URI, BNode)):
                    continue  # literal subjects are silently skipped
                if not isinstance(predicate, URI):
                    continue
                constructed.add(subject, predicate, object)
                self.stats.results += 1
        self._flush_metrics(snapshot)
        return GraphResult(constructed, stats=self.stats)

    # ------------------------------------------------------------------
    # EXISTS support (used as the expression-evaluation context)
    # ------------------------------------------------------------------

    def exists(self, pattern, binding: Binding) -> bool:
        """Whether the group pattern has a solution compatible with
        ``binding`` — the semantics of ``EXISTS { ... }``."""
        from .algebra import translate_pattern

        for candidate in self.evaluate(translate_pattern(pattern)):
            if _compatible(binding, candidate) and _compatible(candidate, binding):
                return True
        return False

    # ------------------------------------------------------------------
    # Operator dispatch
    # ------------------------------------------------------------------

    def evaluate(self, node: AlgebraNode) -> Iterator[Binding]:
        """Evaluate a (sub-)plan and yield its solution mappings.

        This is the public entry point for executing a bare algebra tree
        — sub-plans (EXISTS patterns), :func:`evaluate_algebra`, and
        tests all come through here rather than reaching into the
        operator dispatch.
        """
        return self._eval(node)

    def _eval(self, node: AlgebraNode) -> Iterator[Binding]:
        """Evaluate one operator, routing through the probe when set."""
        iterator = self._dispatch(node)
        if self.probe is not None:
            iterator = self.probe.wrap(node, iterator)
        return iterator

    def _dispatch(self, node: AlgebraNode) -> Iterator[Binding]:
        if isinstance(node, Unit):
            yield {}
            return
        if isinstance(node, BGP):
            yield from self._eval_bgp(node)
        elif isinstance(node, Join):
            yield from self._eval_join(node)
        elif isinstance(node, LeftJoin):
            yield from self._eval_left_join(node)
        elif isinstance(node, Filter):
            yield from self._eval_filter(node)
        elif isinstance(node, Union):
            for branch in node.branches:
                for binding in self._eval(branch):
                    self.stats.intermediate_bindings += 1
                    yield binding
        elif isinstance(node, Minus):
            yield from self._eval_minus(node)
        elif isinstance(node, Extend):
            yield from self._eval_extend(node)
        elif isinstance(node, ValuesTable):
            for row in node.rows:
                binding = {
                    var.name: value
                    for var, value in zip(node.variables, row)
                    if value is not None
                }
                self.stats.intermediate_bindings += 1
                yield binding
        elif isinstance(node, Aggregation):
            yield from self._eval_aggregation(node)
        elif isinstance(node, Project):
            yield from self._eval_project(node)
        elif isinstance(node, Distinct):
            yield from self._eval_distinct(node)
        elif isinstance(node, Reduced):
            yield from self._eval_reduced(node)
        elif isinstance(node, OrderBy):
            yield from self._eval_order_by(node)
        elif isinstance(node, TopK):
            yield from self._eval_top_k(node)
        elif isinstance(node, Slice):
            yield from self._eval_slice(node)
        else:
            raise SparqlEvalError(f"unsupported algebra node: {node!r}")

    # ------------------------------------------------------------------
    # BGP
    # ------------------------------------------------------------------

    def _pattern_selectivity(
        self, pattern: TriplePatternNode, bound: set
    ) -> Tuple[int, int]:
        return pattern_selectivity(pattern, bound)

    def _order_patterns(
        self, patterns: Iterable[TriplePatternNode]
    ) -> List[TriplePatternNode]:
        return order_patterns(patterns)

    def _eval_bgp(self, node: BGP) -> Iterator[Binding]:
        patterns = node.patterns
        if not patterns:
            binding: Binding = {}
            for condition in node.filters:
                try:
                    if not effective_boolean_value(
                        evaluate_expression(condition, binding, context=self)
                    ):
                        return
                except ExpressionError:
                    return
            yield binding
            return
        if node.preordered:
            ordered = list(patterns)
        else:
            ordered = self._order_patterns(patterns)
        filters_at = assign_filter_slots(ordered, node.filters)

        def passes(index: int, binding: Binding) -> bool:
            for condition in filters_at[index]:
                try:
                    if not effective_boolean_value(
                        evaluate_expression(condition, binding, context=self)
                    ):
                        return False
                except ExpressionError:
                    return False
            return True

        def extend(index: int, binding: Binding) -> Iterator[Binding]:
            if not passes(index, binding):
                return
            if index == len(ordered):
                yield binding
                return
            pattern = ordered[index]
            if isinstance(pattern.predicate, PathExpr):
                yield from extend_path(index, pattern, binding)
                return
            subject = self._instantiate(pattern.subject, binding)
            predicate = self._instantiate(pattern.predicate, binding)
            object = self._instantiate(pattern.object, binding)
            self.stats.pattern_scans += 1
            for triple in self.graph.triples(subject, predicate, object):
                new_binding = dict(binding)
                ok = True
                for term, value in zip(pattern, triple):
                    if isinstance(term, Var):
                        existing = new_binding.get(term.name)
                        if existing is None:
                            new_binding[term.name] = value
                        elif existing != value:
                            ok = False
                            break
                if not ok:
                    continue
                self.stats.intermediate_bindings += 1
                yield from extend(index + 1, new_binding)

        def extend_path(
            index: int, pattern: TriplePatternNode, binding: Binding
        ) -> Iterator[Binding]:
            subject = self._instantiate(pattern.subject, binding)
            object = self._instantiate(pattern.object, binding)
            self.stats.pattern_scans += 1
            for start, end in eval_path(
                self.graph, subject, pattern.predicate, object
            ):
                new_binding = dict(binding)
                ok = True
                for term, value in ((pattern.subject, start), (pattern.object, end)):
                    if isinstance(term, Var):
                        existing = new_binding.get(term.name)
                        if existing is None:
                            new_binding[term.name] = value
                        elif existing != value:
                            ok = False
                            break
                if not ok:
                    continue
                self.stats.intermediate_bindings += 1
                yield from extend(index + 1, new_binding)

        yield from extend(0, {})

    @staticmethod
    def _instantiate(term, binding: Binding) -> Optional[Term]:
        if isinstance(term, Var):
            return binding.get(term.name)
        return term

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------

    @staticmethod
    def _join_keys(node) -> Tuple[str, ...]:
        """Hash-join key variables, derived statically from the algebra.

        Keys are variables *certainly* bound on both sides (see
        :func:`repro.sparql.algebra.certain_variables`), so a key lookup
        can never miss a compatible row through an unbound variable.
        Possibly-shared variables are left to the ``_compatible`` check.
        """
        return tuple(
            sorted(
                certain_variables(node.left) & certain_variables(node.right)
            )
        )

    def _eval_join(self, node: Join) -> Iterator[Binding]:
        # The probe (left) side streams: a Slice/TopK ancestor that stops
        # pulling terminates the left subtree early instead of
        # materializing it.  Only the build (right) side is held in
        # memory, and only once the left side proves non-empty.
        left_iter = iter(self._eval(node.left))
        try:
            first_left = next(left_iter)
        except StopIteration:
            return
        right_rows = list(self._eval(node.right))
        if not right_rows:
            return
        shared = self._join_keys(node)
        if not shared:
            _JOIN_PRODUCT.inc()
            for left in _chain_first(first_left, left_iter):
                for right in right_rows:
                    if _compatible(left, right):
                        self.stats.intermediate_bindings += 1
                        yield _merge(left, right)
            return
        _JOIN_HASH.inc()
        table: Dict[Tuple, List[Binding]] = {}
        for right in right_rows:
            table.setdefault(_binding_key(right, shared), []).append(right)
        for left in _chain_first(first_left, left_iter):
            for right in table.get(_binding_key(left, shared), ()):
                if _compatible(left, right):
                    self.stats.intermediate_bindings += 1
                    yield _merge(left, right)

    def _eval_left_join(self, node: LeftJoin) -> Iterator[Binding]:
        left_iter = iter(self._eval(node.left))
        try:
            first_left = next(left_iter)
        except StopIteration:
            return
        right_rows = list(self._eval(node.right))
        shared = self._join_keys(node)
        table: Dict[Tuple, List[Binding]] = {}
        for right in right_rows:
            table.setdefault(_binding_key(right, shared), []).append(right)
        for left in _chain_first(first_left, left_iter):
            matched = False
            candidates = (
                table.get(_binding_key(left, shared), ()) if shared else right_rows
            )
            for right in candidates:
                if not _compatible(left, right):
                    continue
                merged = _merge(left, right)
                if node.condition is not None:
                    try:
                        if not effective_boolean_value(
                            evaluate_expression(node.condition, merged, context=self)
                        ):
                            continue
                    except ExpressionError:
                        continue
                matched = True
                self.stats.intermediate_bindings += 1
                yield merged
            if not matched:
                self.stats.intermediate_bindings += 1
                yield dict(left)

    def _eval_minus(self, node: Minus) -> Iterator[Binding]:
        right_rows = list(self._eval(node.right))
        for left in self._eval(node.left):
            excluded = False
            for right in right_rows:
                shared = left.keys() & right.keys()
                if shared and all(left[name] == right[name] for name in shared):
                    excluded = True
                    break
            if not excluded:
                self.stats.intermediate_bindings += 1
                yield left

    # ------------------------------------------------------------------
    # Filters, extend
    # ------------------------------------------------------------------

    def _eval_filter(self, node: Filter) -> Iterator[Binding]:
        for binding in self._eval(node.input):
            try:
                keep = effective_boolean_value(
                    evaluate_expression(node.condition, binding, context=self)
                )
            except ExpressionError:
                keep = False
            if keep:
                self.stats.intermediate_bindings += 1
                yield binding

    def _eval_extend(self, node: Extend) -> Iterator[Binding]:
        for binding in self._eval(node.input):
            if node.var.name in binding:
                raise SparqlEvalError(
                    f"BIND would rebind ?{node.var.name}"
                )
            new_binding = dict(binding)
            try:
                new_binding[node.var.name] = evaluate_expression(
                    node.expression, binding, context=self
                )
            except ExpressionError:
                pass  # BIND errors leave the variable unbound
            self.stats.intermediate_bindings += 1
            yield new_binding

    # ------------------------------------------------------------------
    # Grouping / aggregation
    # ------------------------------------------------------------------

    def _eval_aggregation(self, node: Aggregation) -> Iterator[Binding]:
        members = list(self._eval(node.input))
        groups: Dict[Tuple, List[Binding]] = {}
        key_bindings: Dict[Tuple, Binding] = {}
        if node.keys:
            # Precompute (expression, plain-variable shortcut, bound name)
            # per key: a bare ``GROUP BY ?x`` key is a dict lookup per
            # member, not an expression-evaluator call.
            key_specs = []
            for key in node.keys:
                expression = key.expression if isinstance(key, Projection) else key
                assert expression is not None
                var_name = (
                    expression.var.name
                    if isinstance(expression, VarExpr)
                    else None
                )
                if isinstance(key, (Projection, VarExpr)):
                    bind_name = key.var.name
                else:
                    bind_name = None
                key_specs.append((expression, var_name, bind_name))
            for member in members:
                key_values: List[Optional[Term]] = []
                key_binding: Binding = {}
                for expression, var_name, bind_name in key_specs:
                    if var_name is not None:
                        value = member.get(var_name)
                    else:
                        try:
                            value = evaluate_expression(expression, member, context=self)
                        except ExpressionError:
                            value = None
                    key_values.append(value)
                    if bind_name is not None and value is not None:
                        key_binding[bind_name] = value
                group_key = tuple(key_values)
                groups.setdefault(group_key, []).append(member)
                key_bindings.setdefault(group_key, key_binding)
        else:
            # Implicit single group; per spec an empty input still yields
            # one group for aggregates like COUNT(*) = 0.
            groups[()] = members
            key_bindings[()] = {}
        for group_key, group_members in groups.items():
            self.stats.groups += 1
            key_binding = key_bindings[group_key]
            skip = False
            for having in node.having:
                try:
                    if not effective_boolean_value(
                        evaluate_expression(having, key_binding, group_members, context=self)
                    ):
                        skip = True
                        break
                except ExpressionError:
                    skip = True
                    break
            if skip:
                continue
            out: Binding = {}
            for projection in node.projections:
                if projection.expression is None:
                    value = key_binding.get(projection.var.name)
                    if value is not None:
                        out[projection.var.name] = value
                    continue
                try:
                    out[projection.var.name] = evaluate_expression(
                        projection.expression, key_binding, group_members, context=self
                    )
                except ExpressionError:
                    pass
            self.stats.intermediate_bindings += 1
            yield out

    # ------------------------------------------------------------------
    # Solution modifiers
    # ------------------------------------------------------------------

    def _eval_project(self, node: Project) -> Iterator[Binding]:
        extensions = {
            projection.var.name: projection.expression
            for projection in node.extensions
        }
        for binding in self._eval(node.input):
            if node.variables is None:
                yield binding
                continue
            out: Binding = {}
            for var in node.variables:
                expression = extensions.get(var.name)
                if expression is not None:
                    try:
                        out[var.name] = evaluate_expression(expression, binding, context=self)
                    except ExpressionError:
                        pass
                elif var.name in binding:
                    out[var.name] = binding[var.name]
            yield out

    def _eval_distinct(self, node: Distinct) -> Iterator[Binding]:
        seen: set = set()
        key_order = _IncrementalKeyOrder()
        for binding in self._eval(node.input):
            key = key_order.key(binding)
            if key in seen:
                continue
            seen.add(key)
            yield binding

    def _eval_reduced(self, node: Reduced) -> Iterator[Binding]:
        previous: Optional[Tuple] = None
        key_order = _IncrementalKeyOrder()
        for binding in self._eval(node.input):
            key = key_order.key(binding)
            if key == previous:
                continue
            previous = key
            yield binding

    def _order_key(self, conditions, binding: Binding) -> List:
        """The comparison key of one solution under ORDER BY conditions.

        Shared by the full sort (:meth:`_eval_order_by`) and the bounded
        top-k heap (:meth:`_eval_top_k`) so both rank rows identically.
        """
        keys = []
        for condition in conditions:
            try:
                value = evaluate_expression(condition.expression, binding, context=self)
            except ExpressionError:
                value = None
            key = term_order_key(value)
            if condition.descending:
                keys.append(_Reversed(key))
            else:
                keys.append(key)
        return keys

    def _eval_order_by(self, node: OrderBy) -> Iterator[Binding]:
        rows = list(self._eval(node.input))
        rows.sort(key=lambda binding: self._order_key(node.conditions, binding))
        yield from rows

    def _eval_top_k(self, node: TopK) -> Iterator[Binding]:
        """Bounded heap for fused ``ORDER BY ... LIMIT``.

        Keeps at most ``limit + offset`` rows; ties between equal sort
        keys fall back to arrival order, so the output is identical to a
        stable full sort followed by the slice.
        """
        bound = node.limit + node.offset
        if bound <= 0:
            return
        heap: List[_TopKEntry] = []
        for serial, binding in enumerate(self._eval(node.input)):
            key = self._order_key(node.conditions, binding)
            if len(heap) < bound:
                heapq.heappush(heap, _TopKEntry(key, serial, binding))
            elif _order_lt(key, serial, heap[0].key, heap[0].serial):
                heapq.heapreplace(heap, _TopKEntry(key, serial, binding))
        ordered = sorted(heap)
        ordered.reverse()
        for entry in ordered[node.offset :]:
            yield entry.binding

    def _eval_slice(self, node: Slice) -> Iterator[Binding]:
        iterator = self._eval(node.input)
        for _ in range(node.offset):
            try:
                next(iterator)
            except StopIteration:
                return
        if node.limit is None:
            yield from iterator
            return
        for _ in range(node.limit):
            try:
                yield next(iterator)
            except StopIteration:
                return


class _Reversed:
    """Wrapper inverting the comparison order of a sort key."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.key == other.key


class _IncrementalKeyOrder:
    """Stable dedup keys without per-row sorting.

    DISTINCT/REDUCED need a hashable key per solution; sorting every
    binding's items is O(v log v) per row.  Instead, variable names are
    assigned a fixed order on first sight, and each key lists the
    (name, value) pairs present in that order — two bindings get equal
    keys exactly when they bind the same variables to the same terms.
    """

    __slots__ = ("order", "known")

    def __init__(self) -> None:
        self.order: List[str] = []
        self.known: set = set()

    def key(self, binding: Binding) -> Tuple:
        for name in binding:
            if name not in self.known:
                self.known.add(name)
                self.order.append(name)
        return tuple(
            (name, binding[name]) for name in self.order if name in binding
        )


def _order_lt(key_a: List, serial_a: int, key_b: List, serial_b: int) -> bool:
    """Whether row A sorts strictly before row B (arrival-order tiebreak)."""
    if key_a < key_b:
        return True
    if key_b < key_a:
        return False
    return serial_a < serial_b


class _TopKEntry:
    """Heap entry for :meth:`Evaluator._eval_top_k`.

    ``__lt__`` is inverted so :mod:`heapq`'s min-heap keeps the *worst*
    retained row at the root, ready to be evicted by a better arrival.
    """

    __slots__ = ("key", "serial", "binding")

    def __init__(self, key: List, serial: int, binding: Binding) -> None:
        self.key = key
        self.serial = serial
        self.binding = binding

    def __lt__(self, other: "_TopKEntry") -> bool:
        return _order_lt(other.key, other.serial, self.key, self.serial)


def evaluate(graph: Graph, query_text: str):
    """Parse and evaluate a SPARQL query over ``graph``.

    Returns a :class:`repro.sparql.results.SelectResult` or
    :class:`repro.sparql.results.AskResult`.
    """
    query = parse_query(query_text)
    return Evaluator(graph).run(query)


def evaluate_algebra(graph: Graph, node: AlgebraNode) -> List[Binding]:
    """Evaluate a bare algebra tree; returns the solution list."""
    evaluator = Evaluator(graph)
    return list(evaluator.evaluate(node))
