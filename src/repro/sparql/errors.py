"""Exception hierarchy for the SPARQL engine."""

from __future__ import annotations

__all__ = [
    "SparqlError",
    "SparqlSyntaxError",
    "SparqlEvalError",
    "ExpressionError",
]


class SparqlError(Exception):
    """Base class for all SPARQL engine errors."""


class SparqlSyntaxError(SparqlError):
    """Raised by the lexer or parser on malformed query text."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class SparqlEvalError(SparqlError):
    """Raised when a structurally valid query cannot be evaluated."""


class ExpressionError(SparqlError):
    """An expression-level error.

    Per the SPARQL semantics, errors in expression evaluation do not abort
    the query: a FILTER treats them as false, and aggregates skip errored
    values.  The evaluator catches this exception per solution.
    """
