"""Shared machinery of the physical layer: the operator protocol,
state (de)serialisation, and the ID-space/term-space boundary helpers.

Every operator module in this package builds on the uniform

    ``next() -> Optional[Binding]`` / ``save() -> state`` / ``load(state)``

protocol defined here by :class:`PhysicalOperator`; see the package
docstring (:mod:`repro.sparql.physical`) for the full design notes.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterator, List, Optional

from ...obs.metrics import REGISTRY
from ...rdf.terms import Term
from ..errors import ExpressionError, SparqlError
from ..functions import (
    Binding,
    effective_boolean_value,
    evaluate_expression,
)
from ..results import term_from_json, term_to_json

__all__ = [
    "BUILD_BATCH",
    "SCAN_BATCH",
    "PlanStateError",
    "PhysicalOperator",
    "encode_binding",
    "decode_binding",
]

#: Child rows pulled per ``next()`` call by blocking (build) phases.
BUILD_BATCH = 32
#: Scan candidates examined per ``next()`` call by a pattern scan.
SCAN_BATCH = 64

_EXHAUSTED = object()

_DECODED_TERMS = REGISTRY.counter(
    "repro_dict_decode_total",
    "Terms materialized from ID space at engine decode boundaries",
)


class PlanStateError(SparqlError):
    """A saved operator state does not match the plan it is loaded into."""


# ----------------------------------------------------------------------
# State encoding
# ----------------------------------------------------------------------


def _value_to_json(value, runtime=None):
    """One binding value: portable term IDs pass through raw.

    IDs the local store minted at runtime (a frozen-base store's
    overlay — computed aggregates, BIND results) are process-local, so
    with a ``runtime`` they serialise as term literals instead; the
    loading side re-interns them, which keeps tokens resumable in *any*
    process mapping the same store (the worker pool depends on this).
    """
    if isinstance(value, int):
        if runtime is None or runtime.dictionary.portable_id(value):
            return value
        # The same overlay IDs (aggregate results, BIND outputs) recur
        # in every buffered row of a suspended sort; memoise the blob
        # per execution so repeated saves don't re-decode them.
        cache = getattr(runtime, "_overlay_blob_cache", None)
        if cache is None:
            cache = runtime._overlay_blob_cache = {}
        blob = cache.get(value)
        if blob is None:
            blob = cache[value] = term_to_json(runtime.dictionary.decode(value))
        return blob
    return term_to_json(value)


def _value_from_json(blob, runtime=None):
    if isinstance(blob, int):
        return blob
    term = term_from_json(blob)
    if runtime is not None:
        return runtime.dictionary.encode(term)
    return term


def encode_binding(binding: Binding, runtime=None) -> List:
    """JSON-able encoding of one solution mapping (order-preserving).

    In-plan binding values are term IDs (plain ints, already JSON-able);
    term objects are still accepted for forward compatibility.  Pass the
    plan ``runtime`` so overlay IDs cross as portable term literals.
    """
    return [
        [name, _value_to_json(value, runtime)]
        for name, value in binding.items()
    ]


def decode_binding(blob: List, runtime=None) -> Binding:
    return {name: _value_from_json(value, runtime) for name, value in blob}


def _encode_opt_term(value, runtime=None):
    return None if value is None else _value_to_json(value, runtime)


def _decode_opt_term(blob, runtime=None):
    return None if blob is None else _value_from_json(blob, runtime)


def _check(conditions, binding: Binding, runtime) -> bool:
    """Whether ``binding`` passes every condition (errors count as false).

    ``binding`` must be in *term* space — this is the expression layer.
    """
    for condition in conditions:
        try:
            if not effective_boolean_value(
                evaluate_expression(condition, binding, context=runtime)
            ):
                return False
        except ExpressionError:
            return False
    return True


def _decode_row(row: Binding, runtime) -> Binding:
    """Materialize one encoded row into term space (expression boundary)."""
    _DECODED_TERMS.inc(len(row))
    decode = runtime.dictionary.decode
    return {name: decode(value) for name, value in row.items()}


def _check_ids(conditions, row: Binding, runtime) -> bool:
    """Condition check over an encoded row; decodes only when needed."""
    if not conditions:
        return True
    return _check(conditions, _decode_row(row, runtime), runtime)


def _encode_value(value, runtime):
    """Intern a computed expression result so it can enter a binding.

    Every value inside a plan must be an ID — mixing terms and ints
    would silently break join/DISTINCT equality.  Non-term results
    (shouldn't happen, but errors must not corrupt the plan) pass
    through untouched.
    """
    if isinstance(value, Term):
        return runtime.dictionary.encode(value)
    return value


# ----------------------------------------------------------------------
# Base operator
# ----------------------------------------------------------------------


class PhysicalOperator:
    """Base class: uniform ``next()/save()/load()`` with work counters.

    ``runtime`` is the shared per-execution context — an
    :class:`repro.sparql.evaluator.Evaluator` instance whose ``graph``
    the scans read, whose ``stats`` every operator counts into (the cost
    model bills pages from the deltas), and which serves as the
    expression-evaluation context so ``EXISTS { ... }`` keeps working
    (EXISTS sub-patterns run through the evaluator and are the one
    non-preemptible island, as in sage).

    ``rows_produced`` / ``wall_s`` / ``calls`` are live observability
    counters; ``EXPLAIN ANALYZE`` on the physical engine reads them
    directly instead of wrapping iterators in probe spans.
    """

    label = "Physical"

    def __init__(self, runtime):
        self.runtime = runtime
        self.done = False
        self.rows_produced = 0
        self.wall_s = 0.0
        self.calls = 0
        self.algebra = None  # back-pointer set by the planner

    # -- protocol -------------------------------------------------------

    def next(self) -> Optional[Binding]:
        """One bounded unit of work; a row, or ``None`` (progress only)."""
        started = perf_counter()
        self.calls += 1
        try:
            row = self._next()
        finally:
            self.wall_s += perf_counter() - started
        if row is not None:
            self.rows_produced += 1
        return row

    def _next(self) -> Optional[Binding]:  # pragma: no cover - abstract
        raise NotImplementedError

    def children(self) -> List["PhysicalOperator"]:
        return []

    def detail(self) -> str:
        return ""

    def walk(self) -> Iterator["PhysicalOperator"]:
        yield self
        for child in self.children():
            yield from child.walk()

    # -- suspension -----------------------------------------------------

    def save(self) -> Dict:
        """Serialise the operator (and its subtree) to JSON-able state."""
        state = {"op": self.label, "done": self.done}
        state.update(self._save())
        return state

    def load(self, state: Dict) -> None:
        """Restore a subtree from :meth:`save` output."""
        if not isinstance(state, dict) or state.get("op") != self.label:
            raise PlanStateError(
                f"saved state is for {state.get('op') if isinstance(state, dict) else state!r}, "
                f"not {self.label}"
            )
        self.done = bool(state.get("done"))
        self._load(state)

    def _save(self) -> Dict:
        return {}

    def _load(self, state: Dict) -> None:
        pass


class _UnaryOp(PhysicalOperator):
    """Shared plumbing for operators with one child and no extra state."""

    def __init__(self, runtime, child):
        super().__init__(runtime)
        self.child = child

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def _pull(self) -> Optional[Binding]:
        """One child row, marking ``done`` when the child is exhausted."""
        if self.child.done:
            self.done = True
            return None
        row = self.child.next()
        if row is None and self.child.done:
            self.done = True
        return row

    def _save(self) -> Dict:
        return {"child": self.child.save()}

    def _load(self, state: Dict) -> None:
        self.child.load(state["child"])
