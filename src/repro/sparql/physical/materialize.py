"""The late-materialization boundary and the tree-draining driver."""

from __future__ import annotations

from typing import List, Optional

from ...obs.metrics import REGISTRY
from ..functions import Binding
from .base import PhysicalOperator, _UnaryOp

__all__ = ["MaterializeOp", "drain"]

_MATERIALIZED_ROWS = REGISTRY.counter(
    "repro_dict_materialized_rows_total",
    "Result rows decoded from ID space to terms at the plan root",
)


class MaterializeOp(_UnaryOp):
    """The late-materialization boundary at the plan root.

    Every operator below it works on encoded rows (term-ID ints); this
    operator decodes each result row to term objects exactly once, so
    everything downstream — SPARQL-JSON serialisation, chart labels,
    clients of ``plan.root.next()`` — sees ordinary ``Term`` bindings.
    It adds no ``EvalStats`` work (materialization is representation,
    not query work, and the recursive evaluator has no analogue).
    """

    label = "Materialize"

    def _next(self) -> Optional[Binding]:
        row = self._pull()
        if row is None:
            return None
        decode = self.runtime.dictionary.decode
        _MATERIALIZED_ROWS.inc()
        return {
            name: decode(value) if isinstance(value, int) else value
            for name, value in row.items()
        }


def drain(op: PhysicalOperator) -> List[Binding]:
    """Run an operator tree to completion and return every row."""
    rows: List[Binding] = []
    while not op.done:
        row = op.next()
        if row is not None:
            rows.append(row)
    return rows
