"""Blocking analytics: GROUP BY aggregation, full sorts, and the
bounded-heap top-k that backs fused ORDER BY ... LIMIT."""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..errors import ExpressionError
from ..functions import (
    Binding,
    _numeric_literal,
    _numeric_value,
    _string_value,
    effective_boolean_value,
    evaluate_expression,
    term_order_key,
)
from ...rdf.terms import Literal, Term

# Private on purpose: the physical layer shares the evaluator's ordering
# helpers so both engines rank identically.
from ..evaluator import _Reversed, _TopKEntry
from .base import (
    BUILD_BATCH,
    PhysicalOperator,
    _UnaryOp,
    _decode_opt_term,
    _decode_row,
    _encode_opt_term,
    _encode_value,
    decode_binding,
    encode_binding,
)

__all__ = ["AggregationOp", "OrderByOp", "TopKOp"]


class _StreamingAgg:
    """One aggregate folded incrementally, in member order.

    Mirrors :func:`repro.sparql.functions.evaluate_aggregate` exactly
    for the non-DISTINCT aggregates — same skip-on-error semantics per
    member, same tie-breaking for MIN/MAX (first/last among equals, as
    the stable sort picks), same left-to-right float addition for
    SUM/AVG — so a group folded one member at a time produces the same
    term the batch evaluation of its member list would.  The point is
    state: a fold suspends as O(1) accumulator fields where the batch
    path must serialise every member row into the continuation token.
    """

    __slots__ = ("agg", "count", "total", "best", "best_key", "parts", "bad")

    SUPPORTED = ("COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE", "GROUP_CONCAT")

    def __init__(self, agg):
        self.agg = agg
        self.count = 0
        self.total: object = 0
        self.best: Optional[Term] = None
        self.best_key = None
        self.parts: Optional[str] = None
        self.bad = False  # a member value poisoned SUM/AVG/GROUP_CONCAT

    @staticmethod
    def supports(expression) -> bool:
        from ..ast import AggregateExpr

        return (
            isinstance(expression, AggregateExpr)
            and not expression.distinct
            and expression.name in _StreamingAgg.SUPPORTED
        )

    def absorb(self, member_terms: Binding) -> None:
        name = self.agg.name
        if self.agg.argument is None:  # COUNT(*)
            self.count += 1
            return
        try:
            value = evaluate_expression(self.agg.argument, member_terms)
        except ExpressionError:
            return  # batch parity: erroring members contribute no value
        if name == "COUNT":
            self.count += 1
        elif name == "SAMPLE":
            if self.best is None:
                self.best = value
        elif name in ("MIN", "MAX"):
            key = term_order_key(value)
            if self.best is None:
                self.best, self.best_key = value, key
            elif name == "MIN":
                if key < self.best_key:  # first among equals stays
                    self.best, self.best_key = value, key
            elif key >= self.best_key:  # last among equals wins
                self.best, self.best_key = value, key
        elif name == "GROUP_CONCAT":
            if self.bad:
                return
            try:
                text = _string_value(value)
            except ExpressionError:
                self.bad = True
                return
            if self.parts is None:
                self.parts = text
            else:
                self.parts += self.agg.separator + text
        else:  # SUM / AVG
            if self.bad:
                return
            try:
                number = _numeric_value(value)
            except ExpressionError:
                self.bad = True
                return
            self.total = self.total + number
            self.count += 1

    def result(self) -> Term:
        name = self.agg.name
        if name == "COUNT":
            return _numeric_literal(self.count)
        if name == "SAMPLE":
            if self.best is None:
                raise ExpressionError("SAMPLE of empty group")
            return self.best
        if name == "GROUP_CONCAT":
            if self.bad:
                raise ExpressionError("GROUP_CONCAT over a non-string value")
            return Literal(self.parts if self.parts is not None else "")
        if name in ("MIN", "MAX"):
            if self.best is None:
                raise ExpressionError(f"{name} of empty group")
            return self.best
        if self.bad:
            raise ExpressionError(f"{name} over a non-numeric value")
        if name == "SUM":
            return _numeric_literal(self.total)
        if self.count == 0:
            raise ExpressionError("AVG of empty group")
        return _numeric_literal(self.total / self.count)

    def save(self) -> Dict:
        return {
            "count": self.count,
            "total": self.total,
            "best": _encode_opt_term(self.best),
            "parts": self.parts,
            "bad": self.bad,
        }

    def load(self, state: Dict) -> None:
        self.count = int(state.get("count", 0))
        self.total = state.get("total", 0)
        self.best = _decode_opt_term(state.get("best"))
        self.best_key = (
            term_order_key(self.best) if self.best is not None else None
        )
        self.parts = state.get("parts")
        self.bad = bool(state.get("bad", False))


class AggregationOp(PhysicalOperator):
    """GROUP BY + aggregate projection (fused, like the algebra node).

    Builds groups incrementally (bounded chunks of input per call), then
    emits one group's output row per call, releasing each group's state
    as it is emitted.

    When every projected aggregate is decomposable (non-DISTINCT COUNT,
    SUM, AVG, MIN, MAX, SAMPLE, GROUP_CONCAT) and there is no HAVING,
    members are folded into O(1) accumulators per group as they arrive
    — suspension then serialises accumulators, keys, and key bindings,
    keeping continuation tokens O(groups) instead of O(input).  DISTINCT
    aggregates and HAVING fall back to buffering member rows verbatim,
    so the aggregates computed after resume see exactly the members
    collected before suspension.
    """

    label = "Aggregation"

    def __init__(self, runtime, child, keys, projections, having):
        super().__init__(runtime, )
        self.child = child
        self.keys = list(keys)
        self.projections = list(projections)
        self.having = list(having)
        self._key_specs = self._build_key_specs()
        self._streaming = not self.having and all(
            projection.expression is None
            or _StreamingAgg.supports(projection.expression)
            for projection in self.projections
        )
        # Folds only need the member in term space when some aggregate
        # evaluates an argument expression over it; COUNT(*) does not.
        self._stream_needs_terms = self._streaming and any(
            projection.expression is not None
            and projection.expression.argument is not None
            for projection in self.projections
        )
        self._phase = "build"
        self._group_keys: List[Optional[Tuple]] = []
        # group key -> member rows (buffering) or accumulators (streaming)
        self._groups: Dict[Tuple, List] = {}
        self._key_bindings: Dict[Tuple, Binding] = {}
        self._emit_index = 0

    def _new_accs(self) -> List[Optional[_StreamingAgg]]:
        return [
            _StreamingAgg(projection.expression)
            if projection.expression is not None
            else None
            for projection in self.projections
        ]

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def detail(self) -> str:
        names = []
        for key in self.keys:
            var = getattr(key, "var", None)
            names.append(f"?{var.name}" if var is not None else "<expr>")
        return f"group by {' '.join(names)}" if names else "implicit group"

    def _build_key_specs(self):
        from ..ast import Projection, VarExpr

        specs = []
        for key in self.keys:
            expression = key.expression if isinstance(key, Projection) else key
            var_name = (
                expression.var.name if isinstance(expression, VarExpr) else None
            )
            if isinstance(key, (Projection, VarExpr)):
                bind_name = key.var.name
            else:
                bind_name = None
            specs.append((expression, var_name, bind_name))
        return specs

    def _absorb(self, member: Binding) -> None:
        key_values: List[Optional[int]] = []
        key_binding: Binding = {}
        decoded = None  # member in term space, only if an expression runs
        for expression, var_name, bind_name in self._key_specs:
            if var_name is not None:
                value = member.get(var_name)
            else:
                if decoded is None:
                    decoded = _decode_row(member, self.runtime)
                try:
                    value = evaluate_expression(
                        expression, decoded, context=self.runtime
                    )
                except ExpressionError:
                    value = None
                value = _encode_value(value, self.runtime)
            key_values.append(value)
            if bind_name is not None and value is not None:
                key_binding[bind_name] = value
        group_key = tuple(key_values)
        if group_key not in self._groups:
            self._group_keys.append(group_key)
            self._groups[group_key] = (
                self._new_accs() if self._streaming else []
            )
            self._key_bindings[group_key] = key_binding
        if self._streaming:
            if self._stream_needs_terms and decoded is None:
                decoded = _decode_row(member, self.runtime)
            for acc in self._groups[group_key]:
                if acc is not None:
                    acc.absorb(decoded if decoded is not None else {})
        else:
            self._groups[group_key].append(member)

    def _next(self) -> Optional[Binding]:
        if self._phase == "build":
            for _ in range(BUILD_BATCH):
                if self.child.done:
                    if not self.keys and () not in self._groups:
                        # Implicit single group: empty input still yields
                        # one group (COUNT(*) = 0).
                        self._group_keys.append(())
                        self._groups[()] = (
                            self._new_accs() if self._streaming else []
                        )
                        self._key_bindings[()] = {}
                    self._phase = "emit"
                    return None
                member = self.child.next()
                if member is None:
                    return None
                self._absorb(member)
            return None
        # emit — each group's state is released as soon as it is emitted,
        # so suspended tokens shrink as emission proceeds.
        while self._emit_index < len(self._group_keys):
            group_key = self._group_keys[self._emit_index]
            self._group_keys[self._emit_index] = None
            self._emit_index += 1
            group_state = self._groups.pop(group_key)
            key_binding = self._key_bindings.pop(group_key)
            runtime = self.runtime
            runtime.stats.groups += 1
            if self._streaming:
                out: Binding = {}
                for projection, acc in zip(self.projections, group_state):
                    if acc is None:
                        value = key_binding.get(projection.var.name)
                        if value is not None:
                            out[projection.var.name] = value
                        continue
                    try:
                        value = acc.result()
                    except ExpressionError:
                        pass
                    else:
                        out[projection.var.name] = _encode_value(
                            value, runtime
                        )
                runtime.stats.intermediate_bindings += 1
                return out
            members = group_state
            # HAVING and the aggregate expressions run in term space:
            # decode the group once, emit back in ID space.
            key_terms = _decode_row(key_binding, runtime)
            member_terms = [_decode_row(member, runtime) for member in members]
            skip = False
            for condition in self.having:
                try:
                    if not effective_boolean_value(
                        evaluate_expression(
                            condition, key_terms, member_terms, context=runtime
                        )
                    ):
                        skip = True
                        break
                except ExpressionError:
                    skip = True
                    break
            if skip:
                return None
            out = {}
            for projection in self.projections:
                if projection.expression is None:
                    value = key_binding.get(projection.var.name)
                    if value is not None:
                        out[projection.var.name] = value
                    continue
                try:
                    value = evaluate_expression(
                        projection.expression,
                        key_terms,
                        member_terms,
                        context=runtime,
                    )
                except ExpressionError:
                    pass
                else:
                    out[projection.var.name] = _encode_value(value, runtime)
            runtime.stats.intermediate_bindings += 1
            return out
        self.done = True
        return None

    def _save(self) -> Dict:
        pending = []
        for group_key in self._group_keys[self._emit_index:]:
            blob = {
                "key": [
                    _encode_opt_term(value, self.runtime)
                    for value in group_key
                ],
                "binding": encode_binding(
                    self._key_bindings[group_key], self.runtime
                ),
            }
            if self._streaming:
                blob["accs"] = [
                    None if acc is None else acc.save()
                    for acc in self._groups[group_key]
                ]
            else:
                blob["members"] = [
                    encode_binding(member, self.runtime)
                    for member in self._groups[group_key]
                ]
            pending.append(blob)
        return {
            "phase": self._phase,
            "child": self.child.save(),
            "emitted": self._emit_index,
            "groups": pending,
        }

    def _load(self, state: Dict) -> None:
        self.child.load(state["child"])
        self._phase = state.get("phase", "build")
        emitted = int(state.get("emitted", 0))
        self._emit_index = emitted
        self._group_keys = [None] * emitted
        self._groups = {}
        self._key_bindings = {}
        for blob in state.get("groups", ()):
            group_key = tuple(
                _decode_opt_term(value, self.runtime)
                for value in blob["key"]
            )
            self._group_keys.append(group_key)
            self._key_bindings[group_key] = decode_binding(
                blob["binding"], self.runtime
            )
            if "accs" in blob:
                accs = self._new_accs()
                for acc, acc_state in zip(accs, blob["accs"]):
                    if acc is not None and acc_state is not None:
                        acc.load(acc_state)
                self._groups[group_key] = accs
            else:
                # Token from the buffering path: replay its member rows
                # through the fold if this plan streams (same result —
                # the fold is order-preserving and batch-exact).
                members = [
                    decode_binding(member, self.runtime)
                    for member in blob["members"]
                ]
                if self._streaming:
                    accs = self._new_accs()
                    for member in members:
                        decoded = (
                            _decode_row(member, self.runtime)
                            if self._stream_needs_terms
                            else {}
                        )
                        for acc in accs:
                            if acc is not None:
                                acc.absorb(decoded)
                    self._groups[group_key] = accs
                else:
                    self._groups[group_key] = members


def _order_key(conditions, binding: Binding, runtime) -> List:
    """The ORDER BY comparison key of one solution (evaluator parity).

    ``binding`` is an encoded row; sort keys need lexical values, so
    this is one of the expression boundaries that decodes.
    """
    keys = []
    decoded = _decode_row(binding, runtime)
    for condition in conditions:
        try:
            value = evaluate_expression(
                condition.expression, decoded, context=runtime
            )
        except ExpressionError:
            value = None
        key = term_order_key(value)
        if condition.descending:
            keys.append(_Reversed(key))
        else:
            keys.append(key)
    return keys


class OrderByOp(_UnaryOp):
    """Full sort: drains its child in bounded chunks, then emits sorted."""

    label = "OrderBy"

    def __init__(self, runtime, child, conditions):
        super().__init__(runtime, child)
        self.conditions = list(conditions)
        self._phase = "build"
        self._buffer: List[Binding] = []
        self._emit_index = 0

    def detail(self) -> str:
        return f"{len(self.conditions)} keys"

    def _next(self) -> Optional[Binding]:
        if self._phase == "build":
            for _ in range(BUILD_BATCH):
                if self.child.done:
                    self._buffer.sort(
                        key=lambda binding: _order_key(
                            self.conditions, binding, self.runtime
                        )
                    )
                    self._phase = "emit"
                    return None
                row = self.child.next()
                if row is None:
                    return None
                self._buffer.append(row)
            return None
        if self._emit_index >= len(self._buffer):
            self.done = True
            return None
        row = self._buffer[self._emit_index]
        self._emit_index += 1
        if self._emit_index >= len(self._buffer):
            self.done = True
        return row

    def _save(self) -> Dict:
        # Rows already emitted are never revisited, so only the pending
        # suffix crosses the token — suspended sorts shrink as they
        # drain.
        return {
            "phase": self._phase,
            "child": self.child.save(),
            "emitted": self._emit_index,
            "buffer": [
                encode_binding(row, self.runtime)
                for row in self._buffer[self._emit_index:]
            ],
        }

    def _load(self, state: Dict) -> None:
        self.child.load(state["child"])
        self._phase = state.get("phase", "build")
        # In the emit phase the buffer was serialised post-sort, so no
        # re-sort is needed (and none would be safe: keys are recomputed
        # lazily only in the build phase).
        emitted = int(state.get("emitted", 0))
        self._emit_index = emitted
        self._buffer = [None] * emitted + [
            decode_binding(blob, self.runtime)
            for blob in state.get("buffer", ())
        ]


class TopKOp(_UnaryOp):
    """Bounded heap for fused ORDER BY ... LIMIT (evaluator parity)."""

    label = "TopK"

    def __init__(self, runtime, child, conditions, limit, offset=0):
        super().__init__(runtime, child)
        self.conditions = list(conditions)
        self.limit = limit
        self.offset = offset
        self._phase = "build"
        self._heap: List[_TopKEntry] = []
        self._serial = 0
        self._ordered: List[Binding] = []
        self._emit_index = 0

    def detail(self) -> str:
        text = f"{len(self.conditions)} keys, limit {self.limit}"
        if self.offset:
            text += f", offset {self.offset}"
        return text

    def _finalize(self) -> None:
        ordered = sorted(self._heap)
        ordered.reverse()
        self._ordered = [entry.binding for entry in ordered[self.offset:]]
        self._heap = []
        self._phase = "emit"

    def _next(self) -> Optional[Binding]:
        bound = self.limit + self.offset
        if bound <= 0:
            self.done = True
            return None
        if self._phase == "build":
            from ..evaluator import _order_lt

            for _ in range(BUILD_BATCH):
                if self.child.done:
                    self._finalize()
                    return None
                row = self.child.next()
                if row is None:
                    return None
                key = _order_key(self.conditions, row, self.runtime)
                serial = self._serial
                self._serial += 1
                if len(self._heap) < bound:
                    heapq.heappush(self._heap, _TopKEntry(key, serial, row))
                elif _order_lt(
                    key, serial, self._heap[0].key, self._heap[0].serial
                ):
                    heapq.heapreplace(self._heap, _TopKEntry(key, serial, row))
            return None
        if self._emit_index >= len(self._ordered):
            self.done = True
            return None
        row = self._ordered[self._emit_index]
        self._emit_index += 1
        if self._emit_index >= len(self._ordered):
            self.done = True
        return row

    def _save(self) -> Dict:
        return {
            "phase": self._phase,
            "child": self.child.save(),
            "serial": self._serial,
            "heap": [
                [entry.serial, encode_binding(entry.binding, self.runtime)]
                for entry in self._heap
            ],
            "emitted": self._emit_index,
            "ordered": [
                encode_binding(row, self.runtime)
                for row in self._ordered[self._emit_index:]
            ],
        }

    def _load(self, state: Dict) -> None:
        self.child.load(state["child"])
        self._phase = state.get("phase", "build")
        self._serial = int(state.get("serial", 0))
        self._heap = []
        for serial, blob in state.get("heap", ()):
            row = decode_binding(blob, self.runtime)
            key = _order_key(self.conditions, row, self.runtime)
            self._heap.append(_TopKEntry(key, int(serial), row))
        heapq.heapify(self._heap)
        emitted = int(state.get("emitted", 0))
        self._emit_index = emitted
        self._ordered = [None] * emitted + [
            decode_binding(blob, self.runtime)
            for blob in state.get("ordered", ())
        ]
