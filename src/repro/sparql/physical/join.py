"""Stream combinators: hash join, left-outer join (OPTIONAL), MINUS,
and UNION — all over encoded (term-ID) rows."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

# Private on purpose: the physical layer shares the evaluator's join
# strategy metric and merge helpers so both engines report and rank
# identically.
from ..evaluator import _JOIN_HASH, _JOIN_PRODUCT, _binding_key, _compatible, _merge
from ..functions import Binding
from .base import (
    BUILD_BATCH,
    PhysicalOperator,
    PlanStateError,
    _check_ids,
    decode_binding,
    encode_binding,
)

__all__ = ["HashJoinOp", "LeftJoinOp", "MinusOp", "UnionOp"]


class UnionOp(PhysicalOperator):
    """Branches evaluated in order, concatenated."""

    label = "Union"

    def __init__(self, runtime, branches):
        super().__init__(runtime)
        self.branches = list(branches)
        self._index = 0

    def children(self) -> List[PhysicalOperator]:
        return list(self.branches)

    def detail(self) -> str:
        return f"{len(self.branches)} branches"

    def _next(self) -> Optional[Binding]:
        while self._index < len(self.branches):
            branch = self.branches[self._index]
            if branch.done:
                self._index += 1
                continue
            row = branch.next()
            if row is not None:
                self.runtime.stats.intermediate_bindings += 1
                return row
            return None
        self.done = True
        return None

    def _save(self) -> Dict:
        return {
            "index": self._index,
            "branches": [branch.save() for branch in self.branches],
        }

    def _load(self, state: Dict) -> None:
        self._index = int(state.get("index", 0))
        saved = state.get("branches", ())
        if len(saved) != len(self.branches):
            raise PlanStateError("union branch count mismatch")
        for branch, blob in zip(self.branches, saved):
            branch.load(blob)


class HashJoinOp(PhysicalOperator):
    """Hash join: build the right side, stream the left (probe) side.

    Phases: ``peek`` pulls the first left row (so an empty left never
    evaluates the right subtree, matching the evaluator's laziness),
    ``build`` drains the right side into buckets in bounded chunks, and
    ``probe`` streams the left.  With no key variables the single ``()``
    bucket holds every right row and the join degrades to a product
    guarded by the compatibility check.  Because the probe side streams,
    a ``Slice`` ancestor bounds how much of the left subtree is ever
    scanned.
    """

    label = "HashJoin"

    def __init__(self, runtime, left, right, keys: Tuple[str, ...]):
        super().__init__(runtime)
        self.left = left
        self.right = right
        self.keys = tuple(keys)
        self._phase = "peek"
        self._pending: Optional[Binding] = None  # peeked first left row
        self._table: Dict[Tuple, List[Binding]] = {}
        self._build_rows = 0
        self._probe: Optional[Binding] = None
        self._bucket: List[Binding] = []
        self._bucket_index = 0

    def children(self) -> List[PhysicalOperator]:
        return [self.left, self.right]

    def detail(self) -> str:
        if self.keys:
            return "on " + " ".join(f"?{name}" for name in self.keys)
        return "product (no certain shared variables)"

    def _next(self) -> Optional[Binding]:
        if self._phase == "peek":
            if self.left.done:
                self.done = True
                return None
            row = self.left.next()
            if row is None:
                if self.left.done:
                    self.done = True
                return None
            self._pending = row
            self._phase = "build"
            return None
        if self._phase == "build":
            for _ in range(BUILD_BATCH):
                if self.right.done:
                    self._phase = "probe"
                    (_JOIN_HASH if self.keys else _JOIN_PRODUCT).inc()
                    if not self._build_rows:
                        self.done = True
                    return None
                row = self.right.next()
                if row is None:
                    return None
                self._table.setdefault(
                    _binding_key(row, self.keys), []
                ).append(row)
                self._build_rows += 1
            return None
        # probe
        for _ in range(BUILD_BATCH):
            if self._probe is not None:
                if self._bucket_index < len(self._bucket):
                    right = self._bucket[self._bucket_index]
                    self._bucket_index += 1
                    if _compatible(self._probe, right):
                        self.runtime.stats.intermediate_bindings += 1
                        return _merge(self._probe, right)
                    continue
                self._probe = None
            row = self._pending
            self._pending = None
            if row is None:
                if self.left.done:
                    self.done = True
                    return None
                row = self.left.next()
                if row is None:
                    return None
            self._probe = row
            self._bucket = self._table.get(_binding_key(row, self.keys), [])
            self._bucket_index = 0
        return None

    def _save(self) -> Dict:
        return {
            "phase": self._phase,
            "left": self.left.save(),
            "right": self.right.save(),
            "pending": (
                encode_binding(self._pending, self.runtime)
                if self._pending is not None
                else None
            ),
            "table": [
                encode_binding(row, self.runtime)
                for bucket in self._table.values()
                for row in bucket
            ],
            "probe": (
                encode_binding(self._probe, self.runtime)
                if self._probe is not None
                else None
            ),
            "bucket_index": self._bucket_index,
        }

    def _load(self, state: Dict) -> None:
        self.left.load(state["left"])
        self.right.load(state["right"])
        self._phase = state.get("phase", "peek")
        pending = state.get("pending")
        self._pending = decode_binding(pending, self.runtime) if pending is not None else None
        self._table = {}
        self._build_rows = 0
        for blob in state.get("table", ()):
            row = decode_binding(blob, self.runtime)
            self._table.setdefault(_binding_key(row, self.keys), []).append(row)
            self._build_rows += 1
        probe = state.get("probe")
        self._probe = decode_binding(probe, self.runtime) if probe is not None else None
        self._bucket = (
            self._table.get(_binding_key(self._probe, self.keys), [])
            if self._probe is not None
            else []
        )
        self._bucket_index = int(state.get("bucket_index", 0))


class LeftJoinOp(PhysicalOperator):
    """OPTIONAL: hash left-outer join with an optional join condition."""

    label = "LeftJoin"

    def __init__(self, runtime, left, right, keys: Tuple[str, ...], condition=None):
        super().__init__(runtime)
        self.left = left
        self.right = right
        self.keys = tuple(keys)
        self.condition = condition
        self._phase = "peek"
        self._pending: Optional[Binding] = None
        self._table: Dict[Tuple, List[Binding]] = {}
        self._all_rows: List[Binding] = []
        self._probe: Optional[Binding] = None
        self._bucket: List[Binding] = []
        self._bucket_index = 0
        self._matched = False

    def children(self) -> List[PhysicalOperator]:
        return [self.left, self.right]

    def detail(self) -> str:
        base = (
            "on " + " ".join(f"?{name}" for name in self.keys)
            if self.keys
            else "unkeyed"
        )
        return base + (" with condition" if self.condition is not None else "")

    def _bucket_for(self, row: Binding) -> List[Binding]:
        if self.keys:
            return self._table.get(_binding_key(row, self.keys), [])
        return self._all_rows

    def _next(self) -> Optional[Binding]:
        if self._phase == "peek":
            if self.left.done:
                self.done = True
                return None
            row = self.left.next()
            if row is None:
                if self.left.done:
                    self.done = True
                return None
            self._pending = row
            self._phase = "build"
            return None
        if self._phase == "build":
            for _ in range(BUILD_BATCH):
                if self.right.done:
                    self._phase = "probe"
                    return None
                row = self.right.next()
                if row is None:
                    return None
                self._all_rows.append(row)
                if self.keys:
                    self._table.setdefault(
                        _binding_key(row, self.keys), []
                    ).append(row)
            return None
        # probe
        for _ in range(BUILD_BATCH):
            if self._probe is not None:
                if self._bucket_index < len(self._bucket):
                    right = self._bucket[self._bucket_index]
                    self._bucket_index += 1
                    if not _compatible(self._probe, right):
                        continue
                    merged = _merge(self._probe, right)
                    if self.condition is not None and not _check_ids(
                        (self.condition,), merged, self.runtime
                    ):
                        continue
                    self._matched = True
                    self.runtime.stats.intermediate_bindings += 1
                    return merged
                row = self._probe
                self._probe = None
                if not self._matched:
                    self.runtime.stats.intermediate_bindings += 1
                    return dict(row)
                continue
            row = self._pending
            self._pending = None
            if row is None:
                if self.left.done:
                    self.done = True
                    return None
                row = self.left.next()
                if row is None:
                    return None
            self._probe = row
            self._bucket = self._bucket_for(row)
            self._bucket_index = 0
            self._matched = False
        return None

    def _save(self) -> Dict:
        return {
            "phase": self._phase,
            "left": self.left.save(),
            "right": self.right.save(),
            "pending": (
                encode_binding(self._pending, self.runtime)
                if self._pending is not None
                else None
            ),
            "rows": [
                encode_binding(row, self.runtime)
                for row in self._all_rows
            ],
            "probe": (
                encode_binding(self._probe, self.runtime)
                if self._probe is not None
                else None
            ),
            "bucket_index": self._bucket_index,
            "matched": self._matched,
        }

    def _load(self, state: Dict) -> None:
        self.left.load(state["left"])
        self.right.load(state["right"])
        self._phase = state.get("phase", "peek")
        pending = state.get("pending")
        self._pending = decode_binding(pending, self.runtime) if pending is not None else None
        self._all_rows = [
            decode_binding(blob, self.runtime)
            for blob in state.get("rows", ())
        ]
        self._table = {}
        if self.keys:
            for row in self._all_rows:
                self._table.setdefault(
                    _binding_key(row, self.keys), []
                ).append(row)
        probe = state.get("probe")
        self._probe = decode_binding(probe, self.runtime) if probe is not None else None
        self._bucket = self._bucket_for(self._probe) if self._probe is not None else []
        self._bucket_index = int(state.get("bucket_index", 0))
        self._matched = bool(state.get("matched"))


class MinusOp(PhysicalOperator):
    """MINUS: materialise the right side, stream and filter the left."""

    label = "Minus"

    def __init__(self, runtime, left, right):
        super().__init__(runtime)
        self.left = left
        self.right = right
        self._phase = "build"
        self._rows: List[Binding] = []

    def children(self) -> List[PhysicalOperator]:
        return [self.left, self.right]

    def _next(self) -> Optional[Binding]:
        if self._phase == "build":
            for _ in range(BUILD_BATCH):
                if self.right.done:
                    self._phase = "probe"
                    return None
                row = self.right.next()
                if row is None:
                    return None
                self._rows.append(row)
            return None
        if self.left.done:
            self.done = True
            return None
        left = self.left.next()
        if left is None:
            if self.left.done:
                self.done = True
            return None
        for right in self._rows:
            shared = left.keys() & right.keys()
            if shared and all(left[name] == right[name] for name in shared):
                return None
        self.runtime.stats.intermediate_bindings += 1
        return left

    def _save(self) -> Dict:
        return {
            "phase": self._phase,
            "left": self.left.save(),
            "right": self.right.save(),
            "rows": [
                encode_binding(row, self.runtime) for row in self._rows
            ],
        }

    def _load(self, state: Dict) -> None:
        self.left.load(state["left"])
        self.right.load(state["right"])
        self._phase = state.get("phase", "build")
        self._rows = [
            decode_binding(blob, self.runtime)
            for blob in state.get("rows", ())
        ]
