"""Suspendable physical operators for the SPARQL engine.

The evaluator (:mod:`repro.sparql.evaluator`) is a tree of recursive
generators: it always runs to completion and its control state lives on
the Python stack, so a heavy query cannot be paused.  This package is
the engine's *physical* layer in the style of sage-engine's preemptable
iterators: every operator is an explicit object with a uniform

    ``next() -> Optional[Binding]`` / ``save() -> state`` / ``load(state)``

protocol.  ``next()`` performs one *bounded* unit of work and returns
either a solution mapping, or ``None`` when the call made progress but
produced no row yet (a build phase, a filtered candidate, a suspended
child).  ``done`` reports exhaustion.  Because no control state hides in
generator frames, an operator tree can be stopped between any two
``next()`` calls, serialised with :meth:`PhysicalOperator.save` into a
JSON-able state tree, and reconstructed later with
:meth:`PhysicalOperator.load` — the substrate of the time-quantum
executor (:mod:`repro.sparql.executor`) and its continuation tokens.

Determinism contract: ``load`` replays index scans by skipping
``offset`` candidates, which reproduces the original sequence as long as
the graph is unchanged (the executor enforces this through the graph
``version`` stamped into every token) and iteration happens in the same
process.  Blocking state (hash-join build tables, DISTINCT seen sets,
heaps, aggregation groups) is serialised verbatim, so a restored plan
continues exactly where it stopped.

**ID-space execution.**  Since PR 5 every in-plan binding value is a raw
``int`` — the :class:`~repro.rdf.dictionary.TermDictionary` ID of the
term — not a :class:`~repro.rdf.terms.Term` object.  Scans read
``Graph.triples_ids``; join probes, DISTINCT seen-sets, MINUS
compatibility checks, and group keys all hash and compare plain
integers.  The only places terms are materialized are the expression
boundaries (FILTER / BIND / ORDER BY / aggregates decode a row, and any
computed term is re-interned so binding values stay uniformly encoded)
and the :class:`MaterializeOp` the planner mounts at the plan root,
which decodes each result row exactly once.  Scan-offset continuation
state therefore lives in ID space; IDs are stable for the lifetime of
the store, and the executor's graph-``version`` check already rejects
tokens whose triples changed.

Layout: :mod:`.base` defines the operator protocol and the ID/term
boundary helpers, :mod:`.scan` the leaves (singleton, VALUES, pattern
scan), :mod:`.ppath` the preemptable property-path traversal (BFS
closures over int frontiers with the frontier/visited/cursor state
serialised into the token instead of a skip-ahead offset),
:mod:`.rows` the row-at-a-time operators (filter/bind/project/
distinct/slice), :mod:`.join` the stream combinators (hash join,
OPTIONAL, MINUS, UNION), :mod:`.aggregate` the blocking analytics
(GROUP BY, ORDER BY, top-k), and :mod:`.materialize` the plan-root
decode boundary.  This ``__init__`` re-exports everything so
``repro.sparql.physical`` keeps its original flat surface.

Operator trees are compiled from algebra trees by
:mod:`repro.sparql.planner`; this package only defines the operators.
"""

from __future__ import annotations

from .base import (
    BUILD_BATCH,
    SCAN_BATCH,
    _EXHAUSTED,
    PhysicalOperator,
    PlanStateError,
    _UnaryOp,
    _check,
    _check_ids,
    _decode_opt_term,
    _decode_row,
    _encode_opt_term,
    _encode_value,
    _value_from_json,
    _value_to_json,
    decode_binding,
    encode_binding,
)
from .scan import PatternScanOp, SingletonOp, ValuesOp
from .ppath import PathScanOp
from .rows import (
    DistinctOp,
    ExtendOp,
    FilterOp,
    ProjectOp,
    ReducedOp,
    SliceOp,
    _decode_key,
    _encode_key,
    _KeyOrder,
)
from .join import HashJoinOp, LeftJoinOp, MinusOp, UnionOp
from .aggregate import AggregationOp, OrderByOp, TopKOp, _order_key
from .materialize import MaterializeOp, drain

__all__ = [
    "PlanStateError",
    "PhysicalOperator",
    "SingletonOp",
    "ValuesOp",
    "PatternScanOp",
    "PathScanOp",
    "FilterOp",
    "ExtendOp",
    "HashJoinOp",
    "LeftJoinOp",
    "MinusOp",
    "UnionOp",
    "AggregationOp",
    "ProjectOp",
    "DistinctOp",
    "ReducedOp",
    "OrderByOp",
    "TopKOp",
    "SliceOp",
    "MaterializeOp",
    "encode_binding",
    "decode_binding",
    "drain",
]
