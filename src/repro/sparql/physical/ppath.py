"""The preemptable property-path scan.

:class:`PathScanOp` is the path-predicate sibling of
:class:`~repro.sparql.physical.scan.PatternScanOp`: one stage of the
BGP index-nested-loop join whose predicate position is a
:class:`~repro.sparql.ast.PathExpr` rather than a term.  The path is
lowered once per plan instantiation into ID-space hop primitives
(:func:`repro.sparql.paths.lower_path`) and, for each outer binding, a
preemptable pair iterator (:func:`repro.sparql.paths.build_pair_iterator`)
walks the graph — closures as an explicit breadth-first search over int
frontiers with one frontier expansion per pull.

Unlike the flat scan, suspension does **not** save a skip-ahead offset
over a regenerated stream (quadratic on resume, and meaningless for a
traversal): ``save()`` serialises the iterator's actual state — BFS
frontier, visited set (sorted), emit buffer, cursors — through the
token codecs, so a half-explored closure resumes in O(1) and, because
every hop emits in canonical sorted-ID order, resumes *byte-identically*
on any pool worker mapping the same snapshot.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ast import TriplePatternNode, Var
from ..functions import Binding
from ..paths import build_pair_iterator, closure_stats, lower_path
from .base import (
    SCAN_BATCH,
    PhysicalOperator,
    _check_ids,
    _value_from_json,
    _value_to_json,
    decode_binding,
    encode_binding,
)

__all__ = ["PathScanOp"]


class PathScanOp(PhysicalOperator):
    """One BGP join stage over a property-path predicate.

    For every binding produced by ``child``, resolves the endpoint
    positions to term IDs (bound variable → its ID, constant → interned
    ID, free variable → unconstrained) and drives a pair iterator for
    the lowered path, merging each emitted ``(s, o)`` ID pair into the
    binding.  ``pre_filters``/``post_filters`` behave exactly as on the
    flat scan, and stats accounting matches the recursive evaluator's
    ``extend_path`` (one ``pattern_scans`` per outer binding, one
    ``intermediate_bindings`` per merged pair).
    """

    label = "PathScan"

    def __init__(self, runtime, child, pattern: TriplePatternNode,
                 pre_filters=(), post_filters=()):
        super().__init__(runtime)
        self.child = child
        self.pattern = pattern
        self.pre_filters = tuple(pre_filters)
        self.post_filters = tuple(post_filters)
        self.code = lower_path(pattern.predicate, runtime.dictionary.lookup)
        self._current: Optional[Binding] = None
        self._pairs = None
        # Cumulative frontier counters over exhausted iterators; the
        # live iterator's are added on read (EXPLAIN ANALYZE detail).
        self._hops = 0
        self._peak_frontier = 0
        self._visited = 0

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def detail(self) -> str:
        text = str(self.pattern)
        extras = []
        hops, peak, visited = self.frontier_stats()
        if hops or peak or visited:
            extras.append(
                f"hops={hops} peak_frontier={peak} visited={visited}"
            )
        if self.pre_filters:
            extras.append(f"+{len(self.pre_filters)} guards")
        if self.post_filters:
            extras.append(f"+{len(self.post_filters)} inline filters")
        return text + (" " + " ".join(extras) if extras else "")

    def frontier_stats(self):
        """``(hops, peak_frontier, visited)``: finished + live traversals."""
        hops, peak, visited = closure_stats(self._pairs)
        return (
            self._hops + hops,
            max(self._peak_frontier, peak),
            self._visited + visited,
        )

    # -- scanning -------------------------------------------------------

    def _endpoint_id(self, term, binding: Binding):
        """Endpoint position → pair-iterator argument (ID or ``None``).

        Constants are *interned*, not looked up: a zero-length path
        relates a term to itself even when no triple mentions it, so an
        unknown constant must still get an ID the closure can emit.
        """
        if isinstance(term, Var):
            return binding.get(term.name)
        return self.runtime.dictionary.encode(term)

    def _start_path(self, binding: Binding) -> None:
        self._current = binding
        self.runtime.stats.pattern_scans += 1
        self._pairs = build_pair_iterator(
            self.runtime.graph,
            self.code,
            self._endpoint_id(self.pattern.subject, binding),
            self._endpoint_id(self.pattern.object, binding),
        )

    def _finish_path(self) -> None:
        hops, peak, visited = closure_stats(self._pairs)
        self._hops += hops
        self._peak_frontier = max(self._peak_frontier, peak)
        self._visited += visited
        self._pairs = None
        self._current = None

    def _extend(self, pair) -> Optional[Binding]:
        binding = dict(self._current)
        for term, value in (
            (self.pattern.subject, pair[0]),
            (self.pattern.object, pair[1]),
        ):
            if isinstance(term, Var):
                existing = binding.get(term.name)
                if existing is None:
                    binding[term.name] = value
                elif existing != value:
                    return None
        return binding

    def _next(self) -> Optional[Binding]:
        for _ in range(SCAN_BATCH):
            if self._pairs is not None:
                if self._pairs.done:
                    self._finish_path()
                    continue
                pair = self._pairs.next_pair()
                if pair is None:
                    # Progress without a result — a frontier expansion,
                    # a filtered candidate.  Bounded, so fall through to
                    # the next batch slot rather than spinning the full
                    # traversal inside one call.
                    continue
                row = self._extend(pair)
                if row is None:
                    continue
                self.runtime.stats.intermediate_bindings += 1
                if _check_ids(self.post_filters, row, self.runtime):
                    return row
                continue
            if self.child.done:
                self.done = True
                return None
            outer = self.child.next()
            if outer is None:
                return None
            if self.pre_filters and not _check_ids(
                self.pre_filters, outer, self.runtime
            ):
                continue
            self._start_path(outer)
        return None

    # -- suspension -----------------------------------------------------

    def _save(self) -> Dict:
        runtime = self.runtime
        state = {
            "child": self.child.save(),
            "current": (
                encode_binding(self._current, runtime)
                if self._current is not None
                else None
            ),
            "hops": self._hops,
            "peak": self._peak_frontier,
            "visited": self._visited,
        }
        if self._pairs is not None:
            state["path"] = self._pairs.save(
                lambda id: _value_to_json(id, runtime)
            )
        return state

    def _load(self, state: Dict) -> None:
        self.child.load(state["child"])
        runtime = self.runtime
        self._hops = int(state.get("hops", 0))
        self._peak_frontier = int(state.get("peak", 0))
        self._visited = int(state.get("visited", 0))
        current = state.get("current")
        self._current = None
        self._pairs = None
        if current is not None:
            binding = decode_binding(current, runtime)
            self._start_path(binding)
            # _start_path re-bills the scan; resume must not double-count.
            runtime.stats.pattern_scans -= 1
            path_state = state.get("path")
            if path_state is not None:
                self._pairs.load(
                    path_state, lambda blob: _value_from_json(blob, runtime)
                )
