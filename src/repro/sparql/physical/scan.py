"""Leaf operators: the unit table, inline VALUES, and the index
nested-loop pattern scan that anchors every BGP."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ast import TriplePatternNode, Var
from ..functions import Binding
from .base import (
    SCAN_BATCH,
    _EXHAUSTED,
    PhysicalOperator,
    _check,
    _check_ids,
    decode_binding,
    encode_binding,
)

__all__ = ["SingletonOp", "ValuesOp", "PatternScanOp"]


class SingletonOp(PhysicalOperator):
    """The unit table: one empty solution (guarded by var-free filters)."""

    label = "Singleton"

    def __init__(self, runtime, guards=()):
        super().__init__(runtime)
        self.guards = tuple(guards)
        self._emitted = False

    def _next(self) -> Optional[Binding]:
        self.done = True
        if self._emitted:
            return None
        self._emitted = True
        if not _check(self.guards, {}, self.runtime):
            return None
        return {}

    def _save(self) -> Dict:
        return {"emitted": self._emitted}

    def _load(self, state: Dict) -> None:
        self._emitted = bool(state.get("emitted"))


class ValuesOp(PhysicalOperator):
    """An inline VALUES table."""

    label = "Values"

    def __init__(self, runtime, variables, rows):
        super().__init__(runtime)
        self.variables = list(variables)
        # VALUES data arrives as term objects from the algebra; intern it
        # once so emitted bindings are in ID space like every other row.
        encode = runtime.dictionary.encode
        self.rows = [
            [None if value is None else encode(value) for value in row]
            for row in rows
        ]
        self._offset = 0

    def detail(self) -> str:
        names = " ".join(f"?{var.name}" for var in self.variables)
        return f"{len(self.rows)} rows over {names}"

    def _next(self) -> Optional[Binding]:
        if self._offset >= len(self.rows):
            self.done = True
            return None
        row = self.rows[self._offset]
        self._offset += 1
        if self._offset >= len(self.rows):
            self.done = True
        binding = {
            var.name: value
            for var, value in zip(self.variables, row)
            if value is not None
        }
        self.runtime.stats.intermediate_bindings += 1
        return binding

    def _save(self) -> Dict:
        return {"offset": self._offset}

    def _load(self, state: Dict) -> None:
        self._offset = int(state.get("offset", 0))


class PatternScanOp(PhysicalOperator):
    """One stage of the BGP index-nested-loop join.

    For every binding produced by ``child``, instantiates the triple
    pattern and scans the graph indexes, merging consistent matches.
    Path predicates compile to the preemptable
    :class:`~repro.sparql.physical.ppath.PathScanOp` instead — this
    operator only ever sees term predicates.  ``post_filters`` are the BGP filters
    the optimizer pushed to this join depth; ``pre_filters`` (first
    stage only) guard the incoming binding before any scan is issued.

    Suspension state is the child's state plus the current outer
    binding and the number of candidates consumed from its scan; resume
    re-issues the scan and skips that many candidates, which is exact
    for an unchanged graph within one process.
    """

    label = "PatternScan"

    def __init__(self, runtime, child, pattern: TriplePatternNode,
                 pre_filters=(), post_filters=()):
        super().__init__(runtime)
        self.child = child
        self.pattern = pattern
        self.pre_filters = tuple(pre_filters)
        self.post_filters = tuple(post_filters)
        self._current: Optional[Binding] = None
        self._matches = None
        self._offset = 0

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def detail(self) -> str:
        text = str(self.pattern)
        extras = []
        if self.pre_filters:
            extras.append(f"+{len(self.pre_filters)} guards")
        if self.post_filters:
            extras.append(f"+{len(self.post_filters)} inline filters")
        return text + (" " + " ".join(extras) if extras else "")

    # -- scanning -------------------------------------------------------

    @staticmethod
    def _instantiate_id(term, binding: Binding, lookup):
        """Pattern position → ID-space scan argument.

        A variable resolves to its bound ID (or ``None`` = wildcard); a
        constant the dictionary has never interned becomes the
        impossible ID ``-1``, which matches nothing but still routes
        through the normal index branch (identical lookup metrics).
        """
        if isinstance(term, Var):
            return binding.get(term.name)
        id = lookup(term)
        return -1 if id is None else id

    def _start_scan(self, binding: Binding) -> None:
        graph = self.runtime.graph
        self._current = binding
        self._offset = 0
        self.runtime.stats.pattern_scans += 1
        pattern = self.pattern
        lookup = self.runtime.dictionary.lookup
        s = self._instantiate_id(pattern.subject, binding, lookup)
        p = self._instantiate_id(pattern.predicate, binding, lookup)
        o = self._instantiate_id(pattern.object, binding, lookup)
        self._matches = graph.triples_ids(s, p, o)

    def _extend(self, candidate) -> Optional[Binding]:
        binding = dict(self._current)
        for term, value in zip(self.pattern, candidate):
            if isinstance(term, Var):
                existing = binding.get(term.name)
                if existing is None:
                    binding[term.name] = value
                elif existing != value:
                    return None
        return binding

    def _next(self) -> Optional[Binding]:
        for _ in range(SCAN_BATCH):
            if self._matches is not None:
                candidate = next(self._matches, _EXHAUSTED)
                if candidate is _EXHAUSTED:
                    self._matches = None
                    self._current = None
                    continue
                self._offset += 1
                row = self._extend(candidate)
                if row is None:
                    continue
                self.runtime.stats.intermediate_bindings += 1
                if _check_ids(self.post_filters, row, self.runtime):
                    return row
                continue
            if self.child.done:
                self.done = True
                return None
            outer = self.child.next()
            if outer is None:
                return None
            if self.pre_filters and not _check_ids(
                self.pre_filters, outer, self.runtime
            ):
                continue
            self._start_scan(outer)
        return None

    # -- suspension -----------------------------------------------------

    def _save(self) -> Dict:
        return {
            "child": self.child.save(),
            "current": (
                encode_binding(self._current, self.runtime)
                if self._current is not None
                else None
            ),
            "offset": self._offset,
        }

    def _load(self, state: Dict) -> None:
        self.child.load(state["child"])
        current = state.get("current")
        self._current = None
        self._matches = None
        self._offset = 0
        if current is not None:
            binding = decode_binding(current, self.runtime)
            offset = int(state.get("offset", 0))
            self._start_scan(binding)
            # _start_scan re-bills the scan; resume must not double-count.
            self.runtime.stats.pattern_scans -= 1
            for _ in range(offset):
                if next(self._matches, _EXHAUSTED) is _EXHAUSTED:
                    break
            self._offset = offset
