"""Row-at-a-time operators: FILTER, BIND, projection, DISTINCT/REDUCED,
and OFFSET/LIMIT slicing."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ExpressionError, SparqlEvalError
from ..functions import Binding, evaluate_expression
from .base import (
    _UnaryOp,
    _check_ids,
    _decode_row,
    _encode_value,
    _value_from_json,
    _value_to_json,
)

__all__ = [
    "FilterOp",
    "ExtendOp",
    "ProjectOp",
    "DistinctOp",
    "ReducedOp",
    "SliceOp",
]


class FilterOp(_UnaryOp):
    """A standalone FILTER (counts passing rows, like the evaluator)."""

    label = "Filter"

    def __init__(self, runtime, child, condition):
        super().__init__(runtime, child)
        self.condition = condition

    def detail(self) -> str:
        return "condition"

    def _next(self) -> Optional[Binding]:
        row = self._pull()
        if row is None:
            return None
        if _check_ids((self.condition,), row, self.runtime):
            self.runtime.stats.intermediate_bindings += 1
            return row
        return None


class ExtendOp(_UnaryOp):
    """BIND: extends each row with a computed variable."""

    label = "Extend"

    def __init__(self, runtime, child, var, expression):
        super().__init__(runtime, child)
        self.var = var
        self.expression = expression

    def detail(self) -> str:
        return f"BIND ?{self.var.name}"

    def _next(self) -> Optional[Binding]:
        row = self._pull()
        if row is None:
            return None
        if self.var.name in row:
            raise SparqlEvalError(f"BIND would rebind ?{self.var.name}")
        out = dict(row)
        try:
            value = evaluate_expression(
                self.expression, _decode_row(row, self.runtime),
                context=self.runtime,
            )
        except ExpressionError:
            pass  # BIND errors leave the variable unbound
        else:
            out[self.var.name] = _encode_value(value, self.runtime)
        self.runtime.stats.intermediate_bindings += 1
        return out


class ProjectOp(_UnaryOp):
    """SELECT projection (with expression extensions)."""

    label = "Project"

    def __init__(self, runtime, child, variables, extensions=()):
        super().__init__(runtime, child)
        self.variables = None if variables is None else list(variables)
        self.extensions = {
            projection.var.name: projection.expression
            for projection in extensions
        }

    def detail(self) -> str:
        if self.variables is None:
            return "*"
        return " ".join(f"?{var.name}" for var in self.variables)

    def _next(self) -> Optional[Binding]:
        row = self._pull()
        if row is None:
            return None
        if self.variables is None:
            return row
        out: Binding = {}
        decoded = None  # lazily materialized, only if an extension runs
        for var in self.variables:
            expression = self.extensions.get(var.name)
            if expression is not None:
                if decoded is None:
                    decoded = _decode_row(row, self.runtime)
                try:
                    value = evaluate_expression(
                        expression, decoded, context=self.runtime
                    )
                except ExpressionError:
                    pass
                else:
                    out[var.name] = _encode_value(value, self.runtime)
            elif var.name in row:
                out[var.name] = row[var.name]
        return out


class _KeyOrder:
    """First-seen variable order for stable dedup keys (see evaluator)."""

    __slots__ = ("order", "known")

    def __init__(self) -> None:
        self.order: List[str] = []
        self.known: set = set()

    def key(self, binding: Binding) -> Tuple:
        for name in binding:
            if name not in self.known:
                self.known.add(name)
                self.order.append(name)
        return tuple(
            (name, binding[name]) for name in self.order if name in binding
        )


def _encode_key(key: Tuple, runtime=None) -> List:
    return [[name, _value_to_json(value, runtime)] for name, value in key]


def _decode_key(blob: List, runtime=None) -> Tuple:
    return tuple(
        (name, _value_from_json(value, runtime)) for name, value in blob
    )


class DistinctOp(_UnaryOp):
    """Streaming DISTINCT over a serialisable seen-set."""

    label = "Distinct"

    def __init__(self, runtime, child):
        super().__init__(runtime, child)
        self._order = _KeyOrder()
        self._seen: set = set()

    def _next(self) -> Optional[Binding]:
        row = self._pull()
        if row is None:
            return None
        key = self._order.key(row)
        if key in self._seen:
            return None
        self._seen.add(key)
        return row

    def _save(self) -> Dict:
        return {
            "child": self.child.save(),
            "order": list(self._order.order),
            "seen": [
                _encode_key(key, self.runtime) for key in self._seen
            ],
        }

    def _load(self, state: Dict) -> None:
        self.child.load(state["child"])
        self._order = _KeyOrder()
        self._order.order = list(state.get("order", ()))
        self._order.known = set(self._order.order)
        self._seen = {
            _decode_key(blob, self.runtime)
            for blob in state.get("seen", ())
        }


class ReducedOp(_UnaryOp):
    """REDUCED: drops adjacent duplicates only."""

    label = "Reduced"

    def __init__(self, runtime, child):
        super().__init__(runtime, child)
        self._order = _KeyOrder()
        self._previous: Optional[Tuple] = None

    def _next(self) -> Optional[Binding]:
        row = self._pull()
        if row is None:
            return None
        key = self._order.key(row)
        if key == self._previous:
            return None
        self._previous = key
        return row

    def _save(self) -> Dict:
        return {
            "child": self.child.save(),
            "order": list(self._order.order),
            "previous": (
                _encode_key(self._previous, self.runtime)
                if self._previous is not None
                else None
            ),
        }

    def _load(self, state: Dict) -> None:
        self.child.load(state["child"])
        self._order = _KeyOrder()
        self._order.order = list(state.get("order", ()))
        self._order.known = set(self._order.order)
        previous = state.get("previous")
        self._previous = (
            _decode_key(previous, self.runtime)
            if previous is not None
            else None
        )


class SliceOp(_UnaryOp):
    """OFFSET/LIMIT; stops pulling its child once the limit is reached."""

    label = "Slice"

    def __init__(self, runtime, child, offset=0, limit=None):
        super().__init__(runtime, child)
        self.offset = offset
        self.limit = limit
        self._skipped = 0
        self._emitted = 0

    def detail(self) -> str:
        parts = []
        if self.offset:
            parts.append(f"offset {self.offset}")
        if self.limit is not None:
            parts.append(f"limit {self.limit}")
        return " ".join(parts)

    def _next(self) -> Optional[Binding]:
        if self.limit is not None and self._emitted >= self.limit:
            self.done = True
            return None
        row = self._pull()
        if row is None:
            return None
        if self._skipped < self.offset:
            self._skipped += 1
            return None
        self._emitted += 1
        if self.limit is not None and self._emitted >= self.limit:
            self.done = True
        return row

    def _save(self) -> Dict:
        return {
            "child": self.child.save(),
            "skipped": self._skipped,
            "emitted": self._emitted,
        }

    def _load(self, state: Dict) -> None:
        self.child.load(state["child"])
        self._skipped = int(state.get("skipped", 0))
        self._emitted = int(state.get("emitted", 0))
