"""Compilation of optimized algebra trees into physical operator plans.

The planner is the bridge between the engine's front half (parse →
translate → optimize, memoised by :class:`repro.perf.plancache.PlanCache`)
and the suspendable physical layer (:mod:`repro.sparql.physical`).  It
runs every *planning decision* exactly once per query text — BGP pattern
ordering, filter-slot assignment, static hash-join key analysis — and
captures them in a reusable :class:`PhysicalPlanFactory`.  The factory
is immutable and cacheable; each execution (every page of a paginated
query builds on a fresh or restored tree) calls
:meth:`PhysicalPlanFactory.instantiate` to get a new stateful
:class:`PhysicalPlan` in O(plan size).

Decision parity with the recursive evaluator is deliberate and load-
bearing: both engines share :func:`~repro.sparql.evaluator.order_patterns`,
:func:`~repro.sparql.evaluator.assign_filter_slots`, and
:func:`~repro.sparql.algebra.certain_variables`, so a plan executed in
time slices produces the same result multiset *and* the same
:class:`~repro.sparql.evaluator.EvalStats` work counters as one-shot
evaluation — which keeps the cost model's simulated latency comparable
across both paths.
"""

from __future__ import annotations

from typing import Callable, List

from ..rdf.graph import Graph
from .algebra import (
    Aggregation,
    AlgebraNode,
    Ask,
    BGP,
    Distinct,
    Extend,
    Filter,
    Join,
    LeftJoin,
    Minus,
    OrderBy,
    Project,
    Reduced,
    Slice,
    TopK,
    Unit,
    Union,
    ValuesTable,
    certain_variables,
    translate_query,
)
from .ast import AskQuery, PathExpr, Query, SelectQuery
from .errors import SparqlEvalError
from .evaluator import (
    Evaluator,
    assign_filter_slots,
    order_patterns,
    result_variables,
)
from .parser import parse_query
from .physical import (
    AggregationOp,
    DistinctOp,
    ExtendOp,
    FilterOp,
    HashJoinOp,
    LeftJoinOp,
    MaterializeOp,
    MinusOp,
    OrderByOp,
    PathScanOp,
    PatternScanOp,
    PhysicalOperator,
    ProjectOp,
    ReducedOp,
    SingletonOp,
    SliceOp,
    TopKOp,
    UnionOp,
    ValuesOp,
)

__all__ = [
    "PhysicalPlan",
    "PhysicalPlanFactory",
    "compile_node",
    "build_physical_plan",
]

#: A compiled operator constructor: runtime in, fresh stateful tree out.
OperatorFactory = Callable[[Evaluator], PhysicalOperator]


def _tag(factory: OperatorFactory, node: AlgebraNode) -> OperatorFactory:
    """Stamp the source algebra node onto every built operator."""

    def make(runtime: Evaluator) -> PhysicalOperator:
        op = factory(runtime)
        op.algebra = node
        return op

    return make


def _compile_bgp(node: BGP) -> OperatorFactory:
    if not node.patterns:
        guards = tuple(node.filters)
        return lambda runtime: SingletonOp(runtime, guards=guards)
    # Ordering and filter placement are decided here, once; the built
    # scan chain replays them identically on every instantiation.
    if node.preordered:
        ordered = list(node.patterns)
    else:
        ordered = order_patterns(node.patterns)
    filters_at = assign_filter_slots(ordered, node.filters)

    def make(runtime: Evaluator) -> PhysicalOperator:
        op: PhysicalOperator = SingletonOp(runtime)
        for index, pattern in enumerate(ordered):
            # Path predicates get the preemptable traversal operator;
            # plain predicates the flat index scan.  Same join-stage
            # contract (filter slots, stats accounting) either way.
            scan = (
                PathScanOp
                if isinstance(pattern.predicate, PathExpr)
                else PatternScanOp
            )
            op = scan(
                runtime,
                op,
                pattern,
                pre_filters=filters_at[0] if index == 0 else (),
                post_filters=filters_at[index + 1],
            )
            op.algebra = node
        return op

    return make


def _join_keys(node) -> tuple:
    """Hash-join keys: variables certainly bound on both sides."""
    return tuple(
        sorted(certain_variables(node.left) & certain_variables(node.right))
    )


def compile_node(node: AlgebraNode) -> OperatorFactory:
    """Compile one algebra subtree into an operator factory."""
    if isinstance(node, Unit):
        return _tag(lambda runtime: SingletonOp(runtime), node)
    if isinstance(node, BGP):
        return _compile_bgp(node)
    if isinstance(node, Join):
        left = compile_node(node.left)
        right = compile_node(node.right)
        keys = _join_keys(node)
        return _tag(
            lambda runtime: HashJoinOp(
                runtime, left(runtime), right(runtime), keys
            ),
            node,
        )
    if isinstance(node, LeftJoin):
        left = compile_node(node.left)
        right = compile_node(node.right)
        keys = _join_keys(node)
        condition = node.condition
        return _tag(
            lambda runtime: LeftJoinOp(
                runtime, left(runtime), right(runtime), keys, condition
            ),
            node,
        )
    if isinstance(node, Minus):
        left = compile_node(node.left)
        right = compile_node(node.right)
        return _tag(
            lambda runtime: MinusOp(runtime, left(runtime), right(runtime)),
            node,
        )
    if isinstance(node, Filter):
        child = compile_node(node.input)
        condition = node.condition
        return _tag(
            lambda runtime: FilterOp(runtime, child(runtime), condition), node
        )
    if isinstance(node, Union):
        branches = [compile_node(branch) for branch in node.branches]
        return _tag(
            lambda runtime: UnionOp(
                runtime, [branch(runtime) for branch in branches]
            ),
            node,
        )
    if isinstance(node, Extend):
        child = compile_node(node.input)
        var, expression = node.var, node.expression
        return _tag(
            lambda runtime: ExtendOp(runtime, child(runtime), var, expression),
            node,
        )
    if isinstance(node, ValuesTable):
        variables, rows = node.variables, node.rows
        return _tag(lambda runtime: ValuesOp(runtime, variables, rows), node)
    if isinstance(node, Aggregation):
        child = compile_node(node.input)
        keys, projections, having = node.keys, node.projections, node.having
        return _tag(
            lambda runtime: AggregationOp(
                runtime, child(runtime), keys, projections, having
            ),
            node,
        )
    if isinstance(node, Project):
        child = compile_node(node.input)
        variables, extensions = node.variables, node.extensions
        return _tag(
            lambda runtime: ProjectOp(
                runtime, child(runtime), variables, extensions
            ),
            node,
        )
    if isinstance(node, Distinct):
        child = compile_node(node.input)
        return _tag(lambda runtime: DistinctOp(runtime, child(runtime)), node)
    if isinstance(node, Reduced):
        child = compile_node(node.input)
        return _tag(lambda runtime: ReducedOp(runtime, child(runtime)), node)
    if isinstance(node, OrderBy):
        child = compile_node(node.input)
        conditions = node.conditions
        return _tag(
            lambda runtime: OrderByOp(runtime, child(runtime), conditions),
            node,
        )
    if isinstance(node, TopK):
        child = compile_node(node.input)
        conditions, limit, offset = node.conditions, node.limit, node.offset
        return _tag(
            lambda runtime: TopKOp(
                runtime, child(runtime), conditions, limit, offset
            ),
            node,
        )
    if isinstance(node, Slice):
        child = compile_node(node.input)
        offset, limit = node.offset, node.limit
        return _tag(
            lambda runtime: SliceOp(
                runtime, child(runtime), offset=offset, limit=limit
            ),
            node,
        )
    raise SparqlEvalError(f"no physical operator for algebra node: {node!r}")


class PhysicalPlan:
    """One stateful, suspendable execution of a compiled query.

    ``root`` is the physical operator tree; ``runtime`` is the shared
    execution context (an :class:`Evaluator` providing the graph, the
    :class:`EvalStats` counters, and EXISTS support).  The executor
    drives ``root.next()`` and uses :meth:`save`/:meth:`load` to move
    the whole execution across suspension points.
    """

    def __init__(self, factory: "PhysicalPlanFactory", graph: Graph):
        self.factory = factory
        self.runtime = Evaluator(graph)
        self.root = factory.make_root(self.runtime)

    @property
    def variables(self) -> List[str]:
        return self.factory.variables

    @property
    def is_ask(self) -> bool:
        return self.factory.is_ask

    @property
    def stats(self):
        return self.runtime.stats

    def save(self) -> dict:
        return self.root.save()

    def load(self, state: dict) -> None:
        self.root.load(state)

    def operators(self) -> List[PhysicalOperator]:
        return list(self.root.walk())


class PhysicalPlanFactory:
    """The cacheable compilation result for one query text.

    Planning decisions live in the closed-over factories; every call to
    :meth:`instantiate` produces an independent :class:`PhysicalPlan`
    with fresh operator state.  This is what
    :class:`repro.perf.plancache.CachedPlan` stores in its ``physical``
    slot — compiled once, executed many times.
    """

    def __init__(self, query: Query, algebra: AlgebraNode):
        if not isinstance(query, (SelectQuery, AskQuery)):
            raise SparqlEvalError(
                "the physical engine executes SELECT and ASK queries only"
            )
        self.query = query
        self.algebra = algebra
        self.is_ask = isinstance(algebra, Ask)
        root_node = algebra.input if isinstance(algebra, Ask) else algebra
        inner = compile_node(root_node)
        # The operator tree executes in ID space; mount the single
        # late-materialization boundary at the root so consumers of
        # plan.root.next() receive ordinary term bindings.
        self.make_root = lambda runtime: MaterializeOp(runtime, inner(runtime))
        self.variables: List[str] = (
            [] if self.is_ask else result_variables(query, algebra)
        )

    def instantiate(self, graph: Graph) -> PhysicalPlan:
        return PhysicalPlan(self, graph)


def build_physical_plan(
    graph: Graph, query_text: str, optimize: bool = True
) -> PhysicalPlan:
    """Parse, optimize, compile, and instantiate in one step.

    Convenience for tests and the CLI; endpoints go through the plan
    cache instead so compilation is shared across pages and requests.
    """
    query = parse_query(query_text)
    algebra = translate_query(query)
    if optimize:
        from .optimizer import optimize as run_optimizer

        algebra, _ = run_optimizer(algebra, graph=graph)
    return PhysicalPlanFactory(query, algebra).instantiate(graph)
