"""Query result containers and the SPARQL 1.1 JSON results format.

The simulated Virtuoso endpoint speaks this JSON dialect over its
simulated HTTP interface (the paper uses "AJAX communication with the
Virtuoso server via its HTTP/JSON SPARQL interface", Section 4), so the
encode/decode here is the wire format of :mod:`repro.endpoint.wire`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Sequence

from ..rdf.terms import BNode, Literal, Term, URI

__all__ = [
    "SelectResult",
    "AskResult",
    "GraphResult",
    "results_to_json",
    "results_from_json",
    "term_to_json",
    "term_from_json",
]


class SelectResult:
    """The solution sequence of a SELECT query.

    Iterable over bindings (dicts of variable name -> term).  ``vars``
    preserves the projection order.
    """

    def __init__(
        self,
        variables: Sequence[str],
        rows: List[Dict[str, Term]],
        stats: Optional[object] = None,
    ):
        self.vars = list(variables)
        self.rows = rows
        self.stats = stats

    def __iter__(self) -> Iterator[Dict[str, Term]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SelectResult):
            return NotImplemented
        return self.vars == other.vars and self.rows == other.rows

    def __repr__(self) -> str:
        return f"<SelectResult {len(self.rows)} rows over {self.vars}>"

    def column(self, name: str) -> List[Optional[Term]]:
        """All values of one variable, None where unbound."""
        return [row.get(name) for row in self.rows]

    def scalar(self) -> Optional[Term]:
        """The single value of a one-row, one-variable result."""
        if len(self.rows) != 1 or len(self.vars) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, have {len(self.rows)} rows "
                f"x {len(self.vars)} vars"
            )
        return self.rows[0].get(self.vars[0])

    def to_table(self, max_rows: int = 50) -> str:
        """A plain-text table rendering (for examples and debugging)."""
        headers = [f"?{name}" for name in self.vars]
        body: List[List[str]] = []
        for row in self.rows[:max_rows]:
            body.append(
                [
                    _short(row.get(name))
                    for name in self.vars
                ]
            )
        widths = [len(header) for header in headers]
        for line in body:
            for index, cell in enumerate(line):
                widths[index] = max(widths[index], len(cell))
        out = [
            " | ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
            "-+-".join("-" * width for width in widths),
        ]
        for line in body:
            out.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        if len(self.rows) > max_rows:
            out.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(out)


class GraphResult:
    """The graph produced by a CONSTRUCT query."""

    def __init__(self, graph, stats: Optional[object] = None):
        self.graph = graph
        self.stats = stats

    def __len__(self) -> int:
        return len(self.graph)

    def __iter__(self):
        return iter(self.graph)

    def __bool__(self) -> bool:
        return bool(self.graph)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphResult):
            return NotImplemented
        return set(self.graph) == set(other.graph)

    def __repr__(self) -> str:
        return f"<GraphResult with {len(self.graph)} triples>"

    def to_ntriples(self) -> str:
        """Serialise the constructed graph to N-Triples."""
        from ..rdf.ntriples import serialize_ntriples

        return serialize_ntriples(self.graph, sort=True)


class AskResult:
    """The boolean result of an ASK query."""

    def __init__(self, value: bool, stats: Optional[object] = None):
        self.value = bool(value)
        self.stats = stats

    def __bool__(self) -> bool:
        return self.value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AskResult):
            return self.value == other.value
        if isinstance(other, bool):
            return self.value == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<AskResult {self.value}>"


def _short(term: Optional[Term]) -> str:
    if term is None:
        return ""
    if isinstance(term, URI):
        return term.local_name or term.value
    if isinstance(term, Literal):
        return term.lexical
    return str(term)


# ----------------------------------------------------------------------
# SPARQL 1.1 Query Results JSON Format
# ----------------------------------------------------------------------


def _term_to_json(term: Term) -> Dict[str, Any]:
    if isinstance(term, URI):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BNode):
        return {"type": "bnode", "value": term.id}
    assert isinstance(term, Literal)
    out: Dict[str, Any] = {"type": "literal", "value": term.lexical}
    if term.language:
        out["xml:lang"] = term.language
    elif term.datatype:
        out["datatype"] = term.datatype
    return out


def _term_from_json(blob: Dict[str, Any]) -> Term:
    kind = blob.get("type")
    value = blob.get("value", "")
    if kind == "uri":
        return URI(value)
    if kind == "bnode":
        return BNode(value)
    if kind in ("literal", "typed-literal"):
        language = blob.get("xml:lang")
        datatype = blob.get("datatype")
        if language:
            return Literal(value, language=language)
        if datatype:
            return Literal(value, datatype=datatype)
        return Literal(value)
    raise ValueError(f"unknown JSON term type: {kind!r}")


def term_to_json(term: Term) -> Dict[str, Any]:
    """Public JSON encoding of one RDF term (SPARQL-JSON term schema).

    Shared by the results wire format and the executor's continuation
    tokens (:mod:`repro.sparql.physical` serialises operator state —
    bindings, build tables, heaps — through this encoding).
    """
    return _term_to_json(term)


def term_from_json(blob: Dict[str, Any]) -> Term:
    """Inverse of :func:`term_to_json`."""
    return _term_from_json(blob)


def results_to_json(result) -> str:
    """Serialise a SelectResult/AskResult to SPARQL-JSON text."""
    if isinstance(result, AskResult):
        return json.dumps({"head": {}, "boolean": result.value})
    assert isinstance(result, SelectResult)
    bindings = [
        {
            name: _term_to_json(term)
            for name, term in row.items()
            if term is not None
        }
        for row in result.rows
    ]
    return json.dumps(
        {"head": {"vars": result.vars}, "results": {"bindings": bindings}}
    )


def results_from_json(text: str):
    """Parse SPARQL-JSON text back into a SelectResult or AskResult."""
    blob = json.loads(text)
    if "boolean" in blob:
        return AskResult(bool(blob["boolean"]))
    variables = blob.get("head", {}).get("vars", [])
    rows = [
        {name: _term_from_json(value) for name, value in binding.items()}
        for binding in blob.get("results", {}).get("bindings", [])
    ]
    return SelectResult(variables, rows)
