"""Suspendable physical operators for the SPARQL engine.

The evaluator (:mod:`repro.sparql.evaluator`) is a tree of recursive
generators: it always runs to completion and its control state lives on
the Python stack, so a heavy query cannot be paused.  This module is the
engine's *physical* layer in the style of sage-engine's preemptable
iterators: every operator is an explicit object with a uniform

    ``next() -> Optional[Binding]`` / ``save() -> state`` / ``load(state)``

protocol.  ``next()`` performs one *bounded* unit of work and returns
either a solution mapping, or ``None`` when the call made progress but
produced no row yet (a build phase, a filtered candidate, a suspended
child).  ``done`` reports exhaustion.  Because no control state hides in
generator frames, an operator tree can be stopped between any two
``next()`` calls, serialised with :meth:`PhysicalOperator.save` into a
JSON-able state tree, and reconstructed later with
:meth:`PhysicalOperator.load` — the substrate of the time-quantum
executor (:mod:`repro.sparql.executor`) and its continuation tokens.

Determinism contract: ``load`` replays index scans by skipping
``offset`` candidates, which reproduces the original sequence as long as
the graph is unchanged (the executor enforces this through the graph
``version`` stamped into every token) and iteration happens in the same
process.  Blocking state (hash-join build tables, DISTINCT seen sets,
heaps, aggregation groups) is serialised verbatim, so a restored plan
continues exactly where it stopped.

**ID-space execution.**  Since PR 5 every in-plan binding value is a raw
``int`` — the :class:`~repro.rdf.dictionary.TermDictionary` ID of the
term — not a :class:`~repro.rdf.terms.Term` object.  Scans read
``Graph.triples_ids``; join probes, DISTINCT seen-sets, MINUS
compatibility checks, and group keys all hash and compare plain
integers.  The only places terms are materialized are the expression
boundaries (FILTER / BIND / ORDER BY / aggregates decode a row, and any
computed term is re-interned so binding values stay uniformly encoded)
and the :class:`MaterializeOp` the planner mounts at the plan root,
which decodes each result row exactly once.  Scan-offset continuation
state therefore lives in ID space; IDs are stable for the lifetime of
the store, and the executor's graph-``version`` check already rejects
tokens whose triples changed.

Operator trees are compiled from algebra trees by
:mod:`repro.sparql.planner`; this module only defines the operators.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Tuple

from ..obs.metrics import REGISTRY
from ..rdf.terms import Term
from .ast import PathExpr, TriplePatternNode, Var
from .errors import ExpressionError, SparqlError, SparqlEvalError
from .functions import (
    Binding,
    effective_boolean_value,
    evaluate_expression,
    term_order_key,
)
from .paths import eval_path
from .results import term_from_json, term_to_json

# Private on purpose: the physical layer shares the evaluator's join
# strategy metric and ordering helpers so both engines report and rank
# identically.
from .evaluator import (
    _JOIN_HASH,
    _JOIN_PRODUCT,
    _Reversed,
    _TopKEntry,
    _binding_key,
    _compatible,
    _merge,
)

__all__ = [
    "PlanStateError",
    "PhysicalOperator",
    "SingletonOp",
    "ValuesOp",
    "PatternScanOp",
    "FilterOp",
    "ExtendOp",
    "HashJoinOp",
    "LeftJoinOp",
    "MinusOp",
    "UnionOp",
    "AggregationOp",
    "ProjectOp",
    "DistinctOp",
    "ReducedOp",
    "OrderByOp",
    "TopKOp",
    "SliceOp",
    "MaterializeOp",
    "encode_binding",
    "decode_binding",
    "drain",
]

#: Child rows pulled per ``next()`` call by blocking (build) phases.
BUILD_BATCH = 32
#: Scan candidates examined per ``next()`` call by a pattern scan.
SCAN_BATCH = 64

_EXHAUSTED = object()

_MATERIALIZED_ROWS = REGISTRY.counter(
    "repro_dict_materialized_rows_total",
    "Result rows decoded from ID space to terms at the plan root",
)
_DECODED_TERMS = REGISTRY.counter(
    "repro_dict_decode_total",
    "Terms materialized from ID space at engine decode boundaries",
)


class PlanStateError(SparqlError):
    """A saved operator state does not match the plan it is loaded into."""


# ----------------------------------------------------------------------
# State encoding
# ----------------------------------------------------------------------


def _value_to_json(value):
    """One binding value: raw term IDs pass through, terms serialise."""
    return value if isinstance(value, int) else term_to_json(value)


def _value_from_json(blob):
    return blob if isinstance(blob, int) else term_from_json(blob)


def encode_binding(binding: Binding) -> List:
    """JSON-able encoding of one solution mapping (order-preserving).

    In-plan binding values are term IDs (plain ints, already JSON-able);
    term objects are still accepted for forward compatibility.
    """
    return [[name, _value_to_json(value)] for name, value in binding.items()]


def decode_binding(blob: List) -> Binding:
    return {name: _value_from_json(value) for name, value in blob}


def _encode_opt_term(value):
    return None if value is None else _value_to_json(value)


def _decode_opt_term(blob):
    return None if blob is None else _value_from_json(blob)


def _check(conditions, binding: Binding, runtime) -> bool:
    """Whether ``binding`` passes every condition (errors count as false).

    ``binding`` must be in *term* space — this is the expression layer.
    """
    for condition in conditions:
        try:
            if not effective_boolean_value(
                evaluate_expression(condition, binding, context=runtime)
            ):
                return False
        except ExpressionError:
            return False
    return True


def _decode_row(row: Binding, runtime) -> Binding:
    """Materialize one encoded row into term space (expression boundary)."""
    _DECODED_TERMS.inc(len(row))
    decode = runtime.dictionary.decode
    return {name: decode(value) for name, value in row.items()}


def _check_ids(conditions, row: Binding, runtime) -> bool:
    """Condition check over an encoded row; decodes only when needed."""
    if not conditions:
        return True
    return _check(conditions, _decode_row(row, runtime), runtime)


def _encode_value(value, runtime):
    """Intern a computed expression result so it can enter a binding.

    Every value inside a plan must be an ID — mixing terms and ints
    would silently break join/DISTINCT equality.  Non-term results
    (shouldn't happen, but errors must not corrupt the plan) pass
    through untouched.
    """
    if isinstance(value, Term):
        return runtime.dictionary.encode(value)
    return value


# ----------------------------------------------------------------------
# Base operator
# ----------------------------------------------------------------------


class PhysicalOperator:
    """Base class: uniform ``next()/save()/load()`` with work counters.

    ``runtime`` is the shared per-execution context — an
    :class:`repro.sparql.evaluator.Evaluator` instance whose ``graph``
    the scans read, whose ``stats`` every operator counts into (the cost
    model bills pages from the deltas), and which serves as the
    expression-evaluation context so ``EXISTS { ... }`` keeps working
    (EXISTS sub-patterns run through the evaluator and are the one
    non-preemptible island, as in sage).

    ``rows_produced`` / ``wall_s`` / ``calls`` are live observability
    counters; ``EXPLAIN ANALYZE`` on the physical engine reads them
    directly instead of wrapping iterators in probe spans.
    """

    label = "Physical"

    def __init__(self, runtime):
        self.runtime = runtime
        self.done = False
        self.rows_produced = 0
        self.wall_s = 0.0
        self.calls = 0
        self.algebra = None  # back-pointer set by the planner

    # -- protocol -------------------------------------------------------

    def next(self) -> Optional[Binding]:
        """One bounded unit of work; a row, or ``None`` (progress only)."""
        started = perf_counter()
        self.calls += 1
        try:
            row = self._next()
        finally:
            self.wall_s += perf_counter() - started
        if row is not None:
            self.rows_produced += 1
        return row

    def _next(self) -> Optional[Binding]:  # pragma: no cover - abstract
        raise NotImplementedError

    def children(self) -> List["PhysicalOperator"]:
        return []

    def detail(self) -> str:
        return ""

    def walk(self) -> Iterator["PhysicalOperator"]:
        yield self
        for child in self.children():
            yield from child.walk()

    # -- suspension -----------------------------------------------------

    def save(self) -> Dict:
        """Serialise the operator (and its subtree) to JSON-able state."""
        state = {"op": self.label, "done": self.done}
        state.update(self._save())
        return state

    def load(self, state: Dict) -> None:
        """Restore a subtree from :meth:`save` output."""
        if not isinstance(state, dict) or state.get("op") != self.label:
            raise PlanStateError(
                f"saved state is for {state.get('op') if isinstance(state, dict) else state!r}, "
                f"not {self.label}"
            )
        self.done = bool(state.get("done"))
        self._load(state)

    def _save(self) -> Dict:
        return {}

    def _load(self, state: Dict) -> None:
        pass


# ----------------------------------------------------------------------
# Leaves
# ----------------------------------------------------------------------


class SingletonOp(PhysicalOperator):
    """The unit table: one empty solution (guarded by var-free filters)."""

    label = "Singleton"

    def __init__(self, runtime, guards=()):
        super().__init__(runtime)
        self.guards = tuple(guards)
        self._emitted = False

    def _next(self) -> Optional[Binding]:
        self.done = True
        if self._emitted:
            return None
        self._emitted = True
        if not _check(self.guards, {}, self.runtime):
            return None
        return {}

    def _save(self) -> Dict:
        return {"emitted": self._emitted}

    def _load(self, state: Dict) -> None:
        self._emitted = bool(state.get("emitted"))


class ValuesOp(PhysicalOperator):
    """An inline VALUES table."""

    label = "Values"

    def __init__(self, runtime, variables, rows):
        super().__init__(runtime)
        self.variables = list(variables)
        # VALUES data arrives as term objects from the algebra; intern it
        # once so emitted bindings are in ID space like every other row.
        encode = runtime.dictionary.encode
        self.rows = [
            [None if value is None else encode(value) for value in row]
            for row in rows
        ]
        self._offset = 0

    def detail(self) -> str:
        names = " ".join(f"?{var.name}" for var in self.variables)
        return f"{len(self.rows)} rows over {names}"

    def _next(self) -> Optional[Binding]:
        if self._offset >= len(self.rows):
            self.done = True
            return None
        row = self.rows[self._offset]
        self._offset += 1
        if self._offset >= len(self.rows):
            self.done = True
        binding = {
            var.name: value
            for var, value in zip(self.variables, row)
            if value is not None
        }
        self.runtime.stats.intermediate_bindings += 1
        return binding

    def _save(self) -> Dict:
        return {"offset": self._offset}

    def _load(self, state: Dict) -> None:
        self._offset = int(state.get("offset", 0))


# ----------------------------------------------------------------------
# Index-nested-loop pattern scan
# ----------------------------------------------------------------------


class PatternScanOp(PhysicalOperator):
    """One stage of the BGP index-nested-loop join.

    For every binding produced by ``child``, instantiates the triple
    pattern and scans the graph indexes (or evaluates a property path),
    merging consistent matches.  ``post_filters`` are the BGP filters
    the optimizer pushed to this join depth; ``pre_filters`` (first
    stage only) guard the incoming binding before any scan is issued.

    Suspension state is the child's state plus the current outer
    binding and the number of candidates consumed from its scan; resume
    re-issues the scan and skips that many candidates, which is exact
    for an unchanged graph within one process.
    """

    label = "PatternScan"

    def __init__(self, runtime, child, pattern: TriplePatternNode,
                 pre_filters=(), post_filters=()):
        super().__init__(runtime)
        self.child = child
        self.pattern = pattern
        self.pre_filters = tuple(pre_filters)
        self.post_filters = tuple(post_filters)
        self._current: Optional[Binding] = None
        self._matches = None
        self._offset = 0

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def detail(self) -> str:
        text = str(self.pattern)
        extras = []
        if self.pre_filters:
            extras.append(f"+{len(self.pre_filters)} guards")
        if self.post_filters:
            extras.append(f"+{len(self.post_filters)} inline filters")
        return text + (" " + " ".join(extras) if extras else "")

    # -- scanning -------------------------------------------------------

    @staticmethod
    def _instantiate_id(term, binding: Binding, lookup):
        """Pattern position → ID-space scan argument.

        A variable resolves to its bound ID (or ``None`` = wildcard); a
        constant the dictionary has never interned becomes the
        impossible ID ``-1``, which matches nothing but still routes
        through the normal index branch (identical lookup metrics).
        """
        if isinstance(term, Var):
            return binding.get(term.name)
        id = lookup(term)
        return -1 if id is None else id

    @staticmethod
    def _instantiate_term(term, binding: Binding, decode):
        if isinstance(term, Var):
            value = binding.get(term.name)
            return None if value is None else decode(value)
        return term

    def _start_scan(self, binding: Binding) -> None:
        graph = self.runtime.graph
        self._current = binding
        self._offset = 0
        self.runtime.stats.pattern_scans += 1
        pattern = self.pattern
        if isinstance(pattern.predicate, PathExpr):
            # Property paths evaluate in term space (eval_path walks the
            # graph's term API); endpoints are re-encoded in _extend.
            decode = self.runtime.dictionary.decode
            subject = self._instantiate_term(pattern.subject, binding, decode)
            object = self._instantiate_term(pattern.object, binding, decode)
            self._matches = eval_path(graph, subject, pattern.predicate, object)
        else:
            lookup = self.runtime.dictionary.lookup
            s = self._instantiate_id(pattern.subject, binding, lookup)
            p = self._instantiate_id(pattern.predicate, binding, lookup)
            o = self._instantiate_id(pattern.object, binding, lookup)
            self._matches = graph.triples_ids(s, p, o)

    def _extend(self, candidate) -> Optional[Binding]:
        binding = dict(self._current)
        if isinstance(self.pattern.predicate, PathExpr):
            encode = self.runtime.dictionary.encode
            start, end = candidate
            pairs = (
                (self.pattern.subject, encode(start)),
                (self.pattern.object, encode(end)),
            )
        else:
            pairs = tuple(zip(self.pattern, candidate))
        for term, value in pairs:
            if isinstance(term, Var):
                existing = binding.get(term.name)
                if existing is None:
                    binding[term.name] = value
                elif existing != value:
                    return None
        return binding

    def _next(self) -> Optional[Binding]:
        for _ in range(SCAN_BATCH):
            if self._matches is not None:
                candidate = next(self._matches, _EXHAUSTED)
                if candidate is _EXHAUSTED:
                    self._matches = None
                    self._current = None
                    continue
                self._offset += 1
                row = self._extend(candidate)
                if row is None:
                    continue
                self.runtime.stats.intermediate_bindings += 1
                if _check_ids(self.post_filters, row, self.runtime):
                    return row
                continue
            if self.child.done:
                self.done = True
                return None
            outer = self.child.next()
            if outer is None:
                return None
            if self.pre_filters and not _check_ids(
                self.pre_filters, outer, self.runtime
            ):
                continue
            self._start_scan(outer)
        return None

    # -- suspension -----------------------------------------------------

    def _save(self) -> Dict:
        return {
            "child": self.child.save(),
            "current": (
                encode_binding(self._current)
                if self._current is not None
                else None
            ),
            "offset": self._offset,
        }

    def _load(self, state: Dict) -> None:
        self.child.load(state["child"])
        current = state.get("current")
        self._current = None
        self._matches = None
        self._offset = 0
        if current is not None:
            binding = decode_binding(current)
            offset = int(state.get("offset", 0))
            self._start_scan(binding)
            # _start_scan re-bills the scan; resume must not double-count.
            self.runtime.stats.pattern_scans -= 1
            for _ in range(offset):
                if next(self._matches, _EXHAUSTED) is _EXHAUSTED:
                    break
            self._offset = offset


# ----------------------------------------------------------------------
# Row-at-a-time operators
# ----------------------------------------------------------------------


class _UnaryOp(PhysicalOperator):
    """Shared plumbing for operators with one child and no extra state."""

    def __init__(self, runtime, child):
        super().__init__(runtime)
        self.child = child

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def _pull(self) -> Optional[Binding]:
        """One child row, marking ``done`` when the child is exhausted."""
        if self.child.done:
            self.done = True
            return None
        row = self.child.next()
        if row is None and self.child.done:
            self.done = True
        return row

    def _save(self) -> Dict:
        return {"child": self.child.save()}

    def _load(self, state: Dict) -> None:
        self.child.load(state["child"])


class FilterOp(_UnaryOp):
    """A standalone FILTER (counts passing rows, like the evaluator)."""

    label = "Filter"

    def __init__(self, runtime, child, condition):
        super().__init__(runtime, child)
        self.condition = condition

    def detail(self) -> str:
        return "condition"

    def _next(self) -> Optional[Binding]:
        row = self._pull()
        if row is None:
            return None
        if _check_ids((self.condition,), row, self.runtime):
            self.runtime.stats.intermediate_bindings += 1
            return row
        return None


class ExtendOp(_UnaryOp):
    """BIND: extends each row with a computed variable."""

    label = "Extend"

    def __init__(self, runtime, child, var, expression):
        super().__init__(runtime, child)
        self.var = var
        self.expression = expression

    def detail(self) -> str:
        return f"BIND ?{self.var.name}"

    def _next(self) -> Optional[Binding]:
        row = self._pull()
        if row is None:
            return None
        if self.var.name in row:
            raise SparqlEvalError(f"BIND would rebind ?{self.var.name}")
        out = dict(row)
        try:
            value = evaluate_expression(
                self.expression, _decode_row(row, self.runtime),
                context=self.runtime,
            )
        except ExpressionError:
            pass  # BIND errors leave the variable unbound
        else:
            out[self.var.name] = _encode_value(value, self.runtime)
        self.runtime.stats.intermediate_bindings += 1
        return out


class ProjectOp(_UnaryOp):
    """SELECT projection (with expression extensions)."""

    label = "Project"

    def __init__(self, runtime, child, variables, extensions=()):
        super().__init__(runtime, child)
        self.variables = None if variables is None else list(variables)
        self.extensions = {
            projection.var.name: projection.expression
            for projection in extensions
        }

    def detail(self) -> str:
        if self.variables is None:
            return "*"
        return " ".join(f"?{var.name}" for var in self.variables)

    def _next(self) -> Optional[Binding]:
        row = self._pull()
        if row is None:
            return None
        if self.variables is None:
            return row
        out: Binding = {}
        decoded = None  # lazily materialized, only if an extension runs
        for var in self.variables:
            expression = self.extensions.get(var.name)
            if expression is not None:
                if decoded is None:
                    decoded = _decode_row(row, self.runtime)
                try:
                    value = evaluate_expression(
                        expression, decoded, context=self.runtime
                    )
                except ExpressionError:
                    pass
                else:
                    out[var.name] = _encode_value(value, self.runtime)
            elif var.name in row:
                out[var.name] = row[var.name]
        return out


class _KeyOrder:
    """First-seen variable order for stable dedup keys (see evaluator)."""

    __slots__ = ("order", "known")

    def __init__(self) -> None:
        self.order: List[str] = []
        self.known: set = set()

    def key(self, binding: Binding) -> Tuple:
        for name in binding:
            if name not in self.known:
                self.known.add(name)
                self.order.append(name)
        return tuple(
            (name, binding[name]) for name in self.order if name in binding
        )


def _encode_key(key: Tuple) -> List:
    return [[name, _value_to_json(value)] for name, value in key]


def _decode_key(blob: List) -> Tuple:
    return tuple((name, _value_from_json(value)) for name, value in blob)


class DistinctOp(_UnaryOp):
    """Streaming DISTINCT over a serialisable seen-set."""

    label = "Distinct"

    def __init__(self, runtime, child):
        super().__init__(runtime, child)
        self._order = _KeyOrder()
        self._seen: set = set()

    def _next(self) -> Optional[Binding]:
        row = self._pull()
        if row is None:
            return None
        key = self._order.key(row)
        if key in self._seen:
            return None
        self._seen.add(key)
        return row

    def _save(self) -> Dict:
        return {
            "child": self.child.save(),
            "order": list(self._order.order),
            "seen": [_encode_key(key) for key in self._seen],
        }

    def _load(self, state: Dict) -> None:
        self.child.load(state["child"])
        self._order = _KeyOrder()
        self._order.order = list(state.get("order", ()))
        self._order.known = set(self._order.order)
        self._seen = {_decode_key(blob) for blob in state.get("seen", ())}


class ReducedOp(_UnaryOp):
    """REDUCED: drops adjacent duplicates only."""

    label = "Reduced"

    def __init__(self, runtime, child):
        super().__init__(runtime, child)
        self._order = _KeyOrder()
        self._previous: Optional[Tuple] = None

    def _next(self) -> Optional[Binding]:
        row = self._pull()
        if row is None:
            return None
        key = self._order.key(row)
        if key == self._previous:
            return None
        self._previous = key
        return row

    def _save(self) -> Dict:
        return {
            "child": self.child.save(),
            "order": list(self._order.order),
            "previous": (
                _encode_key(self._previous)
                if self._previous is not None
                else None
            ),
        }

    def _load(self, state: Dict) -> None:
        self.child.load(state["child"])
        self._order = _KeyOrder()
        self._order.order = list(state.get("order", ()))
        self._order.known = set(self._order.order)
        previous = state.get("previous")
        self._previous = _decode_key(previous) if previous is not None else None


class SliceOp(_UnaryOp):
    """OFFSET/LIMIT; stops pulling its child once the limit is reached."""

    label = "Slice"

    def __init__(self, runtime, child, offset=0, limit=None):
        super().__init__(runtime, child)
        self.offset = offset
        self.limit = limit
        self._skipped = 0
        self._emitted = 0

    def detail(self) -> str:
        parts = []
        if self.offset:
            parts.append(f"offset {self.offset}")
        if self.limit is not None:
            parts.append(f"limit {self.limit}")
        return " ".join(parts)

    def _next(self) -> Optional[Binding]:
        if self.limit is not None and self._emitted >= self.limit:
            self.done = True
            return None
        row = self._pull()
        if row is None:
            return None
        if self._skipped < self.offset:
            self._skipped += 1
            return None
        self._emitted += 1
        if self.limit is not None and self._emitted >= self.limit:
            self.done = True
        return row

    def _save(self) -> Dict:
        return {
            "child": self.child.save(),
            "skipped": self._skipped,
            "emitted": self._emitted,
        }

    def _load(self, state: Dict) -> None:
        self.child.load(state["child"])
        self._skipped = int(state.get("skipped", 0))
        self._emitted = int(state.get("emitted", 0))


class UnionOp(PhysicalOperator):
    """Branches evaluated in order, concatenated."""

    label = "Union"

    def __init__(self, runtime, branches):
        super().__init__(runtime)
        self.branches = list(branches)
        self._index = 0

    def children(self) -> List[PhysicalOperator]:
        return list(self.branches)

    def detail(self) -> str:
        return f"{len(self.branches)} branches"

    def _next(self) -> Optional[Binding]:
        while self._index < len(self.branches):
            branch = self.branches[self._index]
            if branch.done:
                self._index += 1
                continue
            row = branch.next()
            if row is not None:
                self.runtime.stats.intermediate_bindings += 1
                return row
            return None
        self.done = True
        return None

    def _save(self) -> Dict:
        return {
            "index": self._index,
            "branches": [branch.save() for branch in self.branches],
        }

    def _load(self, state: Dict) -> None:
        self._index = int(state.get("index", 0))
        saved = state.get("branches", ())
        if len(saved) != len(self.branches):
            raise PlanStateError("union branch count mismatch")
        for branch, blob in zip(self.branches, saved):
            branch.load(blob)


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------


class HashJoinOp(PhysicalOperator):
    """Hash join: build the right side, stream the left (probe) side.

    Phases: ``peek`` pulls the first left row (so an empty left never
    evaluates the right subtree, matching the evaluator's laziness),
    ``build`` drains the right side into buckets in bounded chunks, and
    ``probe`` streams the left.  With no key variables the single ``()``
    bucket holds every right row and the join degrades to a product
    guarded by the compatibility check.  Because the probe side streams,
    a ``Slice`` ancestor bounds how much of the left subtree is ever
    scanned.
    """

    label = "HashJoin"

    def __init__(self, runtime, left, right, keys: Tuple[str, ...]):
        super().__init__(runtime)
        self.left = left
        self.right = right
        self.keys = tuple(keys)
        self._phase = "peek"
        self._pending: Optional[Binding] = None  # peeked first left row
        self._table: Dict[Tuple, List[Binding]] = {}
        self._build_rows = 0
        self._probe: Optional[Binding] = None
        self._bucket: List[Binding] = []
        self._bucket_index = 0

    def children(self) -> List[PhysicalOperator]:
        return [self.left, self.right]

    def detail(self) -> str:
        if self.keys:
            return "on " + " ".join(f"?{name}" for name in self.keys)
        return "product (no certain shared variables)"

    def _next(self) -> Optional[Binding]:
        if self._phase == "peek":
            if self.left.done:
                self.done = True
                return None
            row = self.left.next()
            if row is None:
                if self.left.done:
                    self.done = True
                return None
            self._pending = row
            self._phase = "build"
            return None
        if self._phase == "build":
            for _ in range(BUILD_BATCH):
                if self.right.done:
                    self._phase = "probe"
                    (_JOIN_HASH if self.keys else _JOIN_PRODUCT).inc()
                    if not self._build_rows:
                        self.done = True
                    return None
                row = self.right.next()
                if row is None:
                    return None
                self._table.setdefault(
                    _binding_key(row, self.keys), []
                ).append(row)
                self._build_rows += 1
            return None
        # probe
        for _ in range(BUILD_BATCH):
            if self._probe is not None:
                if self._bucket_index < len(self._bucket):
                    right = self._bucket[self._bucket_index]
                    self._bucket_index += 1
                    if _compatible(self._probe, right):
                        self.runtime.stats.intermediate_bindings += 1
                        return _merge(self._probe, right)
                    continue
                self._probe = None
            row = self._pending
            self._pending = None
            if row is None:
                if self.left.done:
                    self.done = True
                    return None
                row = self.left.next()
                if row is None:
                    return None
            self._probe = row
            self._bucket = self._table.get(_binding_key(row, self.keys), [])
            self._bucket_index = 0
        return None

    def _save(self) -> Dict:
        return {
            "phase": self._phase,
            "left": self.left.save(),
            "right": self.right.save(),
            "pending": (
                encode_binding(self._pending)
                if self._pending is not None
                else None
            ),
            "table": [
                encode_binding(row)
                for bucket in self._table.values()
                for row in bucket
            ],
            "probe": (
                encode_binding(self._probe)
                if self._probe is not None
                else None
            ),
            "bucket_index": self._bucket_index,
        }

    def _load(self, state: Dict) -> None:
        self.left.load(state["left"])
        self.right.load(state["right"])
        self._phase = state.get("phase", "peek")
        pending = state.get("pending")
        self._pending = decode_binding(pending) if pending is not None else None
        self._table = {}
        self._build_rows = 0
        for blob in state.get("table", ()):
            row = decode_binding(blob)
            self._table.setdefault(_binding_key(row, self.keys), []).append(row)
            self._build_rows += 1
        probe = state.get("probe")
        self._probe = decode_binding(probe) if probe is not None else None
        self._bucket = (
            self._table.get(_binding_key(self._probe, self.keys), [])
            if self._probe is not None
            else []
        )
        self._bucket_index = int(state.get("bucket_index", 0))


class LeftJoinOp(PhysicalOperator):
    """OPTIONAL: hash left-outer join with an optional join condition."""

    label = "LeftJoin"

    def __init__(self, runtime, left, right, keys: Tuple[str, ...], condition=None):
        super().__init__(runtime)
        self.left = left
        self.right = right
        self.keys = tuple(keys)
        self.condition = condition
        self._phase = "peek"
        self._pending: Optional[Binding] = None
        self._table: Dict[Tuple, List[Binding]] = {}
        self._all_rows: List[Binding] = []
        self._probe: Optional[Binding] = None
        self._bucket: List[Binding] = []
        self._bucket_index = 0
        self._matched = False

    def children(self) -> List[PhysicalOperator]:
        return [self.left, self.right]

    def detail(self) -> str:
        base = (
            "on " + " ".join(f"?{name}" for name in self.keys)
            if self.keys
            else "unkeyed"
        )
        return base + (" with condition" if self.condition is not None else "")

    def _bucket_for(self, row: Binding) -> List[Binding]:
        if self.keys:
            return self._table.get(_binding_key(row, self.keys), [])
        return self._all_rows

    def _next(self) -> Optional[Binding]:
        if self._phase == "peek":
            if self.left.done:
                self.done = True
                return None
            row = self.left.next()
            if row is None:
                if self.left.done:
                    self.done = True
                return None
            self._pending = row
            self._phase = "build"
            return None
        if self._phase == "build":
            for _ in range(BUILD_BATCH):
                if self.right.done:
                    self._phase = "probe"
                    return None
                row = self.right.next()
                if row is None:
                    return None
                self._all_rows.append(row)
                if self.keys:
                    self._table.setdefault(
                        _binding_key(row, self.keys), []
                    ).append(row)
            return None
        # probe
        for _ in range(BUILD_BATCH):
            if self._probe is not None:
                if self._bucket_index < len(self._bucket):
                    right = self._bucket[self._bucket_index]
                    self._bucket_index += 1
                    if not _compatible(self._probe, right):
                        continue
                    merged = _merge(self._probe, right)
                    if self.condition is not None and not _check_ids(
                        (self.condition,), merged, self.runtime
                    ):
                        continue
                    self._matched = True
                    self.runtime.stats.intermediate_bindings += 1
                    return merged
                row = self._probe
                self._probe = None
                if not self._matched:
                    self.runtime.stats.intermediate_bindings += 1
                    return dict(row)
                continue
            row = self._pending
            self._pending = None
            if row is None:
                if self.left.done:
                    self.done = True
                    return None
                row = self.left.next()
                if row is None:
                    return None
            self._probe = row
            self._bucket = self._bucket_for(row)
            self._bucket_index = 0
            self._matched = False
        return None

    def _save(self) -> Dict:
        return {
            "phase": self._phase,
            "left": self.left.save(),
            "right": self.right.save(),
            "pending": (
                encode_binding(self._pending)
                if self._pending is not None
                else None
            ),
            "rows": [encode_binding(row) for row in self._all_rows],
            "probe": (
                encode_binding(self._probe)
                if self._probe is not None
                else None
            ),
            "bucket_index": self._bucket_index,
            "matched": self._matched,
        }

    def _load(self, state: Dict) -> None:
        self.left.load(state["left"])
        self.right.load(state["right"])
        self._phase = state.get("phase", "peek")
        pending = state.get("pending")
        self._pending = decode_binding(pending) if pending is not None else None
        self._all_rows = [decode_binding(blob) for blob in state.get("rows", ())]
        self._table = {}
        if self.keys:
            for row in self._all_rows:
                self._table.setdefault(
                    _binding_key(row, self.keys), []
                ).append(row)
        probe = state.get("probe")
        self._probe = decode_binding(probe) if probe is not None else None
        self._bucket = self._bucket_for(self._probe) if self._probe is not None else []
        self._bucket_index = int(state.get("bucket_index", 0))
        self._matched = bool(state.get("matched"))


class MinusOp(PhysicalOperator):
    """MINUS: materialise the right side, stream and filter the left."""

    label = "Minus"

    def __init__(self, runtime, left, right):
        super().__init__(runtime)
        self.left = left
        self.right = right
        self._phase = "build"
        self._rows: List[Binding] = []

    def children(self) -> List[PhysicalOperator]:
        return [self.left, self.right]

    def _next(self) -> Optional[Binding]:
        if self._phase == "build":
            for _ in range(BUILD_BATCH):
                if self.right.done:
                    self._phase = "probe"
                    return None
                row = self.right.next()
                if row is None:
                    return None
                self._rows.append(row)
            return None
        if self.left.done:
            self.done = True
            return None
        left = self.left.next()
        if left is None:
            if self.left.done:
                self.done = True
            return None
        for right in self._rows:
            shared = left.keys() & right.keys()
            if shared and all(left[name] == right[name] for name in shared):
                return None
        self.runtime.stats.intermediate_bindings += 1
        return left

    def _save(self) -> Dict:
        return {
            "phase": self._phase,
            "left": self.left.save(),
            "right": self.right.save(),
            "rows": [encode_binding(row) for row in self._rows],
        }

    def _load(self, state: Dict) -> None:
        self.left.load(state["left"])
        self.right.load(state["right"])
        self._phase = state.get("phase", "build")
        self._rows = [decode_binding(blob) for blob in state.get("rows", ())]


# ----------------------------------------------------------------------
# Grouping / aggregation
# ----------------------------------------------------------------------


class AggregationOp(PhysicalOperator):
    """GROUP BY + aggregate projection (fused, like the algebra node).

    Builds groups incrementally (bounded chunks of input per call), then
    emits one group's output row per call.  Suspension serialises the
    groups — keys, key bindings, and member rows — verbatim, so the
    aggregates computed after resume see exactly the members collected
    before suspension.
    """

    label = "Aggregation"

    def __init__(self, runtime, child, keys, projections, having):
        super().__init__(runtime, )
        self.child = child
        self.keys = list(keys)
        self.projections = list(projections)
        self.having = list(having)
        self._key_specs = self._build_key_specs()
        self._phase = "build"
        self._group_keys: List[Tuple] = []
        self._groups: Dict[Tuple, List[Binding]] = {}
        self._key_bindings: Dict[Tuple, Binding] = {}
        self._emit_index = 0

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def detail(self) -> str:
        names = []
        for key in self.keys:
            var = getattr(key, "var", None)
            names.append(f"?{var.name}" if var is not None else "<expr>")
        return f"group by {' '.join(names)}" if names else "implicit group"

    def _build_key_specs(self):
        from .ast import Projection, VarExpr

        specs = []
        for key in self.keys:
            expression = key.expression if isinstance(key, Projection) else key
            var_name = (
                expression.var.name if isinstance(expression, VarExpr) else None
            )
            if isinstance(key, (Projection, VarExpr)):
                bind_name = key.var.name
            else:
                bind_name = None
            specs.append((expression, var_name, bind_name))
        return specs

    def _absorb(self, member: Binding) -> None:
        key_values: List[Optional[int]] = []
        key_binding: Binding = {}
        decoded = None  # member in term space, only if an expression key runs
        for expression, var_name, bind_name in self._key_specs:
            if var_name is not None:
                value = member.get(var_name)
            else:
                if decoded is None:
                    decoded = _decode_row(member, self.runtime)
                try:
                    value = evaluate_expression(
                        expression, decoded, context=self.runtime
                    )
                except ExpressionError:
                    value = None
                value = _encode_value(value, self.runtime)
            key_values.append(value)
            if bind_name is not None and value is not None:
                key_binding[bind_name] = value
        group_key = tuple(key_values)
        if group_key not in self._groups:
            self._group_keys.append(group_key)
            self._groups[group_key] = []
            self._key_bindings[group_key] = key_binding
        self._groups[group_key].append(member)

    def _next(self) -> Optional[Binding]:
        if self._phase == "build":
            for _ in range(BUILD_BATCH):
                if self.child.done:
                    if not self.keys and () not in self._groups:
                        # Implicit single group: empty input still yields
                        # one group (COUNT(*) = 0).
                        self._group_keys.append(())
                        self._groups[()] = []
                        self._key_bindings[()] = {}
                    self._phase = "emit"
                    return None
                member = self.child.next()
                if member is None:
                    return None
                if self.keys:
                    self._absorb(member)
                else:
                    if () not in self._groups:
                        self._group_keys.append(())
                        self._groups[()] = []
                        self._key_bindings[()] = {}
                    self._groups[()].append(member)
            return None
        # emit
        while self._emit_index < len(self._group_keys):
            group_key = self._group_keys[self._emit_index]
            self._emit_index += 1
            members = self._groups[group_key]
            key_binding = self._key_bindings[group_key]
            # HAVING and the aggregate expressions run in term space:
            # decode the group once, emit back in ID space.
            runtime = self.runtime
            key_terms = _decode_row(key_binding, runtime)
            member_terms = [_decode_row(member, runtime) for member in members]
            runtime.stats.groups += 1
            skip = False
            for condition in self.having:
                try:
                    if not effective_boolean_value(
                        evaluate_expression(
                            condition, key_terms, member_terms, context=runtime
                        )
                    ):
                        skip = True
                        break
                except ExpressionError:
                    skip = True
                    break
            if skip:
                return None
            out: Binding = {}
            for projection in self.projections:
                if projection.expression is None:
                    value = key_binding.get(projection.var.name)
                    if value is not None:
                        out[projection.var.name] = value
                    continue
                try:
                    value = evaluate_expression(
                        projection.expression,
                        key_terms,
                        member_terms,
                        context=runtime,
                    )
                except ExpressionError:
                    pass
                else:
                    out[projection.var.name] = _encode_value(value, runtime)
            runtime.stats.intermediate_bindings += 1
            return out
        self.done = True
        return None

    def _save(self) -> Dict:
        return {
            "phase": self._phase,
            "child": self.child.save(),
            "groups": [
                {
                    "key": [_encode_opt_term(term) for term in group_key],
                    "binding": encode_binding(self._key_bindings[group_key]),
                    "members": [
                        encode_binding(member)
                        for member in self._groups[group_key]
                    ],
                }
                for group_key in self._group_keys
            ],
            "emit_index": self._emit_index,
        }

    def _load(self, state: Dict) -> None:
        self.child.load(state["child"])
        self._phase = state.get("phase", "build")
        self._group_keys = []
        self._groups = {}
        self._key_bindings = {}
        for blob in state.get("groups", ()):
            group_key = tuple(_decode_opt_term(term) for term in blob["key"])
            self._group_keys.append(group_key)
            self._key_bindings[group_key] = decode_binding(blob["binding"])
            self._groups[group_key] = [
                decode_binding(member) for member in blob["members"]
            ]
        self._emit_index = int(state.get("emit_index", 0))


# ----------------------------------------------------------------------
# Sorting
# ----------------------------------------------------------------------


def _order_key(conditions, binding: Binding, runtime) -> List:
    """The ORDER BY comparison key of one solution (evaluator parity).

    ``binding`` is an encoded row; sort keys need lexical values, so
    this is one of the expression boundaries that decodes.
    """
    keys = []
    decoded = _decode_row(binding, runtime)
    for condition in conditions:
        try:
            value = evaluate_expression(
                condition.expression, decoded, context=runtime
            )
        except ExpressionError:
            value = None
        key = term_order_key(value)
        if condition.descending:
            keys.append(_Reversed(key))
        else:
            keys.append(key)
    return keys


class OrderByOp(_UnaryOp):
    """Full sort: drains its child in bounded chunks, then emits sorted."""

    label = "OrderBy"

    def __init__(self, runtime, child, conditions):
        super().__init__(runtime, child)
        self.conditions = list(conditions)
        self._phase = "build"
        self._buffer: List[Binding] = []
        self._emit_index = 0

    def detail(self) -> str:
        return f"{len(self.conditions)} keys"

    def _next(self) -> Optional[Binding]:
        if self._phase == "build":
            for _ in range(BUILD_BATCH):
                if self.child.done:
                    self._buffer.sort(
                        key=lambda binding: _order_key(
                            self.conditions, binding, self.runtime
                        )
                    )
                    self._phase = "emit"
                    return None
                row = self.child.next()
                if row is None:
                    return None
                self._buffer.append(row)
            return None
        if self._emit_index >= len(self._buffer):
            self.done = True
            return None
        row = self._buffer[self._emit_index]
        self._emit_index += 1
        if self._emit_index >= len(self._buffer):
            self.done = True
        return row

    def _save(self) -> Dict:
        return {
            "phase": self._phase,
            "child": self.child.save(),
            "buffer": [encode_binding(row) for row in self._buffer],
            "emit_index": self._emit_index,
        }

    def _load(self, state: Dict) -> None:
        self.child.load(state["child"])
        self._phase = state.get("phase", "build")
        # In the emit phase the buffer was serialised post-sort, so no
        # re-sort is needed (and none would be safe: keys are recomputed
        # lazily only in the build phase).
        self._buffer = [decode_binding(blob) for blob in state.get("buffer", ())]
        self._emit_index = int(state.get("emit_index", 0))


class TopKOp(_UnaryOp):
    """Bounded heap for fused ORDER BY ... LIMIT (evaluator parity)."""

    label = "TopK"

    def __init__(self, runtime, child, conditions, limit, offset=0):
        super().__init__(runtime, child)
        self.conditions = list(conditions)
        self.limit = limit
        self.offset = offset
        self._phase = "build"
        self._heap: List[_TopKEntry] = []
        self._serial = 0
        self._ordered: List[Binding] = []
        self._emit_index = 0

    def detail(self) -> str:
        text = f"{len(self.conditions)} keys, limit {self.limit}"
        if self.offset:
            text += f", offset {self.offset}"
        return text

    def _finalize(self) -> None:
        ordered = sorted(self._heap)
        ordered.reverse()
        self._ordered = [entry.binding for entry in ordered[self.offset:]]
        self._heap = []
        self._phase = "emit"

    def _next(self) -> Optional[Binding]:
        bound = self.limit + self.offset
        if bound <= 0:
            self.done = True
            return None
        if self._phase == "build":
            from .evaluator import _order_lt

            for _ in range(BUILD_BATCH):
                if self.child.done:
                    self._finalize()
                    return None
                row = self.child.next()
                if row is None:
                    return None
                key = _order_key(self.conditions, row, self.runtime)
                serial = self._serial
                self._serial += 1
                if len(self._heap) < bound:
                    heapq.heappush(self._heap, _TopKEntry(key, serial, row))
                elif _order_lt(
                    key, serial, self._heap[0].key, self._heap[0].serial
                ):
                    heapq.heapreplace(self._heap, _TopKEntry(key, serial, row))
            return None
        if self._emit_index >= len(self._ordered):
            self.done = True
            return None
        row = self._ordered[self._emit_index]
        self._emit_index += 1
        if self._emit_index >= len(self._ordered):
            self.done = True
        return row

    def _save(self) -> Dict:
        return {
            "phase": self._phase,
            "child": self.child.save(),
            "serial": self._serial,
            "heap": [
                [entry.serial, encode_binding(entry.binding)]
                for entry in self._heap
            ],
            "ordered": [encode_binding(row) for row in self._ordered],
            "emit_index": self._emit_index,
        }

    def _load(self, state: Dict) -> None:
        self.child.load(state["child"])
        self._phase = state.get("phase", "build")
        self._serial = int(state.get("serial", 0))
        self._heap = []
        for serial, blob in state.get("heap", ()):
            row = decode_binding(blob)
            key = _order_key(self.conditions, row, self.runtime)
            self._heap.append(_TopKEntry(key, int(serial), row))
        heapq.heapify(self._heap)
        self._ordered = [
            decode_binding(blob) for blob in state.get("ordered", ())
        ]
        self._emit_index = int(state.get("emit_index", 0))


# ----------------------------------------------------------------------
# Late materialization
# ----------------------------------------------------------------------


class MaterializeOp(_UnaryOp):
    """The late-materialization boundary at the plan root.

    Every operator below it works on encoded rows (term-ID ints); this
    operator decodes each result row to term objects exactly once, so
    everything downstream — SPARQL-JSON serialisation, chart labels,
    clients of ``plan.root.next()`` — sees ordinary ``Term`` bindings.
    It adds no ``EvalStats`` work (materialization is representation,
    not query work, and the recursive evaluator has no analogue).
    """

    label = "Materialize"

    def _next(self) -> Optional[Binding]:
        row = self._pull()
        if row is None:
            return None
        decode = self.runtime.dictionary.decode
        _MATERIALIZED_ROWS.inc()
        return {
            name: decode(value) if isinstance(value, int) else value
            for name, value in row.items()
        }


# ----------------------------------------------------------------------
# Driving
# ----------------------------------------------------------------------


def drain(op: PhysicalOperator) -> List[Binding]:
    """Run an operator tree to completion and return every row."""
    rows: List[Binding] = []
    while not op.done:
        row = op.next()
        if row is not None:
            rows.append(row)
    return rows
