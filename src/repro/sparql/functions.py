"""SPARQL expression evaluation: operators, builtins, and aggregates.

Implements the SPARQL 1.1 operator semantics needed by the engine:
effective boolean value, numeric type promotion, RDF term equality and
ordering, and the common string/term builtins.  Expression errors raise
:class:`repro.sparql.errors.ExpressionError` which callers treat per the
spec (FILTER -> false, aggregates -> skip).
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Sequence, Union
from urllib.parse import quote

from ..rdf.terms import (
    XSD_BOOLEAN,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
    BNode,
    Literal,
    Term,
    URI,
)
from .ast import (
    AggregateExpr,
    ExistsExpr,
    BinaryExpr,
    Expression,
    FunctionCall,
    InExpr,
    TermExpr,
    UnaryExpr,
    VarExpr,
)
from .errors import ExpressionError

__all__ = [
    "Binding",
    "evaluate_expression",
    "effective_boolean_value",
    "term_order_key",
    "evaluate_aggregate",
]

#: A solution mapping: variable name -> bound term.
Binding = Dict[str, Term]

_TRUE = Literal("true", datatype=XSD_BOOLEAN)
_FALSE = Literal("false", datatype=XSD_BOOLEAN)


def _bool_literal(value: bool) -> Literal:
    return _TRUE if value else _FALSE


def _numeric_value(term: Term) -> Union[int, float]:
    if isinstance(term, Literal) and term.is_numeric:
        try:
            if term.datatype == XSD_INTEGER or (
                term.datatype and term.datatype.endswith(
                    ("integer", "long", "int", "short", "byte")
                )
            ):
                return int(term.lexical)
            return float(term.lexical)
        except ValueError as exc:
            raise ExpressionError(f"bad numeric lexical: {term.lexical!r}") from exc
    raise ExpressionError(f"not a numeric literal: {term!r}")


def _numeric_literal(value: Union[int, float]) -> Literal:
    if isinstance(value, bool):
        return _bool_literal(value)
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD_INTEGER)
    if value == int(value) and abs(value) < 1e15:
        # Preserve decimal look for whole floats.
        return Literal(repr(value), datatype=XSD_DOUBLE)
    return Literal(repr(value), datatype=XSD_DOUBLE)


def _string_value(term: Term) -> str:
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, URI):
        return term.value
    raise ExpressionError(f"not a string-valued term: {term!r}")


def _plain_string(term: Term) -> Literal:
    if not isinstance(term, Literal) or (
        term.datatype not in (None, XSD_STRING) and term.language is None
    ):
        if isinstance(term, Literal) and term.language is not None:
            return term
        raise ExpressionError(f"expected a string literal: {term!r}")
    return term


def effective_boolean_value(term: Term) -> bool:
    """SPARQL effective boolean value (EBV) of a term."""
    if isinstance(term, Literal):
        if term.datatype == XSD_BOOLEAN:
            return term.lexical in ("true", "1")
        if term.is_numeric:
            try:
                return _numeric_value(term) != 0
            except ExpressionError:
                return False
        if term.datatype in (None, XSD_STRING) or term.language is not None:
            return len(term.lexical) > 0
    raise ExpressionError(f"no effective boolean value for {term!r}")


def _terms_equal(left: Term, right: Term) -> bool:
    """SPARQL ``=``: value equality for numerics, term equality otherwise."""
    if (
        isinstance(left, Literal)
        and isinstance(right, Literal)
        and left.is_numeric
        and right.is_numeric
    ):
        return _numeric_value(left) == _numeric_value(right)
    if left == right:
        return True
    if isinstance(left, Literal) and isinstance(right, Literal):
        # Unknown datatypes with identical form already matched above;
        # distinct unknown datatypes are an error per spec.
        known = (None, XSD_STRING, XSD_BOOLEAN)
        left_known = left.datatype in known or left.language or left.is_numeric
        right_known = right.datatype in known or right.language or right.is_numeric
        if not (left_known and right_known):
            raise ExpressionError("incomparable literals")
    return False


def _compare(left: Term, right: Term) -> int:
    """Three-way comparison for ``< > <= >=``; errors when incomparable."""
    if isinstance(left, Literal) and isinstance(right, Literal):
        if left.is_numeric and right.is_numeric:
            lv, rv = _numeric_value(left), _numeric_value(right)
            return (lv > rv) - (lv < rv)
        left_str = left.datatype in (None, XSD_STRING) or left.language
        right_str = right.datatype in (None, XSD_STRING) or right.language
        if left_str and right_str:
            return (left.lexical > right.lexical) - (left.lexical < right.lexical)
        if left.datatype == XSD_BOOLEAN and right.datatype == XSD_BOOLEAN:
            lv2, rv2 = left.lexical == "true", right.lexical == "true"
            return (lv2 > rv2) - (lv2 < rv2)
        if left.datatype == right.datatype:
            return (left.lexical > right.lexical) - (left.lexical < right.lexical)
    raise ExpressionError(f"incomparable terms: {left!r} vs {right!r}")


def term_order_key(term: Optional[Term]):
    """Total order key for ORDER BY: unbound < bnode < URI < literal,
    numerics compared by value within literals."""
    if term is None:
        return (0, "", 0.0, "")
    if isinstance(term, BNode):
        return (1, term.id, 0.0, "")
    if isinstance(term, URI):
        return (2, term.value, 0.0, "")
    assert isinstance(term, Literal)
    if term.is_numeric:
        try:
            return (3, "", float(_numeric_value(term)), term.lexical)
        except ExpressionError:
            pass
    return (4, term.lexical, 0.0, term.datatype or term.language or "")


# ----------------------------------------------------------------------
# Builtins
# ----------------------------------------------------------------------


def _fn_str(args: Sequence[Term]) -> Term:
    term = args[0]
    if isinstance(term, URI):
        return Literal(term.value)
    if isinstance(term, Literal):
        return Literal(term.lexical)
    raise ExpressionError("STR of blank node")


def _fn_lang(args: Sequence[Term]) -> Term:
    term = args[0]
    if isinstance(term, Literal):
        return Literal(term.language or "")
    raise ExpressionError("LANG of non-literal")


def _fn_langmatches(args: Sequence[Term]) -> Term:
    tag = _string_value(args[0]).lower()
    pattern = _string_value(args[1]).lower()
    if pattern == "*":
        return _bool_literal(bool(tag))
    return _bool_literal(tag == pattern or tag.startswith(pattern + "-"))


def _fn_datatype(args: Sequence[Term]) -> Term:
    term = args[0]
    if isinstance(term, Literal):
        if term.language:
            return URI("http://www.w3.org/1999/02/22-rdf-syntax-ns#langString")
        return URI(term.datatype or XSD_STRING)
    raise ExpressionError("DATATYPE of non-literal")


def _fn_iri(args: Sequence[Term]) -> Term:
    term = args[0]
    if isinstance(term, URI):
        return term
    if isinstance(term, Literal):
        return URI(term.lexical)
    raise ExpressionError("IRI of blank node")


def _fn_bnode(args: Sequence[Term]) -> Term:
    if args:
        return BNode(_string_value(args[0]))
    return BNode()


def _fn_abs(args: Sequence[Term]) -> Term:
    return _numeric_literal(abs(_numeric_value(args[0])))


def _fn_ceil(args: Sequence[Term]) -> Term:
    import math

    return _numeric_literal(int(math.ceil(_numeric_value(args[0]))))


def _fn_floor(args: Sequence[Term]) -> Term:
    import math

    return _numeric_literal(int(math.floor(_numeric_value(args[0]))))


def _fn_round(args: Sequence[Term]) -> Term:
    value = _numeric_value(args[0])
    import math

    return _numeric_literal(int(math.floor(value + 0.5)))


def _fn_concat(args: Sequence[Term]) -> Term:
    return Literal("".join(_string_value(arg) for arg in args))


def _fn_substr(args: Sequence[Term]) -> Term:
    source = _plain_string(args[0])
    start = int(_numeric_value(args[1]))
    if len(args) == 3:
        length = int(_numeric_value(args[2]))
        text = source.lexical[start - 1 : start - 1 + length]
    else:
        text = source.lexical[start - 1 :]
    if source.language:
        return Literal(text, language=source.language)
    return Literal(text)


def _fn_strlen(args: Sequence[Term]) -> Term:
    return _numeric_literal(len(_string_value(args[0])))


def _fn_replace(args: Sequence[Term]) -> Term:
    source = _plain_string(args[0])
    pattern = _string_value(args[1])
    replacement = _string_value(args[2])
    flags = _regex_flags(_string_value(args[3])) if len(args) == 4 else 0
    try:
        text = re.sub(pattern, replacement, source.lexical, flags=flags)
    except re.error as exc:
        raise ExpressionError(f"bad regex: {exc}") from exc
    if source.language:
        return Literal(text, language=source.language)
    return Literal(text)


def _fn_ucase(args: Sequence[Term]) -> Term:
    source = _plain_string(args[0])
    if source.language:
        return Literal(source.lexical.upper(), language=source.language)
    return Literal(source.lexical.upper())


def _fn_lcase(args: Sequence[Term]) -> Term:
    source = _plain_string(args[0])
    if source.language:
        return Literal(source.lexical.lower(), language=source.language)
    return Literal(source.lexical.lower())


def _fn_contains(args: Sequence[Term]) -> Term:
    return _bool_literal(_string_value(args[1]) in _string_value(args[0]))


def _fn_strstarts(args: Sequence[Term]) -> Term:
    return _bool_literal(_string_value(args[0]).startswith(_string_value(args[1])))


def _fn_strends(args: Sequence[Term]) -> Term:
    return _bool_literal(_string_value(args[0]).endswith(_string_value(args[1])))


def _fn_strbefore(args: Sequence[Term]) -> Term:
    haystack, needle = _string_value(args[0]), _string_value(args[1])
    index = haystack.find(needle)
    return Literal(haystack[:index] if index >= 0 else "")


def _fn_strafter(args: Sequence[Term]) -> Term:
    haystack, needle = _string_value(args[0]), _string_value(args[1])
    index = haystack.find(needle)
    return Literal(haystack[index + len(needle) :] if index >= 0 else "")


def _fn_encode_for_uri(args: Sequence[Term]) -> Term:
    return Literal(quote(_string_value(args[0]), safe=""))


def _fn_sameterm(args: Sequence[Term]) -> Term:
    return _bool_literal(args[0] == args[1])


def _fn_isiri(args: Sequence[Term]) -> Term:
    return _bool_literal(isinstance(args[0], URI))


def _fn_isblank(args: Sequence[Term]) -> Term:
    return _bool_literal(isinstance(args[0], BNode))


def _fn_isliteral(args: Sequence[Term]) -> Term:
    return _bool_literal(isinstance(args[0], Literal))


def _fn_isnumeric(args: Sequence[Term]) -> Term:
    term = args[0]
    return _bool_literal(isinstance(term, Literal) and term.is_numeric)


def _regex_flags(flag_text: str) -> int:
    flags = 0
    for char in flag_text:
        if char == "i":
            flags |= re.IGNORECASE
        elif char == "s":
            flags |= re.DOTALL
        elif char == "m":
            flags |= re.MULTILINE
        elif char == "x":
            flags |= re.VERBOSE
        else:
            raise ExpressionError(f"unknown regex flag: {char!r}")
    return flags


def _fn_regex(args: Sequence[Term]) -> Term:
    text = _string_value(args[0])
    pattern = _string_value(args[1])
    flags = _regex_flags(_string_value(args[2])) if len(args) == 3 else 0
    try:
        return _bool_literal(re.search(pattern, text, flags=flags) is not None)
    except re.error as exc:
        raise ExpressionError(f"bad regex: {exc}") from exc


_BUILTINS: Dict[str, Callable[[Sequence[Term]], Term]] = {
    "STR": _fn_str,
    "LANG": _fn_lang,
    "LANGMATCHES": _fn_langmatches,
    "DATATYPE": _fn_datatype,
    "IRI": _fn_iri,
    "BNODE": _fn_bnode,
    "ABS": _fn_abs,
    "CEIL": _fn_ceil,
    "FLOOR": _fn_floor,
    "ROUND": _fn_round,
    "CONCAT": _fn_concat,
    "SUBSTR": _fn_substr,
    "STRLEN": _fn_strlen,
    "REPLACE": _fn_replace,
    "UCASE": _fn_ucase,
    "LCASE": _fn_lcase,
    "CONTAINS": _fn_contains,
    "STRSTARTS": _fn_strstarts,
    "STRENDS": _fn_strends,
    "STRBEFORE": _fn_strbefore,
    "STRAFTER": _fn_strafter,
    "ENCODE_FOR_URI": _fn_encode_for_uri,
    "SAMETERM": _fn_sameterm,
    "ISIRI": _fn_isiri,
    "ISBLANK": _fn_isblank,
    "ISLITERAL": _fn_isliteral,
    "ISNUMERIC": _fn_isnumeric,
    "REGEX": _fn_regex,
}


# ----------------------------------------------------------------------
# Expression evaluation
# ----------------------------------------------------------------------


def evaluate_expression(
    expression: Expression,
    binding: Binding,
    group: Optional[List[Binding]] = None,
    context: Optional[object] = None,
) -> Term:
    """Evaluate ``expression`` against ``binding``.

    ``group`` supplies the member solutions when the expression contains
    aggregates (grouped queries).  ``context`` is the evaluator hosting
    EXISTS pattern checks (anything with an ``exists(pattern, binding)``
    method).  Raises :class:`ExpressionError` on evaluation errors
    (unbound variable, type error, ...).
    """
    if isinstance(expression, VarExpr):
        value = binding.get(expression.var.name)
        if value is None:
            raise ExpressionError(f"unbound variable: ?{expression.var.name}")
        return value
    if isinstance(expression, TermExpr):
        return expression.term
    if isinstance(expression, UnaryExpr):
        return _evaluate_unary(expression, binding, group, context)
    if isinstance(expression, BinaryExpr):
        return _evaluate_binary(expression, binding, group, context)
    if isinstance(expression, InExpr):
        return _evaluate_in(expression, binding, group, context)
    if isinstance(expression, FunctionCall):
        return _evaluate_call(expression, binding, group, context)
    if isinstance(expression, AggregateExpr):
        if group is None:
            raise ExpressionError("aggregate outside a grouped query")
        return evaluate_aggregate(expression, group)
    if isinstance(expression, ExistsExpr):
        if context is None or not hasattr(context, "exists"):
            raise ExpressionError("EXISTS requires an evaluation context")
        matched = bool(context.exists(expression.pattern, binding))
        return _bool_literal(matched != expression.negated)
    raise ExpressionError(f"unknown expression node: {expression!r}")


def _evaluate_unary(
    expression: UnaryExpr,
    binding: Binding,
    group: Optional[List[Binding]],
    context: Optional[object] = None,
) -> Term:
    if expression.op == "!":
        value = effective_boolean_value(
            evaluate_expression(expression.operand, binding, group, context)
        )
        return _bool_literal(not value)
    operand = _numeric_value(evaluate_expression(expression.operand, binding, group, context))
    if expression.op == "-":
        return _numeric_literal(-operand)
    return _numeric_literal(operand)


def _evaluate_binary(
    expression: BinaryExpr,
    binding: Binding,
    group: Optional[List[Binding]],
    context: Optional[object] = None,
) -> Term:
    op = expression.op
    if op == "||":
        # SPARQL logical-or error handling: error || true = true.
        left_error: Optional[ExpressionError] = None
        try:
            if effective_boolean_value(
                evaluate_expression(expression.left, binding, group, context)
            ):
                return _TRUE
        except ExpressionError as exc:
            left_error = exc
        right = effective_boolean_value(
            evaluate_expression(expression.right, binding, group, context)
        )
        if right:
            return _TRUE
        if left_error is not None:
            raise left_error
        return _FALSE
    if op == "&&":
        left_error = None
        try:
            if not effective_boolean_value(
                evaluate_expression(expression.left, binding, group, context)
            ):
                return _FALSE
        except ExpressionError as exc:
            left_error = exc
        right = effective_boolean_value(
            evaluate_expression(expression.right, binding, group, context)
        )
        if not right:
            return _FALSE
        if left_error is not None:
            raise left_error
        return _TRUE
    left = evaluate_expression(expression.left, binding, group, context)
    right = evaluate_expression(expression.right, binding, group, context)
    if op == "=":
        return _bool_literal(_terms_equal(left, right))
    if op == "!=":
        return _bool_literal(not _terms_equal(left, right))
    if op in ("<", ">", "<=", ">="):
        cmp = _compare(left, right)
        result = {
            "<": cmp < 0,
            ">": cmp > 0,
            "<=": cmp <= 0,
            ">=": cmp >= 0,
        }[op]
        return _bool_literal(result)
    left_num = _numeric_value(left)
    right_num = _numeric_value(right)
    if op == "+":
        return _numeric_literal(left_num + right_num)
    if op == "-":
        return _numeric_literal(left_num - right_num)
    if op == "*":
        return _numeric_literal(left_num * right_num)
    if op == "/":
        if right_num == 0:
            raise ExpressionError("division by zero")
        value = left_num / right_num
        if isinstance(left_num, int) and isinstance(right_num, int) and left_num % right_num == 0:
            return _numeric_literal(left_num // right_num)
        return _numeric_literal(value)
    raise ExpressionError(f"unknown operator: {op}")


def _evaluate_in(
    expression: InExpr,
    binding: Binding,
    group: Optional[List[Binding]],
    context: Optional[object] = None,
) -> Term:
    operand = evaluate_expression(expression.operand, binding, group, context)
    found = False
    error: Optional[ExpressionError] = None
    for choice in expression.choices:
        try:
            if _terms_equal(operand, evaluate_expression(choice, binding, group, context)):
                found = True
                break
        except ExpressionError as exc:
            error = exc
    if not found and error is not None:
        raise error
    return _bool_literal(found != expression.negated)


def _evaluate_call(
    expression: FunctionCall,
    binding: Binding,
    group: Optional[List[Binding]],
    context: Optional[object] = None,
) -> Term:
    name = expression.name
    if name == "BOUND":
        arg = expression.args[0]
        if not isinstance(arg, VarExpr):
            raise ExpressionError("BOUND expects a variable")
        return _bool_literal(arg.var.name in binding)
    if name == "IF":
        condition = effective_boolean_value(
            evaluate_expression(expression.args[0], binding, group, context)
        )
        chosen = expression.args[1] if condition else expression.args[2]
        return evaluate_expression(chosen, binding, group, context)
    if name == "COALESCE":
        for arg in expression.args:
            try:
                return evaluate_expression(arg, binding, group, context)
            except ExpressionError:
                continue
        raise ExpressionError("all COALESCE branches errored")
    function = _BUILTINS.get(name)
    if function is None:
        raise ExpressionError(f"unknown function: {name}")
    args = [evaluate_expression(arg, binding, group, context) for arg in expression.args]
    return function(args)


# ----------------------------------------------------------------------
# Aggregates
# ----------------------------------------------------------------------


def evaluate_aggregate(aggregate: AggregateExpr, group: List[Binding]) -> Term:
    """Evaluate an aggregate over the member solutions of one group."""
    name = aggregate.name
    if name == "COUNT" and aggregate.argument is None:
        if aggregate.distinct:
            distinct_rows = {
                tuple(sorted((k, v) for k, v in member.items()))
                for member in group
            }
            return _numeric_literal(len(distinct_rows))
        return _numeric_literal(len(group))
    values: List[Term] = []
    for member in group:
        try:
            values.append(
                evaluate_expression(aggregate.argument, member)  # type: ignore[arg-type]
            )
        except ExpressionError:
            continue
    if aggregate.distinct:
        seen: set = set()
        deduped: List[Term] = []
        for value in values:
            if value not in seen:
                seen.add(value)
                deduped.append(value)
        values = deduped
    if name == "COUNT":
        return _numeric_literal(len(values))
    if name == "SAMPLE":
        if not values:
            raise ExpressionError("SAMPLE of empty group")
        return values[0]
    if name == "GROUP_CONCAT":
        return Literal(aggregate.separator.join(_string_value(v) for v in values))
    if not values:
        if name == "SUM":
            return _numeric_literal(0)
        raise ExpressionError(f"{name} of empty group")
    if name in ("MIN", "MAX"):
        keyed = sorted(values, key=term_order_key)
        return keyed[0] if name == "MIN" else keyed[-1]
    numbers = [_numeric_value(v) for v in values]
    if name == "SUM":
        total = sum(numbers)
        return _numeric_literal(total)
    if name == "AVG":
        return _numeric_literal(sum(numbers) / len(numbers))
    raise ExpressionError(f"unknown aggregate: {name}")
